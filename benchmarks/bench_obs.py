"""Observability overhead gate: the telemetry plane must be ~free.

The tentpole claim of the metrics registry (:mod:`repro.obs`): engine
instrumentation is observational only and sits at run/window
granularity, so

1. **Overhead** — a columnar weighted-SWOR run with a live
   :class:`~repro.obs.MetricsRegistry` attached must cost **<= 2%**
   wall time over the identical run with the default no-op registry
   (best-of-``REPS`` on both sides, measured interleaved so clock
   drift hits both equally);
2. **Bit-parity** — samples AND message counters are identical with
   the registry on and off (the registry only *observes*).

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_obs.py -q

Environment knobs (used by the CI smoke job):

* ``REPRO_BENCH_OBS_ITEMS``        — stream length (default 200000)
* ``REPRO_BENCH_OBS_SITES``        — number of sites (default 32)
* ``REPRO_BENCH_OBS_MAX_OVERHEAD`` — overhead gate (default 0.02)
* ``REPRO_BENCH_OBS_JSON``         — path to write the result as JSON
  (embeds the live registry's snapshot, so the artifact carries the
  run's full telemetry)
"""

from __future__ import annotations

import json
import os
import random
import time

from repro.analysis import format_table
from repro.core import DistributedWeightedSWOR, SworConfig
from repro.obs import MetricsRegistry
from repro.runtime import ColumnarEngine
from repro.stream import round_robin, zipf_stream

ITEMS = int(os.environ.get("REPRO_BENCH_OBS_ITEMS", 200_000))
SITES = int(os.environ.get("REPRO_BENCH_OBS_SITES", 32))
MAX_OVERHEAD = float(os.environ.get("REPRO_BENCH_OBS_MAX_OVERHEAD", 0.02))
JSON_PATH = os.environ.get("REPRO_BENCH_OBS_JSON")
SAMPLE = 16
SEED = 1
REPS = 7  # timing repetitions per side (best-of)


def _make_stream():
    rng = random.Random(0)
    return round_robin(zipf_stream(ITEMS, rng, alpha=1.2), SITES)


def _run_once(stream, registry):
    engine = ColumnarEngine()
    if registry is not None:
        engine.instrument(registry)
    proto = DistributedWeightedSWOR(
        SworConfig(num_sites=SITES, sample_size=SAMPLE),
        seed=SEED,
        engine=engine,
    )
    t0 = time.perf_counter()
    proto.run(stream)
    return time.perf_counter() - t0, proto


def _bench(report_fn):
    stream = _make_stream()
    registry = MetricsRegistry()
    # Interleave the two sides so slow-clock intervals (GC, turbo
    # transitions) cannot land on just one of them.
    base_best = live_best = None
    base_proto = live_proto = None
    for _ in range(REPS):
        elapsed, proto = _run_once(stream, None)
        if base_best is None or elapsed < base_best:
            base_best, base_proto = elapsed, proto
        elapsed, proto = _run_once(stream, registry)
        if live_best is None or elapsed < live_best:
            live_best, live_proto = elapsed, proto
    overhead = live_best / base_best - 1.0
    samples_identical = (
        base_proto.sample_with_keys() == live_proto.sample_with_keys()
    )
    counters_identical = (
        base_proto.counters.snapshot() == live_proto.counters.snapshot()
    )
    rows = [
        {
            "registry": "null (default)",
            "seconds": round(base_best, 4),
            "items_per_sec": round(ITEMS / base_best),
        },
        {
            "registry": "live MetricsRegistry",
            "seconds": round(live_best, 4),
            "items_per_sec": round(ITEMS / live_best),
        },
    ]
    report_fn(
        format_table(
            rows,
            title=f"telemetry overhead: columnar weighted SWOR, {ITEMS} "
            f"items, k={SITES}, s={SAMPLE}",
            caption=f"overhead {overhead * 100:+.2f}% (gate <= "
            f"{MAX_OVERHEAD * 100:.0f}%), samples identical: "
            f"{samples_identical}, counters identical: "
            f"{counters_identical}, {len(registry.metric_names())} "
            "metric families exported",
        )
    )
    if JSON_PATH:
        result = {
            "items": ITEMS,
            "sites": SITES,
            "sample_size": SAMPLE,
            "base_seconds": round(base_best, 4),
            "instrumented_seconds": round(live_best, 4),
            "overhead": round(overhead, 4),
            "max_overhead": MAX_OVERHEAD,
            "samples_identical": samples_identical,
            "counters_identical": counters_identical,
            "metrics": registry.snapshot(),
        }
        with open(JSON_PATH, "w") as fh:
            json.dump(result, fh, indent=2)
    return overhead, samples_identical, counters_identical


def test_registry_overhead_and_parity(benchmark, report):
    overhead, samples_identical, counters_identical = benchmark.pedantic(
        lambda: _bench(report), rounds=1, iterations=1
    )
    assert samples_identical, "instrumentation changed the sample"
    assert counters_identical, "instrumentation changed the counters"
    assert overhead <= MAX_OVERHEAD, (
        f"registry overhead {overhead * 100:.2f}% exceeds "
        f"{MAX_OVERHEAD * 100:.0f}% gate"
    )

"""Experiment E10: L1-tracking accuracy (Theorem 6 / Corollary 3).

Runs the Section 5 tracker with the theorem's exact parameter settings
and queries it at fixed checkpoints across independent seeds; reports
the empirical distribution of relative errors against the promised
``(1±eps)`` with failure probability delta.
"""

from __future__ import annotations

import random

from repro.analysis import format_table
from repro.common import relative_error
from repro.l1 import L1Tracker
from repro.stream import round_robin, uniform_stream

K, N = 8, 20000
CHECKPOINTS = [1000, 5000, 20000]


def test_l1_accuracy_distribution(benchmark, report):
    def run():
        results = []
        for eps, delta in ((0.25, 0.2), (0.15, 0.2)):
            errors = []
            for seed in range(4):
                rng = random.Random(seed)
                items = uniform_stream(N, rng, low=1.0, high=10.0)
                stream = round_robin(items, K)
                prefix = stream.prefix_weights()
                tracker = L1Tracker(K, eps=eps, delta=delta, seed=seed)

                def record(t, tracker=tracker, prefix=prefix, errors=errors):
                    errors.append(
                        relative_error(tracker.estimate(), prefix[t - 1])
                    )

                tracker.run(
                    stream, checkpoints=CHECKPOINTS, on_checkpoint=record
                )
            errors.sort()
            failures = sum(1 for e in errors if e > eps)
            results.append(
                {
                    "eps": eps,
                    "delta": delta,
                    "queries": len(errors),
                    "median_err": errors[len(errors) // 2],
                    "max_err": errors[-1],
                    "failures(err>eps)": failures,
                    "allowed(delta*q)": delta * len(errors),
                }
            )
        return results

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        format_table(
            rows,
            title="E10 (Theorem 6): L1 estimate accuracy at fixed checkpoints",
            caption="per-query failure prob is delta; observed failures "
            "should not exceed the binomial allowance by much",
        )
    )
    for row in rows:
        # Generous binomial slack: observed failures within 2x allowance + 1.
        assert row["failures(err>eps)"] <= 2 * row["allowed(delta*q)"] + 1
        assert row["median_err"] < row["eps"]

"""Multi-query driver benchmark: one shared pass vs N sequential runs.

The tentpole claim of the query subsystem: answering ``NQ`` concurrent
queries through :class:`repro.query.MultiQueryDriver`'s shared batched
pass must be **>= 2x** faster (items/sec) than running the same queries
one at a time on the batched engine — while producing **identical**
per-query samples (same derived seeds) and message counts within
**1.05x**.

The 8 benchmark queries are heterogeneous estimation queries (subset
sums, quantiles, a group-by, a frequency, a mean) that all compile onto
same-config weighted SWOR instances, which is exactly the fleet the
driver's fused site-side pass amortizes: per batch it computes the
grouping argsort, level indices, early/regular split, and shared EARLY
message objects once, leaving only per-query RNG draws, threshold
filters, and coordinator work.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_multiquery.py -q

Environment knobs (used by the CI smoke job):

* ``REPRO_BENCH_MQ_ITEMS``       — stream length (default 200000)
* ``REPRO_BENCH_MQ_SITES``       — number of sites (default 32)
* ``REPRO_BENCH_MQ_MIN_SPEEDUP`` — speedup gate (default 2.0)
* ``REPRO_BENCH_MQ_JSON``        — path to write the result as JSON
"""

from __future__ import annotations

import json
import os
import random
import time

from repro.analysis import format_table
from repro.core import DistributedWeightedSWOR, SworConfig
from repro.query import (
    FrequencyQuery,
    GroupByQuery,
    MeanWeightQuery,
    MultiQueryDriver,
    QuantileQuery,
    QueryCatalog,
    SubsetSumQuery,
    query_seed,
)
from repro.stream import round_robin, zipf_stream

ITEMS = int(os.environ.get("REPRO_BENCH_MQ_ITEMS", 200_000))
SITES = int(os.environ.get("REPRO_BENCH_MQ_SITES", 32))
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_MQ_MIN_SPEEDUP", 2.0))
JSON_PATH = os.environ.get("REPRO_BENCH_MQ_JSON")
SAMPLE = 64
ROOT_SEED = 11
REPS = 3  # timing repetitions (best-of)
MAX_MESSAGE_RATIO = 1.05


def _make_queries():
    def mod_pred(m):
        return lambda item: item.ident % 8 == m

    return [
        SubsetSumQuery("sum_mod0", predicate=mod_pred(0), sample_size=SAMPLE),
        SubsetSumQuery("sum_mod1", predicate=mod_pred(1), sample_size=SAMPLE),
        SubsetSumQuery("sum_mod2", predicate=mod_pred(2), sample_size=SAMPLE),
        SubsetSumQuery("total", sample_size=SAMPLE),
        QuantileQuery("quantiles", qs=(0.5, 0.9), sample_size=SAMPLE),
        GroupByQuery("groups", key=lambda item: item.ident % 4, sample_size=SAMPLE),
        FrequencyQuery("freq", ident=0, relative=True, sample_size=SAMPLE),
        MeanWeightQuery("mean", sample_size=SAMPLE),
    ]


def _make_stream():
    rng = random.Random(0)
    return round_robin(zipf_stream(ITEMS, rng, alpha=1.2), SITES)


def _run_sequential(stream, names):
    """The same queries one at a time: one standalone batched-engine
    protocol per query, with the driver's derived per-query seed."""
    protos = {}
    t0 = time.perf_counter()
    for name in names:
        proto = DistributedWeightedSWOR(
            SworConfig(num_sites=SITES, sample_size=SAMPLE),
            seed=query_seed(ROOT_SEED, name),
            engine="batched",
        )
        proto.run(stream)
        protos[name] = proto
    return time.perf_counter() - t0, protos


def _run_shared(stream, queries):
    driver = MultiQueryDriver(QueryCatalog(queries), num_sites=SITES, seed=ROOT_SEED)
    t0 = time.perf_counter()
    driver.run(stream)
    return time.perf_counter() - t0, driver


def _bench(report_fn):
    queries = _make_queries()
    names = [q.name for q in queries]
    stream = _make_stream()
    stream.arrays()  # build the SoA cache outside the timed regions

    # Runs are seed-deterministic, so any repetition's protocols serve
    # for the sample/message checks — keep the best time of REPS.
    seq_time, seq_protos = min(
        (_run_sequential(stream, names) for _ in range(REPS)),
        key=lambda pair: pair[0],
    )
    shared_time, driver = min(
        (_run_shared(stream, queries) for _ in range(REPS)),
        key=lambda pair: pair[0],
    )

    speedup = seq_time / shared_time
    identical = 0
    worst_ratio = 0.0
    per_query = []
    for name in names:
        instance = driver[name]
        standalone = seq_protos[name]
        same = (
            instance.protocol.sample_with_keys() == standalone.sample_with_keys()
        )
        identical += same
        ratio = instance.counters.total / standalone.counters.total
        worst_ratio = max(worst_ratio, ratio)
        per_query.append(
            {
                "query": name,
                "sample_identical": same,
                "messages_shared": instance.counters.total,
                "messages_sequential": standalone.counters.total,
                "ratio": round(ratio, 4),
            }
        )
    result = {
        "items": ITEMS,
        "sites": SITES,
        "sample_size": SAMPLE,
        "num_queries": len(queries),
        "sequential_seconds": round(seq_time, 4),
        "shared_seconds": round(shared_time, 4),
        "sequential_items_per_sec": round(ITEMS * len(queries) / seq_time),
        "shared_items_per_sec": round(ITEMS * len(queries) / shared_time),
        "speedup": round(speedup, 3),
        "min_speedup": MIN_SPEEDUP,
        "identical_samples": identical,
        "worst_message_ratio": round(worst_ratio, 4),
        "per_query": per_query,
    }
    report_fn(
        format_table(
            per_query,
            title=f"multi-query shared pass: {len(queries)} queries, "
            f"{ITEMS} items, k={SITES}, s={SAMPLE}",
            caption=f"sequential {seq_time:.3f}s vs shared {shared_time:.3f}s "
            f"-> speedup {speedup:.2f}x (target >= {MIN_SPEEDUP}x), "
            f"worst message ratio {worst_ratio:.3f}x (target <= "
            f"{MAX_MESSAGE_RATIO}x)",
        )
    )
    if JSON_PATH:
        with open(JSON_PATH, "w") as fh:
            json.dump(result, fh, indent=2)
    return result


def test_shared_pass_beats_sequential(benchmark, report):
    result = benchmark.pedantic(lambda: _bench(report), rounds=1, iterations=1)
    assert result["identical_samples"] == result["num_queries"], (
        f"only {result['identical_samples']}/{result['num_queries']} "
        "per-query samples matched the standalone runs"
    )
    assert result["worst_message_ratio"] <= MAX_MESSAGE_RATIO, (
        f"message overhead {result['worst_message_ratio']:.3f}x exceeds "
        f"{MAX_MESSAGE_RATIO}x"
    )
    assert result["speedup"] >= MIN_SPEEDUP, (
        f"shared pass only {result['speedup']:.2f}x faster than sequential "
        f"(target >= {MIN_SPEEDUP}x)"
    )

"""Experiments E1-E3: Theorem 3's message complexity, empirically.

Theorem 3 claims ``O(k·log(W/s)/log(1+k/s))`` expected messages.  Three
sweeps check the three structural features of that bound:

* E1 — messages grow *linearly in log W* (ratio to the bound stays flat
  as the stream grows multiplicatively);
* E2 — messages grow *sublinearly in k* once ``k >> s`` (the
  ``log(1+k/s)`` denominator kicks in);
* E3 — cost is *additive* ``Õ(k + s)``, not multiplicative ``Õ(ks)``:
  the naive per-site-top-s protocol pays ~s-fold more as ``s`` grows.
"""

from __future__ import annotations

from repro.analysis import (
    format_table,
    messages_vs_sample_size,
    messages_vs_sites,
    messages_vs_weight,
)
from repro.stream import zipf_stream


def _zipf(rng, n):
    return zipf_stream(n, rng, alpha=1.3)


def test_messages_vs_total_weight(benchmark, report):
    """E1: flat measured/bound ratio across a 16x growth in stream size."""

    def run():
        return messages_vs_weight(
            _zipf, weight_steps=[4000, 16000, 64000], k=32, s=64, reps=2
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        format_table(
            rows,
            columns=["k", "s", "W", "messages", "early", "regular",
                     "downstream", "bound", "ratio"],
            title="E1 (Theorem 3): messages vs total weight W",
            caption="ratio = measured / [k log(W/s)/log(1+k/s)] should stay flat",
        )
    )
    ratios = [row["ratio"] for row in rows]
    assert max(ratios) / min(ratios) < 4.0, "ratio drifts: not linear in log W"


def test_messages_vs_sites(benchmark, report):
    """E2: sublinear growth in k for fixed stream and s."""

    def run():
        return messages_vs_sites(
            _zipf, n=30000, site_steps=[4, 16, 64, 256], s=16, reps=2
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        format_table(
            rows,
            columns=["k", "s", "W", "messages", "early", "regular",
                     "downstream", "bound", "ratio"],
            title="E2 (Theorem 3): messages vs number of sites k",
            caption="64x more sites must cost << 64x messages",
        )
    )
    growth = rows[-1]["messages"] / rows[0]["messages"]
    k_growth = rows[-1]["k"] / rows[0]["k"]
    assert growth < k_growth / 2.0, "message growth is not sublinear in k"


def test_messages_vs_sample_size_vs_naive(benchmark, report):
    """E3: additive O(k+s) against the naive multiplicative O(ks)."""

    def run():
        return messages_vs_sample_size(
            _zipf, n=30000, k=64, sample_steps=[4, 16, 64], reps=2,
            include_naive=True,
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        format_table(
            rows,
            columns=["k", "s", "messages", "naive_messages",
                     "naive_over_ours", "bound", "ratio"],
            title="E3 (Theorem 3 vs Section 1.2 naive): messages vs sample size s",
            caption="naive_over_ours should favor this work as k/s grows",
        )
    )
    # The naive multiplicative cost pulls ahead of ours as s grows.
    assert rows[-1]["naive_over_ours"] > 2.0
    assert rows[-1]["naive_over_ours"] > rows[0]["naive_over_ours"]

"""Benchmark-suite fixtures.

``report`` prints experiment tables with output capture disabled, so
they land in ``bench_output.txt`` when the suite is run with
``pytest benchmarks/ --benchmark-only | tee bench_output.txt``.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def report(capsys):
    """Print a string straight to the real stdout (bypassing capture)."""

    def _print(text: str) -> None:
        with capsys.disabled():
            print()
            print(text)

    return _print

"""Experiment E6: weighted SWR (Corollary 1) — messages and law.

Corollary 1 claims ``O((k + s·log s)·log(W)/log(2+k/s))`` expected
messages for weighted sampling *with* replacement via the duplication
reduction.  The bench sweeps stream size and ``k``, printing the
measured/bound ratio, and cross-checks the per-slot law against the
centralized Chao sampler on a fixed small universe.
"""

from __future__ import annotations

import random
from collections import Counter

from repro.analysis import bounds, format_table
from repro.centralized import WeightedReservoirSWR
from repro.core import DistributedWeightedSWR
from repro.stream import Item, round_robin, zipf_stream


def test_swr_message_scaling(benchmark, report):
    def run():
        rows = []
        for n in (4000, 16000, 64000):
            for k in (8, 64):
                s = 16
                rng = random.Random(n + k)
                items = zipf_stream(n, rng, alpha=1.3)
                proto = DistributedWeightedSWR(k, s, seed=n * 31 + k)
                counters = proto.run(round_robin(items, k))
                w = sum(i.weight for i in items)
                bound = bounds.swr_message_bound(k, s, w)
                rows.append(
                    {
                        "n": n,
                        "k": k,
                        "s": s,
                        "W": w,
                        "messages": counters.total,
                        "rounds": proto.coordinator.rounds_announced,
                        "bound": bound,
                        "ratio": counters.total / bound,
                    }
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        format_table(
            rows,
            title="E6 (Corollary 1): weighted SWR messages vs (k+s log s) log(W)/log(2+k/s)",
            caption="ratio should stay within a constant band across the sweep",
        )
    )
    ratios = [row["ratio"] for row in rows]
    assert max(ratios) / min(ratios) < 8.0


def test_swr_matches_centralized_law(benchmark, report):
    """Distributed SWR and centralized Chao slots: same per-item
    occupation frequencies."""
    weights = [1.0, 3.0, 6.0, 2.0, 8.0]
    items = [Item(i, w) for i, w in enumerate(weights)]
    trials, k, s = 3000, 2, 4

    def run():
        dist_counts, central_counts = Counter(), Counter()
        for t in range(trials):
            proto = DistributedWeightedSWR(k, s, seed=t)
            proto.run(round_robin(items, k))
            for item in proto.sample():
                dist_counts[item.ident] += 1
            central = WeightedReservoirSWR(s, random.Random(t + 10**6))
            for item in items:
                central.insert(item)
            for item in central.sample():
                central_counts[item.ident] += 1
        return dist_counts, central_counts

    dist_counts, central_counts = benchmark.pedantic(run, rounds=1, iterations=1)
    total_w = sum(weights)
    rows = [
        {
            "item": i,
            "weight": w,
            "distributed": dist_counts.get(i, 0) / (trials * s),
            "centralized": central_counts.get(i, 0) / (trials * s),
            "exact": w / total_w,
        }
        for i, w in enumerate(weights)
    ]
    report(
        format_table(
            rows,
            title="E6b: per-slot occupation — distributed vs centralized vs exact",
            caption=f"trials={trials}, k={k}, s={s}",
        )
    )
    for row in rows:
        assert abs(row["distributed"] - row["exact"]) < 0.02
        assert abs(row["centralized"] - row["exact"]) < 0.02

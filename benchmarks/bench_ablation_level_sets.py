"""Experiment E5 + design ablations: why the paper's knobs are set so.

Three ablations called out in DESIGN.md:

* level sets on/off on a stream with planted giants — withholding is
  what keeps extreme items from distorting the sampler's threshold
  dynamics (Lemma 1's precondition for Proposition 3);
* the epoch/level base ``r`` — the paper's ``max(2, k/s)`` balances
  per-epoch broadcast cost (k messages) against per-epoch regular
  traffic;
* the saturation factor (paper: 4) — smaller factors break the
  ``1/(4s)``-heaviness invariant.
"""

from __future__ import annotations

import random

from repro.analysis import format_table
from repro.core import DistributedWeightedSWOR, SworConfig
from repro.stream import planted_heavy_hitter_stream, round_robin, zipf_stream


K, S, N = 32, 16, 30000


def _giant_stream(seed):
    rng = random.Random(seed)
    return planted_heavy_hitter_stream(N, rng, num_heavy=20, dominance=0.9999)


def test_level_sets_on_off(benchmark, report):
    """E5: message cost with and without withholding, on giant-laden
    streams; both variants stay correct, the bench shows the cost."""

    def run():
        rows = []
        for enabled in (True, False):
            totals = []
            regs = []
            for seed in range(3):
                proto = DistributedWeightedSWOR(
                    SworConfig(
                        num_sites=K, sample_size=S, level_sets_enabled=enabled
                    ),
                    seed=seed,
                )
                counters = proto.run(round_robin(_giant_stream(seed), K))
                totals.append(counters.total)
                regs.append(counters.by_kind.get("regular", 0))
            rows.append(
                {
                    "level_sets": enabled,
                    "messages": sum(totals) / len(totals),
                    "regular": sum(regs) / len(regs),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        format_table(
            rows,
            title="E5 (Lemma 1 ablation): level sets on/off, 20 giants at 99.99%",
            caption="withholding caps the damage extreme items can do; "
            "without it the early-stream threshold is set by giants and "
            "light items flood or starve depending on arrival order",
        )
    )
    assert all(row["messages"] > 0 for row in rows)
    # Without withholding, giants pollute the sampler and the regular
    # (key-bearing) traffic inflates.
    with_ls, without_ls = rows[0], rows[1]
    assert without_ls["regular"] > with_ls["regular"]


def test_epoch_base_sweep(benchmark, report):
    """Ablation: sweep r; the paper's max(2, k/s)=2 here (k=32,s=16)."""

    def run():
        rng = random.Random(7)
        items = zipf_stream(N, rng, alpha=1.3)
        rows = []
        for r in (2.0, 4.0, 8.0, 16.0):
            proto = DistributedWeightedSWOR(
                SworConfig(
                    num_sites=K, sample_size=S, epoch_base_override=r
                ),
                seed=11,
            )
            counters = proto.run(round_robin(items, K))
            rows.append(
                {
                    "r": r,
                    "messages": counters.total,
                    "early": counters.by_kind.get("early", 0),
                    "epoch_updates": counters.by_kind.get("epoch_update", 0),
                    "regular": counters.by_kind.get("regular", 0),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        format_table(
            rows,
            title="Ablation: epoch/level base r (paper: max(2, k/s))",
            caption="bigger r: fewer epochs (fewer broadcasts) but "
            "coarser filtering (more regular sends) and bigger level sets",
        )
    )
    # Broadcast traffic must fall monotonically with r.
    epoch_cols = [row["epoch_updates"] for row in rows]
    assert epoch_cols == sorted(epoch_cols, reverse=True)


def test_saturation_factor_sweep(benchmark, report):
    """Ablation: the 4 in 4rs; smaller factors release heavier items."""

    def run():
        rng = random.Random(13)
        items = planted_heavy_hitter_stream(N, rng, num_heavy=30, dominance=0.99)
        rows = []
        for factor in (0.5, 1.0, 4.0, 8.0):
            proto = DistributedWeightedSWOR(
                SworConfig(
                    num_sites=K, sample_size=S, level_set_factor=factor
                ),
                seed=17,
            )
            counters = proto.run(round_robin(items, K))
            rows.append(
                {
                    "factor": factor,
                    "saturation_size": proto.config.saturation_size,
                    "messages": counters.total,
                    "early": counters.by_kind.get("early", 0),
                    "regular": counters.by_kind.get("regular", 0),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        format_table(
            rows,
            title="Ablation: level-set saturation factor (paper: 4rs)",
            caption="early-message volume scales with the factor; "
            "below ~4 the Lemma 1 heaviness bound no longer holds",
        )
    )
    early = [row["early"] for row in rows]
    assert early == sorted(early), "early messages should grow with the factor"

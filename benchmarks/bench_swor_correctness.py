"""Experiment E4: the distributed sample follows the exact SWOR law.

Definition 3 requires a valid weighted SWOR at *every* time step.  This
bench runs many independent protocol executions on a small universe with
an extreme heavy hitter and an adversarial partition, then compares
empirical inclusion frequencies against the exact law (computed by
exhaustive recursion) via total-variation distance and chi-square.
"""

from __future__ import annotations

from collections import Counter

from repro.analysis import format_table
from repro.common import (
    chi_square_pvalue,
    chi_square_statistic,
    exact_swor_inclusion_probabilities,
)
from repro.core import DistributedWeightedSWOR, SworConfig
from repro.stream import Item, heavy_to_one_site


WEIGHTS = [1.0, 2.0, 4.0, 8.0, 16.0, 64.0, 1.0, 512.0]
K, S, TRIALS = 4, 3, 4000


def _run_trials():
    items = [Item(i, w) for i, w in enumerate(WEIGHTS)]
    stream = heavy_to_one_site(items, K)
    counts = Counter()
    for t in range(TRIALS):
        proto = DistributedWeightedSWOR(
            SworConfig(num_sites=K, sample_size=S), seed=t
        )
        proto.run(stream)
        for item in proto.sample():
            counts[item.ident] += 1
    return counts


def test_inclusion_law(benchmark, report):
    counts = benchmark.pedantic(_run_trials, rounds=1, iterations=1)
    exact = exact_swor_inclusion_probabilities(WEIGHTS, S)
    expected = {i: TRIALS * p for i, p in enumerate(exact)}
    stat, df = chi_square_statistic(counts, expected)
    pvalue = chi_square_pvalue(stat, df)
    tv = 0.5 * sum(
        abs(counts.get(i, 0) / TRIALS - p) for i, p in enumerate(exact)
    ) / S
    rows = [
        {
            "item": i,
            "weight": w,
            "empirical": counts.get(i, 0) / TRIALS,
            "exact": exact[i],
        }
        for i, w in enumerate(WEIGHTS)
    ]
    rows.append({"item": "chi2", "weight": stat, "empirical": pvalue, "exact": tv})
    report(
        format_table(
            rows,
            columns=["item", "weight", "empirical", "exact"],
            title="E4 (Definition 3 / Prop. 1): inclusion frequencies vs exact law",
            caption=f"last row: chi2 stat | p-value | TV; trials={TRIALS}, "
            f"k={K}, s={S}, adversarial partition",
        )
    )
    assert pvalue > 1e-4, "distributed sample deviates from the exact SWOR law"

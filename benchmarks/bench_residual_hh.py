"""Experiment E7: residual heavy hitters (Theorem 4).

On a stream with giant items hiding a mid-tier, the bench reports for
each eps: recall of the true residual heavy hitters (Theorem 4 promises
1.0 w.p. 1-delta), the recall an equally-sized with-replacement sampler
achieves (the motivating failure), message counts, and the Theorem 4
closed-form bound.
"""

from __future__ import annotations

import random

from repro.analysis import bounds, format_table
from repro.heavy_hitters import (
    ResidualHeavyHitterTracker,
    SwrHeavyHitterTracker,
    score_residual_report,
    theorem4_sample_size,
)
from repro.stream import round_robin, two_phase_residual_stream

K, N = 16, 40000
DELTA = 0.05
SEEDS = range(3)


def _stream(seed, eps):
    rng = random.Random(seed)
    # The residual tier must fit: residual_heavy * fraction < 1, with
    # fraction comfortably above eps so the tier really is eps-heavy.
    residual_heavy = min(5, int(0.7 / (1.5 * eps)))
    return two_phase_residual_stream(
        N,
        rng,
        num_giants=max(2, int(1 / eps) // 2),
        giant_weight=1e8,
        residual_heavy=max(1, residual_heavy),
        residual_fraction=eps * 1.5,
    )


def test_residual_recall_and_messages(benchmark, report):
    def run():
        rows = []
        for eps in (0.2, 0.1, 0.05):
            recalls, swr_recalls, messages, swr_messages = [], [], [], []
            for seed in SEEDS:
                items = _stream(seed, eps)
                tracker = ResidualHeavyHitterTracker(
                    K, eps, delta=DELTA, seed=seed
                )
                counters = tracker.run(round_robin(items, K))
                score = score_residual_report(
                    items, tracker.heavy_hitters(), eps
                )
                recalls.append(score.recall)
                messages.append(counters.total)
                # Equal-budget distributed SWR baseline (Section 1.2's
                # coupon-collector technique).
                swr = SwrHeavyHitterTracker(K, eps, delta=DELTA, seed=seed + 10**6)
                swr_counters = swr.run(round_robin(items, K))
                swr_messages.append(swr_counters.total)
                swr_recalls.append(
                    score_residual_report(items, swr.heavy_hitters(), eps).recall
                )
            w = sum(i.weight for i in _stream(SEEDS[0], eps))
            bound = bounds.hh_upper_bound(K, eps, DELTA, w)
            rows.append(
                {
                    "eps": eps,
                    "s": theorem4_sample_size(eps, DELTA),
                    "recall_swor": sum(recalls) / len(recalls),
                    "recall_swr": sum(swr_recalls) / len(swr_recalls),
                    "messages": sum(messages) / len(messages),
                    "swr_messages": sum(swr_messages) / len(swr_messages),
                    "bound": bound,
                    "ratio": (sum(messages) / len(messages)) / bound,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        format_table(
            rows,
            title="E7 (Theorem 4): residual heavy hitters — SWOR vs SWR recall",
            caption="recall_swor should be 1.0; recall_swr collapses "
            "because with-replacement samples only see the giants",
        )
    )
    for row in rows:
        assert row["recall_swor"] >= 0.99
        assert row["recall_swr"] < row["recall_swor"]

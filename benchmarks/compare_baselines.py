"""Compare fresh benchmark JSONs against the committed baselines.

The perf trajectory lives in ``benchmarks/baselines/BENCH_*.json`` —
one JSON per benchmark, recorded at the CI smoke configuration (the
``REPRO_BENCH_*`` env knobs printed inside each file).  The CI
benchmark-smoke job re-runs each benchmark at the same configuration
and calls this script, which **fails on a >20% regression** of any
tracked throughput metric.

Tracked metrics are *relative* (engine speedups, memory ratios): they
normalize out the absolute speed of the host, so a laptop, this
container, and a shared CI runner can all be compared against the same
committed numbers.  Absolute items/sec values are carried in the JSONs
for the record but not gated (cross-machine noise would make the gate
meaningless); pass ``--absolute`` to gate them too when comparing runs
from the same machine.

Usage::

    python benchmarks/compare_baselines.py \
        --baseline-dir benchmarks/baselines --fresh-dir . \
        [--max-regression 0.20] [--absolute]

Pass ``--update`` to copy the fresh JSONs over the committed baselines
instead of comparing (refused when a fresh result failed its parity
checks or ran in fallback mode — a broken run must never become the
recorded trajectory).  Before overwriting, ``--update`` prints the
same per-metric ratio table against the outgoing baseline — purely
informational (never gating), so nightly logs show the trajectory
each refresh moved.

Fresh files must use the same names as the baselines
(``BENCH_engines.json`` etc.); the script verifies the workload
configuration (items/sites/...) matches before comparing, so a
misconfigured run fails loudly instead of comparing apples to oranges.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List

#: Per-benchmark spec: which keys identify the workload configuration
#: and which higher-is-better ratio metrics are gated.
BASELINES: Dict[str, Dict[str, List[str]]] = {
    "BENCH_engines.json": {
        "config": ["items", "sites", "sample_size"],
        "ratios": ["speedup"],
        "absolute": ["batched_items_per_sec"],
    },
    "BENCH_multiquery.json": {
        "config": ["items", "sites", "sample_size", "num_queries"],
        "ratios": ["speedup"],
        "absolute": ["shared_items_per_sec"],
    },
    "BENCH_columnar.json": {
        "config": ["items", "sites", "sample_size"],
        "ratios": ["speedup", "memory_ratio"],
        "absolute": ["columnar_items_per_sec"],
    },
    # hh_speedup is recorded in the JSON but deliberately not gated
    # here: the residual-HH per-item baseline swings ~±20% run to run
    # (its site path was already vectorized pre-PR-4, so the measured
    # margin is small); the in-bench REPRO_BENCH_COLP_HH_MIN_SPEEDUP
    # gate covers real losses.
    "BENCH_columnar_protocols.json": {
        "config": ["items", "sites"],
        "ratios": [
            "swr_speedup",
            "unweighted_speedup",
            "l1_speedup",
            "sliding_window_speedup",
        ],
        "absolute": ["swr_columnar_items_per_sec"],
    },
    # The speedups here are the multiprocess gain over the single-
    # process columnar engine at the SAME batch size — "speedup" is the
    # pipelined mode, "lockstep_speedup" the strict-lockstep floor —
    # meaningful only when the recording machine had >= workers cores
    # (the JSON's "cpu_count" says; the in-bench
    # REPRO_BENCH_SHARD_MIN_SPEEDUP / _PIPELINED gates enforce the real
    # 2.5x / 3.2x floors on multicore runners).
    "BENCH_sharded.json": {
        "config": ["items", "sites", "sample_size", "workers", "batch_size"],
        "ratios": ["speedup", "lockstep_speedup"],
        "absolute": ["sharded_items_per_sec"],
    },
    # supervision_ratio is unsupervised/supervised wall time on the
    # SAME lockstep sharded run (~1.0 when supervision is free, the
    # in-bench REPRO_BENCH_FAULTS_MAX_OVERHEAD gate enforces the real
    # 2% ceiling); recovery_identical rides along as a parity check.
    "BENCH_faults.json": {
        "config": ["items", "sites", "sample_size", "workers", "batch_size"],
        "ratios": ["supervision_ratio"],
        "absolute": ["supervised_items_per_sec"],
    },
    # fold_speedup is numba-vs-numpy on the fused coordinator fold; a
    # numpy-only environment records 1.0 (the bench skips the compiled
    # tier but still asserts parity), so the committed number is stable
    # wherever numba is absent and meaningful wherever it is present.
    "BENCH_kernels.json": {
        "config": ["pack_size", "sample_size", "rounds"],
        "ratios": ["fold_speedup"],
        "absolute": ["numpy_folds_per_sec"],
    },
}


def update_guard(name: str, fresh: dict) -> List[str]:
    """Why a fresh result must NOT become the committed baseline.

    A baseline records the perf trajectory of the *real* engine paths:
    a run whose parity checks failed or that fell back in-process would
    freeze a broken or meaningless number into the repository, and the
    next healthy run would then "regress" against it.  Refuse loudly.
    """
    problems = []
    for key, value in sorted(fresh.items()):
        if key.endswith("_identical") and value is not True:
            problems.append(
                f"{name}: refusing --update, parity check {key!r} is "
                f"{value!r} in the fresh result"
            )
    for key, value in sorted(fresh.items()):
        if key.endswith("mode") and value == "fallback":
            problems.append(
                f"{name}: refusing --update, {key!r} is 'fallback' — the "
                "fresh run never exercised the engine path it would pin"
            )
    return problems


def compare_file(
    name: str,
    baseline: dict,
    fresh: dict,
    max_regression: float,
    absolute: bool,
) -> List[str]:
    """Return a list of failure messages (empty when healthy)."""
    spec = BASELINES[name]
    failures = []
    for key in spec["config"]:
        if baseline.get(key) != fresh.get(key):
            failures.append(
                f"{name}: config mismatch on {key!r} "
                f"(baseline {baseline.get(key)}, fresh {fresh.get(key)}) — "
                "run the benchmark with the same REPRO_BENCH_* knobs the "
                "baseline was recorded with"
            )
    if failures:
        return failures
    metrics = list(spec["ratios"]) + (spec["absolute"] if absolute else [])
    for metric in metrics:
        base = float(baseline[metric])
        new = float(fresh[metric])
        regression = (base - new) / base if base > 0 else 0.0
        status = "OK" if regression <= max_regression else "REGRESSED"
        print(
            f"  {name}: {metric:24s} baseline={base:<10.3f} "
            f"fresh={new:<10.3f} change={-regression:+.1%}  [{status}]"
        )
        if regression > max_regression:
            failures.append(
                f"{name}: {metric} regressed {regression:.1%} "
                f"({base:.3f} -> {new:.3f}; limit {max_regression:.0%})"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline-dir",
        default=os.path.join(os.path.dirname(__file__), "baselines"),
    )
    parser.add_argument("--fresh-dir", default=".")
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.20,
        help="maximum tolerated fractional drop per metric (default 0.20)",
    )
    parser.add_argument(
        "--absolute",
        action="store_true",
        help="also gate absolute items/sec (same-machine comparisons only)",
    )
    parser.add_argument(
        "--only",
        nargs="+",
        metavar="NAME",
        help="restrict the comparison to these baseline file names (e.g. "
        "the nightly job records baselines only for the benchmarks it "
        "runs at full scale)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="instead of comparing, copy the fresh JSONs over the "
        "committed baselines — refused for any fresh result whose "
        "parity checks failed or that ran in fallback mode",
    )
    args = parser.parse_args(argv)

    names = sorted(BASELINES)
    if args.only:
        unknown = [n for n in args.only if n not in BASELINES]
        if unknown:
            # A typo'd --only must fail loudly, not silently compare
            # nothing and report success.
            print(
                f"--only got unknown baseline names {unknown}; "
                f"known: {names}",
                file=sys.stderr,
            )
            return 2
        names = sorted(args.only)

    if args.update:
        failures = []
        updated = 0
        for name in names:
            fresh_path = os.path.join(args.fresh_dir, name)
            if not os.path.exists(fresh_path):
                failures.append(
                    f"missing fresh result {fresh_path} — run the benchmark "
                    f"with REPRO_BENCH_*_JSON={name} before --update"
                )
                continue
            with open(fresh_path) as fh:
                fresh = json.load(fh)
            problems = update_guard(name, fresh)
            if problems:
                failures.extend(problems)
                continue
            baseline_path = os.path.join(args.baseline_dir, name)
            if os.path.exists(baseline_path):
                # Informational trajectory print only: an update is a
                # deliberate re-record, so a regression here must not
                # fail the job — the table just makes it visible.
                with open(baseline_path) as fh:
                    outgoing = json.load(fh)
                print(f"  {name}: change vs outgoing baseline:")
                compare_file(name, outgoing, fresh, float("inf"), True)
            with open(baseline_path, "w") as fh:
                json.dump(fresh, fh, indent=2)
                fh.write("\n")
            print(f"  {name}: baseline updated from {fresh_path}")
            updated += 1
        if failures:
            print("\nbaseline update FAILED:", file=sys.stderr)
            for failure in failures:
                print(f"  - {failure}", file=sys.stderr)
            return 1
        print(f"\nupdated {updated} benchmark baselines")
        return 0

    failures: List[str] = []
    compared = 0
    for name in names:
        baseline_path = os.path.join(args.baseline_dir, name)
        fresh_path = os.path.join(args.fresh_dir, name)
        if not os.path.exists(baseline_path):
            failures.append(f"missing committed baseline {baseline_path}")
            continue
        if not os.path.exists(fresh_path):
            failures.append(
                f"missing fresh result {fresh_path} — run the benchmark "
                f"with REPRO_BENCH_*_JSON={name}"
            )
            continue
        with open(baseline_path) as fh:
            baseline = json.load(fh)
        with open(fresh_path) as fh:
            fresh = json.load(fh)
        failures.extend(
            compare_file(name, baseline, fresh, args.max_regression, args.absolute)
        )
        compared += 1
    if failures:
        print("\nbenchmark baseline comparison FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"\nall {compared} benchmark baselines within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Experiment E9: the Section 5 message-complexity table, reproduced.

The paper's only table compares five rows of L1-tracking message
complexity.  We reproduce it two ways:

1. *closed forms at paper scale* — evaluating each row's formula at
   large (k, W) shows the orderings the paper claims (this work beats
   [23] and [14]+folklore once k >= 1/eps^2, and meets its own lower
   bound up to log factors);
2. *measured at simulator scale* — all three upper-bound protocols run
   on identical streams; the k-scaling separation (our k/log k epoch
   term vs the baselines' k and k/eps site terms) is visible as a much
   flatter growth in k for this work.
"""

from __future__ import annotations

from repro.analysis import bounds, format_table
from repro.l1 import DeterministicCounterTracker, HyzStyleTracker, L1Tracker
from repro.stream import round_robin, unit_stream

DELTA = 0.25
N = 30000


def test_section5_table_closed_forms(benchmark, report):
    """The table rows evaluated at paper-scale parameters."""

    def run():
        rows = []
        for k, eps in ((10**4, 0.1), (10**6, 0.01)):
            w = 1e12
            rows.append(
                {
                    "k": k,
                    "eps": eps,
                    "[14]+folklore O(k logW / eps)": bounds.l1_upper_cmyz_folklore(
                        k, eps, w
                    ),
                    "[23] O(k logW + sqrt(k) logW/eps)": bounds.l1_upper_hyz(
                        k, eps, DELTA, w
                    ),
                    "this work O(k logW/log k + logW/eps^2)": bounds.l1_upper_this_work(
                        k, eps, DELTA, w
                    ),
                    "[23] lower": bounds.l1_lower_hyz(k, eps, w),
                    "this work lower": bounds.l1_lower_this_work(k, w),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        format_table(
            rows,
            title="E9a (Section 5 table): closed forms at paper scale (W=1e12)",
            caption="for k >= 1/eps^2 this work's upper bound is smallest "
            "and within log factors of its lower bound",
        )
    )
    for row in rows:
        ours = row["this work O(k logW/log k + logW/eps^2)"]
        assert ours < row["[14]+folklore O(k logW / eps)"]
        assert ours < row["[23] O(k logW + sqrt(k) logW/eps)"]
        assert ours >= row["this work lower"] * 0.9


def test_section5_table_measured(benchmark, report):
    """Measured messages for the three upper-bound trackers, sweeping k."""

    def run():
        eps = 0.25
        rows = []
        for k in (16, 64, 256):
            stream = round_robin(unit_stream(N), k)
            det = DeterministicCounterTracker(k, eps)
            c_det = det.run(round_robin(unit_stream(N), k))
            hyz = HyzStyleTracker(k, eps, seed=k)
            c_hyz = hyz.run(round_robin(unit_stream(N), k))
            ours = L1Tracker(k, eps=eps, delta=DELTA, seed=k + 1)
            c_ours = ours.run(stream)
            rows.append(
                {
                    "k": k,
                    "eps": eps,
                    "det_[14]": c_det.total,
                    "hyz_[23]": c_hyz.total,
                    "this_work": c_ours.total,
                    "ours_bound": bounds.l1_upper_this_work(
                        k, eps, DELTA, float(N)
                    ),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    # Growth factors across the 16x sweep in k.
    det_growth = rows[-1]["det_[14]"] / rows[0]["det_[14]"]
    ours_growth = rows[-1]["this_work"] / rows[0]["this_work"]
    for row in rows:
        row["det_growth"] = row["det_[14]"] / rows[0]["det_[14]"]
        row["ours_growth"] = row["this_work"] / rows[0]["this_work"]
    report(
        format_table(
            rows,
            title="E9b (Section 5 table): measured messages, unit stream, eps=0.25",
            caption="sweeping k 16x: the baselines' k-linear site terms grow "
            "~16x while this work's k-dependence is only the k/log k epoch "
            "broadcasts on top of a k-independent eps^-2 term",
        )
    )
    assert ours_growth < det_growth, (
        "this work's message growth in k must be flatter than the "
        "deterministic baseline's"
    )

"""Engine benchmark: reference vs batched runtime on weighted SWOR.

The tentpole claim of the runtime refactor: the protocol does O(1) work
per arrival, so the reference driver's ~6 Python calls of interpreter
dispatch per item are pure overhead — the batched engine's vectorized
bulk path must deliver **>= 3x** items/sec on a 200k-item / 32-site run
while its bounded-staleness control propagation costs **<= 1.5x** the
reference engine's messages on the same seeds.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_engines.py -q

(add ``--benchmark-only`` alongside the rest of the suite).

Environment knobs (used by the CI smoke job):

* ``REPRO_BENCH_ENG_ITEMS``       — stream length (default 200000)
* ``REPRO_BENCH_ENG_SITES``       — number of sites (default 32)
* ``REPRO_BENCH_ENG_MIN_SPEEDUP`` — speedup gate (default 3.0)
* ``REPRO_BENCH_ENG_JSON``        — path to write the result as JSON
"""

from __future__ import annotations

import json
import os
import random
import time

from repro.analysis import format_table
from repro.core import DistributedWeightedSWOR, SworConfig
from repro.runtime import BatchedEngine
from repro.stream import round_robin, zipf_stream

ITEMS = int(os.environ.get("REPRO_BENCH_ENG_ITEMS", 200_000))
SITES = int(os.environ.get("REPRO_BENCH_ENG_SITES", 32))
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_ENG_MIN_SPEEDUP", 3.0))
JSON_PATH = os.environ.get("REPRO_BENCH_ENG_JSON")
SAMPLE = 16
SEEDS = (1, 2, 3)
REPS = 3  # timing repetitions per engine (best-of)


def _make_stream():
    rng = random.Random(0)
    return round_robin(zipf_stream(ITEMS, rng, alpha=1.2), SITES)


def _run_once(stream, seed, engine):
    proto = DistributedWeightedSWOR(
        SworConfig(num_sites=SITES, sample_size=SAMPLE),
        seed=seed,
        engine=engine,
    )
    t0 = time.perf_counter()
    counters = proto.run(stream)
    return time.perf_counter() - t0, counters.total


def _measure(stream, engine):
    """Best-of-REPS wall time plus per-seed message totals."""
    best = min(_run_once(stream, 1, engine)[0] for _ in range(REPS))
    messages = [_run_once(stream, seed, engine)[1] for seed in SEEDS]
    return best, messages


def _metrics_snapshot(stream):
    """One extra instrumented batched run, so the JSON artifact carries
    the run's full telemetry (the timed runs above stay pristine)."""
    from repro.obs import MetricsRegistry

    registry = MetricsRegistry()
    _run_once(stream, 1, BatchedEngine().instrument(registry))
    return registry.snapshot()


def _bench(report_fn):
    stream = _make_stream()
    ref_time, ref_msgs = _measure(stream, None)
    bat_time, bat_msgs = _measure(stream, BatchedEngine())
    speedup = ref_time / bat_time
    msg_ratio = max(b / r for b, r in zip(bat_msgs, ref_msgs))
    rows = [
        {
            "engine": "reference",
            "seconds": round(ref_time, 4),
            "items_per_sec": round(ITEMS / ref_time),
            "messages(seed1..3)": "/".join(map(str, ref_msgs)),
        },
        {
            "engine": "batched",
            "seconds": round(bat_time, 4),
            "items_per_sec": round(ITEMS / bat_time),
            "messages(seed1..3)": "/".join(map(str, bat_msgs)),
        },
    ]
    report_fn(
        format_table(
            rows,
            title=f"engine shoot-out: weighted SWOR, {ITEMS} items, "
            f"k={SITES}, s={SAMPLE}",
            caption=f"speedup {speedup:.2f}x (target >= {MIN_SPEEDUP}x), "
            f"worst message ratio {msg_ratio:.2f}x (target <= 1.5x)",
        )
    )
    if JSON_PATH:
        result = {
            "items": ITEMS,
            "sites": SITES,
            "sample_size": SAMPLE,
            "reference_seconds": round(ref_time, 4),
            "batched_seconds": round(bat_time, 4),
            "reference_items_per_sec": round(ITEMS / ref_time),
            "batched_items_per_sec": round(ITEMS / bat_time),
            "speedup": round(speedup, 3),
            "min_speedup": MIN_SPEEDUP,
            "worst_message_ratio": round(msg_ratio, 4),
            "metrics": _metrics_snapshot(stream),
        }
        with open(JSON_PATH, "w") as fh:
            json.dump(result, fh, indent=2)
    return speedup, msg_ratio


def test_batched_engine_speedup_and_message_overhead(benchmark, report):
    speedup, msg_ratio = benchmark.pedantic(
        lambda: _bench(report), rounds=1, iterations=1
    )
    assert speedup >= MIN_SPEEDUP, f"batched engine only {speedup:.2f}x faster"
    assert msg_ratio <= 1.5, f"batched engine message overhead {msg_ratio:.2f}x"


def test_batch_size_sweep(report):
    """Secondary diagnostic: throughput and message cost per batch size."""
    stream = _make_stream()
    rows = []
    for batch_size in (1, 256, 2048, 8192, 16384, 65536):
        engine = BatchedEngine(batch_size=batch_size)
        elapsed, total = _run_once(stream, 1, engine)
        rows.append(
            {
                "batch_size": batch_size,
                "items_per_sec": round(ITEMS / elapsed),
                "messages": total,
            }
        )
    report(
        format_table(
            rows,
            title="batched engine: batch-size sweep (200k items, k=32, s=16)",
            caption="batch_size=1 degenerates to the reference engine exactly",
        )
    )

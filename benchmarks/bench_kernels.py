"""Kernel-tier benchmark: the compiled fold vs numpy, with parity.

Two claims of the kernel tier (:mod:`repro.kernels`), measured where
they matter:

1. **Microbenchmark** — the fused SWOR coordinator fold
   (``swor_fold_regulars``: threshold mask + top-``s`` merge + kept-set
   selection in one pass) on steady-state packs.  With numba importable
   the compiled backend must be **>= 1.6x** the numpy backend after an
   explicit JIT warmup; numpy-only environments *skip the gate* —
   ``fold_speedup`` records ``1.0`` so the committed baseline is stable
   wherever numba is absent — but still assert **bit parity** of every
   runnable backend (numpy, the numba logic as plain Python, and numba
   itself when present) on the bench columns.
2. **End to end** — ``parent_fold_seconds`` (the pipelined sharded
   engine's serial fraction) on the 1M/64-style config, measured with
   ``kernels="numpy"`` and — when numba is importable — with
   ``kernels="numba"``, which must reduce it.  Samples and counters
   must be identical between the two, whatever the backend.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_kernels.py -q

Environment knobs (used by the CI smoke and nightly jobs):

* ``REPRO_BENCH_KERN_PACK``        — pack size per fold (default 4096)
* ``REPRO_BENCH_KERN_SAMPLE``      — sample size ``s`` (default 64)
* ``REPRO_BENCH_KERN_ROUNDS``      — distinct packs folded per timing
  rep (default 200)
* ``REPRO_BENCH_KERN_MIN_SPEEDUP`` — numba-vs-numpy gate (default 1.6;
  0 disables; automatically skipped when numba is absent)
* ``REPRO_BENCH_KERN_ITEMS``       — end-to-end stream length
  (default 1000000; 0 skips the end-to-end half)
* ``REPRO_BENCH_KERN_SITES``       — end-to-end sites (default 64)
* ``REPRO_BENCH_KERN_WORKERS``     — end-to-end workers (default 4)
* ``REPRO_BENCH_KERN_BATCH``       — end-to-end batch (default 262144)
* ``REPRO_BENCH_KERN_JSON``        — path to write the result as JSON
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.analysis import format_table
from repro.core import DistributedWeightedSWOR, SworConfig
from repro.kernels import numba_backend, numpy_backend
from repro.runtime import ShardedEngine
from repro.stream.columns import columnar_zipf_stream

PACK = int(os.environ.get("REPRO_BENCH_KERN_PACK", 4096))
SAMPLE = int(os.environ.get("REPRO_BENCH_KERN_SAMPLE", 64))
ROUNDS = int(os.environ.get("REPRO_BENCH_KERN_ROUNDS", 200))
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_KERN_MIN_SPEEDUP", 1.6))
ITEMS = int(os.environ.get("REPRO_BENCH_KERN_ITEMS", 1_000_000))
SITES = int(os.environ.get("REPRO_BENCH_KERN_SITES", 64))
WORKERS = int(os.environ.get("REPRO_BENCH_KERN_WORKERS", 4))
BATCH = int(os.environ.get("REPRO_BENCH_KERN_BATCH", 262144))
JSON_PATH = os.environ.get("REPRO_BENCH_KERN_JSON")
REPS = 3  # timing repetitions (best-of)
SEED = 1

NUMBA = numba_backend.NUMBA_AVAILABLE
SPEEDUP_GATED = MIN_SPEEDUP > 0 and NUMBA


def _make_packs():
    """Steady-state fold inputs: a full sample set whose threshold
    rejects most of each pack, the regime the coordinator lives in
    after the first epochs."""
    rng = np.random.default_rng(0)
    threshold = 1.0
    old_keys = rng.uniform(1.0, 1.4, SAMPLE)
    packs = [rng.uniform(0.0, 1.2, PACK) for _ in range(ROUNDS)]
    return threshold, old_keys, packs


def _time_backend(fold, threshold, old_keys, packs):
    """Best-of-REPS wall seconds for folding every pack once."""
    best = None
    for _ in range(REPS):
        t0 = time.perf_counter()
        for keys in packs:
            fold(keys, threshold, old_keys, SAMPLE)
        elapsed = time.perf_counter() - t0
        best = elapsed if best is None else min(best, elapsed)
    return best


def _fold_outputs(fold, threshold, old_keys, keys):
    surv, kept, cut, at_cut = fold(keys, threshold, old_keys, SAMPLE)
    return (surv.tolist(), kept.tolist(), float(cut), int(at_cut))


def _parity(threshold, old_keys, packs):
    """Bit parity of every runnable backend on the bench columns (the
    numba module's loop logic runs as plain Python when numba is
    absent, so the seam is exercised everywhere)."""
    for keys in packs[: min(20, len(packs))]:
        want = _fold_outputs(
            numpy_backend.swor_fold_regulars, threshold, old_keys, keys
        )
        got = _fold_outputs(
            numba_backend.swor_fold_regulars, threshold, old_keys, keys
        )
        if got != want:
            return False
    return True


def _run_sharded(stream, kernels):
    engine = ShardedEngine(
        batch_size=BATCH, workers=WORKERS, pipeline="on", kernels=kernels
    )
    try:
        proto = DistributedWeightedSWOR(
            SworConfig(num_sites=SITES, sample_size=SAMPLE),
            seed=SEED,
            engine=engine,
        )
        proto.run(stream)  # warmup: pool spawn + kernel JIT
        proto = DistributedWeightedSWOR(
            SworConfig(num_sites=SITES, sample_size=SAMPLE),
            seed=SEED,
            engine=engine,
        )
        proto.run(stream)
        stats = dict(engine.last_run_stats)
    finally:
        engine.close()
    timing = stats.get("timing") or {}
    return (
        proto.sample_with_keys(),
        proto.counters.snapshot(),
        timing.get("parent_fold_seconds"),
        stats.get("mode"),
    )


def _bench(report_fn):
    threshold, old_keys, packs = _make_packs()
    if NUMBA:
        numba_backend.warmup()  # JIT-compile outside the timed region
    parity_identical = _parity(threshold, old_keys, packs)

    numpy_seconds = _time_backend(
        numpy_backend.swor_fold_regulars, threshold, old_keys, packs
    )
    numba_seconds = (
        _time_backend(
            numba_backend.swor_fold_regulars, threshold, old_keys, packs
        )
        if NUMBA
        else None
    )
    fold_speedup = numpy_seconds / numba_seconds if NUMBA else 1.0

    rows = [
        {
            "backend": "numpy",
            "seconds": round(numpy_seconds, 4),
            "folds_per_sec": round(ROUNDS / numpy_seconds),
        }
    ]
    if NUMBA:
        rows.append(
            {
                "backend": "numba",
                "seconds": round(numba_seconds, 4),
                "folds_per_sec": round(ROUNDS / numba_seconds),
            }
        )

    result = {
        "pack_size": PACK,
        "sample_size": SAMPLE,
        "rounds": ROUNDS,
        "numba_available": NUMBA,
        "numpy_seconds": round(numpy_seconds, 4),
        "numpy_folds_per_sec": round(ROUNDS / numpy_seconds),
        "fold_speedup": round(fold_speedup, 3),
        "min_speedup": MIN_SPEEDUP,
        "speedup_gated": SPEEDUP_GATED,
        "parity_identical": parity_identical,
    }
    if NUMBA:
        result["numba_seconds"] = round(numba_seconds, 4)
        result["numba_folds_per_sec"] = round(ROUNDS / numba_seconds)

    e2e_note = "end-to-end skipped (REPRO_BENCH_KERN_ITEMS=0)"
    if ITEMS > 0:
        stream = columnar_zipf_stream(ITEMS, SITES, seed=0, alpha=1.2)
        sample_np, counters_np, fold_np, mode_np = _run_sharded(
            stream, "numpy"
        )
        result.update(
            {
                "items": ITEMS,
                "sites": SITES,
                "workers": WORKERS,
                "batch_size": BATCH,
                "sharded_mode": mode_np,
                "parent_fold_seconds_numpy": (
                    None if fold_np is None else round(fold_np, 4)
                ),
            }
        )
        e2e_note = f"parent fold {fold_np:.3f}s (numpy)" if fold_np else ""
        if NUMBA:
            sample_nb, counters_nb, fold_nb, mode_nb = _run_sharded(
                stream, "numba"
            )
            result["parent_fold_seconds_numba"] = (
                None if fold_nb is None else round(fold_nb, 4)
            )
            result["e2e_samples_identical"] = sample_nb == sample_np
            result["e2e_counters_identical"] = counters_nb == counters_np
            if fold_np and fold_nb:
                result["parent_fold_ratio"] = round(fold_np / fold_nb, 3)
                e2e_note += (
                    f", {fold_nb:.3f}s (numba): "
                    f"{result['parent_fold_ratio']:.2f}x smaller serial "
                    "fraction"
                )

    gate_note = (
        f"fold speedup {fold_speedup:.2f}x (target >= {MIN_SPEEDUP}x)"
        if SPEEDUP_GATED
        else f"fold speedup gate SKIPPED "
        f"({'disabled' if NUMBA else 'numba not installed'}; "
        "parity still enforced)"
    )
    report_fn(
        format_table(
            rows,
            title=f"kernel tier: fused SWOR coordinator fold, "
            f"pack={PACK}, s={SAMPLE}, {ROUNDS} packs/rep (best of {REPS})",
            caption=f"{gate_note}; parity identical: {parity_identical}; "
            f"{e2e_note}",
        )
    )
    if JSON_PATH:
        with open(JSON_PATH, "w") as fh:
            json.dump(result, fh, indent=2)
    return result


def test_kernel_fold_speedup_and_parity(benchmark, report):
    result = benchmark.pedantic(lambda: _bench(report), rounds=1, iterations=1)
    assert result["parity_identical"], (
        "kernel backends diverged on the microbenchmark columns"
    )
    if ITEMS > 0:
        assert result["sharded_mode"] == "sharded", (
            f"sharded engine fell back in-process: {result['sharded_mode']}"
        )
    if ITEMS > 0 and NUMBA:
        assert result["e2e_samples_identical"], (
            "numba-kernel sharded samples diverged from the numpy kernels"
        )
        assert result["e2e_counters_identical"], (
            "numba-kernel sharded counters diverged from the numpy kernels"
        )
    if SPEEDUP_GATED:
        assert result["fold_speedup"] >= MIN_SPEEDUP, (
            f"compiled coordinator fold only {result['fold_speedup']:.2f}x "
            f"the numpy backend (target >= {MIN_SPEEDUP}x)"
        )
        if ITEMS > 0 and result.get("parent_fold_ratio") is not None:
            assert result["parent_fold_ratio"] > 1.0, (
                "compiled kernels did not reduce parent_fold_seconds "
                f"(ratio {result['parent_fold_ratio']:.2f}x)"
            )

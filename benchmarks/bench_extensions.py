"""Extension benchmarks: sliding-window SWOR space and cascade agreement.

Not paper experiments per se — they quantify the Section 6 extension
(sliding windows) and the [7] cascade oracle this reproduction adds:

* sliding-window candidate-set size should grow like ``s·log(n/s)``,
  not ``n`` (flat measured/bound ratio);
* cascade sampling and exponential-key sampling must agree (two
  independent implementations of Definition 1).
"""

from __future__ import annotations

import math
import random
from collections import Counter

from repro.analysis import format_table
from repro.centralized import WeightedReservoirSWOR
from repro.extensions import CascadeWeightedSWOR, SlidingWindowWeightedSWOR
from repro.stream import Item


def test_sliding_window_space(benchmark, report):
    def run():
        rows = []
        s = 16
        for n in (2000, 8000, 32000):
            sw = SlidingWindowWeightedSWOR(s, random.Random(n))
            rng = random.Random(n + 1)
            for i in range(n):
                sw.insert(Item(i, rng.uniform(1.0, 10.0)))
            bound = s * math.log(n / s)
            rows.append(
                {
                    "n": n,
                    "s": s,
                    "retained": sw.retained_count(),
                    "s*log(n/s)": bound,
                    "ratio": sw.retained_count() / bound,
                    "vs_buffering": sw.retained_count() / n,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        format_table(
            rows,
            title="Extension (Section 6): sliding-window SWOR candidate-set size",
            caption="retained candidates track s*log(n/s); buffering the "
            "window would cost n",
        )
    )
    ratios = [row["ratio"] for row in rows]
    assert max(ratios) / min(ratios) < 3.0
    assert rows[-1]["vs_buffering"] < 0.05


def test_cascade_vs_exponential_keys(benchmark, report):
    """Two independent Definition 1 implementations, one law."""
    weights = [1.0, 4.0, 9.0, 2.0, 16.0, 3.0]
    s, trials = 2, 5000

    def run():
        cascade_counts, es_counts = Counter(), Counter()
        for t in range(trials):
            cascade = CascadeWeightedSWOR(s, random.Random(t))
            es = WeightedReservoirSWOR(s, random.Random(t + 10**6))
            for i, w in enumerate(weights):
                item = Item(i, w)
                cascade.insert(item)
                es.insert(item)
            for item in cascade.sample():
                cascade_counts[item.ident] += 1
            for item in es.sample():
                es_counts[item.ident] += 1
        return cascade_counts, es_counts

    cascade_counts, es_counts = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        {
            "item": i,
            "weight": w,
            "cascade[7]": cascade_counts.get(i, 0) / trials,
            "exp_keys[18]": es_counts.get(i, 0) / trials,
        }
        for i, w in enumerate(weights)
    ]
    report(
        format_table(
            rows,
            title="Extension: cascade sampling [7] vs exponential keys [18]",
            caption=f"both implement Definition 1; trials={trials}",
        )
    )
    for row in rows:
        assert abs(row["cascade[7]"] - row["exp_keys[18]"]) < 0.035

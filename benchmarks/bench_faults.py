"""Fault-tolerance overhead gate: supervision must be ~free.

The tentpole claim of the sharded supervisor (see
``repro.runtime.sharded``): fault detection is piggybacked on the
transport the engine already uses — deadline-based waits instead of
blocking receives, per-window snapshots the lockstep protocol mostly
takes anyway, wire validation the pack decoder already performs — so

1. **Overhead** — a fault-free sharded weighted-SWOR run with
   supervision **on** (the default) must cost **<= 2%** wall time over
   the identical run with supervision **off** (best-of-``REPS`` on
   both sides, measured interleaved so clock drift hits both equally);
2. **Bit-parity** — samples AND message counters are identical with
   supervision on and off (the supervisor only *observes* until a
   fault actually fires);
3. **Recovery works** — a planned ``kill`` fault mid-run recovers at
   the window boundary and still yields the bit-identical sample
   (recorded as ``recovery_identical`` / ``recovery_seconds``).

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_faults.py -q

Environment knobs (used by the CI smoke job):

* ``REPRO_BENCH_FAULTS_ITEMS``        — stream length (default 200000)
* ``REPRO_BENCH_FAULTS_SITES``        — number of sites (default 16)
* ``REPRO_BENCH_FAULTS_WORKERS``      — worker processes (default 2)
* ``REPRO_BENCH_FAULTS_BATCH``        — batch size (default 32768)
* ``REPRO_BENCH_FAULTS_MAX_OVERHEAD`` — overhead gate (default 0.02)
* ``REPRO_BENCH_FAULTS_JSON``         — path to write the result JSON
"""

from __future__ import annotations

import json
import os
import random
import time

from repro.analysis import format_table
from repro.core import DistributedWeightedSWOR, SworConfig
from repro.runtime import ShardedEngine
from repro.stream import round_robin, zipf_stream

ITEMS = int(os.environ.get("REPRO_BENCH_FAULTS_ITEMS", 200_000))
SITES = int(os.environ.get("REPRO_BENCH_FAULTS_SITES", 16))
WORKERS = int(os.environ.get("REPRO_BENCH_FAULTS_WORKERS", 2))
BATCH = int(os.environ.get("REPRO_BENCH_FAULTS_BATCH", 32_768))
MAX_OVERHEAD = float(os.environ.get("REPRO_BENCH_FAULTS_MAX_OVERHEAD", 0.02))
JSON_PATH = os.environ.get("REPRO_BENCH_FAULTS_JSON")
SAMPLE = 16
SEED = 1
REPS = 7  # timing repetitions per side (best-of)


def _make_stream():
    rng = random.Random(0)
    return round_robin(zipf_stream(ITEMS, rng, alpha=1.2), SITES)


def _run_once(stream, engine):
    proto = DistributedWeightedSWOR(
        SworConfig(num_sites=SITES, sample_size=SAMPLE),
        seed=SEED,
        engine=engine,
    )
    t0 = time.perf_counter()
    proto.run(stream)
    return time.perf_counter() - t0, proto


def _fingerprint(proto):
    return (proto.sample_with_keys(), proto.counters.snapshot())


def _bench(report_fn):
    stream = _make_stream()
    # Lockstep isolates the supervision delta (always-snapshot +
    # deadline waits + heartbeats) from speculation noise; both engines
    # keep their worker pools warm across the interleaved repetitions.
    supervised = ShardedEngine(
        batch_size=BATCH, workers=WORKERS, pipeline="off", supervision="on"
    )
    unsupervised = ShardedEngine(
        batch_size=BATCH, workers=WORKERS, pipeline="off", supervision="off"
    )
    base_best = live_best = None
    base_proto = live_proto = None
    mode = None
    try:
        for _ in range(REPS):
            elapsed, proto = _run_once(stream, unsupervised)
            if base_best is None or elapsed < base_best:
                base_best, base_proto = elapsed, proto
            elapsed, proto = _run_once(stream, supervised)
            if live_best is None or elapsed < live_best:
                live_best, live_proto = elapsed, proto
        mode = supervised.last_run_stats.get("mode")
    finally:
        supervised.close()
        unsupervised.close()
    overhead = live_best / base_best - 1.0
    samples_identical = (
        base_proto.sample_with_keys() == live_proto.sample_with_keys()
    )
    counters_identical = (
        base_proto.counters.snapshot() == live_proto.counters.snapshot()
    )

    # Recovery leg: a planned kill mid-run must recover bit-identically.
    chaos = ShardedEngine(
        batch_size=BATCH,
        workers=WORKERS,
        pipeline="off",
        fault_plan="kill:1:2",
        worker_timeout=30.0,
    )
    try:
        _, chaos_proto = _run_once(stream, chaos)
        chaos_stats = chaos.last_run_stats
    finally:
        chaos.close()
    recovery_identical = _fingerprint(chaos_proto) == _fingerprint(live_proto)
    recovery_seconds = chaos_stats.get("recovery_seconds", 0.0)

    rows = [
        {
            "supervision": "off",
            "seconds": round(base_best, 4),
            "items_per_sec": round(ITEMS / base_best),
        },
        {
            "supervision": "on (default)",
            "seconds": round(live_best, 4),
            "items_per_sec": round(ITEMS / live_best),
        },
    ]
    report_fn(
        format_table(
            rows,
            title=f"supervision overhead: sharded lockstep weighted SWOR, "
            f"{ITEMS} items, k={SITES}, s={SAMPLE}, {WORKERS} workers",
            caption=f"overhead {overhead * 100:+.2f}% (gate <= "
            f"{MAX_OVERHEAD * 100:.0f}%), samples identical: "
            f"{samples_identical}, counters identical: "
            f"{counters_identical}; kill recovery identical: "
            f"{recovery_identical} in {recovery_seconds:.3f}s "
            f"({chaos_stats.get('worker_restarts', 0)} restarts)",
        )
    )
    if JSON_PATH:
        result = {
            "items": ITEMS,
            "sites": SITES,
            "sample_size": SAMPLE,
            "workers": WORKERS,
            "batch_size": BATCH,
            "run_mode": mode,
            "unsupervised_seconds": round(base_best, 4),
            "supervised_seconds": round(live_best, 4),
            "supervised_items_per_sec": round(ITEMS / live_best),
            "overhead": round(overhead, 4),
            "max_overhead": MAX_OVERHEAD,
            # Higher is better (~1.0): the gated cross-machine ratio.
            "supervision_ratio": round(base_best / live_best, 4),
            "samples_identical": samples_identical,
            "counters_identical": counters_identical,
            "recovery_identical": recovery_identical,
            "recovery_seconds": round(recovery_seconds, 4),
            "recovery_restarts": chaos_stats.get("worker_restarts", 0),
        }
        with open(JSON_PATH, "w") as fh:
            json.dump(result, fh, indent=2)
    return (
        overhead,
        mode,
        samples_identical and counters_identical,
        recovery_identical,
    )


def test_supervision_overhead_and_recovery(benchmark, report):
    overhead, mode, parity, recovery_identical = benchmark.pedantic(
        lambda: _bench(report), rounds=1, iterations=1
    )
    assert mode == "sharded", f"supervised run fell back (mode {mode!r})"
    assert parity, "supervision changed the sample or the counters"
    assert recovery_identical, "kill recovery was not bit-identical"
    assert overhead <= MAX_OVERHEAD, (
        f"supervision overhead {overhead * 100:.2f}% exceeds "
        f"{MAX_OVERHEAD * 100:.0f}% gate"
    )

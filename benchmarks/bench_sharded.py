"""Sharded runtime benchmark: multiprocess site shards vs one process.

The tentpole claims of the sharded engine, pinned at the multi-million-
item scale the ROADMAP's "saturate all cores" target demands:

1. **Throughput** — with at least 4 worker processes on a machine that
   has at least 4 cores, on a 5M-item / 64-site weighted-SWOR run the
   *pipelined* sharded engine must deliver **>= 3.2x** items/sec over
   the single-process columnar engine, and the strict-lockstep mode
   must hold the original **>= 2.5x** floor.  On machines with fewer
   cores than workers the speedup gates are *skipped* (process
   parallelism cannot exceed the hardware — the nightly job provides
   the multicore enforcement) but everything else still runs and is
   asserted.
2. **Bit-parity** — samples AND message counters identical to the
   columnar engine (same RNG draw order end to end, same word
   accounting) in BOTH pipeline modes, at **<= 1.0x** messages by
   construction; asserted on every run, whatever the core count.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_sharded.py -q

Environment knobs (used by the CI smoke and nightly jobs):

* ``REPRO_BENCH_SHARD_ITEMS``       — stream length (default 5000000)
* ``REPRO_BENCH_SHARD_SITES``       — number of sites (default 64)
* ``REPRO_BENCH_SHARD_WORKERS``     — worker processes (default 4)
* ``REPRO_BENCH_SHARD_BATCH``      — batch size for BOTH engines
  (default 262144: windows are the unit of worker round trips, so the
  sharded engine prefers them large; parity holds at any value)
* ``REPRO_BENCH_SHARD_MIN_SPEEDUP`` — lockstep speedup floor
  (default 2.5; 0 disables both speedup gates explicitly)
* ``REPRO_BENCH_SHARD_MIN_SPEEDUP_PIPELINED`` — pipelined speedup gate
  (default 3.2)
* ``REPRO_BENCH_SHARD_MAX_MSG_RATIO`` — message envelope (default 1.0)
* ``REPRO_BENCH_SHARD_SWEEP``       — comma-separated worker counts to
  additionally measure for the README table (e.g. ``1,2,4,8``; each
  measured in both pipeline modes; off by default)
* ``REPRO_BENCH_SHARD_JSON``        — path to write the result as JSON
"""

from __future__ import annotations

import json
import os
import time

from repro.analysis import format_table
from repro.core import DistributedWeightedSWOR, SworConfig
from repro.runtime import ColumnarEngine, ShardedEngine
from repro.stream.columns import columnar_zipf_stream

ITEMS = int(os.environ.get("REPRO_BENCH_SHARD_ITEMS", 5_000_000))
SITES = int(os.environ.get("REPRO_BENCH_SHARD_SITES", 64))
WORKERS = int(os.environ.get("REPRO_BENCH_SHARD_WORKERS", 4))
BATCH = int(os.environ.get("REPRO_BENCH_SHARD_BATCH", 262144))
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_SHARD_MIN_SPEEDUP", 2.5))
MIN_SPEEDUP_PIPELINED = float(
    os.environ.get("REPRO_BENCH_SHARD_MIN_SPEEDUP_PIPELINED", 3.2)
)
MAX_MSG_RATIO = float(os.environ.get("REPRO_BENCH_SHARD_MAX_MSG_RATIO", 1.0))
SWEEP = os.environ.get("REPRO_BENCH_SHARD_SWEEP", "")
JSON_PATH = os.environ.get("REPRO_BENCH_SHARD_JSON")
SAMPLE = 16
SEED = 1
REPS = 2  # timing repetitions per engine (best-of)

#: The speedup gates only bind when the hardware can actually run the
#: workers in parallel; the nightly full-scale job (4-core runners)
#: is the enforcing environment.
CPU_COUNT = os.cpu_count() or 1
SPEEDUP_GATED = MIN_SPEEDUP > 0 and CPU_COUNT >= WORKERS


def _make_stream():
    return columnar_zipf_stream(ITEMS, SITES, seed=0, alpha=1.2)


def _run_once(stream, engine):
    proto = DistributedWeightedSWOR(
        SworConfig(num_sites=SITES, sample_size=SAMPLE),
        seed=SEED,
        engine=engine,
    )
    t0 = time.perf_counter()
    proto.run(stream)
    return time.perf_counter() - t0, proto


def _measure(stream, engine):
    """Best-of-REPS timing with one engine instance.

    An explicit warmup run precedes the timed loop: for the sharded
    engine it spawns the persistent worker pool, and when the compiled
    kernel tier is active it pays the first-call JIT compilation — so
    best-of measures steady-state (warm-pool, warm-kernel) throughput,
    the regime a long-lived engine actually runs in.
    """
    _run_once(stream, engine)  # warmup: pool spawn + kernel JIT
    best = None
    for _ in range(REPS):
        elapsed, proto = _run_once(stream, engine)
        if best is None or elapsed < best[0]:
            best = (elapsed, proto)
    return best


def _bench(report_fn):
    stream = _make_stream()
    col_time, col_proto = _measure(stream, ColumnarEngine(batch_size=BATCH))
    lockstep_engine = ShardedEngine(
        batch_size=BATCH, workers=WORKERS, pipeline="off"
    )
    pipelined_engine = ShardedEngine(
        batch_size=BATCH, workers=WORKERS, pipeline="on"
    )
    try:
        lock_time, lock_proto = _measure(stream, lockstep_engine)
        lock_stats = dict(lockstep_engine.last_run_stats)
        pipe_time, pipe_proto = _measure(stream, pipelined_engine)
        pipe_stats = dict(pipelined_engine.last_run_stats)
        metrics = None
        if JSON_PATH:
            # One extra instrumented run on the warm pipelined pool so
            # the JSON artifact embeds the run's full telemetry; the
            # timed runs above stay pristine.
            from repro.obs import MetricsRegistry

            registry = MetricsRegistry()
            pipelined_engine.instrument(registry)
            try:
                _run_once(stream, pipelined_engine)
            finally:
                pipelined_engine.instrument(None)
            metrics = registry.snapshot()
        return _finish(
            report_fn,
            stream,
            col_time,
            col_proto,
            (lock_time, lock_proto, lock_stats),
            (pipe_time, pipe_proto, pipe_stats),
            metrics,
        )
    finally:
        lockstep_engine.close()
        pipelined_engine.close()


def _parity(col_proto, proto):
    return (
        col_proto.sample_with_keys() == proto.sample_with_keys(),
        col_proto.counters.snapshot() == proto.counters.snapshot(),
    )


def _finish(
    report_fn, stream, col_time, col_proto, lockstep, pipelined, metrics=None
):
    lock_time, lock_proto, lock_stats = lockstep
    pipe_time, pipe_proto, pipe_stats = pipelined
    speedup = col_time / pipe_time
    lockstep_speedup = col_time / lock_time
    samples_identical, counters_identical = _parity(col_proto, pipe_proto)
    lock_samples_identical, lock_counters_identical = _parity(
        col_proto, lock_proto
    )
    messages_ratio = pipe_proto.counters.total / col_proto.counters.total

    rows = [
        {
            "engine": "columnar (1 process)",
            "seconds": round(col_time, 4),
            "items_per_sec": round(ITEMS / col_time),
        },
        {
            "engine": f"sharded lockstep ({WORKERS} workers)",
            "seconds": round(lock_time, 4),
            "items_per_sec": round(ITEMS / lock_time),
        },
        {
            "engine": f"sharded pipelined ({WORKERS} workers)",
            "seconds": round(pipe_time, 4),
            "items_per_sec": round(ITEMS / pipe_time),
        },
    ]
    sweep_rows = []
    if SWEEP:
        for w in [int(x) for x in SWEEP.split(",") if x.strip()]:
            for mode in ("off", "on"):
                engine = ShardedEngine(
                    batch_size=BATCH, workers=w, pipeline=mode
                )
                try:
                    _run_once(stream, engine)  # warm the pool
                    t, _proto = _run_once(stream, engine)
                finally:
                    engine.close()
                sweep_rows.append(
                    {
                        "engine": f"sharded ({w} workers, pipeline {mode})",
                        "seconds": round(t, 4),
                        "items_per_sec": round(ITEMS / t),
                        "speedup_vs_columnar": round(col_time / t, 2),
                        "mode": engine.last_run_stats.get("mode"),
                    }
                )
    speculation = pipe_stats.get("speculation") or {}
    result = {
        "items": ITEMS,
        "sites": SITES,
        "sample_size": SAMPLE,
        "workers": WORKERS,
        "batch_size": BATCH,
        "cpu_count": CPU_COUNT,
        "columnar_seconds": round(col_time, 4),
        "lockstep_seconds": round(lock_time, 4),
        "sharded_seconds": round(pipe_time, 4),
        "columnar_items_per_sec": round(ITEMS / col_time),
        "lockstep_items_per_sec": round(ITEMS / lock_time),
        "sharded_items_per_sec": round(ITEMS / pipe_time),
        "speedup": round(speedup, 3),
        "lockstep_speedup": round(lockstep_speedup, 3),
        "min_speedup": MIN_SPEEDUP,
        "min_speedup_pipelined": MIN_SPEEDUP_PIPELINED,
        "speedup_gated": SPEEDUP_GATED,
        "samples_identical": samples_identical,
        "counters_identical": counters_identical,
        "lockstep_samples_identical": lock_samples_identical,
        "lockstep_counters_identical": lock_counters_identical,
        "messages_total": pipe_proto.counters.total,
        "messages_ratio": round(messages_ratio, 6),
        "max_messages_ratio": MAX_MSG_RATIO,
        "mode": pipe_stats.get("mode"),
        "lockstep_mode": lock_stats.get("mode"),
        "warm_pool": pipe_stats.get("warm_pool"),
        "transport": pipe_stats.get("transport"),
        "rollbacks": pipe_stats.get("rollbacks"),
        "windows": pipe_stats.get("windows"),
        "speculation_hits": speculation.get("hits"),
        "speculation_misses": speculation.get("misses"),
        "unordered_folds": pipe_stats.get("unordered_folds"),
        "ordered_refolds": pipe_stats.get("ordered_refolds"),
    }
    gate_note = (
        f"pipelined {speedup:.2f}x (target >= {MIN_SPEEDUP_PIPELINED}x), "
        f"lockstep {lockstep_speedup:.2f}x (floor >= {MIN_SPEEDUP}x)"
        if SPEEDUP_GATED
        else f"pipelined {speedup:.2f}x / lockstep {lockstep_speedup:.2f}x "
        f"(gates SKIPPED: {CPU_COUNT} cores < {WORKERS} workers — parity "
        "still enforced)"
    )
    report_fn(
        format_table(
            rows + sweep_rows,
            title=f"sharded runtime: weighted SWOR, {ITEMS} items, "
            f"k={SITES}, s={SAMPLE}, batch={BATCH}",
            caption=f"{gate_note}; samples identical: {samples_identical}"
            f"/{lock_samples_identical} (pipelined/lockstep), counters "
            f"identical: {counters_identical}/{lock_counters_identical}, "
            f"messages ratio {messages_ratio:.3f} (cap {MAX_MSG_RATIO}); "
            f"rollbacks={result['rollbacks']}, speculation "
            f"{result['speculation_hits']}/{result['speculation_misses']} "
            f"hit/miss over {result['windows']} windows, "
            f"transport={result['transport']}",
        )
    )
    if JSON_PATH:
        if metrics is not None:
            result["metrics"] = metrics
        with open(JSON_PATH, "w") as fh:
            json.dump(result, fh, indent=2)
    return result


def test_sharded_speedup_and_parity(benchmark, report):
    result = benchmark.pedantic(lambda: _bench(report), rounds=1, iterations=1)
    assert result["mode"] == "sharded", (
        f"pipelined sharded engine fell back in-process: {result['mode']}"
    )
    assert result["lockstep_mode"] == "sharded", (
        f"lockstep sharded engine fell back in-process: "
        f"{result['lockstep_mode']}"
    )
    assert result["samples_identical"], (
        "pipelined sharded samples diverged from the columnar engine"
    )
    assert result["counters_identical"], (
        "pipelined sharded message counters diverged from the columnar engine"
    )
    assert result["lockstep_samples_identical"], (
        "lockstep sharded samples diverged from the columnar engine"
    )
    assert result["lockstep_counters_identical"], (
        "lockstep sharded message counters diverged from the columnar engine"
    )
    assert result["messages_ratio"] <= MAX_MSG_RATIO, (
        f"sharded engine sent {result['messages_ratio']:.3f}x the columnar "
        f"engine's messages (cap {MAX_MSG_RATIO}x)"
    )
    if SPEEDUP_GATED:
        assert result["speedup"] >= MIN_SPEEDUP_PIPELINED, (
            f"pipelined sharded engine only {result['speedup']:.2f}x faster "
            f"than columnar at {WORKERS} workers "
            f"(target >= {MIN_SPEEDUP_PIPELINED}x)"
        )
        assert result["lockstep_speedup"] >= MIN_SPEEDUP, (
            f"lockstep sharded engine only {result['lockstep_speedup']:.2f}x "
            f"faster than columnar at {WORKERS} workers "
            f"(floor >= {MIN_SPEEDUP}x)"
        )

"""Experiment E12: resource optimality (Propositions 6 and 7).

Measures the three resource claims of Theorem 3:

* each site's persistent state is O(1) machine words, independent of
  the stream length and of s;
* the coordinator's state is O(s) words;
* site-side exponentials resolve threshold comparisons with O(1)
  expected bits (Proposition 7) — measured with the bit-lazy generator.
"""

from __future__ import annotations

import random

from repro.analysis import format_table
from repro.core import DistributedWeightedSWOR, SworConfig
from repro.stream import round_robin, zipf_stream

K = 16


def test_state_words_and_bits(benchmark, report):
    def run():
        rows = []
        for s in (8, 32, 128):
            rng = random.Random(s)
            items = zipf_stream(20000, rng, alpha=1.3)
            proto = DistributedWeightedSWOR(
                SworConfig(num_sites=K, sample_size=s, count_bits=True),
                seed=s,
            )
            proto.run(round_robin(items, K))
            rep = proto.resource_report()
            rows.append(
                {
                    "s": s,
                    "site_words_max": rep["site_state_words_max"],
                    "coord_words": rep["coordinator_state_words"],
                    "coord_words/s": rep["coordinator_state_words"] / s,
                    "exponentials": rep["exponentials_generated"],
                    "bits/exponential": rep["mean_bits_per_exponential"],
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        format_table(
            rows,
            title="E12 (Propositions 6-7): space and bit complexity",
            caption="site words O(1); coordinator words O(s) (flat "
            "coord_words/s); bits/exponential O(1) as W grows",
        )
    )
    for row in rows:
        assert row["site_words_max"] <= 4
        assert row["coord_words/s"] <= 10
    # Bits per comparison stay bounded regardless of s.
    assert max(row["bits/exponential"] for row in rows) < 24

"""Columnar runtime benchmark: zero-object fast path vs batched engine.

The tentpole claims of the columnar runtime, pinned at the million-item
scale the ROADMAP's north star demands:

1. **Throughput** — the columnar engine must deliver **>= 2.5x**
   items/sec over the PR-1 batched engine on a 1M-item / 64-site
   weighted-SWOR run, with **bit-identical** samples *and* message
   counters (same RNG draw order, same word accounting — the fast path
   buys speed, never different answers).
2. **Memory** — building a million-item stream as a
   :class:`~repro.stream.columns.ColumnarStream` (chunked generation,
   no ``Item`` list ever materialized) must peak at **>= 4x less**
   memory (tracemalloc) than the ``Item``-list construction of an
   equivalent :class:`~repro.stream.item.DistributedStream`.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_columnar.py -q

Environment knobs (used by the CI smoke job):

* ``REPRO_BENCH_COL_ITEMS``        — stream length (default 1000000)
* ``REPRO_BENCH_COL_SITES``        — number of sites (default 64)
* ``REPRO_BENCH_COL_MIN_SPEEDUP``  — speedup gate (default 2.5)
* ``REPRO_BENCH_COL_MIN_MEM_RATIO``— memory-ratio gate (default 4.0)
* ``REPRO_BENCH_COL_JSON``         — path to write the result as JSON
"""

from __future__ import annotations

import json
import os
import random
import time
import tracemalloc

from repro.analysis import format_table
from repro.core import DistributedWeightedSWOR, SworConfig
from repro.stream import round_robin, zipf_stream
from repro.stream.columns import ColumnarStream, columnar_zipf_stream

ITEMS = int(os.environ.get("REPRO_BENCH_COL_ITEMS", 1_000_000))
SITES = int(os.environ.get("REPRO_BENCH_COL_SITES", 64))
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_COL_MIN_SPEEDUP", 2.5))
MIN_MEM_RATIO = float(os.environ.get("REPRO_BENCH_COL_MIN_MEM_RATIO", 4.0))
JSON_PATH = os.environ.get("REPRO_BENCH_COL_JSON")
SAMPLE = 16
SEED = 1
REPS = 3  # timing repetitions per engine (best-of)


def _make_stream():
    rng = random.Random(0)
    stream = round_robin(zipf_stream(ITEMS, rng, alpha=1.2), SITES)
    stream.arrays()  # build the SoA cache outside the timed regions
    return stream


def _run_once(stream, engine):
    proto = DistributedWeightedSWOR(
        SworConfig(num_sites=SITES, sample_size=SAMPLE),
        seed=SEED,
        engine=engine,
    )
    t0 = time.perf_counter()
    proto.run(stream)
    return time.perf_counter() - t0, proto


def _measure(stream, engine):
    best_time, proto = min(
        (_run_once(stream, engine) for _ in range(REPS)),
        key=lambda pair: pair[0],
    )
    return best_time, proto


def _measure_memory():
    """Peak tracemalloc bytes: Item-list construction vs chunked columns."""
    tracemalloc.start()
    items = zipf_stream(ITEMS, random.Random(0), alpha=1.2)
    stream = round_robin(items, SITES)
    object_peak = tracemalloc.get_traced_memory()[1]
    tracemalloc.stop()
    del items, stream
    tracemalloc.start()
    columnar = columnar_zipf_stream(ITEMS, SITES, seed=0, alpha=1.2)
    columnar_peak = tracemalloc.get_traced_memory()[1]
    tracemalloc.stop()
    del columnar
    return object_peak, columnar_peak


def _bench(report_fn):
    stream = _make_stream()
    bat_time, bat_proto = _measure(stream, "batched")
    col_time, col_proto = _measure(stream, "columnar")
    # End-to-end zero-object: the same run off a ColumnarStream (lazy
    # Item view only touched by scalar fallbacks) must agree too.
    cs = ColumnarStream.from_distributed(stream)
    cs_time, cs_proto = _measure(cs, "columnar")

    speedup = bat_time / col_time
    samples_identical = (
        bat_proto.sample_with_keys()
        == col_proto.sample_with_keys()
        == cs_proto.sample_with_keys()
    )
    counters_identical = (
        bat_proto.counters.snapshot()
        == col_proto.counters.snapshot()
        == cs_proto.counters.snapshot()
    )
    object_peak, columnar_peak = _measure_memory()
    mem_ratio = object_peak / columnar_peak

    rows = [
        {
            "engine": "batched",
            "seconds": round(bat_time, 4),
            "items_per_sec": round(ITEMS / bat_time),
        },
        {
            "engine": "columnar (DistributedStream)",
            "seconds": round(col_time, 4),
            "items_per_sec": round(ITEMS / col_time),
        },
        {
            "engine": "columnar (ColumnarStream)",
            "seconds": round(cs_time, 4),
            "items_per_sec": round(ITEMS / cs_time),
        },
    ]
    result = {
        "items": ITEMS,
        "sites": SITES,
        "sample_size": SAMPLE,
        "batched_seconds": round(bat_time, 4),
        "columnar_seconds": round(col_time, 4),
        "columnar_stream_seconds": round(cs_time, 4),
        "batched_items_per_sec": round(ITEMS / bat_time),
        "columnar_items_per_sec": round(ITEMS / col_time),
        "speedup": round(speedup, 3),
        "min_speedup": MIN_SPEEDUP,
        "samples_identical": samples_identical,
        "counters_identical": counters_identical,
        "object_construction_peak_bytes": object_peak,
        "columnar_construction_peak_bytes": columnar_peak,
        "memory_ratio": round(mem_ratio, 3),
        "min_memory_ratio": MIN_MEM_RATIO,
        "messages_total": bat_proto.counters.total,
    }
    report_fn(
        format_table(
            rows,
            title=f"columnar runtime: weighted SWOR, {ITEMS} items, "
            f"k={SITES}, s={SAMPLE}",
            caption=f"speedup {speedup:.2f}x (target >= {MIN_SPEEDUP}x), "
            f"samples identical: {samples_identical}, counters identical: "
            f"{counters_identical}; stream construction peak "
            f"{object_peak / 1e6:.1f} MB (objects) vs "
            f"{columnar_peak / 1e6:.1f} MB (columns) = {mem_ratio:.2f}x "
            f"(target >= {MIN_MEM_RATIO}x)",
        )
    )
    if JSON_PATH:
        with open(JSON_PATH, "w") as fh:
            json.dump(result, fh, indent=2)
    return result


def test_columnar_speedup_and_parity(benchmark, report):
    result = benchmark.pedantic(lambda: _bench(report), rounds=1, iterations=1)
    assert result["samples_identical"], (
        "columnar samples diverged from the batched engine"
    )
    assert result["counters_identical"], (
        "columnar message counters diverged from the batched engine"
    )
    assert result["speedup"] >= MIN_SPEEDUP, (
        f"columnar engine only {result['speedup']:.2f}x faster than batched "
        f"(target >= {MIN_SPEEDUP}x)"
    )
    assert result["memory_ratio"] >= MIN_MEM_RATIO, (
        f"columnar construction only {result['memory_ratio']:.2f}x lighter "
        f"than the Item list (target >= {MIN_MEM_RATIO}x)"
    )

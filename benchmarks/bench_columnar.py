"""Columnar runtime benchmark: zero-object fast path vs batched engine.

The tentpole claims of the columnar runtime, pinned at the million-item
scale the ROADMAP's north star demands:

1. **Throughput** — the columnar engine must deliver **>= 2.5x**
   items/sec over the PR-1 batched engine on a 1M-item / 64-site
   weighted-SWOR run, with **bit-identical** samples *and* message
   counters (same RNG draw order, same word accounting — the fast path
   buys speed, never different answers).
2. **Memory** — building a million-item stream as a
   :class:`~repro.stream.columns.ColumnarStream` (chunked generation,
   no ``Item`` list ever materialized) must peak at **>= 4x less**
   memory (tracemalloc) than the ``Item``-list construction of an
   equivalent :class:`~repro.stream.item.DistributedStream`.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_columnar.py -q

A second case (``test_columnar_protocol_coverage``) pins the PR-4
claim: **every** protocol — SWR, unweighted SWOR, the L1 tracker, the
residual heavy-hitter tracker, and the sliding-window sampler — now has
a native columnar path that is **>= 2x** items/sec over the per-item
path those protocols ran before gaining bulk hooks (the default
``on_item`` loop under the batched engine; per-item ``insert`` for the
sliding window), while staying **bit-identical** in samples and message
counters to the batched engine (which shares the same vectorized draw
helpers — the honest comparator for the *columnar* gain is therefore
the per-item path, reconstructed by rebinding the default hooks).

Environment knobs (used by the CI smoke job):

* ``REPRO_BENCH_COL_ITEMS``        — stream length (default 1000000)
* ``REPRO_BENCH_COL_SITES``        — number of sites (default 64)
* ``REPRO_BENCH_COL_MIN_SPEEDUP``  — speedup gate (default 2.5)
* ``REPRO_BENCH_COL_MIN_MEM_RATIO``— memory-ratio gate (default 4.0)
* ``REPRO_BENCH_COL_JSON``         — path to write the result as JSON
* ``REPRO_BENCH_COLP_MIN_SPEEDUP`` — per-protocol columnar-vs-per-item
  gate (default 2.0)
* ``REPRO_BENCH_COLP_HH_MIN_SPEEDUP`` — the residual-HH gate (default
  1.5; its SWOR site was already vectorized before PR 4)
* ``REPRO_BENCH_COLP_JSON``        — protocol-coverage JSON path
"""

from __future__ import annotations

import json
import os
import random
import time
import tracemalloc
import types

from repro.analysis import format_table
from repro.core import DistributedUnweightedSWOR, DistributedWeightedSWOR, SworConfig
from repro.core.swr import DistributedWeightedSWR
from repro.extensions import SlidingWindowWeightedSWOR
from repro.heavy_hitters import ResidualHeavyHitterTracker
from repro.l1 import L1Tracker
from repro.runtime.interfaces import SiteAlgorithm
from repro.stream import Item, round_robin, zipf_stream
from repro.stream.columns import ColumnarStream, columnar_zipf_stream

ITEMS = int(os.environ.get("REPRO_BENCH_COL_ITEMS", 1_000_000))
SITES = int(os.environ.get("REPRO_BENCH_COL_SITES", 64))
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_COL_MIN_SPEEDUP", 2.5))
MIN_MEM_RATIO = float(os.environ.get("REPRO_BENCH_COL_MIN_MEM_RATIO", 4.0))
JSON_PATH = os.environ.get("REPRO_BENCH_COL_JSON")
MIN_PROTOCOL_SPEEDUP = float(os.environ.get("REPRO_BENCH_COLP_MIN_SPEEDUP", 2.0))
# The residual-HH tracker's SWOR site was already vectorized in PR 1
# and pack-native in PR 3, so its per-item reconstruction strips more
# history than for the protocols that first went columnar in PR 4 —
# the honest remaining margin is smaller and noisier; gate it lower.
MIN_HH_SPEEDUP = float(
    os.environ.get(
        "REPRO_BENCH_COLP_HH_MIN_SPEEDUP", min(1.5, MIN_PROTOCOL_SPEEDUP)
    )
)
PROTOCOL_JSON_PATH = os.environ.get("REPRO_BENCH_COLP_JSON")
SAMPLE = 16
SEED = 1
REPS = 3  # timing repetitions per engine (best-of)


def _make_stream():
    rng = random.Random(0)
    stream = round_robin(zipf_stream(ITEMS, rng, alpha=1.2), SITES)
    stream.arrays()  # build the SoA cache outside the timed regions
    return stream


def _run_once(stream, engine):
    proto = DistributedWeightedSWOR(
        SworConfig(num_sites=SITES, sample_size=SAMPLE),
        seed=SEED,
        engine=engine,
    )
    t0 = time.perf_counter()
    proto.run(stream)
    return time.perf_counter() - t0, proto


def _measure(stream, engine):
    best_time, proto = min(
        (_run_once(stream, engine) for _ in range(REPS)),
        key=lambda pair: pair[0],
    )
    return best_time, proto


def _measure_memory():
    """Peak tracemalloc bytes: Item-list construction vs chunked columns."""
    tracemalloc.start()
    items = zipf_stream(ITEMS, random.Random(0), alpha=1.2)
    stream = round_robin(items, SITES)
    object_peak = tracemalloc.get_traced_memory()[1]
    tracemalloc.stop()
    del items, stream
    tracemalloc.start()
    columnar = columnar_zipf_stream(ITEMS, SITES, seed=0, alpha=1.2)
    columnar_peak = tracemalloc.get_traced_memory()[1]
    tracemalloc.stop()
    del columnar
    return object_peak, columnar_peak


def _bench(report_fn):
    stream = _make_stream()
    bat_time, bat_proto = _measure(stream, "batched")
    col_time, col_proto = _measure(stream, "columnar")
    # End-to-end zero-object: the same run off a ColumnarStream (lazy
    # Item view only touched by scalar fallbacks) must agree too.
    cs = ColumnarStream.from_distributed(stream)
    cs_time, cs_proto = _measure(cs, "columnar")

    speedup = bat_time / col_time
    samples_identical = (
        bat_proto.sample_with_keys()
        == col_proto.sample_with_keys()
        == cs_proto.sample_with_keys()
    )
    counters_identical = (
        bat_proto.counters.snapshot()
        == col_proto.counters.snapshot()
        == cs_proto.counters.snapshot()
    )
    object_peak, columnar_peak = _measure_memory()
    mem_ratio = object_peak / columnar_peak

    rows = [
        {
            "engine": "batched",
            "seconds": round(bat_time, 4),
            "items_per_sec": round(ITEMS / bat_time),
        },
        {
            "engine": "columnar (DistributedStream)",
            "seconds": round(col_time, 4),
            "items_per_sec": round(ITEMS / col_time),
        },
        {
            "engine": "columnar (ColumnarStream)",
            "seconds": round(cs_time, 4),
            "items_per_sec": round(ITEMS / cs_time),
        },
    ]
    result = {
        "items": ITEMS,
        "sites": SITES,
        "sample_size": SAMPLE,
        "batched_seconds": round(bat_time, 4),
        "columnar_seconds": round(col_time, 4),
        "columnar_stream_seconds": round(cs_time, 4),
        "batched_items_per_sec": round(ITEMS / bat_time),
        "columnar_items_per_sec": round(ITEMS / col_time),
        "speedup": round(speedup, 3),
        "min_speedup": MIN_SPEEDUP,
        "samples_identical": samples_identical,
        "counters_identical": counters_identical,
        "object_construction_peak_bytes": object_peak,
        "columnar_construction_peak_bytes": columnar_peak,
        "memory_ratio": round(mem_ratio, 3),
        "min_memory_ratio": MIN_MEM_RATIO,
        "messages_total": bat_proto.counters.total,
    }
    report_fn(
        format_table(
            rows,
            title=f"columnar runtime: weighted SWOR, {ITEMS} items, "
            f"k={SITES}, s={SAMPLE}",
            caption=f"speedup {speedup:.2f}x (target >= {MIN_SPEEDUP}x), "
            f"samples identical: {samples_identical}, counters identical: "
            f"{counters_identical}; stream construction peak "
            f"{object_peak / 1e6:.1f} MB (objects) vs "
            f"{columnar_peak / 1e6:.1f} MB (columns) = {mem_ratio:.2f}x "
            f"(target >= {MIN_MEM_RATIO}x)",
        )
    )
    if JSON_PATH:
        with open(JSON_PATH, "w") as fh:
            json.dump(result, fh, indent=2)
    return result


def test_columnar_speedup_and_parity(benchmark, report):
    result = benchmark.pedantic(lambda: _bench(report), rounds=1, iterations=1)
    assert result["samples_identical"], (
        "columnar samples diverged from the batched engine"
    )
    assert result["counters_identical"], (
        "columnar message counters diverged from the batched engine"
    )
    assert result["speedup"] >= MIN_SPEEDUP, (
        f"columnar engine only {result['speedup']:.2f}x faster than batched "
        f"(target >= {MIN_SPEEDUP}x)"
    )
    assert result["memory_ratio"] >= MIN_MEM_RATIO, (
        f"columnar construction only {result['memory_ratio']:.2f}x lighter "
        f"than the Item list (target >= {MIN_MEM_RATIO}x)"
    )


# ---------------------------------------------------------------------------
# Protocol coverage: every subcommand's protocol on the columnar plane
# ---------------------------------------------------------------------------


def _force_per_item(instance):
    """Rebind the default per-item bulk hook on every site — the exact
    batched-engine behavior these protocols had before gaining native
    vectorized hooks (the honest baseline for the columnar gain)."""
    network = getattr(instance, "network", None)
    if network is None:
        network = instance.protocol.network  # tracker facades (HH)
    for site in network.sites:
        site.on_items = types.MethodType(SiteAlgorithm.on_items, site)
    return instance


def _time_run(build, stream, reps=1):
    best = None
    for _ in range(reps):
        instance = build()
        t0 = time.perf_counter()
        instance.run(stream)
        elapsed = time.perf_counter() - t0
        if best is None or elapsed < best[0]:
            best = (elapsed, instance)
    return best


def _protocol_cases():
    """(name, build(engine), fingerprint) per protocol; one shared
    zipf stream replayed by all of them."""

    def swr(engine):
        return DistributedWeightedSWR(SITES, SAMPLE, seed=SEED, engine=engine)

    def unweighted(engine):
        return DistributedUnweightedSWOR(SITES, SAMPLE, seed=SEED, engine=engine)

    def l1(engine):
        return L1Tracker(
            SITES, 0.1, seed=SEED, sample_size_override=64,
            duplication_override=32, engine=engine,
        )

    def hh(engine):
        return ResidualHeavyHitterTracker(SITES, 0.05, seed=SEED, engine=engine)

    def fp_swr(p):
        return (
            p.counters.snapshot(),
            tuple((i.ident, i.weight) if i else None for i in p.coordinator._slots),
        )

    def fp_unweighted(p):
        return p.counters.snapshot(), tuple(
            (i.ident, k) for i, k in p.sample_with_keys()
        )

    def fp_l1(t):
        return t.counters.snapshot(), t.estimate()

    def fp_hh(t):
        return t.counters.snapshot(), tuple(
            (i.ident, i.weight) for i in t.heavy_hitters()
        )

    return [
        ("swr", swr, fp_swr),
        ("unweighted", unweighted, fp_unweighted),
        ("l1", l1, fp_l1),
        ("hh", hh, fp_hh),
    ]


def _bench_protocols(report_fn):
    stream = _make_stream()
    columnar_stream = ColumnarStream.from_distributed(stream)
    rows = []
    result = {
        "items": ITEMS,
        "sites": SITES,
        "min_speedup": MIN_PROTOCOL_SPEEDUP,
    }
    all_parity = True
    for name, build, fingerprint in _protocol_cases():
        per_item_time, per_item_proto = _time_run(
            lambda: _force_per_item(build("batched")), stream, reps=REPS
        )
        batched_time, batched_proto = _time_run(
            lambda: build("batched"), stream, reps=REPS
        )
        columnar_time, columnar_proto = _time_run(
            lambda: build("columnar"), columnar_stream, reps=REPS
        )
        parity = fingerprint(batched_proto) == fingerprint(columnar_proto)
        all_parity = all_parity and parity
        speedup = per_item_time / columnar_time
        rows.append(
            {
                "protocol": name,
                "per_item_s": round(per_item_time, 3),
                "batched_s": round(batched_time, 3),
                "columnar_s": round(columnar_time, 3),
                "columnar_items_per_sec": round(ITEMS / columnar_time),
                "speedup_vs_per_item": round(speedup, 2),
                "vs_batched": round(batched_time / columnar_time, 2),
                "bit_identical": parity,
            }
        )
        result[f"{name}_speedup"] = round(speedup, 3)
        result[f"{name}_vs_batched"] = round(batched_time / columnar_time, 3)
        result[f"{name}_columnar_items_per_sec"] = round(ITEMS / columnar_time)
        result[f"{name}_bit_identical"] = parity

    # Sliding window: per-item insert() vs the chunked columnar path
    # (bit-identical by construction — same draws — asserted anyway).
    sw_items = max(1, ITEMS // 10)
    weights = columnar_stream.weights[:sw_items]
    idents = columnar_stream.idents[:sw_items]
    item_objs = [Item(int(e), float(w)) for e, w in zip(idents, weights)]
    sw_per_item_time = None
    for _ in range(REPS):
        per_item = SlidingWindowWeightedSWOR(SAMPLE, random.Random(SEED))
        t0 = time.perf_counter()
        for item in item_objs:
            per_item.insert(item)
        elapsed = time.perf_counter() - t0
        sw_per_item_time = (
            elapsed if sw_per_item_time is None else min(sw_per_item_time, elapsed)
        )
    sw_columnar_time = None
    for _ in range(REPS):
        chunked = SlidingWindowWeightedSWOR(SAMPLE, random.Random(SEED))
        t0 = time.perf_counter()
        chunked.insert_columns(idents, weights)
        elapsed = time.perf_counter() - t0
        sw_columnar_time = (
            elapsed if sw_columnar_time is None else min(sw_columnar_time, elapsed)
        )
    sw_parity = per_item.sample_with_keys() == chunked.sample_with_keys()
    all_parity = all_parity and sw_parity
    sw_speedup = sw_per_item_time / sw_columnar_time
    rows.append(
        {
            "protocol": f"sliding-window ({sw_items} items)",
            "per_item_s": round(sw_per_item_time, 3),
            "batched_s": None,
            "columnar_s": round(sw_columnar_time, 3),
            "columnar_items_per_sec": round(sw_items / sw_columnar_time),
            "speedup_vs_per_item": round(sw_speedup, 2),
            "vs_batched": None,
            "bit_identical": sw_parity,
        }
    )
    result["sliding_window_items"] = sw_items
    result["sliding_window_speedup"] = round(sw_speedup, 3)
    result["sliding_window_columnar_items_per_sec"] = round(
        sw_items / sw_columnar_time
    )
    result["sliding_window_bit_identical"] = sw_parity
    result["all_bit_identical"] = all_parity

    report_fn(
        format_table(
            rows,
            title=f"columnar protocol coverage: {ITEMS} items, k={SITES}, "
            f"s={SAMPLE}",
            caption="speedup_vs_per_item compares the native columnar path "
            "against the per-item site hooks these protocols ran before "
            "(target >= "
            f"{MIN_PROTOCOL_SPEEDUP}x each); batched shares the vectorized "
            "draw helpers, so bit_identical pins columnar == batched.",
        )
    )
    if PROTOCOL_JSON_PATH:
        with open(PROTOCOL_JSON_PATH, "w") as fh:
            json.dump(result, fh, indent=2)
    return result


def test_columnar_protocol_coverage(benchmark, report):
    result = benchmark.pedantic(
        lambda: _bench_protocols(report), rounds=1, iterations=1
    )
    assert result["all_bit_identical"], (
        "a columnar protocol diverged from its batched run"
    )
    for name in ("swr", "unweighted", "l1", "hh", "sliding_window"):
        gate = MIN_HH_SPEEDUP if name == "hh" else MIN_PROTOCOL_SPEEDUP
        speedup = result[f"{name}_speedup"]
        assert speedup >= gate, (
            f"{name} columnar path only {speedup:.2f}x over the per-item "
            f"path (target >= {gate}x)"
        )

"""Experiments E8 + E11: the lower-bound constructions, measured.

Theorems 5 and 7 build adversarial streams on which *any* correct
tracker must send Omega(k·log(W)/log(k) + log(W)/eps) messages.  We run
our (correct) upper-bound algorithms on exactly those streams and check
the measured counts sit between the Omega lower bound and the O() upper
bound — i.e. the constructions really do extract the predicted cost.
"""

from __future__ import annotations

from repro.analysis import bounds, format_table
from repro.heavy_hitters import ResidualHeavyHitterTracker
from repro.l1 import DeterministicCounterTracker, L1Tracker
from repro.stream import (
    epoch_weight_stream,
    geometric_growth_stream,
    round_robin,
    single_site,
    unit_stream,
)


def test_hh_lower_bound_stream(benchmark, report):
    """E8: the (1+eps)^i growth stream (every update is a heavy hitter)
    and the per-epoch k^i stream (every epoch forces k messages)."""

    def run():
        rows = []
        # Construction 1: geometric growth — Omega(log(W)/eps) answer
        # changes; run on one site so all cost is epistemic, not fan-out.
        import math

        for eps in (0.2, 0.1):
            items = geometric_growth_stream(eps, total_weight=1e7)
            w = sum(i.weight for i in items)
            tracker = ResidualHeavyHitterTracker(1, eps, delta=0.1, seed=3)
            counters = tracker.run(single_site(items))
            # This construction extracts the log(W)/eps term.
            lower = math.log(w) / eps
            rows.append(
                {
                    "stream": "(1+eps)^i",
                    "k": 1,
                    "eps": eps,
                    "n": len(items),
                    "W": w,
                    "messages": counters.total,
                    "lower_bound": lower,
                    "measured/lower": counters.total / lower,
                }
            )
        # Construction 2: per-epoch k^i weights, round-robin.
        for k in (8, 32):
            num_epochs = 6
            items = epoch_weight_stream(k, num_epochs)
            w = sum(i.weight for i in items)
            eps = 0.25
            tracker = ResidualHeavyHitterTracker(k, eps, delta=0.1, seed=4)
            counters = tracker.run(round_robin(items, k))
            # This construction extracts the k·log(W)/log(k) term.
            lower = bounds.l1_lower_this_work(k, w)
            rows.append(
                {
                    "stream": "k^i epochs",
                    "k": k,
                    "eps": eps,
                    "n": len(items),
                    "W": w,
                    "messages": counters.total,
                    "lower_bound": lower,
                    "measured/lower": counters.total / lower,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        format_table(
            rows,
            title="E8 (Theorem 5): heavy-hitter lower-bound streams",
            caption="each construction targets one Omega term "
            "(logW/eps for growth, k·logW/log k for epochs); "
            "measured/lower >= ~1 confirms the constructions bite",
        )
    )
    for row in rows:
        assert row["messages"] >= 0.6 * row["lower_bound"]


def test_l1_lower_bound_stream(benchmark, report):
    """E11: L1 trackers on the Theorem 7 constructions."""

    def run():
        rows = []
        # Growth stream: the estimate must change Omega(log(W)/eps)
        # times; the deterministic tracker shows the floor exactly.
        for eps in (0.2, 0.1):
            items = geometric_growth_stream(eps, total_weight=1e7)
            w = sum(i.weight for i in items)
            det = DeterministicCounterTracker(1, eps)
            c_det = det.run(single_site(items))
            lower = bounds.l1_lower_hyz(1, eps, w)
            rows.append(
                {
                    "stream": "(1+eps)^i",
                    "tracker": "deterministic",
                    "k": 1,
                    "eps": eps,
                    "messages": c_det.total,
                    "lower_bound": lower,
                    "measured/lower": c_det.total / lower,
                }
            )
        # Unit-weight epoch stream: Omega(k log(W)/log(k)).
        for k in (8, 32):
            n = 30000
            items = unit_stream(n)
            eps = 0.25
            tracker = L1Tracker(k, eps=eps, delta=0.25, seed=5)
            counters = tracker.run(round_robin(items, k))
            lower = bounds.l1_lower_this_work(k, float(n))
            rows.append(
                {
                    "stream": "unit epochs",
                    "tracker": "this work",
                    "k": k,
                    "eps": eps,
                    "messages": counters.total,
                    "lower_bound": lower,
                    "measured/lower": counters.total / lower,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        format_table(
            rows,
            title="E11 (Theorem 7): L1 lower-bound streams",
            caption="measured >= Omega bound on the adversarial streams",
        )
    )
    for row in rows:
        assert row["messages"] >= 0.5 * row["lower_bound"]

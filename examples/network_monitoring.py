#!/usr/bin/env python3
"""Network monitoring: residual heavy hitters over distributed flows.

The paper's second motivating application (Section 1): monitoring
devices inside a network each see a high-rate stream of flow records
and the operator wants the heavy flows — including the *residual* heavy
flows that hide underneath a few colossal elephants.

This example synthesizes a Pareto ("elephants and mice") flow trace
across 16 devices, plants a handful of mid-tier flows that are heavy
only in the residual sense, and compares three trackers:

* the Theorem 4 residual tracker (weighted SWOR underneath);
* an equal-budget with-replacement sampler (the paper's foil);
* a Space-Saving sketch with the usual O(1/eps) counters.

Run:  python examples/network_monitoring.py
"""

from __future__ import annotations

import random

from repro import ResidualHeavyHitterTracker, theorem4_sample_size
from repro.centralized import SpaceSaving, WeightedReservoirSWR
from repro.heavy_hitters import score_residual_report
from repro.stream import Item, two_phase_residual_stream, uniform_random


def main() -> None:
    k, n, eps, delta = 16, 40_000, 0.1, 0.05
    rng = random.Random(7)

    items = two_phase_residual_stream(
        n, rng,
        num_giants=4, giant_weight=5e7,        # elephant flows
        residual_heavy=5, residual_fraction=0.12,  # hidden mid-tier
    )
    stream = uniform_random(items, k, rng)

    print(f"flow trace: n={n}, eps={eps}, "
          f"sample size s={theorem4_sample_size(eps, delta)}")
    print()

    # --- Theorem 4 tracker --------------------------------------------
    tracker = ResidualHeavyHitterTracker(k, eps, delta=delta, seed=13)
    counters = tracker.run(stream)
    report = tracker.heavy_hitters()
    score = score_residual_report(items, report, eps)
    print("residual tracker (this paper):")
    print(f"  recall of residual heavy flows: {score.recall:.2f} "
          f"({score.true_count} true, {score.reported_count} reported)")
    print(f"  messages: {counters.total} (vs {n} to centralize everything)")
    print()

    # --- with-replacement foil ----------------------------------------
    s = theorem4_sample_size(eps, delta)
    swr = WeightedReservoirSWR(s, random.Random(99))
    for item in items:
        swr.insert(item)
    swr_report = sorted(set(swr.sample()), key=lambda it: -it.weight)
    swr_score = score_residual_report(items, swr_report[: int(2 / eps)], eps)
    distinct = len({it.ident for it in swr.sample()})
    print("with-replacement sampler (same budget):")
    print(f"  recall: {swr_score.recall:.2f} — its {s} draws collapse onto "
          f"{distinct} distinct flows (the elephants)")
    print()

    # --- Space-Saving -------------------------------------------------
    ss = SpaceSaving(capacity=int(2 / eps))
    for item in items:
        ss.insert(item)
    ss_report = [Item(i, w) for i, w in ss.heavy_hitters(eps)]
    ss_score = score_residual_report(items, ss_report, eps)
    print("space-saving sketch (classic l1 guarantee only):")
    print(f"  recall: {ss_score.recall:.2f} — missed "
          f"{sorted(ss_score.missed)} (mid-tier flows below the elephants)")


if __name__ == "__main__":
    main()

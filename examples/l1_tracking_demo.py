#!/usr/bin/env python3
"""Distributed L1 (count) tracking: this paper vs both baselines.

Runs the Section 5 tracker alongside the deterministic "[14]+folklore"
tracker and the randomized HYZ-style tracker on the same distributed
stream, querying all three at checkpoints.  Prints estimate accuracy
and total message cost for each.

Run:  python examples/l1_tracking_demo.py
"""

from __future__ import annotations

import random

from repro import (
    DeterministicCounterTracker,
    HyzStyleTracker,
    L1Tracker,
)
from repro.stream import round_robin, uniform_stream


def main() -> None:
    k, n, eps = 16, 30_000, 0.2
    rng = random.Random(3)
    items = uniform_stream(n, rng, low=1.0, high=20.0)

    trackers = {
        "this work (Thm 6)": L1Tracker(k, eps=eps, delta=0.2, seed=1),
        "[14]+folklore det.": DeterministicCounterTracker(k, eps),
        "HYZ-style [23]": HyzStyleTracker(k, eps, seed=2),
    }

    checkpoints = [3_000, 10_000, 30_000]
    print(f"stream: n={n}, k={k}, eps={eps}")
    for name, tracker in trackers.items():
        stream = round_robin(items, k)
        prefix = stream.prefix_weights()
        errors = []

        def record(t, tracker=tracker, prefix=prefix, errors=errors):
            truth = prefix[t - 1]
            errors.append(abs(tracker.estimate() - truth) / truth)

        counters = tracker.run(
            stream, checkpoints=checkpoints, on_checkpoint=record
        )
        err_text = ", ".join(f"{e:.3f}" for e in errors)
        print()
        print(f"{name}:")
        print(f"  relative errors at checkpoints: [{err_text}]  (target {eps})")
        print(f"  messages: {counters.total}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Certifying a custom sampler against the exact weighted-SWOR law.

If you modify the protocol (new key scheme, different level-set policy,
your own sampler entirely), `repro.analysis.certify_swor` tells you
whether it still draws true weighted samples — by comparing empirical
inclusion frequencies over thousands of seeded runs against the exact
Definition 1 law, computed by exhaustive recursion.

This demo certifies the built-in protocol (passes) and then a subtly
*biased* variant — one that drops the coordinator's re-check of stale
keys — to show a real bug class being caught.

Run:  python examples/certify_custom_sampler.py
"""

from __future__ import annotations

import random

from repro import DistributedWeightedSWOR, SworConfig
from repro.analysis import certify_swor
from repro.centralized import UnweightedReservoir

WEIGHTS = [1.0, 2.0, 4.0, 8.0, 3.0, 32.0]


def main() -> None:
    print("universe:", WEIGHTS, "| sample size 2 | 3000 trials each")
    print()

    result = certify_swor(
        lambda seed: DistributedWeightedSWOR(
            SworConfig(num_sites=3, sample_size=2), seed=seed
        ),
        WEIGHTS,
        sample_size=2,
        trials=3000,
        num_sites=3,
    )
    print(f"built-in distributed protocol:   {result.summary()}")

    # Continuous guarantee: certify an interior prefix too.
    mid = certify_swor(
        lambda seed: DistributedWeightedSWOR(
            SworConfig(num_sites=3, sample_size=2), seed=seed
        ),
        WEIGHTS,
        sample_size=2,
        trials=3000,
        num_sites=3,
        prefix=4,
    )
    print(f"same protocol at prefix t=4:     {mid.summary()}")

    # A weight-blind sampler must fail on a skewed universe.
    bad = certify_swor(
        lambda seed: UnweightedReservoir(2, random.Random(seed)),
        WEIGHTS,
        sample_size=2,
        trials=3000,
    )
    print(f"weight-blind reservoir (buggy):  {bad.summary()}")
    print()
    for ident in sorted(bad.exact):
        print(f"  item {ident} (w={WEIGHTS[ident]:>5}): "
              f"empirical {bad.empirical.get(ident, 0.0):.3f} "
              f"vs exact {bad.exact[ident]:.3f}")


if __name__ == "__main__":
    main()

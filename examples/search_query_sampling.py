#!/usr/bin/env python3
"""Search-engine query sampling across frontend servers.

The paper's first motivating application (Section 1): a search engine's
frontends each observe a query stream; the operator wants a continuously
maintained weighted sample of "typical" queries (weighted by processing
cost) without shipping every query to one place.

Demonstrates the *continuous* guarantee: the sample is queried at
several points mid-stream and is always a valid weighted SWOR of the
prefix, while the message counter shows how little was communicated.
Also contrasts without- vs with-replacement sampling on the same log.

Run:  python examples/search_query_sampling.py
"""

from __future__ import annotations

import random
from collections import Counter

from repro import DistributedWeightedSWOR, DistributedWeightedSWR, SworConfig
from repro.stream import (
    DistributedStream,
    queries_to_stream,
    search_query_log,
)


def main() -> None:
    servers, n, s = 8, 30_000, 12
    rng = random.Random(101)

    records = search_query_log(n, servers, rng, vocabulary=2000, zipf_alpha=1.3)
    items = queries_to_stream(records)
    assignment = [r.server for r in records]
    stream = DistributedStream(items, assignment, servers)

    swor = DistributedWeightedSWOR(
        SworConfig(num_sites=servers, sample_size=s), seed=55
    )

    checkpoints = {5_000, 15_000, 30_000}

    def show(t: int) -> None:
        sample = swor.sample()
        top = ", ".join(f"q{item.ident}" for item in sample[:6])
        print(f"  after {t:>6} queries: sample of {len(sample)} "
              f"(heaviest keys: {top}), "
              f"{swor.counters.total} messages so far")

    print(f"query log: {n} queries over {servers} servers, sample size {s}")
    print()
    print("continuous weighted SWOR at checkpoints:")
    swor.run(stream, checkpoints=checkpoints, on_checkpoint=show)
    print()

    # Same log, with replacement: popular queries monopolize the sample.
    swr = DistributedWeightedSWR(servers, s, seed=77)
    swr.run(DistributedStream(items, assignment, servers))
    swr_counts = Counter(item.ident for item in swr.sample())
    dup = sum(1 for c in swr_counts.values() if c > 1)
    print("with-replacement comparison:")
    print(f"  SWR sample holds {len(swr_counts)} distinct queries in "
          f"{s} slots ({dup} queries sampled more than once)")
    print(f"  SWOR sample always holds {s} distinct occurrences")


if __name__ == "__main__":
    main()

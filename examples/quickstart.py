#!/usr/bin/env python3
"""Quickstart: maintain a weighted sample over a distributed stream.

Builds a skewed (Zipf) weighted stream, partitions it over 32 sites,
and runs the paper's message-optimal weighted SWOR protocol
(Theorem 3).  Prints the continuously-maintained sample and compares
the protocol's message cost against the closed-form bound and the
send-everything strawman.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import random

from repro import DistributedWeightedSWOR, SworConfig
from repro.analysis import bounds
from repro.stream import round_robin, zipf_stream


def main() -> None:
    k, s, n = 32, 16, 50_000
    rng = random.Random(2019)

    items = zipf_stream(n, rng, alpha=1.2)
    stream = round_robin(items, k)
    total_weight = stream.total_weight()

    protocol = DistributedWeightedSWOR(
        SworConfig(num_sites=k, sample_size=s), seed=42
    )
    counters = protocol.run(stream)

    print(f"stream: n={n} items, W={total_weight:.3g}, k={k} sites, s={s}")
    print()
    print("weighted sample without replacement (top keys first):")
    for item, key in protocol.sample_with_keys():
        print(f"  item {item.ident:>6}  weight {item.weight:>12.2f}  key {key:.3g}")
    print()
    bound = bounds.swor_message_bound(k, s, total_weight)
    print(f"messages sent:       {counters.total}")
    print(f"  site -> coord:     {counters.upstream}")
    print(f"  coord -> sites:    {counters.downstream}")
    print(f"theorem 3 bound:     {bound:.0f}  (measured/bound = "
          f"{counters.total / bound:.2f})")
    print(f"send-everything:     {n} messages "
          f"({n / counters.total:.1f}x more)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Sliding-window weighted sampling — the paper's Section 6 extension.

Maintains one sampler over a long weighted stream and answers
weighted-SWOR queries for several window sizes at once, using expected
O(s·log n) space instead of buffering the window.  A traffic burst in
the recent past shows up in small-window samples and fades from larger
ones.

Run:  python examples/sliding_window_sampling.py
"""

from __future__ import annotations

import random

from repro.extensions import SlidingWindowWeightedSWOR
from repro.stream import Item


def main() -> None:
    s, n = 8, 60_000
    rng = random.Random(11)
    sampler = SlidingWindowWeightedSWOR(s, random.Random(12))

    # Background traffic, with a burst of heavy items near the end
    # (positions n-6000 .. n-5000, weight 100x background).
    for i in range(n):
        if n - 6000 <= i < n - 5000:
            weight = rng.uniform(200.0, 400.0)
        else:
            weight = rng.uniform(1.0, 5.0)
        sampler.insert(Item(i, weight))

    print(f"stream: {n} items, burst of heavy items at positions "
          f"{n-6000}..{n-5000}")
    print(f"retained candidates: {sampler.retained_count()} "
          f"(vs {n} to buffer everything)")
    print()
    for window in (2_000, 10_000, 60_000):
        sample = sampler.sample(window=window)
        burst_hits = sum(1 for it in sample if n - 6000 <= it.ident < n - 5000)
        print(f"window={window:>6}: sample of {len(sample)}, "
              f"{burst_hits} from the burst")
    print()
    print("the burst dominates the 10k window (it holds most of that "
          "window's weight), is absent from the last-2k window, and is "
          "diluted in the full-stream sample")


if __name__ == "__main__":
    main()

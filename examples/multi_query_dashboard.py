#!/usr/bin/env python3
"""Multi-query dashboard: many live answers from one stream pass.

Simulates a monitoring dashboard over a distributed search-query log:
a catalog of heterogeneous queries — subset sums, quantiles, a
group-by, an item count, residual heavy hitters, and total-weight
tracking — all answered concurrently by :class:`repro.query.MultiQueryDriver`
from a *single* shared pass of the stream.  Snapshots taken at
checkpoints show every answer evolving as the stream flows, and the
final answers are compared with exact ground truth.

Run:  python examples/multi_query_dashboard.py
"""

from __future__ import annotations

import random

from repro.analysis import format_table
from repro.query import (
    CountQuery,
    GroupByQuery,
    HeavyHittersQuery,
    MultiQueryDriver,
    QuantileQuery,
    QueryCatalog,
    SubsetSumQuery,
    TotalWeightQuery,
)
from repro.stream import round_robin, zipf_stream


def main() -> None:
    k, n, s = 16, 80_000, 64
    rng = random.Random(2019)
    items = zipf_stream(n, rng, alpha=1.2, universe=5_000)
    stream = round_robin(items, k)

    catalog = QueryCatalog(
        [
            SubsetSumQuery("total traffic", sample_size=s),
            SubsetSumQuery(
                "premium users",  # idents 0..499 are "premium"
                predicate=lambda item: item.ident < 500,
                sample_size=s,
            ),
            QuantileQuery("cost quantiles", qs=(0.5, 0.99), sample_size=s),
            GroupByQuery(
                "per shard", key=lambda item: item.ident % 4, sample_size=s
            ),
            CountQuery("request count", sample_size=s),
            HeavyHittersQuery("hot queries", eps=0.1),
            TotalWeightQuery("metered total", eps=0.25, delta=0.1),
        ]
    )

    driver = MultiQueryDriver(catalog, num_sites=k, seed=7, engine="batched")
    checkpoints = [n // 4, n // 2, 3 * n // 4, n]
    result = driver.run(stream, checkpoints=checkpoints)

    print(f"{len(catalog)} concurrent queries, one pass over n={n}, k={k} sites")
    print()
    print("live dashboard (subset-sum answers per checkpoint):")
    for t in result.checkpoints:
        snap = result.answers_at(t)
        total = snap["total traffic"]
        premium = snap["premium users"]
        count = snap["request count"]
        print(
            f"  t={t:>6}  total={total.value:>12.4g} "
            f"[{total.ci_low:.4g}, {total.ci_high:.4g}]  "
            f"premium={premium.value:>10.4g}  requests~{count.value:>10.4g}"
        )
    print()

    truth_total = stream.total_weight()
    truth_premium = sum(i.weight for i in items if i.ident < 500)
    rows = []
    for name, truth in [
        ("total traffic", truth_total),
        ("premium users", truth_premium),
        ("request count", float(n)),
        ("metered total", truth_total),
    ]:
        estimate = result.answers[name]
        rows.append(
            {
                "query": name,
                "estimate": estimate.value,
                "ci95": f"[{estimate.ci_low:.4g}, {estimate.ci_high:.4g}]",
                "truth": truth,
                "rel_err": estimate.rel_error(truth),
                "covered": estimate.covers(truth),
            }
        )
    print(format_table(rows, title="final answers vs exact ground truth"))

    quantiles = result.answers["cost quantiles"]
    print("cost quantiles:", ", ".join(f"q{q:g}={e.value:.4g}" for q, e in sorted(quantiles.items())))
    shards = result.answers["per shard"]
    print("per shard:", ", ".join(f"shard{g}={e.value:.4g}" for g, e in sorted(shards.items())))
    hot = result.answers["hot queries"]
    print("hot queries:", [item.ident for item in hot[:8]])
    messages = sum(c.total for c in result.counters.values())
    print(f"total messages across all {len(catalog)} protocols: {messages}")


if __name__ == "__main__":
    main()

"""Unit tests for the core building blocks: sample set, levels, epochs,
config, site, coordinator."""

from __future__ import annotations

import random

import pytest

from repro.common import ConfigurationError, ProtocolViolationError
from repro.core import (
    EpochTracker,
    LevelSetManager,
    SworConfig,
    SworCoordinator,
    SworSite,
    TopKeySample,
    level_of,
)
from repro.net.messages import (
    EARLY,
    EPOCH_UPDATE,
    LEVEL_SATURATED,
    Message,
    REGULAR,
)
from repro.stream import Item


class TestTopKeySample:
    def test_keeps_top_s(self):
        ts = TopKeySample(3)
        for i, key in enumerate([5.0, 1.0, 9.0, 3.0, 7.0]):
            ts.add(Item(i, 1.0), key)
        kept = {item.ident for item in ts.items()}
        assert kept == {0, 2, 4}  # keys 5, 9, 7

    def test_threshold_behavior(self):
        ts = TopKeySample(2)
        assert ts.threshold == 0.0
        ts.add(Item(0, 1.0), 4.0)
        assert ts.threshold == 0.0  # underfull
        ts.add(Item(1, 1.0), 6.0)
        assert ts.threshold == 4.0
        ts.add(Item(2, 1.0), 5.0)
        assert ts.threshold == 5.0

    def test_eviction_returns_displaced(self):
        ts = TopKeySample(1)
        assert ts.add(Item(0, 1.0), 2.0) is None
        displaced = ts.add(Item(1, 1.0), 5.0)
        assert displaced is not None and displaced.ident == 0
        # Below-threshold key: incoming item itself is displaced.
        rejected = ts.add(Item(2, 1.0), 1.0)
        assert rejected is not None and rejected.ident == 2

    def test_entries_sorted(self):
        ts = TopKeySample(4)
        for i, key in enumerate([2.0, 8.0, 5.0]):
            ts.add(Item(i, 1.0), key)
        keys = [k for _, k in ts.entries()]
        assert keys == sorted(keys, reverse=True)

    def test_invalid_size(self):
        with pytest.raises(ConfigurationError):
            TopKeySample(0)


class TestLevelOf:
    def test_small_weights_level_zero(self):
        assert level_of(0.5, 2.0) == 0
        assert level_of(1.0, 2.0) == 0
        assert level_of(1.99, 2.0) == 0

    def test_bracket_membership(self):
        for r in (2.0, 3.5, 8.0):
            for w in (1.0, 2.0, 5.0, 64.0, 1000.0, 12345.6):
                j = level_of(w, r)
                if w < r:
                    assert j == 0
                else:
                    assert r**j <= w < r ** (j + 1)

    def test_exact_powers(self):
        assert level_of(8.0, 2.0) == 3
        assert level_of(9.0, 3.0) == 2

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            level_of(0.0, 2.0)
        with pytest.raises(ConfigurationError):
            level_of(5.0, 1.5)


class TestLevelSetManager:
    def test_saturation_releases_batch(self):
        mgr = LevelSetManager(r=2.0, saturation_size=3)
        assert mgr.add(Item(0, 4.0), 1.0) is None
        assert mgr.add(Item(1, 5.0), 2.0) is None
        batch = mgr.add(Item(2, 6.0), 3.0)
        assert batch is not None and len(batch) == 3
        assert mgr.is_saturated(2)  # level of weights 4..6 at r=2

    def test_post_saturation_add_is_violation(self):
        mgr = LevelSetManager(r=2.0, saturation_size=1)
        mgr.add(Item(0, 4.0), 1.0)
        with pytest.raises(ProtocolViolationError):
            mgr.add(Item(1, 4.5), 1.0)

    def test_pending_entries_and_weight(self):
        mgr = LevelSetManager(r=2.0, saturation_size=10)
        mgr.add(Item(0, 4.0), 1.0)
        mgr.add(Item(1, 100.0), 2.0)
        assert mgr.pending_count() == 2
        assert mgr.pending_weight() == pytest.approx(104.0)
        keys = {k for _, k in mgr.pending_entries()}
        assert keys == {1.0, 2.0}

    def test_levels_independent(self):
        mgr = LevelSetManager(r=2.0, saturation_size=2)
        mgr.add(Item(0, 1.0), 1.0)  # level 0
        batch = mgr.add(Item(1, 100.0), 2.0)  # level 6
        assert batch is None
        batch = mgr.add(Item(2, 1.5), 3.0)  # saturates level 0
        assert batch is not None
        assert {item.ident for item, _ in batch} == {0, 2}

    def test_lemma1_heaviness_invariant(self):
        """Items in a saturated batch are <= 1/(4s)-fraction of it:
        4rs same-level items within weight factor r (Lemma 1)."""
        s, r = 5, 2.0
        mgr = LevelSetManager(r=r, saturation_size=int(4 * r * s))
        rng = random.Random(1)
        batch = None
        i = 0
        while batch is None:
            w = rng.uniform(8.0, 15.999)  # all level 3 at r=2
            batch = mgr.add(Item(i, w), 1.0)
            i += 1
        total = sum(item.weight for item, _ in batch)
        for item, _ in batch:
            assert item.weight <= total / (4 * s) * (1 + 1e-9)

    def test_invalid_saturation_size(self):
        with pytest.raises(ConfigurationError):
            LevelSetManager(2.0, 0)


class TestEpochTracker:
    def test_no_epoch_below_one(self):
        et = EpochTracker(2.0)
        assert et.observe_threshold(0.0) is None
        assert et.observe_threshold(0.9) is None
        assert et.epoch is None

    def test_first_epoch_announcement(self):
        et = EpochTracker(2.0)
        assert et.observe_threshold(1.5) == 1.0  # epoch 0, floor r^0
        assert et.epoch == 0

    def test_epoch_advance_and_value(self):
        et = EpochTracker(2.0)
        et.observe_threshold(1.5)
        assert et.observe_threshold(1.9) is None  # same epoch
        assert et.observe_threshold(4.5) == 4.0  # epoch 2
        assert et.epoch == 2

    def test_multi_epoch_jump_single_broadcast(self):
        et = EpochTracker(2.0)
        announce = et.observe_threshold(1000.0)
        assert announce == 2.0**9  # 512 <= 1000 < 1024
        assert et.broadcasts == 1

    def test_invalid_base(self):
        with pytest.raises(ConfigurationError):
            EpochTracker(1.0)


class TestSworConfig:
    def test_r_default(self):
        assert SworConfig(num_sites=4, sample_size=8).r == 2.0
        assert SworConfig(num_sites=64, sample_size=8).r == 8.0

    def test_r_override(self):
        cfg = SworConfig(num_sites=4, sample_size=8, epoch_base_override=4.0)
        assert cfg.r == 4.0

    def test_saturation_size(self):
        cfg = SworConfig(num_sites=4, sample_size=8)
        assert cfg.saturation_size == int(4 * 2.0 * 8)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SworConfig(num_sites=0, sample_size=1)
        with pytest.raises(ConfigurationError):
            SworConfig(num_sites=1, sample_size=0)
        with pytest.raises(ConfigurationError):
            SworConfig(num_sites=1, sample_size=1, level_set_factor=0)
        with pytest.raises(ConfigurationError):
            SworConfig(num_sites=1, sample_size=1, epoch_base_override=1.5)


class TestSworSite:
    def _site(self, **cfg_kwargs):
        cfg = SworConfig(num_sites=4, sample_size=2, **cfg_kwargs)
        return SworSite(0, cfg, random.Random(7))

    def test_unsaturated_level_sends_early(self):
        site = self._site()
        msgs = site.on_item(Item(0, 5.0))
        assert len(msgs) == 1 and msgs[0].kind == EARLY
        assert msgs[0].payload == (0, 5.0)

    def test_saturated_level_sends_regular_or_nothing(self):
        site = self._site()
        level = level_of(5.0, 2.0)
        site.on_control(Message(LEVEL_SATURATED, (level,)))
        msgs = site.on_item(Item(0, 5.0))
        # Threshold is 0, so the key always passes -> regular message.
        assert len(msgs) == 1 and msgs[0].kind == REGULAR
        ident, weight, key = msgs[0].payload
        assert ident == 0 and weight == 5.0 and key > 0

    def test_threshold_filters(self):
        site = self._site()
        site.on_control(Message(LEVEL_SATURATED, (0,)))
        site.on_control(Message(EPOCH_UPDATE, (1e12,)))
        sent = sum(len(site.on_item(Item(i, 1.0))) for i in range(200))
        assert sent == 0  # P(key > 1e12 for w=1) is astronomically small

    def test_threshold_decrease_is_violation(self):
        site = self._site()
        site.on_control(Message(EPOCH_UPDATE, (8.0,)))
        with pytest.raises(ProtocolViolationError):
            site.on_control(Message(EPOCH_UPDATE, (4.0,)))

    def test_unknown_control_is_violation(self):
        with pytest.raises(ProtocolViolationError):
            self._site().on_control(Message("bogus", ()))

    def test_level_sets_disabled_never_early(self):
        site = self._site(level_sets_enabled=False)
        msgs = site.on_item(Item(0, 1e9))
        assert all(m.kind == REGULAR for m in msgs)

    def test_state_words_constant(self):
        site = self._site()
        for j in range(30):
            site.on_control(Message(LEVEL_SATURATED, (j,)))
        assert site.state_words() <= 4

    def test_lazy_mode_counts_bits(self):
        cfg = SworConfig(
            num_sites=4, sample_size=2, count_bits=True,
            level_sets_enabled=False,
        )
        site = SworSite(0, cfg, random.Random(3))
        # High threshold: sends are rare, so bit counts reflect the pure
        # comparison cost Proposition 7 bounds (a send materializes the
        # key to full precision, which is fine — messages are rare).
        site.on_control(Message(EPOCH_UPDATE, (1024.0,)))
        for i in range(300):
            site.on_item(Item(i, 1.0))
        assert site.exponentials_generated == 300
        assert 0 < site.mean_bits_per_comparison < 8


class TestSworCoordinator:
    def _coordinator(self, k=4, s=2, **cfg_kwargs):
        cfg = SworConfig(num_sites=k, sample_size=s, **cfg_kwargs)
        return SworCoordinator(cfg, random.Random(11)), cfg

    def test_early_parks_in_level_set(self):
        coord, _ = self._coordinator()
        out = coord.on_message(0, Message(EARLY, (0, 5.0)))
        assert out == []
        assert coord.levels.pending_count() == 1

    def test_saturation_broadcasts_and_feeds_sampler(self):
        coord, cfg = self._coordinator()
        responses = []
        for i in range(cfg.saturation_size):
            responses = coord.on_message(0, Message(EARLY, (i, 5.0)))
        kinds = [msg.kind for _, msg in responses]
        assert LEVEL_SATURATED in kinds
        assert coord.levels.pending_count() == 0
        assert len(coord.sample_set) == cfg.sample_size

    def test_regular_below_threshold_discarded(self):
        coord, _ = self._coordinator(s=1)
        coord.on_message(0, Message(REGULAR, (0, 1.0, 100.0)))
        coord.on_message(0, Message(REGULAR, (1, 1.0, 5.0)))
        assert coord.regular_accepted == 1
        assert [i.ident for i in coord.sample()] == [0]

    def test_epoch_broadcast_on_threshold_cross(self):
        coord, _ = self._coordinator(s=1)
        out = coord.on_message(0, Message(REGULAR, (0, 1.0, 5.0)))
        kinds = [m.kind for _, m in out]
        assert EPOCH_UPDATE in kinds  # threshold jumped 0 -> 5

    def test_query_merges_pending_levels(self):
        coord, _ = self._coordinator(s=2)
        coord.on_message(0, Message(EARLY, (7, 1000.0)))
        sample_ids = {item.ident for item in coord.sample()}
        assert 7 in sample_ids  # withheld items still sampleable

    def test_early_with_levels_disabled_is_violation(self):
        coord, _ = self._coordinator(level_sets_enabled=False)
        with pytest.raises(ProtocolViolationError):
            coord.on_message(0, Message(EARLY, (0, 5.0)))

    def test_unknown_kind_is_violation(self):
        coord, _ = self._coordinator()
        with pytest.raises(ProtocolViolationError):
            coord.on_message(0, Message("bogus", ()))

"""Integration tests for the full distributed protocols.

The load-bearing test is distributional: the coordinator's sample must
follow the exact weighted-SWOR law of Definition 1 at query time, under
adversarial partitions and extreme weights — that is Theorem 3's
correctness claim.  Message-count tests check the Theta-shape against
the closed-form bounds with generous constants.
"""

from __future__ import annotations

import random
from collections import Counter

import pytest

from repro.analysis import bounds
from repro.common import (
    chi_square_pvalue,
    chi_square_statistic,
    exact_swor_inclusion_probabilities,
)
from repro.core import (
    DistributedUnweightedSWOR,
    DistributedWeightedSWOR,
    DistributedWeightedSWR,
    PerSiteTopS,
    SendEverything,
    SworConfig,
)
from repro.stream import (
    Item,
    PARTITIONERS,
    planted_heavy_hitter_stream,
    round_robin,
    unit_stream,
    zipf_stream,
)


def _protocol(k, s, seed, **cfg):
    return DistributedWeightedSWOR(
        SworConfig(num_sites=k, sample_size=s, **cfg), seed=seed
    )


class TestSworSampleLaw:
    """E4: empirical inclusion frequencies vs the exact law."""

    @pytest.mark.parametrize("partitioner", ["round_robin", "heavy_to_one_site"])
    def test_matches_exact_inclusion(self, partitioner):
        weights = [1.0, 2.0, 4.0, 8.0, 3.0, 6.0, 24.0]
        items = [Item(i, w) for i, w in enumerate(weights)]
        k, s, trials = 3, 2, 4000
        part = PARTITIONERS[partitioner]
        counts = Counter()
        for t in range(trials):
            stream = part(items, k, random.Random(77))
            proto = _protocol(k, s, seed=t)
            proto.run(stream)
            sample = proto.sample()
            assert len(sample) == s
            for item in sample:
                counts[item.ident] += 1
        exact = exact_swor_inclusion_probabilities(weights, s)
        expected = {i: trials * p for i, p in enumerate(exact)}
        stat, df = chi_square_statistic(counts, expected)
        assert chi_square_pvalue(stat, df) > 1e-4

    def test_extreme_heavy_hitter_sampled_correctly(self):
        """One item carries 99% of the weight; its inclusion frequency
        must match the law, not 100% of trials with s=1 duplicates."""
        weights = [1.0, 1.0, 1.0, 297.0]
        items = [Item(i, w) for i, w in enumerate(weights)]
        trials, s, k = 3000, 2, 2
        counts = Counter()
        for t in range(trials):
            proto = _protocol(k, s, seed=t + 50000)
            proto.run(round_robin(items, k))
            for item in proto.sample():
                counts[item.ident] += 1
        exact = exact_swor_inclusion_probabilities(weights, s)
        expected = {i: trials * p for i, p in enumerate(exact)}
        stat, df = chi_square_statistic(counts, expected)
        assert chi_square_pvalue(stat, df) > 1e-4
        # The giant is (essentially) always present...
        assert counts[3] > 0.98 * trials
        # ...but only once: SWOR, not SWR.

    def test_sample_size_is_min_t_s_at_every_step(self):
        """Definition 3: the coordinator maintains min(t, s) items at
        every time step, including while items are withheld."""
        rng = random.Random(9)
        items = planted_heavy_hitter_stream(300, rng, num_heavy=3)
        k, s = 4, 10
        proto = _protocol(k, s, seed=1)
        stream = round_robin(items, k)
        for t, (site, item) in enumerate(stream, start=1):
            proto.process(site, item)
            assert len(proto.sample()) == min(t, s)

    def test_sample_has_distinct_stream_positions(self):
        rng = random.Random(2)
        items = zipf_stream(500, rng)
        proto = _protocol(4, 20, seed=3)
        proto.run(round_robin(items, 4))
        idents = [item.ident for item in proto.sample()]
        assert len(idents) == len(set(idents))


class TestSworMessages:
    def test_messages_scale_with_log_weight(self):
        """E1 shape: doubling log(W) roughly doubles messages."""
        k, s = 8, 8
        results = []
        for n in (2000, 32000):
            rng = random.Random(n)
            items = zipf_stream(n, rng)
            proto = _protocol(k, s, seed=n)
            counters = proto.run(round_robin(items, k))
            w = sum(i.weight for i in items)
            results.append((counters.total, bounds.swor_message_bound(k, s, w)))
        ratio_small = results[0][0] / results[0][1]
        ratio_large = results[1][0] / results[1][1]
        # Shape claim: measured/bound stays within a small constant band.
        assert 0.2 < ratio_large / ratio_small < 5.0

    def test_beats_naive_for_large_s(self):
        # k >= s is the regime where the additive O(k + s) structure
        # separates from the naive multiplicative O(ks); the benchmark
        # sweep (E3) charts the full crossover.
        k, s, n = 64, 16, 20000
        rng = random.Random(4)
        items = zipf_stream(n, rng)
        ours = _protocol(k, s, seed=5)
        c_ours = ours.run(round_robin(items, k))
        naive = PerSiteTopS(k, s, seed=6)
        c_naive = naive.run(round_robin(items, k))
        send_all = SendEverything(k, s, seed=7)
        c_all = send_all.run(round_robin(items, k))
        assert c_all.total >= n
        assert c_ours.total < c_naive.total < c_all.total

    def test_epoch_count_within_proposition5(self):
        k, s, n = 8, 8, 20000
        rng = random.Random(10)
        items = zipf_stream(n, rng)
        proto = _protocol(k, s, seed=11)
        proto.run(round_robin(items, k))
        w = sum(i.weight for i in items)
        expected = bounds.expected_epochs_bound(k, s, w)
        assert proto.coordinator.epochs.broadcasts <= 3 * expected

    def test_message_words_constant(self):
        proto = _protocol(4, 4, seed=12)
        rng = random.Random(13)
        proto.run(round_robin(zipf_stream(3000, rng), 4))
        assert proto.counters.max_message_words <= 8

    def test_resource_report_optimality(self):
        """E12: O(1) site words, O(s) coordinator words."""
        s = 16
        proto = _protocol(8, s, seed=14)
        rng = random.Random(15)
        proto.run(round_robin(zipf_stream(5000, rng), 8))
        report = proto.resource_report()
        assert report["site_state_words_max"] <= 4
        assert report["coordinator_state_words"] <= 10 * s


class TestLevelSetAblation:
    def test_disabled_level_sets_inflate_messages_on_giants(self):
        """E5: without withholding, a dominant item freezes the
        threshold high while the sampler was cheap before it — the
        interesting regime is a giant arriving early, which pins u at a
        huge value and then starves... measured as more regular traffic
        with level sets than without is NOT expected; instead epoch
        thrash shows up as more total messages with giants + no level
        sets than with them, on streams with many giants."""
        rng = random.Random(16)
        items = planted_heavy_hitter_stream(
            8000, rng, num_heavy=40, dominance=0.999
        )
        k, s = 8, 8
        with_ls = _protocol(k, s, seed=17)
        c_with = with_ls.run(round_robin(items, k))
        without_ls = _protocol(k, s, seed=17, level_sets_enabled=False)
        c_without = without_ls.run(round_robin(items, k))
        # Both are correct samplers; the ablation bench quantifies the
        # message gap. Here we only require both to complete and the
        # withheld-weight invariant to hold at the end.
        assert len(with_ls.sample()) == s
        assert len(without_ls.sample()) == s
        assert c_with.total > 0 and c_without.total > 0


class TestUnweightedProtocol:
    def test_uniformity(self):
        n, k, s, trials = 10, 2, 3, 4000
        items = unit_stream(n)
        counts = Counter()
        for t in range(trials):
            proto = DistributedUnweightedSWOR(k, s, seed=t)
            proto.run(round_robin(items, k))
            sample = proto.sample()
            assert len(sample) == s
            for item in sample:
                counts[item.ident] += 1
        expected = {i: trials * s / n for i in range(n)}
        stat, df = chi_square_statistic(counts, expected)
        assert chi_square_pvalue(stat, df) > 1e-4

    def test_message_shape(self):
        k, s, n = 16, 16, 30000
        proto = DistributedUnweightedSWOR(k, s, seed=3)
        counters = proto.run(round_robin(unit_stream(n), k))
        bound = bounds.swor_message_bound(k, s, float(n))
        assert counters.total < 20 * bound

    def test_weighted_protocol_matches_on_unit_stream(self):
        """On unit weights the weighted protocol is an unweighted
        sampler; its inclusion frequencies must be uniform."""
        n, k, s, trials = 8, 2, 2, 3000
        items = unit_stream(n)
        counts = Counter()
        for t in range(trials):
            proto = _protocol(k, s, seed=t + 9000)
            proto.run(round_robin(items, k))
            for item in proto.sample():
                counts[item.ident] += 1
        expected = {i: trials * s / n for i in range(n)}
        stat, df = chi_square_statistic(counts, expected)
        assert chi_square_pvalue(stat, df) > 1e-4


class TestSwrProtocol:
    def test_per_slot_weighted_law(self):
        weights = [1.0, 3.0, 6.0, 2.0]
        items = [Item(i, w) for i, w in enumerate(weights)]
        k, s, trials = 2, 3, 4000
        counts = Counter()
        slots_total = 0
        for t in range(trials):
            proto = DistributedWeightedSWR(k, s, seed=t)
            proto.run(round_robin(items, k))
            sample = proto.sample()
            slots_total += len(sample)
            for item in sample:
                counts[item.ident] += 1
        assert slots_total == trials * s  # every slot filled
        total_w = sum(weights)
        expected = {
            i: trials * s * w / total_w for i, w in enumerate(weights)
        }
        stat, df = chi_square_statistic(counts, expected)
        assert chi_square_pvalue(stat, df) > 1e-4

    def test_duplicates_allowed_with_replacement(self):
        """A dominant item should occupy most slots simultaneously."""
        items = [Item(0, 1.0), Item(1, 1e9)]
        proto = DistributedWeightedSWR(2, 8, seed=5)
        proto.run(round_robin(items, 2))
        idents = [item.ident for item in proto.sample()]
        assert idents.count(1) >= 7

    def test_message_shape(self):
        k, s, n = 8, 8, 20000
        rng = random.Random(31)
        items = zipf_stream(n, rng)
        proto = DistributedWeightedSWR(k, s, seed=32)
        counters = proto.run(round_robin(items, k))
        w = sum(i.weight for i in items)
        bound = bounds.swr_message_bound(k, s, w)
        assert counters.total < 20 * bound

    def test_threshold_monotone_nonincreasing(self):
        proto = DistributedWeightedSWR(2, 4, seed=33)
        rng = random.Random(34)
        last = 1.0
        for i in range(500):
            proto.process(i % 2, Item(i, rng.uniform(1, 50)))
            announced = proto.coordinator._announced
            assert announced <= last + 1e-15
            last = announced


class TestNaiveBaselines:
    def test_send_everything_message_count(self):
        n, k = 500, 4
        proto = SendEverything(k, 8, seed=1)
        counters = proto.run(round_robin(unit_stream(n), k))
        assert counters.total == n
        assert len(proto.sample()) == 8

    def test_per_site_tops_correct_law(self):
        weights = [1.0, 2.0, 4.0, 8.0]
        items = [Item(i, w) for i, w in enumerate(weights)]
        trials, k, s = 4000, 2, 2
        counts = Counter()
        for t in range(trials):
            proto = PerSiteTopS(k, s, seed=t)
            proto.run(round_robin(items, k))
            for item in proto.sample():
                counts[item.ident] += 1
        exact = exact_swor_inclusion_probabilities(weights, s)
        expected = {i: trials * p for i, p in enumerate(exact)}
        stat, df = chi_square_statistic(counts, expected)
        assert chi_square_pvalue(stat, df) > 1e-4

    def test_per_site_tops_messages_scale_with_ks(self):
        n = 20000
        rng = random.Random(8)
        items = zipf_stream(n, rng)
        small = PerSiteTopS(4, 4, seed=9)
        c_small = small.run(round_robin(items, 4))
        big = PerSiteTopS(4, 64, seed=10)
        c_big = big.run(round_robin(items, 4))
        # 16x the sample size should cost roughly 16x the messages
        # (within a loose band) for the naive protocol.
        assert c_big.total > 5 * c_small.total

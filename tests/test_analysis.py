"""Tests for repro.analysis: bounds, tables, experiment harness."""

from __future__ import annotations

import random

import pytest

from repro.analysis import (
    bounds,
    format_table,
    inclusion_frequencies,
    messages_vs_sample_size,
    messages_vs_sites,
    messages_vs_weight,
    render_rows,
    run_swor_once,
)
from repro.common import ConfigurationError
from repro.stream import Item, round_robin, zipf_stream


class TestBounds:
    def test_all_positive(self):
        k, s, eps, delta, w = 16, 8, 0.1, 0.05, 1e9
        values = [
            bounds.swor_message_bound(k, s, w),
            bounds.swor_lemma3_bound(k, s, w),
            bounds.swor_lower_bound(k, s, w),
            bounds.expected_epochs_bound(k, s, w),
            bounds.swr_message_bound(k, s, w),
            bounds.naive_per_site_top_s_bound(k, s, w),
            bounds.hh_upper_bound(k, eps, delta, w),
            bounds.hh_lower_bound(k, eps, w),
            bounds.l1_upper_this_work(k, eps, delta, w),
            bounds.l1_upper_cmyz_folklore(k, eps, w),
            bounds.l1_upper_hyz(k, eps, delta, w),
            bounds.l1_lower_hyz(k, eps, w),
            bounds.l1_lower_this_work(k, w),
        ]
        assert all(v > 0 for v in values)

    def test_swor_bound_monotone_in_weight(self):
        a = bounds.swor_message_bound(8, 8, 1e6)
        b = bounds.swor_message_bound(8, 8, 1e12)
        assert b > a

    def test_swor_bound_sublinear_in_k(self):
        """Doubling k beyond s should much-less-than-double messages
        per site: total grows by < 2x factor over 16x site change."""
        small = bounds.swor_message_bound(32, 4, 1e9)
        large = bounds.swor_message_bound(512, 4, 1e9)
        assert large / small < 16 / 2  # strictly sublinear in k

    def test_l1_crossover_at_k_eps2(self):
        """For k >> 1/eps^2 our upper bound beats [23]'s; below, not
        necessarily — the Section 5 discussion."""
        eps, delta = 0.1, 0.1
        w = 1e12
        k_big = 10000  # >> 1/eps^2 = 100
        ours = bounds.l1_upper_this_work(k_big, eps, delta, w)
        hyz = bounds.l1_upper_hyz(k_big, eps, delta, w)
        assert ours < hyz

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            bounds.swor_message_bound(0, 1, 10)
        with pytest.raises(ConfigurationError):
            bounds.hh_upper_bound(1, 0.0, 0.1, 10)

    def test_naive_bound_dominates_ours(self):
        k, s, w = 64, 64, 1e9
        assert bounds.naive_per_site_top_s_bound(
            k, s, w
        ) > bounds.swor_message_bound(k, s, w)

    def test_advantage_factor_grows_with_s(self):
        w = 1e9
        small = bounds.swor_advantage_over_naive(64, 4, w)
        large = bounds.swor_advantage_over_naive(64, 64, w)
        assert large > small > 1.0

    def test_l1_regime_boundary(self):
        assert bounds.l1_regime_boundary(0.1) == pytest.approx(100.0)
        with pytest.raises(ConfigurationError):
            bounds.l1_regime_boundary(0.0)


class TestTables:
    def test_format_contains_all_cells(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 3, "b": 0.001}]
        text = format_table(rows, title="T", caption="C")
        assert "T" in text and "C" in text
        assert "2.500" in text and "0.001" in text

    def test_column_selection_and_order(self):
        rows = [{"a": 1, "b": 2, "c": 3}]
        cells = render_rows(rows, columns=["c", "a"])
        assert cells[0] == ["c", "a"]
        assert cells[1] == ["3", "1"]

    def test_empty_rows(self):
        assert "empty" in format_table([], title="x")

    def test_large_numbers_compact(self):
        text = format_table([{"w": 5.5e9}])
        assert "5.5e+09" in text


class TestExperimentHarness:
    def test_run_swor_once_fields(self):
        rng = random.Random(0)
        stream = round_robin(zipf_stream(2000, rng), 4)
        row = run_swor_once(stream, 8, seed=1)
        assert row["k"] == 4 and row["s"] == 8
        assert row["messages"] > 0
        assert row["ratio"] == pytest.approx(row["messages"] / row["bound"])
        assert row["messages"] == row["upstream"] + row["downstream"]

    def test_messages_vs_weight_rows(self):
        rows = messages_vs_weight(
            lambda rng, n: zipf_stream(n, rng),
            weight_steps=[500, 2000],
            k=4,
            s=8,
            reps=2,
        )
        assert len(rows) == 2
        assert rows[1]["W"] > rows[0]["W"]

    def test_messages_vs_sites_rows(self):
        rows = messages_vs_sites(
            lambda rng, n: zipf_stream(n, rng),
            n=2000,
            site_steps=[2, 8],
            s=4,
            reps=1,
        )
        assert [row["k"] for row in rows] == [2, 8]

    def test_messages_vs_sample_size_includes_naive(self):
        rows = messages_vs_sample_size(
            lambda rng, n: zipf_stream(n, rng),
            n=2000,
            k=4,
            sample_steps=[4],
            reps=1,
            include_naive=True,
        )
        assert "naive_messages" in rows[0]

    def test_inclusion_frequencies_sum(self):
        items = [Item(i, float(1 + i)) for i in range(6)]
        freqs = inclusion_frequencies(items, k=2, s=2, trials=200)
        assert abs(sum(freqs.values()) - 2.0) < 0.2

"""Tests for the concurrent multi-query driver (repro.query.driver).

The load-bearing property is *standalone parity*: every query the
driver carries through its shared pass must end with exactly the
sample (and message counters) a standalone run of the same protocol
with the same derived seed would produce — under the batched engine for
the shared vectorized pass, and under the reference engine for
``engine="reference"``.
"""

from __future__ import annotations

import random

import pytest

from repro.common.errors import ConfigurationError
from repro.core import DistributedWeightedSWOR, SworConfig
from repro.query import (
    CountQuery,
    Estimate,
    GroupByQuery,
    HeavyHittersQuery,
    MeanWeightQuery,
    MultiQueryDriver,
    QuantileQuery,
    QueryCatalog,
    SlidingWindowQuery,
    SubsetSumQuery,
    TotalWeightQuery,
    WeightedMeanQuery,
    query_seed,
)
from repro.stream import round_robin, zipf_stream


def _stream(n=20_000, k=8, seed=3):
    return round_robin(zipf_stream(n, random.Random(seed), alpha=1.2), k)


def _swor_queries(count, s=32):
    return [
        SubsetSumQuery(
            f"q{i}",
            predicate=(lambda m: lambda item: item.ident % count == m)(i),
            sample_size=s,
        )
        for i in range(count)
    ]


class TestGoldenParity:
    def test_single_query_matches_standalone_batched(self):
        """The pinned golden property: a driver carrying one query is
        bit-identical to a standalone batched-engine run."""
        stream = _stream()
        driver = MultiQueryDriver(
            QueryCatalog([SubsetSumQuery("only", sample_size=16)]),
            num_sites=8,
            seed=9,
        )
        driver.run(stream)
        standalone = DistributedWeightedSWOR(
            SworConfig(num_sites=8, sample_size=16),
            seed=query_seed(9, "only"),
            engine="batched",
        )
        standalone.run(stream)
        instance = driver["only"]
        assert instance.protocol.sample_with_keys() == standalone.sample_with_keys()
        assert instance.counters.snapshot() == standalone.counters.snapshot()

    def test_fused_queries_match_standalones(self):
        """Same-config queries go through the fused site path; each
        must still match its own standalone run exactly."""
        stream = _stream()
        queries = _swor_queries(4)
        driver = MultiQueryDriver(QueryCatalog(queries), num_sites=8, seed=5)
        driver.run(stream)
        assert any(
            type(c).__name__ == "_FusedSworGroup" for c in driver._consumers()
        )
        for query in queries:
            standalone = DistributedWeightedSWOR(
                SworConfig(num_sites=8, sample_size=32),
                seed=query_seed(5, query.name),
                engine="batched",
            )
            standalone.run(stream)
            instance = driver[query.name]
            assert (
                instance.protocol.sample_with_keys()
                == standalone.sample_with_keys()
            ), query.name
            assert (
                instance.counters.snapshot() == standalone.counters.snapshot()
            ), query.name

    def test_fuse_off_is_equivalent(self):
        stream = _stream(n=8_000)
        queries = _swor_queries(3)
        fused = MultiQueryDriver(QueryCatalog(queries), num_sites=8, seed=1)
        plain = MultiQueryDriver(
            QueryCatalog(queries), num_sites=8, seed=1, fuse=False
        )
        fused.run(stream)
        plain.run(stream)
        for query in queries:
            assert (
                fused[query.name].protocol.sample_with_keys()
                == plain[query.name].protocol.sample_with_keys()
            )
            assert (
                fused[query.name].counters.snapshot()
                == plain[query.name].counters.snapshot()
            )

    def test_reference_engine_matches_reference_run(self):
        stream = _stream(n=3_000)
        driver = MultiQueryDriver(
            QueryCatalog([SubsetSumQuery("ref", sample_size=16)]),
            num_sites=8,
            seed=4,
            engine="reference",
        )
        driver.run(stream)
        standalone = DistributedWeightedSWOR(
            SworConfig(num_sites=8, sample_size=16), seed=query_seed(4, "ref")
        )
        standalone.run(stream)  # default = reference engine
        instance = driver["ref"]
        assert instance.protocol.sample_with_keys() == standalone.sample_with_keys()
        assert instance.counters.snapshot() == standalone.counters.snapshot()


class TestHeterogeneousCatalog:
    @pytest.fixture(scope="class")
    def result(self):
        stream = _stream(n=15_000)
        catalog = QueryCatalog(
            [
                SubsetSumQuery(
                    "even", predicate=lambda i: i.ident % 2 == 0, sample_size=32
                ),
                QuantileQuery("median", qs=(0.5,), sample_size=32),
                GroupByQuery("mod3", key=lambda i: i.ident % 3, sample_size=32),
                CountQuery("count", sample_size=32),
                WeightedMeanQuery("wmean", sample_size=32),
                MeanWeightQuery("mean", sample_size=32),
                TotalWeightQuery("l1", eps=0.3, delta=0.2),
                HeavyHittersQuery("hh", eps=0.2),
                SlidingWindowQuery("recent", window=2_000, sample_size=32),
            ]
        )
        driver = MultiQueryDriver(catalog, num_sites=8, seed=11)
        return driver.run(stream, checkpoints=[1_000, 7_500]), stream

    def test_all_queries_answered(self, result):
        res, _ = result
        assert set(res.answers) == {
            "even",
            "median",
            "mod3",
            "count",
            "wmean",
            "mean",
            "l1",
            "hh",
            "recent",
        }

    def test_answer_types(self, result):
        res, _ = result
        assert isinstance(res.answers["even"], Estimate)
        assert isinstance(res.answers["median"], dict)
        assert all(isinstance(e, Estimate) for e in res.answers["median"].values())
        assert isinstance(res.answers["mod3"], dict)
        assert isinstance(res.answers["count"], Estimate)
        assert isinstance(res.answers["l1"], Estimate)
        assert isinstance(res.answers["hh"], list)
        assert isinstance(res.answers["recent"], Estimate)

    def test_estimates_are_sane(self, result):
        res, stream = result
        w = stream.total_weight()
        truth_even = sum(i.weight for i in stream.items if i.ident % 2 == 0)
        assert res.answers["even"].value == pytest.approx(truth_even, rel=0.8)
        assert res.answers["l1"].value == pytest.approx(w, rel=0.4)
        assert res.answers["count"].value == pytest.approx(len(stream), rel=0.5)

    def test_counters_cover_network_backed_queries(self, result):
        res, _ = result
        # The sliding-window query is centralized: no message counters.
        assert "recent" not in res.counters
        assert all(res.counters[name].total > 0 for name in ("even", "l1", "hh"))

    def test_checkpoints_snapshot_every_query(self, result):
        res, _ = result
        assert res.checkpoints == [1_000, 7_500]
        for t in res.checkpoints:
            snapshot = res.answers_at(t)
            assert set(snapshot) == set(res.answers)
        with pytest.raises(ConfigurationError):
            res.answers_at(123)

    def test_items_processed(self, result):
        res, stream = result
        assert res.items_processed == len(stream)


class TestValidation:
    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigurationError):
            QueryCatalog([SubsetSumQuery("a"), SubsetSumQuery("a")])

    def test_empty_driver_rejected(self):
        with pytest.raises(ConfigurationError):
            MultiQueryDriver(QueryCatalog(), num_sites=4)

    def test_stream_site_mismatch_rejected(self):
        driver = MultiQueryDriver([SubsetSumQuery("a")], num_sites=4)
        with pytest.raises(ConfigurationError):
            driver.run(_stream(n=100, k=8))

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigurationError):
            MultiQueryDriver([SubsetSumQuery("a")], num_sites=4, engine="warp")

    def test_unknown_query_lookup(self):
        driver = MultiQueryDriver([SubsetSumQuery("a")], num_sites=4)
        with pytest.raises(ConfigurationError):
            driver["nope"]

    def test_query_seed_deterministic_and_name_sensitive(self):
        assert query_seed(1, "a") == query_seed(1, "a")
        assert query_seed(1, "a") != query_seed(1, "b")
        assert query_seed(1, "a") != query_seed(2, "a")


class TestReusedDriver:
    def test_checkpoints_cumulative_across_runs(self):
        """A reused driver keeps one clock, like the batched engine."""
        first = _stream(n=1_000)
        second = _stream(n=1_000, seed=8)
        driver = MultiQueryDriver(
            [SubsetSumQuery("t", sample_size=16)], num_sites=8, seed=6
        )
        res1 = driver.run(first, checkpoints=[400])
        res2 = driver.run(second, checkpoints=[1_500])
        assert res1.checkpoints == [400]
        assert res2.checkpoints == [1_500]  # 500 items into stream 2
        assert driver.items_processed == 2_000
        # Per-run offsets (here: 1500 counted from this run's start)
        # are out of the cumulative window and must be dropped.
        third = driver.run(_stream(n=1_000, seed=9), checkpoints=[500])
        assert third.checkpoints == []


class TestLiveAnswers:
    def test_answers_available_mid_stream(self):
        """answers() is valid at every step (continuous monitoring)."""
        stream = _stream(n=2_000)
        driver = MultiQueryDriver(
            [SubsetSumQuery("total", sample_size=16)], num_sites=8, seed=2
        )
        res = driver.run(stream, checkpoints=[500])
        early_estimate = res.answers_at(500)["total"]
        final_estimate = res.answers["total"]
        # The stream keeps growing, so the early total-weight estimate
        # must be (much) smaller than the final one.
        assert 0 < early_estimate.value < final_estimate.value

"""Columnar paths for the generic protocols (SWR / unweighted / L1 / HH)
and the driver's ColumnarStream support.

Extends the PR-3 contracts of ``test_columnar_runtime.py`` to every
protocol:

1. **Engine bit-parity** — for each protocol, the columnar engine
   reproduces the batched engine's samples, internal state, *and*
   message counters bit for bit at every batch size, on both stream
   representations, and batch size 1 degenerates to the reference
   engine exactly;
2. **Pack accounting** — kind-parametric packs (``SWR_SAMPLE`` with the
   sampler-index extra column) count exactly like the messages they
   stand for;
3. **Coordinator pack paths** — each coordinator's bulk fold equals
   sequential delivery, including the replay fallback when a broadcast
   (round / epoch) would fire mid-pack;
4. **Driver on ColumnarStream** — the multi-query driver accepts a
   ``ColumnarStream`` directly, with per-query answers bit-identical to
   the same data as a ``DistributedStream``, and its generic columnar
   consumers match standalone columnar runs.
"""

from __future__ import annotations

import random

import pytest

from repro.core import DistributedUnweightedSWOR
from repro.core.swr import DistributedWeightedSWR, _SwrCoordinator
from repro.core.unweighted import _UnweightedCoordinator
from repro.heavy_hitters import ResidualHeavyHitterTracker, SwrHeavyHitterTracker
from repro.l1 import L1Tracker
from repro.l1.tracker import _L1Coordinator
from repro.net.counters import MessageCounters
from repro.net.messages import Message, MessagePack, REGULAR, SWR_SAMPLE
from repro.net.tracing import MessageTrace
from repro.runtime import ColumnarEngine
from repro.stream import (
    ColumnarStream,
    heavy_to_one_site,
    round_robin,
    zipf_stream,
)

np = pytest.importorskip("numpy")

BATCH_SIZES = [1, 7, 64, 1024]


def _stream(n=25_000, k=16, seed=3, alpha=1.2):
    return round_robin(zipf_stream(n, random.Random(seed), alpha=alpha), k)


def _swr_state(proto, counters):
    coord = proto.coordinator
    return (
        counters.snapshot(),
        tuple((s.ident, s.weight) if s else None for s in coord._slots),
        tuple(coord._min_keys),
        coord.rounds_announced,
        coord._announced,
    )


def _unweighted_state(proto, counters):
    coord = proto.coordinator
    return (
        counters.snapshot(),
        tuple((i.ident, i.weight, k) for i, k in proto.sample_with_keys()),
        coord._epoch,
        coord._counter,
    )


def _l1_state(tracker, counters):
    coord = tracker.coordinator
    return (
        counters.snapshot(),
        tracker.estimate(),
        coord._exact_duplicated_weight,
        tuple((i.ident, i.weight, k) for i, k in coord.sample_set.entries()),
        coord.epochs.epoch,
        coord.epochs.broadcasts,
    )


def _hh_state(tracker, counters):
    return (
        counters.snapshot(),
        tuple((i.ident, i.weight) for i in tracker.heavy_hitters()),
        tuple((i.ident, i.weight, k) for i, k in tracker.sample_with_keys()),
    )


PROTOCOLS = {
    "swr": (
        lambda engine, bs: DistributedWeightedSWR(
            16, 12, seed=11, engine=engine, batch_size=bs
        ),
        _swr_state,
    ),
    "unweighted": (
        lambda engine, bs: DistributedUnweightedSWOR(
            16, 12, seed=11, engine=engine, batch_size=bs
        ),
        _unweighted_state,
    ),
    "l1": (
        lambda engine, bs: L1Tracker(
            16,
            0.2,
            0.2,
            seed=11,
            sample_size_override=48,
            duplication_override=24,
            engine=engine,
            batch_size=bs,
        ),
        _l1_state,
    ),
    "hh": (
        lambda engine, bs: ResidualHeavyHitterTracker(
            16, 0.1, seed=11, engine=engine, batch_size=bs
        ),
        _hh_state,
    ),
    "swr-hh-baseline": (
        lambda engine, bs: SwrHeavyHitterTracker(
            16, 0.1, seed=11, engine=engine, batch_size=bs
        ),
        lambda t, c: (
            c.snapshot(),
            tuple((i.ident, i.weight) for i in t.heavy_hitters()),
        ),
    ),
}


def _run(name, engine, bs=None, stream=None):
    build, fingerprint = PROTOCOLS[name]
    instance = build(engine, bs)
    counters = instance.run(stream if stream is not None else _stream())
    return fingerprint(instance, counters)


# ---------------------------------------------------------------------------
# 1. Engine bit-parity, every protocol, every batch size
# ---------------------------------------------------------------------------


class TestProtocolEngineParity:
    @pytest.mark.parametrize("name", sorted(PROTOCOLS))
    @pytest.mark.parametrize("bs", BATCH_SIZES)
    def test_columnar_bit_identical_to_batched(self, name, bs):
        stream = _stream()
        batched = _run(name, "batched", bs, stream)
        columnar = _run(name, "columnar", bs, stream)
        assert columnar == batched

    @pytest.mark.parametrize("name", sorted(PROTOCOLS))
    def test_batch_size_one_is_reference(self, name):
        stream = _stream(n=6_000)
        reference = _run(name, "reference", stream=stream)
        assert _run(name, "columnar", 1, stream) == reference
        assert _run(name, "batched", 1, stream) == reference

    @pytest.mark.parametrize("name", sorted(PROTOCOLS))
    def test_columnar_stream_input_identical(self, name):
        stream = _stream(n=12_000)
        columnar_stream = ColumnarStream.from_distributed(stream)
        assert _run(name, "columnar", stream=columnar_stream) == _run(
            name, "columnar", stream=stream
        )

    def test_skewed_partition_parity(self):
        items = zipf_stream(20_000, random.Random(8), alpha=1.3)
        stream = heavy_to_one_site(items, 16)
        assert _run("swr", "columnar", stream=stream) == _run(
            "swr", "batched", stream=stream
        )
        assert _run("l1", "columnar", stream=stream) == _run(
            "l1", "batched", stream=stream
        )

    def test_tracing_expands_packs_per_message(self):
        stream = _stream(n=6_000)

        def traced(engine):
            proto = DistributedWeightedSWR(16, 8, seed=7, engine=engine)
            trace = MessageTrace.attach(proto.network)
            counters = proto.run(stream)
            return (
                trace.events,
                counters.snapshot(),
                tuple((i.ident, i.weight) if i else None
                      for i in proto.coordinator._slots),
            )

        assert traced("columnar") == traced("batched")

    def test_numpy_free_fallback_matches_batched(self, monkeypatch):
        import repro.core.swr as swr_mod
        import repro.core.unweighted as unweighted_mod
        import repro.l1.tracker as l1_mod
        import repro.query.driver as driver_mod
        import repro.runtime.batched as batched_mod
        import repro.runtime.columnar as columnar_mod
        import repro.stream.item as item_mod

        stream = _stream(n=4_000)
        for mod in (
            swr_mod,
            unweighted_mod,
            l1_mod,
            driver_mod,
            batched_mod,
            columnar_mod,
            item_mod,
        ):
            monkeypatch.setattr(mod, "_np", None)
        for name in ("swr", "unweighted", "l1"):
            assert _run(name, "columnar", stream=stream) == _run(
                name, "batched", stream=stream
            )

    def test_numpy_free_bs1_matches_reference(self, monkeypatch):
        import repro.core.swr as swr_mod
        import repro.core.unweighted as unweighted_mod
        import repro.l1.tracker as l1_mod
        import repro.runtime.batched as batched_mod
        import repro.runtime.columnar as columnar_mod
        import repro.stream.item as item_mod

        stream = _stream(n=3_000)
        reference = {
            name: _run(name, "reference", stream=stream)
            for name in ("swr", "unweighted", "l1")
        }
        for mod in (
            swr_mod,
            unweighted_mod,
            l1_mod,
            batched_mod,
            columnar_mod,
            item_mod,
        ):
            monkeypatch.setattr(mod, "_np", None)
        for name, want in reference.items():
            assert _run(name, ColumnarEngine(batch_size=1), stream=stream) == want


# ---------------------------------------------------------------------------
# 2. Kind-parametric pack accounting
# ---------------------------------------------------------------------------


class TestSwrPackAccounting:
    def _pack(self, rng, nr, huge=False):
        return MessagePack(
            regular_idents=np.array(
                [rng.randrange(2**40) for _ in range(nr)], dtype=np.int64
            ),
            regular_weights=np.array(
                [rng.uniform(1, 1e280 if huge else 1e6) for _ in range(nr)]
            ),
            regular_keys=np.array([rng.random() for _ in range(nr)]),
            regular_kind=SWR_SAMPLE,
            regular_extra=np.array(
                [rng.randrange(64) for _ in range(nr)], dtype=np.int64
            ),
        )

    @pytest.mark.parametrize("nr,huge", [(5, False), (3, True), (90, False), (80, True)])
    def test_pack_counts_equal_per_message_counts(self, rng, nr, huge):
        pack = self._pack(rng, nr, huge=huge)
        bulk = MessageCounters()
        bulk.record_upstream_pack(pack)
        scalar = MessageCounters()
        for message in pack.messages():
            scalar.record_upstream(message)
        assert bulk.snapshot() == scalar.snapshot()

    def test_messages_carry_sampler_prefix(self):
        pack = MessagePack(
            regular_idents=np.array([5], dtype=np.int64),
            regular_weights=np.array([2.5]),
            regular_keys=np.array([0.125]),
            regular_kind=SWR_SAMPLE,
            regular_extra=np.array([3], dtype=np.int64),
        )
        assert pack.messages() == [Message(SWR_SAMPLE, (3, 5, 2.5, 0.125))]

    def test_default_kind_unchanged(self):
        pack = MessagePack(
            regular_idents=np.array([1], dtype=np.int64),
            regular_weights=np.array([1.0]),
            regular_keys=np.array([2.0]),
        )
        assert pack.regular_kind == REGULAR
        assert pack.messages() == [Message(REGULAR, (1, 1.0, 2.0))]


# ---------------------------------------------------------------------------
# 3. Coordinator pack paths: bulk fold vs sequential replay
# ---------------------------------------------------------------------------


def _assert_pack_equivalent(bulk, seq, pack, state):
    responses_bulk = bulk.on_message_pack(0, pack)
    responses_seq = []
    for message in pack.messages():
        responses_seq.extend(seq.on_message(0, message))
    assert [(d, m.kind, m.payload) for d, m in responses_bulk] == [
        (d, m.kind, m.payload) for d, m in responses_seq
    ]
    assert state(bulk) == state(seq)


class TestSwrCoordinatorPack:
    def _twins(self, s=3, beta=3.0):
        return _SwrCoordinator(s, beta), _SwrCoordinator(s, beta)

    @staticmethod
    def _state(coord):
        return (
            tuple(coord._min_keys),
            tuple((i.ident, i.weight) if i else None for i in coord._slots),
            coord.rounds_announced,
            coord._announced,
        )

    def _pack(self, entries):
        samplers, idents, weights, keys = zip(*entries)
        return MessagePack(
            regular_idents=np.array(idents, dtype=np.int64),
            regular_weights=np.array(weights),
            regular_keys=np.array(keys),
            regular_kind=SWR_SAMPLE,
            regular_extra=np.array(samplers, dtype=np.int64),
        )

    def test_quiet_pack_takes_bulk_path(self):
        bulk, seq = self._twins()
        # Underfull min-keys (one sampler never hit) -> never announces.
        pack = self._pack(
            [(0, 1, 2.0, 0.5), (1, 2, 3.0, 0.25), (0, 3, 1.0, 0.125), (0, 4, 1.0, 0.5)]
        )
        _assert_pack_equivalent(bulk, seq, pack, self._state)
        assert bulk.rounds_announced == 0

    def test_round_crossing_pack_replays(self):
        bulk, seq = self._twins(s=2)
        # Fill both samplers with small keys -> a round announces.
        pack = self._pack(
            [(0, 1, 2.0, 0.099), (1, 2, 3.0, 0.0105), (0, 3, 1.0, 0.001)]
        )
        _assert_pack_equivalent(bulk, seq, pack, self._state)
        assert bulk.rounds_announced >= 1

    def test_tie_first_arrival_wins(self):
        bulk, seq = self._twins()
        pack = self._pack(
            [(0, 10, 2.0, 0.5), (0, 11, 3.0, 0.5), (1, 12, 1.0, 0.75)]
        )
        _assert_pack_equivalent(bulk, seq, pack, self._state)
        assert bulk._slots[0].ident == 10  # strict < keeps the first


class TestUnweightedCoordinatorPack:
    @staticmethod
    def _state(coord):
        return (
            sorted((-k, c, i.ident, i.weight) for k, c, i in coord._heap),
            coord.threshold,
            coord._epoch,
            coord._counter,
        )

    def _pack(self, keys):
        n = len(keys)
        return MessagePack(
            regular_idents=np.arange(100, 100 + n, dtype=np.int64),
            regular_weights=np.ones(n),
            regular_keys=np.array(keys),
        )

    def _warm(self, coord, keys):
        for i, key in enumerate(keys):
            coord.on_message(0, Message(REGULAR, (i, 1.0, key)))

    def test_underfull_pack_replays_exactly(self):
        bulk = _UnweightedCoordinator(4, 2.0)
        seq = _UnweightedCoordinator(4, 2.0)
        pack = self._pack([0.9, 0.3, 0.5])
        _assert_pack_equivalent(bulk, seq, pack, self._state)

    def test_quiet_pack_takes_bulk_path(self):
        bulk = _UnweightedCoordinator(3, 2.0)
        seq = _UnweightedCoordinator(3, 2.0)
        for coord in (bulk, seq):
            self._warm(coord, [0.4, 0.6, 0.45])
        pack = self._pack([0.41, 0.5, 0.44])  # same epoch bracket
        _assert_pack_equivalent(bulk, seq, pack, self._state)

    def test_epoch_crossing_pack_replays(self):
        bulk = _UnweightedCoordinator(2, 2.0)
        seq = _UnweightedCoordinator(2, 2.0)
        for coord in (bulk, seq):
            self._warm(coord, [0.9, 0.8])
        # Keys collapsing the threshold through several brackets.
        pack = self._pack([0.3, 0.04, 0.004])
        _assert_pack_equivalent(bulk, seq, pack, self._state)
        assert bulk._epoch >= 1

    def test_counter_advances_for_rejected_entries(self):
        bulk = _UnweightedCoordinator(2, 2.0)
        seq = _UnweightedCoordinator(2, 2.0)
        for coord in (bulk, seq):
            self._warm(coord, [0.2, 0.3])
        pack = self._pack([0.9, 0.95, 0.25])  # two rejects, one accept
        _assert_pack_equivalent(bulk, seq, pack, self._state)
        assert bulk._counter == 5


class TestL1CoordinatorPack:
    @staticmethod
    def _state(coord):
        return (
            tuple((i.ident, i.weight, k) for i, k in coord.sample_set.entries()),
            coord._exact_duplicated_weight,
            coord._announced_any,
            coord.epochs.epoch,
        )

    def _pack(self, keys, weight=1.0):
        n = len(keys)
        return MessagePack(
            regular_idents=np.arange(n, dtype=np.int64),
            regular_weights=np.full(n, weight),
            regular_keys=np.array(keys),
        )

    def test_exact_phase_accumulates_identically(self):
        bulk = _L1Coordinator(3, 4, 2.0)
        seq = _L1Coordinator(3, 4, 2.0)
        pack = self._pack([0.5, 0.7, 0.6], weight=0.1)
        _assert_pack_equivalent(bulk, seq, pack, self._state)
        assert bulk._exact_duplicated_weight == pytest.approx(0.3)
        assert not bulk._announced_any

    def test_epoch_crossing_pack_replays(self):
        bulk = _L1Coordinator(2, 4, 2.0)
        seq = _L1Coordinator(2, 4, 2.0)
        pack = self._pack([3.0, 5.0, 9.0, 17.0])  # threshold sweeps epochs
        _assert_pack_equivalent(bulk, seq, pack, self._state)
        assert bulk._announced_any


# ---------------------------------------------------------------------------
# 4. Multi-query driver on ColumnarStream
# ---------------------------------------------------------------------------


class TestDriverOnColumnarStream:
    def _catalog(self):
        from repro.query import (
            CountQuery,
            SlidingWindowQuery,
            SubsetSumQuery,
            TotalWeightQuery,
            WeightedMeanQuery,
        )

        return [
            SubsetSumQuery("subset", sample_size=32),
            CountQuery("count", sample_size=32),
            WeightedMeanQuery("wmean", sample_size=24),
            TotalWeightQuery(
                "l1", eps=0.25, delta=0.2, sample_size_override=48,
                duplication_override=16,
            ),
            SlidingWindowQuery("recent", window=5_000, sample_size=16),
        ]

    def _answers(self, driver):
        out = {}
        for compiled in driver.compiled:
            counters = compiled.counters
            out[compiled.name] = (
                repr(compiled.answer()),
                None if counters is None else counters.snapshot(),
            )
        return out

    @pytest.mark.parametrize("engine", ["batched", "columnar"])
    def test_columnar_stream_answers_bit_identical(self, engine):
        from repro.query import MultiQueryDriver, QueryCatalog

        stream = _stream(n=20_000)
        columnar = ColumnarStream.from_distributed(stream)

        def run(s):
            driver = MultiQueryDriver(
                QueryCatalog(self._catalog()), num_sites=16, seed=5, engine=engine
            )
            driver.run(s, checkpoints=[7_000])
            return self._answers(driver)

        assert run(columnar) == run(stream)

    def test_generic_columnar_consumers_match_standalone(self):
        from repro.query import MultiQueryDriver, QueryCatalog, query_seed

        stream = _stream(n=20_000)
        columnar = ColumnarStream.from_distributed(stream)
        driver = MultiQueryDriver(
            QueryCatalog(self._catalog()), num_sites=16, seed=5, engine="columnar"
        )
        driver.run(columnar)
        standalone = DistributedUnweightedSWOR(
            16, 32, seed=query_seed(5, "count"), engine="columnar"
        )
        counters = standalone.run(stream)
        assert standalone.sample_with_keys() == driver[
            "count"
        ].protocol.sample_with_keys()
        assert counters.snapshot() == driver["count"].counters.snapshot()
        swr = DistributedWeightedSWR(
            16, 24, seed=query_seed(5, "wmean"), engine="columnar"
        )
        swr_counters = swr.run(stream)
        assert [(i.ident, i.weight) for i in swr.sample()] == [
            (i.ident, i.weight) for i in driver["wmean"].protocol.sample()
        ]
        assert swr_counters.snapshot() == driver["wmean"].counters.snapshot()

    def test_sliding_window_consumes_timestamp_column(self):
        from repro.query import MultiQueryDriver, QueryCatalog, SlidingWindowQuery

        stream = _stream(n=8_000)
        assignment, weights, idents = stream.arrays()
        with_ts = ColumnarStream(
            idents, weights, assignment, stream.num_sites,
            timestamps=np.arange(len(stream), dtype=np.float64) * 0.5,
        )
        driver = MultiQueryDriver(
            QueryCatalog([SlidingWindowQuery("recent", window=2_000)]),
            num_sites=16,
            seed=5,
            engine="columnar",
        )
        driver.run(with_ts)
        sampler = driver["recent"].sampler
        assert sampler.items_seen == 8_000
        for entry in sampler._entries:
            assert entry.timestamp == entry.index * 0.5
        # Timestamp-suffix queries need full retention; the query's
        # horizon-bounded sampler refuses rather than answering wrong.
        from repro.common.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            sampler.sample_since(100.0)

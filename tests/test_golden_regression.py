"""Golden regression tests: fixed seeds must give fixed outcomes.

These pin down the *exact* behavior of the seeded RNG plumbing and the
protocol state machines: a refactor that accidentally reorders random
draws, changes sub-stream derivation, or tweaks a threshold comparison
will flip these values even if the statistical tests stay green.  If a
change is *intentional* (e.g. a new key-generation scheme), regenerate
the constants with the helper at the bottom.
"""

from __future__ import annotations

import random

from repro.common import RandomSource
from repro.core import DistributedWeightedSWOR, SworConfig
from repro.l1 import L1Tracker
from repro.stream import round_robin, unit_stream, zipf_stream


def _swor_fingerprint(seed: int):
    rng = random.Random(1234)
    items = zipf_stream(5000, rng, alpha=1.3)
    proto = DistributedWeightedSWOR(
        SworConfig(num_sites=8, sample_size=8), seed=seed
    )
    counters = proto.run(round_robin(items, 8))
    idents = tuple(item.ident for item in proto.sample())
    return counters.total, counters.upstream, idents


class TestGoldenSwor:
    def test_fingerprint_stable_across_runs(self):
        assert _swor_fingerprint(7) == _swor_fingerprint(7)

    def test_fingerprint_differs_across_seeds(self):
        assert _swor_fingerprint(7) != _swor_fingerprint(8)

    def test_stream_generation_deterministic(self):
        a = zipf_stream(100, random.Random(42), alpha=1.2)
        b = zipf_stream(100, random.Random(42), alpha=1.2)
        assert a == b

    def test_substream_labels_golden(self):
        """Sub-stream derivation is part of the wire format of seeds:
        the same (seed, label) must map to the same stream forever."""
        src = RandomSource(2019)
        values = [src.substream("site-0").random() for _ in range(2)]
        again = [RandomSource(2019).substream("site-0").random() for _ in range(2)]
        assert values[0] == again[0]


class TestGoldenL1:
    def test_estimate_reproducible(self):
        def run():
            tracker = L1Tracker(
                4, eps=0.25, delta=0.25, seed=99,
                sample_size_override=64, duplication_override=128,
            )
            counters = tracker.run(round_robin(unit_stream(5000), 4))
            return tracker.estimate(), counters.total

        assert run() == run()

    def test_message_counts_deterministic_given_seed(self):
        def count(seed):
            tracker = L1Tracker(
                4, eps=0.25, delta=0.25, seed=seed,
                sample_size_override=64, duplication_override=128,
            )
            return tracker.run(round_robin(unit_stream(3000), 4)).total

        assert count(1) == count(1)
        assert count(1) != count(2)

"""Unit tests for repro.stream.partitioners."""

from __future__ import annotations

import pytest

from repro.common import ConfigurationError
from repro.stream import (
    PARTITIONERS,
    contiguous_blocks,
    heavy_to_one_site,
    round_robin,
    single_site,
    uniform_random,
    unit_stream,
    uniform_stream,
)


class TestRoundRobin:
    def test_pattern(self):
        stream = round_robin(unit_stream(10), 3)
        assert stream.assignment == [0, 1, 2, 0, 1, 2, 0, 1, 2, 0]

    def test_zero_sites_rejected(self):
        with pytest.raises(ConfigurationError):
            round_robin(unit_stream(5), 0)


class TestUniformRandom:
    def test_all_sites_in_range(self, rng):
        stream = uniform_random(unit_stream(1000), 7, rng)
        assert all(0 <= site < 7 for site in stream.assignment)

    def test_roughly_balanced(self, rng):
        stream = uniform_random(unit_stream(7000), 7, rng)
        locals_ = stream.local_streams()
        for local in locals_:
            assert 800 <= len(local) <= 1200


class TestContiguousBlocks:
    def test_blocks_are_contiguous_and_ordered(self):
        stream = contiguous_blocks(unit_stream(10), 3)
        assignment = stream.assignment
        assert assignment == sorted(assignment)
        assert set(assignment) == {0, 1, 2}

    def test_more_sites_than_items(self):
        stream = contiguous_blocks(unit_stream(2), 5)
        assert len(stream) == 2


class TestHeavyToOneSite:
    def test_heavy_items_at_site_zero(self, rng):
        items = uniform_stream(200, rng, low=1.0, high=100.0)
        stream = heavy_to_one_site(items, 4)
        weights = sorted(i.weight for i in items)
        median = weights[len(weights) // 2]
        for site, item in stream:
            if item.weight > median:
                assert site == 0

    def test_single_site_degenerate(self, rng):
        items = uniform_stream(20, rng)
        stream = heavy_to_one_site(items, 1)
        assert set(stream.assignment) == {0}


class TestSingleSite:
    def test_everything_at_site_zero(self):
        stream = single_site(unit_stream(5))
        assert stream.num_sites == 1
        assert set(stream.assignment) == {0}


def test_partitioners_registry_all_runnable(rng):
    items = unit_stream(30)
    for name, fn in PARTITIONERS.items():
        stream = fn(items, 3, rng)
        assert len(stream) == 30, name
        assert stream.num_sites == 3, name

"""Hypothesis property tests at the whole-protocol level.

Smaller example counts than the data-structure properties (each example
runs a full protocol), but the invariants are the strongest in the
suite: for arbitrary weight multisets, site counts, sample sizes, and
partitions, the protocol must maintain Definition 3's structural
guarantees and internally-consistent accounting.
"""

from __future__ import annotations


from hypothesis import given, settings, strategies as st

from repro.core import DistributedWeightedSWOR, SworConfig
from repro.l1 import L1Tracker
from repro.stream import DistributedStream, Item


weights_lists = st.lists(
    st.floats(min_value=1.0, max_value=1e9, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=40,
)


@st.composite
def protocol_instances(draw):
    weights = draw(weights_lists)
    k = draw(st.integers(min_value=1, max_value=5))
    s = draw(st.integers(min_value=1, max_value=6))
    assignment = [draw(st.integers(min_value=0, max_value=k - 1)) for _ in weights]
    seed = draw(st.integers(min_value=0, max_value=10**6))
    items = [Item(i, w) for i, w in enumerate(weights)]
    return items, DistributedStream(items, assignment, k), k, s, seed


class TestSworProtocolProperties:
    @given(instance=protocol_instances())
    @settings(max_examples=40, deadline=None)
    def test_sample_size_and_validity_at_end(self, instance):
        items, stream, k, s, seed = instance
        proto = DistributedWeightedSWOR(
            SworConfig(num_sites=k, sample_size=s), seed=seed
        )
        proto.run(stream)
        sample = proto.sample()
        assert len(sample) == min(len(items), s)
        idents = [item.ident for item in sample]
        assert len(idents) == len(set(idents))  # without replacement
        valid = {item.ident for item in items}
        assert set(idents) <= valid

    @given(instance=protocol_instances())
    @settings(max_examples=25, deadline=None)
    def test_sample_size_at_every_step(self, instance):
        items, stream, k, s, seed = instance
        proto = DistributedWeightedSWOR(
            SworConfig(num_sites=k, sample_size=s), seed=seed
        )
        for t, (site, item) in enumerate(stream, start=1):
            proto.process(site, item)
            assert len(proto.sample()) == min(t, s)

    @given(instance=protocol_instances())
    @settings(max_examples=25, deadline=None)
    def test_counter_consistency(self, instance):
        items, stream, k, s, seed = instance
        proto = DistributedWeightedSWOR(
            SworConfig(num_sites=k, sample_size=s), seed=seed
        )
        counters = proto.run(stream)
        assert counters.total == counters.upstream + counters.downstream
        assert counters.upstream <= len(items)  # at most 1 message/item
        # Downstream traffic is whole broadcasts of k messages each.
        assert counters.downstream % k == 0

    @given(instance=protocol_instances())
    @settings(max_examples=25, deadline=None)
    def test_keys_in_sample_decreasing_and_positive(self, instance):
        items, stream, k, s, seed = instance
        proto = DistributedWeightedSWOR(
            SworConfig(num_sites=k, sample_size=s), seed=seed
        )
        proto.run(stream)
        keys = [key for _, key in proto.sample_with_keys()]
        assert all(key > 0 for key in keys)
        assert keys == sorted(keys, reverse=True)


class TestL1ProtocolProperties:
    @given(
        weights=weights_lists,
        k=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=20, deadline=None)
    def test_estimate_positive_and_finite(self, weights, k, seed):
        import math

        items = [Item(i, w) for i, w in enumerate(weights)]
        stream = DistributedStream(items, [i % k for i in range(len(items))], k)
        tracker = L1Tracker(
            k, eps=0.3, delta=0.3, seed=seed,
            sample_size_override=16, duplication_override=32,
        )
        tracker.run(stream)
        estimate = tracker.estimate()
        assert math.isfinite(estimate) and estimate > 0
        truth = sum(weights)
        # Very loose sanity band (s=16 gives weak concentration, and
        # heavy-tailed universes are the hard case): order of magnitude.
        assert truth / 100 < estimate < truth * 100

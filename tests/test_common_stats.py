"""Unit tests for repro.common.stats."""

from __future__ import annotations

import math
import random

import pytest

from repro.common import ConfigurationError
from repro.common.stats import (
    chi_square_pvalue,
    chi_square_statistic,
    empirical_inclusion_frequencies,
    ks_statistic,
    mean_and_variance,
    relative_error,
    total_variation,
    within_relative_error,
)


class TestChiSquare:
    def test_perfect_fit_zero(self):
        obs = {"a": 10, "b": 20}
        exp = {"a": 10.0, "b": 20.0}
        stat, df = chi_square_statistic(obs, exp)
        assert stat == 0.0 and df == 1

    def test_hand_computed(self):
        obs = {"a": 12, "b": 8}
        exp = {"a": 10.0, "b": 10.0}
        stat, _ = chi_square_statistic(obs, exp)
        assert stat == pytest.approx(0.4 + 0.4)

    def test_zero_expected_with_observation_is_infinite(self):
        stat, _ = chi_square_statistic({"a": 1}, {"a": 0.0, "b": 1.0})
        assert math.isinf(stat)
        assert chi_square_pvalue(stat, 1) == 0.0

    def test_pvalue_uniform_under_null(self):
        """A fair die's chi-square p-value should usually be large."""
        rng = random.Random(1)
        n = 6000
        counts = {}
        for _ in range(n):
            f = rng.randrange(6)
            counts[f] = counts.get(f, 0) + 1
        expected = {f: n / 6 for f in range(6)}
        stat, df = chi_square_statistic(counts, expected)
        assert chi_square_pvalue(stat, df) > 0.001

    def test_pvalue_rejects_bad_fit(self):
        stat, df = chi_square_statistic(
            {"a": 100, "b": 0}, {"a": 50.0, "b": 50.0}
        )
        assert chi_square_pvalue(stat, df) < 1e-6


class TestTotalVariation:
    def test_identical_zero(self):
        assert total_variation({"a": 0.5, "b": 0.5}, {"a": 0.5, "b": 0.5}) == 0.0

    def test_disjoint_one(self):
        assert total_variation({"a": 1.0}, {"b": 1.0}) == pytest.approx(1.0)

    def test_symmetric(self):
        p = {"a": 0.7, "b": 0.3}
        q = {"a": 0.4, "b": 0.6}
        assert total_variation(p, q) == pytest.approx(total_variation(q, p))


class TestKs:
    def test_exact_uniform_sample(self):
        sample = [i / 100 for i in range(1, 101)]
        stat = ks_statistic(sample, lambda x: min(max(x, 0.0), 1.0))
        assert stat < 0.02

    def test_bad_fit_detected(self):
        sample = [0.9] * 100
        stat = ks_statistic(sample, lambda x: min(max(x, 0.0), 1.0))
        assert stat > 0.5

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            ks_statistic([], lambda x: x)


class TestEmpiricalInclusion:
    def test_counts_fractions(self):
        freqs = empirical_inclusion_frequencies([["a", "b"], ["a"], ["a", "c"]])
        assert freqs["a"] == pytest.approx(1.0)
        assert freqs["b"] == pytest.approx(1 / 3)
        assert freqs["c"] == pytest.approx(1 / 3)

    def test_duplicates_within_trial_counted_once(self):
        freqs = empirical_inclusion_frequencies([["a", "a"]])
        assert freqs["a"] == pytest.approx(1.0)

    def test_no_trials_rejected(self):
        with pytest.raises(ConfigurationError):
            empirical_inclusion_frequencies([])


class TestRelativeError:
    def test_basic(self):
        assert relative_error(110, 100) == pytest.approx(0.1)
        assert within_relative_error(95, 100, 0.1)
        assert not within_relative_error(80, 100, 0.1)

    def test_zero_truth_rejected(self):
        with pytest.raises(ConfigurationError):
            relative_error(1.0, 0.0)


class TestMeanVariance:
    def test_known_values(self):
        mean, var = mean_and_variance([1.0, 2.0, 3.0])
        assert mean == pytest.approx(2.0)
        assert var == pytest.approx(1.0)

    def test_single_value(self):
        mean, var = mean_and_variance([5.0])
        assert mean == 5.0 and var == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            mean_and_variance([])

"""Tests for the sampler-certification harness (and, through it, the
continuous mid-stream guarantee of every SWOR implementation)."""

from __future__ import annotations

import random

import pytest

from repro.analysis import certify_swor
from repro.centralized import UnweightedReservoir, WeightedReservoirSWOR
from repro.common import ConfigurationError
from repro.core import DistributedWeightedSWOR, SworConfig
from repro.extensions import CascadeWeightedSWOR
from repro.stream import Item

WEIGHTS = [1.0, 2.0, 4.0, 8.0, 3.0, 32.0]


class TestCertifyCentralized:
    def test_es_sampler_passes(self):
        result = certify_swor(
            lambda seed: WeightedReservoirSWOR(2, random.Random(seed)),
            WEIGHTS,
            sample_size=2,
            trials=3000,
        )
        assert result.passed, result.summary()
        assert result.tv_distance < 0.05

    def test_cascade_passes(self):
        result = certify_swor(
            lambda seed: CascadeWeightedSWOR(2, random.Random(seed)),
            WEIGHTS,
            sample_size=2,
            trials=3000,
        )
        assert result.passed, result.summary()

    def test_biased_sampler_fails(self):
        """An unweighted reservoir ignores weights — certification must
        catch it on a skewed universe."""
        result = certify_swor(
            lambda seed: UnweightedReservoir(2, random.Random(seed)),
            WEIGHTS,
            sample_size=2,
            trials=3000,
        )
        assert not result.passed

    def test_wrong_sample_size_fails_fast(self):
        class Undersized:
            def __init__(self, seed):
                self._rng = random.Random(seed)

            def insert(self, item):
                pass

            def sample(self):
                return [Item(0, 1.0)]  # always 1 item instead of 2

        result = certify_swor(
            lambda seed: Undersized(seed), WEIGHTS, sample_size=2, trials=10
        )
        assert not result.passed and result.pvalue == 0.0


class TestCertifyDistributed:
    def test_distributed_protocol_passes(self):
        result = certify_swor(
            lambda seed: DistributedWeightedSWOR(
                SworConfig(num_sites=3, sample_size=2), seed=seed
            ),
            WEIGHTS,
            sample_size=2,
            trials=3000,
            num_sites=3,
        )
        assert result.passed, result.summary()

    def test_mid_stream_prefix_certified(self):
        """Definition 3's continuous guarantee: the sample is a valid
        SWOR of the *prefix* at an interior time step, even while some
        items are still withheld in level sets."""
        result = certify_swor(
            lambda seed: DistributedWeightedSWOR(
                SworConfig(num_sites=2, sample_size=2), seed=seed
            ),
            WEIGHTS,
            sample_size=2,
            trials=3000,
            num_sites=2,
            prefix=4,
        )
        assert result.passed, result.summary()

    def test_prefix_shorter_than_sample(self):
        result = certify_swor(
            lambda seed: DistributedWeightedSWOR(
                SworConfig(num_sites=2, sample_size=4), seed=seed
            ),
            WEIGHTS,
            sample_size=4,
            trials=400,
            num_sites=2,
            prefix=2,
        )
        # min(t, s) = 2 items expected; law over 2 items, s_eff=2.
        assert result.sample_size == 2
        assert result.passed, result.summary()


class TestValidationErrors:
    def test_universe_too_large(self):
        with pytest.raises(ConfigurationError):
            certify_swor(
                lambda seed: WeightedReservoirSWOR(2, random.Random(seed)),
                [1.0] * 20,
                sample_size=2,
            )

    def test_bad_prefix(self):
        with pytest.raises(ConfigurationError):
            certify_swor(
                lambda seed: WeightedReservoirSWOR(2, random.Random(seed)),
                WEIGHTS,
                sample_size=2,
                prefix=0,
            )

    def test_summary_format(self):
        result = certify_swor(
            lambda seed: WeightedReservoirSWOR(1, random.Random(seed)),
            [1.0, 5.0],
            sample_size=1,
            trials=500,
        )
        assert "p=" in result.summary()
        assert result.summary().startswith(("PASS", "FAIL"))

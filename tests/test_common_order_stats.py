"""Unit tests for repro.common.order_stats (Proposition 1 machinery)."""

from __future__ import annotations

import math
import random
from collections import Counter

import pytest

from repro.common import ConfigurationError
from repro.common.order_stats import (
    anti_ranks,
    exact_swor_inclusion_probabilities,
    exact_swor_ordered_probability,
    harmonic_partial,
    sample_kth_key_nagaraja,
    sample_top_keys_direct,
)


class TestAntiRanks:
    def test_sorted_descending(self):
        keys = [3.0, 1.0, 5.0, 2.0]
        assert anti_ranks(keys) == [2, 0, 3, 1]

    def test_ties_break_by_index(self):
        assert anti_ranks([1.0, 1.0, 2.0]) == [2, 0, 1]

    def test_empty(self):
        assert anti_ranks([]) == []


class TestExactInclusion:
    def test_probabilities_sum_to_sample_size(self):
        for s in range(0, 5):
            probs = exact_swor_inclusion_probabilities([1, 2, 3, 4], s)
            assert math.isclose(sum(probs), min(s, 4), rel_tol=1e-9)

    def test_single_draw_proportional_to_weight(self):
        probs = exact_swor_inclusion_probabilities([1, 2, 3], 1)
        assert probs == pytest.approx([1 / 6, 2 / 6, 3 / 6])

    def test_full_sample_probability_one(self):
        probs = exact_swor_inclusion_probabilities([5, 1, 9], 3)
        assert probs == pytest.approx([1.0, 1.0, 1.0])

    def test_monotone_in_weight(self):
        probs = exact_swor_inclusion_probabilities([1, 2, 4, 8], 2)
        assert probs == sorted(probs)

    def test_matches_monte_carlo(self):
        """Brute-force sequential sampling agrees with the recursion."""
        weights = [1.0, 3.0, 6.0, 2.0]
        s = 2
        exact = exact_swor_inclusion_probabilities(weights, s)
        rng = random.Random(11)
        counts = Counter()
        trials = 40000
        for _ in range(trials):
            remaining = list(range(len(weights)))
            for _draw in range(s):
                total = sum(weights[i] for i in remaining)
                x = rng.random() * total
                acc = 0.0
                for idx, i in enumerate(remaining):
                    acc += weights[i]
                    if x < acc:
                        counts[i] += 1
                        remaining.pop(idx)
                        break
        for i, p in enumerate(exact):
            assert abs(counts[i] / trials - p) < 0.01

    def test_invalid_weight_rejected(self):
        with pytest.raises(ConfigurationError):
            exact_swor_inclusion_probabilities([1, 0], 1)

    def test_negative_sample_size_rejected(self):
        with pytest.raises(ConfigurationError):
            exact_swor_inclusion_probabilities([1, 2], -1)


class TestOrderedProbability:
    def test_hand_computed(self):
        # Draw order (1, 0) from weights (1, 3): 3/4 * 1/1.
        p = exact_swor_ordered_probability([1.0, 3.0], [1, 0])
        assert p == pytest.approx(0.75)

    def test_all_orders_sum_to_one(self):
        import itertools

        weights = [1.0, 2.0, 5.0]
        total = sum(
            exact_swor_ordered_probability(weights, perm)
            for perm in itertools.permutations(range(3), 2)
        )
        # Sum over all ordered pairs of the first two draws is 1.
        assert total == pytest.approx(1.0)

    def test_invalid_weight_rejected(self):
        with pytest.raises(ConfigurationError):
            exact_swor_ordered_probability([1.0, -2.0], [1])


class TestNagarajaRepresentation:
    def test_matches_direct_sampling_mean(self):
        """E[v_D(1)] via the representation matches direct key maxima.

        Proposition 1's second bullet says the two routes are equal in
        distribution; we compare means over many draws.
        """
        weights = [2.0, 5.0, 3.0]
        rng = random.Random(3)
        trials = 30000
        direct = []
        for _ in range(trials):
            _, keys = sample_top_keys_direct(weights, 1, rng)
            direct.append(keys[0])
        rep = [
            sample_kth_key_nagaraja(weights, [0], rng) for _ in range(trials)
        ]
        # v_D(1) = W / E1 has infinite mean; compare medians instead.
        direct.sort()
        rep.sort()
        med_direct = direct[trials // 2]
        med_rep = rep[trials // 2]
        assert abs(med_direct - med_rep) / med_direct < 0.05

    def test_requires_prefix(self, rng):
        with pytest.raises(ConfigurationError):
            sample_kth_key_nagaraja([1.0, 2.0], [], rng)

    def test_top_keys_direct_shapes(self, rng):
        ids, keys = sample_top_keys_direct([1, 2, 3, 4], 2, rng)
        assert len(ids) == 2 and len(keys) == 2
        assert keys[0] >= keys[1]

    def test_top_keys_clamps_sample_size(self, rng):
        ids, keys = sample_top_keys_direct([1, 2], 10, rng)
        assert len(ids) == 2


class TestHarmonic:
    def test_small_values_exact(self):
        assert harmonic_partial(1) == pytest.approx(1.0)
        assert harmonic_partial(3) == pytest.approx(1 + 0.5 + 1 / 3)

    def test_asymptotic_branch_continuous(self):
        exact = sum(1.0 / i for i in range(1, 101))
        assert abs(harmonic_partial(100) - exact) < 1e-6

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            harmonic_partial(-1)

"""Unit + statistical tests for repro.centralized samplers."""

from __future__ import annotations

import random
from collections import Counter

import pytest

from repro.common import (
    ConfigurationError,
    InvalidWeightError,
    chi_square_pvalue,
    chi_square_statistic,
    exact_swor_inclusion_probabilities,
)
from repro.centralized import (
    PrioritySampler,
    SkipWeightedReservoirSWOR,
    UnweightedReservoir,
    WeightedReservoirSWR,
    WeightedReservoirSWOR,
)
from repro.stream import Item


WEIGHTS = [1.0, 2.0, 4.0, 8.0, 3.0, 6.0]


def _run_swor_trials(sampler_cls, s, trials, seed0):
    counts = Counter()
    for t in range(trials):
        rng = random.Random(seed0 + t)
        sampler = sampler_cls(s, rng)
        for i, w in enumerate(WEIGHTS):
            sampler.insert(Item(i, w))
        for item in sampler.sample():
            counts[item.ident] += 1
    return counts


class TestWeightedReservoirSWOR:
    def test_sample_size_is_min_n_s(self, rng):
        sampler = WeightedReservoirSWOR(10, rng)
        for i in range(4):
            sampler.insert(Item(i, 1.0 + i))
        assert len(sampler) == 4
        for i in range(4, 20):
            sampler.insert(Item(i, 1.0))
        assert len(sampler) == 10

    def test_threshold_zero_until_full_then_monotone(self, rng):
        sampler = WeightedReservoirSWOR(3, rng)
        thresholds = []
        for i in range(20):
            sampler.insert(Item(i, 2.0))
            thresholds.append(sampler.threshold)
        assert thresholds[0] == 0.0 and thresholds[1] == 0.0
        full_part = thresholds[2:]
        assert all(b >= a for a, b in zip(full_part, full_part[1:]))

    def test_sample_sorted_by_key(self, rng):
        sampler = WeightedReservoirSWOR(5, rng)
        for i in range(50):
            sampler.insert(Item(i, 1.0 + i % 7))
        keys = [k for _, k in sampler.sample_with_keys()]
        assert keys == sorted(keys, reverse=True)

    def test_invalid_weight_rejected(self, rng):
        sampler = WeightedReservoirSWOR(2, rng)
        with pytest.raises(InvalidWeightError):
            sampler.insert(Item(0, 0.0))
        with pytest.raises(InvalidWeightError):
            sampler.insert(Item(0, float("nan")))

    def test_invalid_sample_size_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            WeightedReservoirSWOR(0, rng)

    def test_distribution_matches_exact_law(self):
        """Chi-square of inclusion counts vs Definition 1 probabilities."""
        s, trials = 2, 6000
        counts = _run_swor_trials(WeightedReservoirSWOR, s, trials, 1000)
        exact = exact_swor_inclusion_probabilities(WEIGHTS, s)
        expected = {i: trials * p for i, p in enumerate(exact)}
        stat, df = chi_square_statistic(counts, expected)
        assert chi_square_pvalue(stat, df) > 1e-4

    def test_offer_with_key_external(self, rng):
        sampler = WeightedReservoirSWOR(2, rng)
        sampler.offer_with_key(Item(0, 1.0), 10.0)
        sampler.offer_with_key(Item(1, 1.0), 20.0)
        assert sampler.offer_with_key(Item(2, 1.0), 5.0) is None
        assert [i.ident for i in sampler.sample()] == [1, 0]


class TestSkipWeightedReservoirSWOR:
    def test_same_law_as_plain(self):
        """A-ExpJ must match the plain sampler's inclusion law."""
        s, trials = 2, 6000
        counts = _run_swor_trials(SkipWeightedReservoirSWOR, s, trials, 5000)
        exact = exact_swor_inclusion_probabilities(WEIGHTS, s)
        expected = {i: trials * p for i, p in enumerate(exact)}
        stat, df = chi_square_statistic(counts, expected)
        assert chi_square_pvalue(stat, df) > 1e-4

    def test_sample_size(self, rng):
        sampler = SkipWeightedReservoirSWOR(4, rng)
        for i in range(100):
            sampler.insert(Item(i, 1.0 + (i % 5)))
        assert len(sampler) == 4

    def test_threshold_monotone(self, rng):
        sampler = SkipWeightedReservoirSWOR(3, rng)
        last = 0.0
        for i in range(200):
            sampler.insert(Item(i, 1.0))
            assert sampler.threshold >= last
            last = sampler.threshold

    def test_invalid_weight_rejected(self, rng):
        sampler = SkipWeightedReservoirSWOR(2, rng)
        with pytest.raises(InvalidWeightError):
            sampler.insert(Item(0, -3.0))


class TestUnweightedReservoir:
    def test_uniformity(self):
        n, s, trials = 8, 3, 8000
        counts = Counter()
        for t in range(trials):
            rng = random.Random(t)
            res = UnweightedReservoir(s, rng)
            for i in range(n):
                res.insert(Item(i, 1.0))
            for item in res.sample():
                counts[item.ident] += 1
        expected = {i: trials * s / n for i in range(n)}
        stat, df = chi_square_statistic(counts, expected)
        assert chi_square_pvalue(stat, df) > 1e-4

    def test_prefix_smaller_than_s(self, rng):
        res = UnweightedReservoir(5, rng)
        res.insert(Item(0, 1.0))
        assert len(res) == 1


class TestWeightedReservoirSWR:
    def test_each_slot_weighted(self):
        weights = [1.0, 3.0, 6.0]
        trials = 5000
        counts = Counter()
        s = 4
        for t in range(trials):
            rng = random.Random(t + 999)
            swr = WeightedReservoirSWR(s, rng)
            for i, w in enumerate(weights):
                swr.insert(Item(i, w))
            for item in swr.sample():
                counts[item.ident] += 1
        total = sum(weights)
        expected = {i: trials * s * w / total for i, w in enumerate(weights)}
        stat, df = chi_square_statistic(counts, expected)
        assert chi_square_pvalue(stat, df) > 1e-4

    def test_collapses_onto_giants(self):
        """The motivating failure: with-replacement samples only giants."""
        rng = random.Random(4)
        swr = WeightedReservoirSWR(10, rng)
        for i in range(100):
            swr.insert(Item(i, 1.0))
        swr.insert(Item(100, 1e9))
        swr.insert(Item(101, 1e9))
        idents = {item.ident for item in swr.sample()}
        assert idents <= {100, 101}

    def test_invalid_weight_rejected(self, rng):
        with pytest.raises(InvalidWeightError):
            WeightedReservoirSWR(2, rng).insert(Item(0, 0.0))


class TestPrioritySampler:
    def test_subset_sum_unbiased(self):
        """Mean estimate over trials approaches the true subset sum."""
        items = [Item(i, 1.0 + (i % 10)) for i in range(60)]
        truth = sum(it.weight for it in items if it.ident % 2 == 0)
        trials = 1500
        total = 0.0
        for t in range(trials):
            rng = random.Random(t)
            ps = PrioritySampler(12, rng)
            for it in items:
                ps.insert(it)
            total += ps.subset_sum(lambda it: it.ident % 2 == 0)
        mean = total / trials
        assert abs(mean - truth) / truth < 0.08

    def test_total_weight_estimate(self, rng):
        items = [Item(i, 2.0) for i in range(40)]
        ps = PrioritySampler(40, rng)
        for it in items:
            ps.insert(it)
        # sample size >= n: estimate is exact.
        assert ps.total_weight_estimate() == pytest.approx(80.0)

    def test_len_capped(self, rng):
        ps = PrioritySampler(5, rng)
        for i in range(50):
            ps.insert(Item(i, 1.0))
        assert len(ps) == 5

    def test_invalid_weight_rejected(self, rng):
        with pytest.raises(InvalidWeightError):
            PrioritySampler(2, rng).insert(Item(0, float("inf")))

"""Chaos suite: injected faults against the sharded runtime.

What is covered:

1. **FaultPlan semantics** — parse/str round-trips, retirement on
   fire, the worker wire form, respawn-failure consumption, and the
   seeded single-fault generator.
2. **Lockstep recovery** — every worker-side fault kind, across worker
   and window positions: the run stays bit-identical to the columnar
   engine (samples AND message counters), finishes in ``"sharded"``
   mode with the expected fault class and restart count, and leaks no
   processes or shared-memory segments.
3. **Pipelined degradation** — the same kinds (plus ``stall_ack``)
   under speculation: no in-place recovery exists there, so the run
   must land on the lockstep rung, still bit-identical.
4. **Exhaustion** — a zero restart budget or injected respawn failures
   walk the ladder to the in-process columnar engine; the run is still
   bit-identical and never hangs.
5. **Error surface** — ``ShardedWorkerError``'s structured context and
   message format, pinned (dashboards and scripts parse it).
6. **Property** — a seeded, uniformly drawn single fault (hypothesis)
   always yields a bit-identical recovered run.

Every fault here is declarative and seeded (see
:mod:`repro.faults`): no wall-clock triggers, no global RNG, so a
failing example replays exactly.
"""

from __future__ import annotations

import glob
import multiprocessing
import random
from types import SimpleNamespace

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.common.errors import ConfigurationError
from repro.core import DistributedWeightedSWOR, SworConfig
from repro.faults import (
    FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    corrupt_descriptors,
    fault_action,
    parse_fault_plan,
)
from repro.runtime import ColumnarEngine, ShardedEngine, ShardedWorkerError
from repro.runtime.interfaces import SiteAlgorithm
from repro.stream import round_robin, zipf_stream

np = pytest.importorskip("numpy")

SITES = 8
SAMPLE = 4
SEED = 3
ITEMS = 12_000
BATCH = 1024
WORKERS = 3
#: Windows in the run above (ceil(ITEMS / BATCH)); plans target [0, 4).
TIMEOUT = 2.0


def _stream(n=ITEMS, seed=0, sites=SITES):
    return round_robin(zipf_stream(n, random.Random(seed), alpha=1.2), sites)


def _run(engine, n=ITEMS):
    proto = DistributedWeightedSWOR(
        SworConfig(num_sites=SITES, sample_size=SAMPLE),
        seed=SEED,
        engine=engine,
    )
    proto.run(_stream(n))
    return (
        [(i.ident, i.weight, k) for i, k in proto.sample_with_keys()],
        proto.counters.snapshot(),
    )


_REFERENCE = {}


def _reference(n=ITEMS):
    """The fault-free columnar fingerprint every chaos run must match."""
    if n not in _REFERENCE:
        _REFERENCE[n] = _run(ColumnarEngine(batch_size=BATCH), n)
    return _REFERENCE[n]


def _chaos_run(fault_plan, pipeline="off", n=ITEMS, **kwargs):
    engine = ShardedEngine(
        batch_size=BATCH,
        workers=WORKERS,
        pipeline=pipeline,
        fault_plan=fault_plan,
        worker_timeout=TIMEOUT,
        **kwargs,
    )
    try:
        fingerprint = _run(engine, n)
        stats = engine.last_run_stats
    finally:
        engine.close()
    return fingerprint, stats


class FaultySite(SiteAlgorithm):
    """A site whose columnar pass raises — drives the ``"error"``
    fault class (module-level so it pickles into spawn workers)."""

    def on_item(self, item):
        return []

    def on_columns(self, idents, weights, prep=None):
        raise RuntimeError("faulty-site-exploded")

    def on_control(self, message):
        pass


def _assert_no_orphans(before):
    for child in multiprocessing.active_children():
        child.join(timeout=10)
    assert multiprocessing.active_children() == []
    assert set(glob.glob("/dev/shm/psm_*")) <= before


# ---------------------------------------------------------------------------
# 1. FaultPlan semantics
# ---------------------------------------------------------------------------


class TestFaultPlan:
    def test_parse_str_round_trip(self):
        text = "kill:1:2,corrupt:0:3,respawn:1:2"
        plan = parse_fault_plan(text)
        assert str(plan) == text
        assert plan.entries[0] == FaultSpec("kill", 1, 2)
        assert parse_fault_plan(str(plan)) == plan

    @pytest.mark.parametrize(
        "bad", ["boom:0:0", "kill:0", "kill:a:0", "kill:-1:0", "kill:0:-1"]
    )
    def test_rejects_malformed_entries(self, bad):
        with pytest.raises(ConfigurationError):
            parse_fault_plan(bad)

    def test_wire_for_excludes_other_workers_and_respawn(self):
        plan = parse_fault_plan("kill:1:2,drop:0:1,respawn:1:3")
        assert plan.wire_for(1) == (("kill", 2),)
        assert plan.wire_for(0) == (("drop", 1),)
        assert plan.wire_for(2) == ()

    def test_mark_fired_retires_window_prefix(self):
        plan = parse_fault_plan("kill:1:2,corrupt:1:5,drop:0:2")
        plan.mark_fired(1, 2)
        assert plan.wire_for(1) == (("corrupt", 5),)
        assert plan.wire_for(0) == (("drop", 2),)
        plan.mark_fired(1, None)  # retire all of worker 1's entries
        assert plan.wire_for(1) == ()

    def test_mark_fired_keeps_respawn_entries(self):
        plan = parse_fault_plan("kill:1:2,respawn:1:1")
        plan.mark_fired(1, None)
        assert plan.take_respawn_failure(1) is True
        assert plan.take_respawn_failure(1) is False

    def test_take_respawn_failure_counts_down(self):
        plan = parse_fault_plan("respawn:0:2")
        assert plan.take_respawn_failure(0) is True
        assert plan.take_respawn_failure(0) is True
        assert plan.take_respawn_failure(0) is False
        assert plan.take_respawn_failure(1) is False

    def test_single_is_seeded_and_in_range(self):
        a = FaultPlan.single(7, workers=3, windows=4)
        assert a == FaultPlan.single(7, workers=3, windows=4)
        (spec,) = a.entries
        assert spec.kind in FAULT_KINDS
        assert 0 <= spec.worker < 3
        assert 0 <= spec.window < 4

    def test_clone_is_independent(self):
        plan = parse_fault_plan("kill:1:2")
        clone = plan.clone()
        clone.mark_fired(1, None)
        assert plan.wire_for(1) == (("kill", 2),)

    def test_fault_action_matches_kind_and_window(self):
        faults = (("kill", 2), ("corrupt", 3))
        assert fault_action(faults, 2, ("kill", "hang")) == "kill"
        assert fault_action(faults, 3, ("kill", "hang")) is None
        assert fault_action(faults, 3, ("corrupt", "truncate")) == "corrupt"
        assert fault_action(None, 2, ("kill",)) is None

    def test_corrupt_descriptors_always_yields_a_mangled_pack(self):
        # No pack descriptors at all: a forged undecodable one appears.
        forged = corrupt_descriptors([], "corrupt")
        assert forged and forged[0][1] == "q"
        # A "q" descriptor loses a column under corrupt mode.
        cols = {"regular_idents": [1], "regular_weights": [2.0]}
        (mangled,) = corrupt_descriptors([(0, "q", "regular", cols)], "corrupt")
        assert len(mangled[3]) == len(cols) - 1


# ---------------------------------------------------------------------------
# 2. Lockstep recovery: bit-identical across every fault kind
# ---------------------------------------------------------------------------


class TestLockstepRecovery:
    KIND_TO_CLASS = {
        "kill": "crash",
        "hang": "hang",
        "drop": "hang",  # a dropped send manifests as a missed deadline
        "corrupt": "poison",
        "truncate": "poison",
    }

    @pytest.mark.parametrize("kind", sorted(KIND_TO_CLASS))
    def test_single_fault_recovers_bit_identical(self, kind):
        before = set(glob.glob("/dev/shm/psm_*"))
        fingerprint, stats = _chaos_run(f"{kind}:1:2")
        assert fingerprint == _reference()
        assert stats["mode"] == "sharded"
        assert stats["worker_restarts"] == 1
        assert [f["fault_class"] for f in stats["faults"]] == [
            self.KIND_TO_CLASS[kind]
        ]
        assert stats["faults"][0]["worker"] == 1
        assert stats["faults"][0]["window"] == 2
        assert "degraded_to" not in stats
        _assert_no_orphans(before)

    @pytest.mark.parametrize(
        "plan", ["kill:0:0", "kill:2:3", "hang:2:0", "corrupt:0:3"]
    )
    def test_worker_and_window_positions(self, plan):
        fingerprint, stats = _chaos_run(plan)
        assert fingerprint == _reference()
        assert stats["mode"] == "sharded"
        assert stats["worker_restarts"] == 1

    def test_two_faults_two_recoveries(self):
        before = set(glob.glob("/dev/shm/psm_*"))
        fingerprint, stats = _chaos_run("kill:0:1,corrupt:1:1")
        assert fingerprint == _reference()
        assert stats["mode"] == "sharded"
        assert stats["worker_restarts"] == 2
        assert sorted(f["fault_class"] for f in stats["faults"]) == [
            "crash",
            "poison",
        ]
        _assert_no_orphans(before)

    def test_injected_respawn_failures_then_success(self):
        # Two of the three respawn attempts fail; the third succeeds,
        # so the run still recovers in place.
        fingerprint, stats = _chaos_run("kill:2:1,respawn:2:2")
        assert fingerprint == _reference()
        assert stats["mode"] == "sharded"
        assert stats["worker_restarts"] == 1

    def test_recovery_accounting_and_supervision_stats(self):
        fingerprint, stats = _chaos_run("kill:1:2")
        assert fingerprint == _reference()
        assert stats["supervision"] == {
            "worker_timeout": TIMEOUT,
            "max_worker_restarts": 2,
        }
        assert stats["recovery_seconds"] > 0.0

    def test_fault_free_supervised_run_reports_no_faults(self):
        fingerprint, stats = _chaos_run(None)
        assert fingerprint == _reference()
        assert stats["mode"] == "sharded"
        assert "faults" not in stats
        assert "degraded_to" not in stats
        assert stats["supervision"]["worker_timeout"] == TIMEOUT


# ---------------------------------------------------------------------------
# 3. Pipelined degradation: faults land on the lockstep rung
# ---------------------------------------------------------------------------


class TestPipelinedDegradation:
    @pytest.mark.parametrize(
        "plan", ["kill:1:2", "drop:0:1", "corrupt:1:3", "stall_ack:1:1"]
    )
    def test_fault_degrades_to_lockstep_bit_identical(self, plan):
        before = set(glob.glob("/dev/shm/psm_*"))
        fingerprint, stats = _chaos_run(plan, pipeline="on")
        assert fingerprint == _reference()
        assert stats["mode"] == "sharded"
        assert stats["degraded_to"] == "lockstep"
        assert stats["degraded_from"] == "pipelined"
        assert len(stats["faults"]) >= 1
        _assert_no_orphans(before)


# ---------------------------------------------------------------------------
# 4. Exhaustion: the ladder bottoms out, never hangs
# ---------------------------------------------------------------------------


class TestExhaustion:
    def test_zero_restart_budget_degrades_to_columnar(self):
        before = set(glob.glob("/dev/shm/psm_*"))
        fingerprint, stats = _chaos_run("kill:1:2", max_worker_restarts=0)
        assert fingerprint == _reference()
        assert stats["mode"] == "degraded"
        assert stats["rung"] == "columnar"
        assert "fault recovery exhausted" in stats["reason"]
        assert stats["degraded_to"] == "columnar"
        assert stats["worker_restarts"] == 0
        _assert_no_orphans(before)

    def test_respawn_exhaustion_degrades_to_columnar(self):
        # Every respawn attempt is made to fail: recovery cannot
        # complete, so the ladder bottoms out on the columnar engine.
        before = set(glob.glob("/dev/shm/psm_*"))
        fingerprint, stats = _chaos_run("kill:1:1,respawn:1:9")
        assert fingerprint == _reference()
        assert stats["mode"] == "degraded"
        assert stats["rung"] == "columnar"
        _assert_no_orphans(before)

    def test_pipelined_exhaustion_walks_both_rungs(self):
        # The pipelined rung degrades to lockstep; a second planned
        # fault there with no restart budget bottoms out on columnar.
        fingerprint, stats = _chaos_run(
            "kill:1:1,hang:2:2", pipeline="on", max_worker_restarts=0
        )
        assert fingerprint == _reference()
        assert stats["mode"] == "degraded"
        assert stats["degraded_to"] == "columnar"


# ---------------------------------------------------------------------------
# 5. Error surface: structured context, pinned message format
# ---------------------------------------------------------------------------


class TestShardedWorkerError:
    def test_from_fault_message_format_is_pinned(self):
        handle = SimpleNamespace(index=1, site_lo=2, site_hi=4)
        err = ShardedWorkerError.from_fault(handle, "crash", "boom", window=3)
        assert str(err) == "shard worker 1 (sites [2, 4)) at window 3 [crash]: boom"
        assert err.worker == 1
        assert err.shard == (2, 4)
        assert err.window == 3
        assert err.fault_class == "crash"
        assert err.worker_traceback is None

    def test_from_fault_without_window(self):
        handle = SimpleNamespace(index=0, site_lo=0, site_hi=2)
        err = ShardedWorkerError.from_fault(handle, "hang", "silent")
        assert str(err) == "shard worker 0 (sites [0, 2)) [hang]: silent"
        assert err.window is None

    def test_worker_error_class_preserves_traceback(self):
        engine = ShardedEngine(
            batch_size=BATCH, workers=WORKERS, worker_timeout=TIMEOUT
        )
        proto = DistributedWeightedSWOR(
            SworConfig(num_sites=SITES, sample_size=SAMPLE),
            seed=SEED,
            engine=engine,
        )
        proto.network.sites[6] = FaultySite()
        try:
            with pytest.raises(ShardedWorkerError) as excinfo:
                proto.run(_stream(4000))
        finally:
            engine.close()
        err = excinfo.value
        assert err.fault_class == "error"
        assert "faulty-site-exploded" in str(err)
        assert "on_columns" in err.worker_traceback
        assert err.worker is not None
        assert err.shard is not None


# ---------------------------------------------------------------------------
# 6. Property: any seeded single fault recovers bit-identically
# ---------------------------------------------------------------------------


class TestChaosProperty:
    @settings(
        max_examples=5,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_seeded_single_fault_is_bit_identical(self, seed):
        plan = FaultPlan.single(seed, workers=WORKERS, windows=4)
        fingerprint, stats = _chaos_run(plan.clone())
        assert fingerprint == _reference()
        assert stats["mode"] == "sharded"
        assert stats["worker_restarts"] == 1
        assert [f["window"] for f in stats["faults"]] == [
            plan.entries[0].window
        ]

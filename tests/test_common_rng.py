"""Unit tests for repro.common.rng."""

from __future__ import annotations

import math
import random

import pytest

from repro.common import ConfigurationError
from repro.common.rng import (
    LazyExponential,
    RandomSource,
    binomial,
    exponential,
    key_stream,
    min_uniform_key_for_weight,
    truncated_exponential_below,
)


class TestRandomSource:
    def test_same_seed_same_substream(self):
        a = RandomSource(7).substream("site-0")
        b = RandomSource(7).substream("site-0")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_labels_differ(self):
        src = RandomSource(7)
        a = src.substream("site-0")
        b = src.substream("site-1")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_different_seeds_differ(self):
        a = RandomSource(1).substream("x")
        b = RandomSource(2).substream("x")
        assert a.random() != b.random()

    def test_none_seed_is_random(self):
        assert RandomSource(None).seed != RandomSource(None).seed

    def test_spawn_is_reproducible_and_distinct(self):
        child1 = RandomSource(3).spawn("sub")
        child2 = RandomSource(3).spawn("sub")
        assert child1.seed == child2.seed
        assert RandomSource(3).spawn("other").seed != child1.seed


class TestExponential:
    def test_mean_close_to_one(self, rng):
        n = 20000
        mean = sum(exponential(rng) for _ in range(n)) / n
        assert abs(mean - 1.0) < 0.05

    def test_rate_scales_mean(self, rng):
        n = 20000
        mean = sum(exponential(rng, rate=4.0) for _ in range(n)) / n
        assert abs(mean - 0.25) < 0.02

    def test_positive(self, rng):
        assert all(exponential(rng) > 0 for _ in range(1000))

    def test_invalid_rate_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            exponential(rng, rate=0.0)


class TestTruncatedExponential:
    def test_always_below_bound(self, rng):
        for _ in range(2000):
            assert truncated_exponential_below(rng, 0.7) < 0.7

    def test_distribution_matches_conditioning(self, rng):
        """Empirical CDF at the midpoint matches the conditional law."""
        bound = 2.0
        n = 40000
        draws = [truncated_exponential_below(rng, bound) for _ in range(n)]
        mid = 1.0
        empirical = sum(1 for d in draws if d < mid) / n
        expected = -math.expm1(-mid) / -math.expm1(-bound)
        assert abs(empirical - expected) < 0.01

    def test_invalid_bound_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            truncated_exponential_below(rng, 0.0)


class TestMinUniformKey:
    def test_in_unit_interval(self, rng):
        for w in (1.0, 2.5, 100.0):
            for _ in range(500):
                key = min_uniform_key_for_weight(rng, w)
                assert 0.0 <= key < 1.0

    def test_tail_matches_weight(self, rng):
        """P(key > x) should be (1-x)^w."""
        w, x, n = 3.0, 0.2, 40000
        draws = [min_uniform_key_for_weight(rng, w) for _ in range(n)]
        tail = sum(1 for d in draws if d > x) / n
        assert abs(tail - (1 - x) ** w) < 0.01

    def test_weight_one_is_uniform(self, rng):
        n = 40000
        draws = [min_uniform_key_for_weight(rng, 1.0) for _ in range(n)]
        mean = sum(draws) / n
        assert abs(mean - 0.5) < 0.01

    def test_invalid_weight_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            min_uniform_key_for_weight(rng, 0.0)


class TestBinomial:
    def test_edge_cases(self, rng):
        assert binomial(rng, 0, 0.5) == 0
        assert binomial(rng, 10, 0.0) == 0
        assert binomial(rng, 10, 1.0) == 10

    def test_invalid_args_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            binomial(rng, -1, 0.5)
        with pytest.raises(ConfigurationError):
            binomial(rng, 5, 1.5)

    @pytest.mark.parametrize("n,p", [(20, 0.3), (500, 0.01), (500, 0.9), (5000, 0.001)])
    def test_mean_and_variance(self, rng, n, p):
        trials = 4000
        draws = [binomial(rng, n, p) for _ in range(trials)]
        mean = sum(draws) / trials
        var = sum((d - mean) ** 2 for d in draws) / (trials - 1)
        exp_mean, exp_var = n * p, n * p * (1 - p)
        assert abs(mean - exp_mean) < 5 * math.sqrt(exp_var / trials) + 0.05
        assert abs(var - exp_var) < 0.35 * exp_var + 0.1

    def test_range(self, rng):
        assert all(0 <= binomial(rng, 100, 0.4) <= 100 for _ in range(500))


class TestLazyExponential:
    def test_below_matches_full_precision(self):
        """Deciding via bits must agree with the materialized value."""
        for seed in range(300):
            bound = 0.1 + (seed % 17) * 0.3
            lazy = LazyExponential(random.Random(seed))
            decision = lazy.below(bound)
            value = lazy.value()
            assert decision == (value < bound) or abs(value - bound) < 1e-9

    def test_expected_bits_constant(self):
        """Proposition 7: O(1) expected bits per comparison."""
        total_bits = 0
        n = 3000
        for seed in range(n):
            lazy = LazyExponential(random.Random(seed))
            lazy.below(1.0)
            total_bits += lazy.bits_used
        assert total_bits / n < 6.0  # each bit halves undecided mass

    def test_below_nonpositive_bound(self, rng):
        assert LazyExponential(rng).below(0.0) is False
        assert LazyExponential(rng).below(-1.0) is False

    def test_value_positive_and_finite(self, rng):
        for _ in range(200):
            v = LazyExponential(rng).value()
            assert math.isfinite(v) and v > 0

    def test_value_distribution_mean(self):
        n = 20000
        rng = random.Random(5)
        mean = sum(LazyExponential(rng).value() for _ in range(n)) / n
        assert abs(mean - 1.0) < 0.05


def test_key_stream_yields_positive_keys(rng):
    keys = list(key_stream(rng, [1.0, 5.0, 2.5]))
    assert len(keys) == 3
    assert all(k > 0 for k in keys)


class TestZeroGuardPolicy:
    """The two exponential zero-guard policies (scalar redraw vs batch
    clamp) both pin ``w/t`` keys finite — the regression the unified
    policy documentation promises (see ``MIN_EXPONENTIAL``)."""

    def test_scalar_redraws_on_zero_uniform(self):
        from repro.common.rng import exponential

        class ZeroThenHalf:
            def __init__(self):
                self.calls = 0

            def random(self):
                self.calls += 1
                return 0.0 if self.calls < 3 else 0.5

        rng = ZeroThenHalf()
        t = exponential(rng)
        assert rng.calls == 3  # two redraws on u == 0
        assert t == -math.log(0.5)
        assert math.isfinite(1e300 / t)

    def test_batch_clamps_zero_draws(self):
        np = pytest.importorskip("numpy")
        from repro.common.rng import MIN_EXPONENTIAL, BatchRandom

        batch = BatchRandom(random.Random(3))

        class Zeros:
            def standard_exponential(self, n):
                return np.zeros(n)

        batch._gen = Zeros()
        draws = batch.exponentials(16)
        assert (draws == MIN_EXPONENTIAL).all()
        keys = 1e6 / draws  # the largest generator weight
        assert np.isfinite(keys).all() and (keys > 0).all()

    def test_both_paths_yield_finite_keys_for_extreme_weights(self):
        np = pytest.importorskip("numpy")
        from repro.common.rng import BatchRandom

        rng = random.Random(11)
        weights = [1e-300, 1.0, 1e6, 1e300]
        for w in weights:
            for _ in range(200):
                assert math.isfinite(w / exponential(rng))
        draws = BatchRandom(random.Random(12)).exponentials(5000)
        for w in weights:
            assert np.isfinite(w / draws).all()

    def test_batch_uniforms_strictly_inside_unit_interval(self):
        np = pytest.importorskip("numpy")
        from repro.common.rng import MIN_UNIFORM, BatchRandom

        batch = BatchRandom(random.Random(5))

        class Zeros:
            def random(self, n):
                return np.zeros(n)

        batch._gen = Zeros()
        assert (batch.uniforms(8) == MIN_UNIFORM).all()

    def test_binomials_bulk_matches_law(self):
        np = pytest.importorskip("numpy")
        from repro.common.rng import BatchRandom

        batch = BatchRandom(random.Random(9))
        ps = np.full(20_000, 0.25)
        draws = np.asarray(batch.binomials(8, ps))
        assert draws.min() >= 0 and draws.max() <= 8
        assert abs(float(draws.mean()) - 2.0) < 0.05
        # numpy-free fallback draws from the parent stream
        scalar = BatchRandom(random.Random(9))
        scalar._gen = None
        out = scalar.binomials(8, [0.0, 1.0, 0.5])
        assert out[0] == 0 and out[1] == 8 and 0 <= out[2] <= 8
        with pytest.raises(ConfigurationError):
            scalar.binomials(-1, [0.5])

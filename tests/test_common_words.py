"""Unit tests for repro.common.words (machine-word accounting)."""

from __future__ import annotations

from repro.common.words import word_size_bits, words_for_payload, words_for_value


class TestWordSizeBits:
    def test_floor_is_32(self):
        assert word_size_bits(1, 1.0) == 32

    def test_grows_with_magnitude(self):
        assert word_size_bits(10**12, 1e12) > word_size_bits(100, 100.0)


class TestWordsForValue:
    def test_zero_is_one_word(self):
        assert words_for_value(0.0) == 1

    def test_small_values_one_word(self):
        assert words_for_value(12345.0) == 1

    def test_huge_values_span_words(self):
        assert words_for_value(2.0**100, word_bits=64) == 2


class TestWordsForPayload:
    def test_counts_fields(self):
        assert words_for_payload((1, 2.0, 3.0)) == 3

    def test_strings_cost_one_word(self):
        assert words_for_payload(("tag", 1)) == 2

    def test_empty_payload_minimum_one(self):
        assert words_for_payload(()) == 1

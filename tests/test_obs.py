"""The unified telemetry plane: registry, exposition, instrumentation.

What is covered:

1. **Registry semantics** — counters are monotonic, gauges last-write-
   win, histograms keep fixed bucket schemas, labels validate, spans
   time, and the null registry is a complete no-op surface.
2. **Golden exposition** — the Prometheus text rendering and the JSON
   snapshot of a hand-built registry are pinned byte-for-byte /
   structure-for-structure.
3. **Metric-name stability** — the full family-name surface every
   layer exports is pinned as a golden list, so a rename is a
   deliberate, reviewed act (dashboards depend on these names).
4. **Bit-parity** — samples AND message counters are identical with a
   live registry and with the null one, on every engine (reference,
   batched, columnar, sharded in both pipeline modes) and on the
   multi-query driver.  Instrumentation is observational only.
5. **Instrumentation facts** — engines export run/item/window
   counters and message gauges that agree with the ground truth;
   worker shards ship metric columns that merge into per-worker
   counters; ``format_stats`` is safe before any run.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.common.errors import ConfigurationError
from repro.core import DistributedWeightedSWOR, SworConfig
from repro.obs import (
    DURATION_BUCKETS,
    NULL_REGISTRY,
    WORKER_METRIC_NAMES,
    MetricsRegistry,
    NullRegistry,
    merge_worker_deltas,
    observe_degradation,
    observe_fault,
    observe_heartbeat_age,
    observe_message_counters,
    observe_recovery,
    observe_sharded_stats,
    render_json,
    render_prometheus,
    write_metrics,
)
from repro.query import MultiQueryDriver, QueryCatalog, SubsetSumQuery
from repro.runtime import ShardedEngine, get_engine
from repro.stream import round_robin, zipf_stream

SITES = 8
SAMPLE = 8
SEED = 3


def _stream(n=20_000, seed=0, sites=SITES):
    return round_robin(zipf_stream(n, random.Random(seed), alpha=1.2), sites)


def _run(engine, n=20_000, sites=SITES, seed=SEED):
    proto = DistributedWeightedSWOR(
        SworConfig(num_sites=sites, sample_size=SAMPLE),
        seed=seed,
        engine=engine,
    )
    proto.run(_stream(n, sites=sites))
    return proto


def _fingerprint(proto):
    return (
        [(i.ident, i.weight, key) for i, key in proto.sample_with_keys()],
        proto.counters.snapshot(),
    )


def _value(registry, name, **labels):
    """The value of one counter/gauge cell (0.0 if never touched)."""
    family = registry._families[name]
    key = tuple(str(labels[n]) for n in family.label_names)
    cell = family._children.get(key)
    return 0.0 if cell is None else cell.value


# ---------------------------------------------------------------------------
# 1. Registry semantics
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_counter_is_monotonic(self):
        registry = MetricsRegistry()
        c = registry.counter("repro_x_total", "help")
        c.inc()
        c.inc(2.5)
        assert _value(registry, "repro_x_total") == 3.5
        with pytest.raises(ConfigurationError):
            c.inc(-1)

    def test_gauge_set_inc_dec(self):
        registry = MetricsRegistry()
        g = registry.gauge("repro_depth")
        g.set(5)
        g.inc(2)
        g.dec()
        assert _value(registry, "repro_depth") == 6.0

    def test_labeled_cells_are_independent(self):
        registry = MetricsRegistry()
        c = registry.counter("repro_x_total", labels=("engine",))
        c.labels(engine="a").inc()
        c.labels(engine="a").inc()
        c.labels(engine="b").inc(5)
        assert _value(registry, "repro_x_total", engine="a") == 2.0
        assert _value(registry, "repro_x_total", engine="b") == 5.0

    def test_label_names_must_match_declaration(self):
        registry = MetricsRegistry()
        c = registry.counter("repro_x_total", labels=("engine",))
        with pytest.raises(ConfigurationError):
            c.labels(wrong="a")
        with pytest.raises(ConfigurationError):
            c.labels()

    def test_redeclaration_must_agree(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total", labels=("engine",))
        # Same declaration: fetches the same family.
        again = registry.counter("repro_x_total", labels=("engine",))
        assert again is registry._families["repro_x_total"]
        with pytest.raises(ConfigurationError):
            registry.gauge("repro_x_total")
        with pytest.raises(ConfigurationError):
            registry.counter("repro_x_total", labels=("other",))

    def test_invalid_names_and_reserved_labels_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            registry.counter("9starts_with_digit")
        with pytest.raises(ConfigurationError):
            registry.counter("has-dash")
        with pytest.raises(ConfigurationError):
            registry.counter("repro_x_total", labels=("le",))

    def test_histogram_buckets(self):
        registry = MetricsRegistry()
        h = registry.histogram("repro_h_seconds", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 100.0):
            h.observe(value)
        cell = registry._families["repro_h_seconds"]._solo()
        assert cell.bucket_counts == [1, 2, 0]  # 100.0 only in +Inf
        assert cell.count == 4
        assert cell.sum == pytest.approx(101.05)

    def test_histogram_default_buckets_are_durations(self):
        registry = MetricsRegistry()
        registry.histogram("repro_h_seconds")
        assert registry._families["repro_h_seconds"].buckets == DURATION_BUCKETS

    def test_histogram_buckets_must_strictly_increase(self):
        registry = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            registry.histogram("repro_h_seconds", buckets=(1.0, 1.0, 2.0))

    def test_span_observes_duration_histogram(self):
        registry = MetricsRegistry()
        with registry.span("fold", engine="columnar") as span:
            pass
        assert span.seconds >= 0.0
        family = registry._families["repro_fold_seconds"]
        assert family.type == "histogram"
        cell = family.labels(engine="columnar")
        assert cell.count == 1
        assert cell.sum == span.seconds

    def test_metric_names_sorted(self):
        registry = MetricsRegistry()
        registry.counter("repro_b_total")
        registry.counter("repro_a_total")
        assert registry.metric_names() == ["repro_a_total", "repro_b_total"]


class TestNullRegistry:
    def test_disabled_and_inert(self):
        null = NULL_REGISTRY
        assert null.enabled is False
        null.counter("x_total").labels(engine="a").inc()
        null.gauge("g").set(5)
        null.histogram("h").observe(1.0)
        with null.span("fold", engine="a"):
            pass
        null.merge_snapshot({"metrics": {"x": {}}})
        assert null.families() == []
        assert null.metric_names() == []
        assert null.snapshot() == {"metrics": {}}
        assert null.exposition() == ""

    def test_singleton(self):
        assert isinstance(NULL_REGISTRY, NullRegistry)
        from repro.runtime.base import Engine

        assert Engine.registry is NULL_REGISTRY


class TestMergeSnapshot:
    def test_counters_and_histograms_add_gauges_overwrite(self):
        a = MetricsRegistry()
        a.counter("repro_x_total", labels=("engine",)).labels(engine="e").inc(2)
        a.gauge("repro_depth").set(1)
        a.histogram("repro_h_seconds", buckets=(1.0, 2.0)).observe(0.5)
        b = MetricsRegistry()
        b.counter("repro_x_total", labels=("engine",)).labels(engine="e").inc(3)
        b.gauge("repro_depth").set(7)
        b.histogram("repro_h_seconds", buckets=(1.0, 2.0)).observe(1.5)
        a.merge_snapshot(b.snapshot())
        assert _value(a, "repro_x_total", engine="e") == 5.0
        assert _value(a, "repro_depth") == 7.0
        cell = a._families["repro_h_seconds"]._solo()
        assert cell.bucket_counts == [1, 1]
        assert cell.count == 2 and cell.sum == 2.0

    def test_merge_declares_missing_families(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        b.counter("repro_new_total", "from b").inc(4)
        a.merge_snapshot(b.snapshot())
        assert _value(a, "repro_new_total") == 4.0
        assert a._families["repro_new_total"].help == "from b"

    def test_histogram_schema_mismatch_rejected(self):
        a = MetricsRegistry()
        a.histogram("repro_h_seconds", buckets=(1.0, 2.0)).observe(0.5)
        b = MetricsRegistry()
        b.histogram("repro_h_seconds", buckets=(1.0, 2.0, 4.0)).observe(0.5)
        with pytest.raises(ConfigurationError):
            a.merge_snapshot(b.snapshot())

    def test_merge_is_how_bench_artifacts_fold(self):
        """A snapshot survives a JSON round trip and still merges."""
        b = MetricsRegistry()
        b.counter("repro_x_total").inc(2)
        b.histogram("repro_h_seconds", buckets=(1.0,)).observe(0.5)
        a = MetricsRegistry()
        a.merge_snapshot(json.loads(json.dumps(b.snapshot())))
        assert a.snapshot() == b.snapshot()


# ---------------------------------------------------------------------------
# 2. Golden exposition
# ---------------------------------------------------------------------------


def _golden_registry():
    registry = MetricsRegistry()
    h = registry.histogram(
        "repro_fold_seconds", "fold durations", buckets=(0.25, 1.0)
    )
    for value in (0.25, 0.5, 5.0):
        h.observe(value)
    registry.counter(
        "repro_folds_total", "coordinator folds", labels=("engine",)
    ).labels(engine="columnar").inc(3)
    registry.gauge("repro_queue_depth", "queued windows").set(2)
    return registry


GOLDEN_PROMETHEUS = """\
# HELP repro_fold_seconds fold durations
# TYPE repro_fold_seconds histogram
repro_fold_seconds_bucket{le="0.25"} 1
repro_fold_seconds_bucket{le="1"} 2
repro_fold_seconds_bucket{le="+Inf"} 3
repro_fold_seconds_sum 5.75
repro_fold_seconds_count 3
# HELP repro_folds_total coordinator folds
# TYPE repro_folds_total counter
repro_folds_total{engine="columnar"} 3
# HELP repro_queue_depth queued windows
# TYPE repro_queue_depth gauge
repro_queue_depth 2
"""

GOLDEN_JSON = {
    "metrics": {
        "repro_fold_seconds": {
            "type": "histogram",
            "help": "fold durations",
            "label_names": [],
            "bucket_bounds": [0.25, 1.0],
            "samples": [
                {
                    "labels": {},
                    "buckets": {"0.25": 1, "1.0": 1},
                    "sum": 5.75,
                    "count": 3,
                }
            ],
        },
        "repro_folds_total": {
            "type": "counter",
            "help": "coordinator folds",
            "label_names": ["engine"],
            "samples": [{"labels": {"engine": "columnar"}, "value": 3.0}],
        },
        "repro_queue_depth": {
            "type": "gauge",
            "help": "queued windows",
            "label_names": [],
            "samples": [{"labels": {}, "value": 2.0}],
        },
    }
}


class TestExposition:
    def test_prometheus_golden(self):
        assert render_prometheus(_golden_registry()) == GOLDEN_PROMETHEUS

    def test_json_golden(self):
        assert json.loads(render_json(_golden_registry())) == GOLDEN_JSON

    def test_exposition_method_matches_renderer(self):
        registry = _golden_registry()
        assert registry.exposition() == render_prometheus(registry)

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""
        assert json.loads(render_json(MetricsRegistry())) == {"metrics": {}}

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total", labels=("reason",)).labels(
            reason='quo"te\\slash\nline'
        ).inc()
        text = render_prometheus(registry)
        assert 'reason="quo\\"te\\\\slash\\nline"' in text

    def test_write_metrics_picks_format_from_extension(self, tmp_path):
        registry = _golden_registry()
        prom = tmp_path / "m.prom"
        txt = tmp_path / "m.txt"
        js = tmp_path / "m.json"
        assert write_metrics(registry, str(prom)) == "prometheus"
        assert write_metrics(registry, str(txt)) == "prometheus"
        assert write_metrics(registry, str(js)) == "json"
        assert prom.read_text() == GOLDEN_PROMETHEUS
        assert txt.read_text() == GOLDEN_PROMETHEUS
        assert json.loads(js.read_text()) == GOLDEN_JSON


# ---------------------------------------------------------------------------
# 3. Metric-name stability (golden list)
# ---------------------------------------------------------------------------

#: The complete family-name surface the package exports.  Dashboards
#: and the CI artifact diff depend on these names: renaming one is a
#: breaking change and must update this list (and the README table)
#: in the same commit.
GOLDEN_METRIC_NAMES = [
    "repro_driver_items_total",
    "repro_driver_run_seconds",
    "repro_driver_runs_total",
    "repro_engine_items_total",
    "repro_engine_run_seconds",
    "repro_engine_runs_total",
    "repro_engine_windows_total",
    "repro_kernel_backend_info",
    "repro_kernel_calls_total",
    "repro_kernel_seconds",
    "repro_message_words",
    "repro_message_words_max",
    "repro_messages",
    "repro_messages_by_kind",
    "repro_query_fold_seconds_total",
    "repro_query_messages",
    "repro_shard_controls_total",
    "repro_shard_degradations_total",
    "repro_shard_fallbacks_total",
    "repro_shard_faults_total",
    "repro_shard_ordered_refolds_total",
    "repro_shard_phase_seconds_total",
    "repro_shard_recovery_seconds",
    "repro_shard_rollbacks_total",
    "repro_shard_speculation_total",
    "repro_shard_unordered_folds_total",
    "repro_shard_window_seconds",
    "repro_shard_windows_total",
    "repro_shard_worker_compute_seconds_total",
    "repro_shard_worker_heartbeat_age_seconds",
    "repro_shard_worker_pack_entries_total",
    "repro_shard_worker_packs_total",
    "repro_shard_worker_replay_windows_total",
    "repro_shard_worker_restarts_total",
    "repro_shard_worker_ring_bytes_total",
    "repro_shard_worker_rolls_served_total",
    "repro_shard_worker_snapshots_total",
    "repro_shard_worker_spec_recomputes_total",
    "repro_shard_worker_windows_total",
]


class TestMetricNameStability:
    def test_every_exported_family_name_is_golden(self):
        """Exercise every export path into ONE registry and pin the
        resulting family names exactly.

        In-process engine runs, a driver run, and a (deterministic,
        spawn-free) sharded fallback run hit the real code paths; the
        sharded bridge and the worker-column merge are driven with
        synthetic inputs so the racy metrics (speculation timing varies
        run to run) still surface every name deterministically.
        """
        registry = MetricsRegistry()
        for spec in ("reference", "batched", "columnar"):
            _run(get_engine(spec).instrument(registry), n=6_000)
        driver = MultiQueryDriver(
            QueryCatalog([SubsetSumQuery("q", sample_size=8)]),
            num_sites=SITES,
            seed=5,
            registry=registry,
        )
        driver.run(_stream(4_000))
        # workers=1 → deterministic in-process fallback, no spawn.
        _run(ShardedEngine(workers=1).instrument(registry), n=6_000)
        observe_sharded_stats(
            registry,
            {
                "mode": "sharded",
                "windows": 4,
                "rollbacks": 1,
                "controls": 2,
                "speculation": {"hits": 3, "misses": 1},
                "unordered_folds": 3,
                "ordered_refolds": 1,
                "timing": {"compute_seconds": 0.5, "fold_seconds": 0.25},
                "per_window": [{"compute_seconds": 0.1, "packs": 2}],
            },
        )
        merge_worker_deltas(registry, 0, (1.0,) * len(WORKER_METRIC_NAMES))
        observe_fault(registry, "crash")
        observe_recovery(registry, 0, 0.01)
        observe_degradation(registry, "lockstep")
        observe_heartbeat_age(registry, 0, 0.0)
        assert registry.metric_names() == GOLDEN_METRIC_NAMES

    def test_worker_metric_columns_schema_is_fixed(self):
        """The wire schema of the per-window metric columns (position
        IS the name — reordering breaks old/new worker mixes)."""
        assert WORKER_METRIC_NAMES == (
            "windows",
            "packs",
            "pack_entries",
            "ring_bytes",
            "compute_seconds",
            "snapshots",
            "rolls_served",
            "spec_recomputes",
            "replay_windows",
        )


# ---------------------------------------------------------------------------
# 4. Bit-parity: instrumentation is observational only
# ---------------------------------------------------------------------------


class TestInstrumentationParity:
    @pytest.mark.parametrize("spec", ["reference", "batched", "columnar"])
    def test_in_process_engines(self, spec):
        plain = _run(get_engine(spec))
        registry = MetricsRegistry()
        live = _run(get_engine(spec).instrument(registry))
        assert _fingerprint(plain) == _fingerprint(live)
        assert registry.metric_names()  # telemetry actually flowed

    @pytest.mark.parametrize("pipeline", ["off", "on"])
    def test_sharded_engine(self, pipeline):
        pytest.importorskip("numpy")
        engine = ShardedEngine(workers=2, batch_size=4096, pipeline=pipeline)
        try:
            plain = _run(engine)
            assert engine.last_run_stats["mode"] == "sharded"
            registry = MetricsRegistry()
            engine.instrument(registry)
            live = _run(engine)
            assert engine.last_run_stats["mode"] == "sharded"
        finally:
            engine.close()
        assert _fingerprint(plain) == _fingerprint(live)
        # Both also match the in-process columnar engine at the same
        # batch size (the existing parity guarantee, now under metrics).
        columnar = _run(get_engine("columnar", batch_size=4096))
        assert _fingerprint(live) == _fingerprint(columnar)

    def test_driver(self):
        queries = [
            SubsetSumQuery("a", sample_size=8),
            SubsetSumQuery("b", sample_size=8),
        ]
        plain = MultiQueryDriver(
            QueryCatalog(list(queries)), num_sites=SITES, seed=5
        )
        answers_plain = plain.run(_stream(6_000))
        registry = MetricsRegistry()
        live = MultiQueryDriver(
            QueryCatalog(list(queries)),
            num_sites=SITES,
            seed=5,
            registry=registry,
        )
        answers_live = live.run(_stream(6_000))
        assert repr(answers_plain.answers) == repr(answers_live.answers)
        assert {
            name: c.snapshot() for name, c in plain.counters().items()
        } == {name: c.snapshot() for name, c in live.counters().items()}
        assert "repro_driver_runs_total" in registry.metric_names()


# ---------------------------------------------------------------------------
# 5. Instrumentation facts
# ---------------------------------------------------------------------------


class TestEngineInstrumentation:
    def test_format_stats_before_any_run(self):
        for spec in ("reference", "batched", "columnar", "sharded"):
            engine = get_engine(spec)
            assert engine.format_stats() == (
                f"{engine.name} engine: no run recorded yet"
            )

    def test_format_stats_after_run(self):
        engine = get_engine("columnar")
        _run(engine, n=4_000)
        text = engine.format_stats()
        assert text.startswith("columnar engine: items 4000")
        assert "windows" in text and "wall" in text

    def test_instrument_none_detaches(self):
        engine = get_engine("columnar")
        registry = MetricsRegistry()
        assert engine.instrument(registry) is engine
        assert engine.registry is registry
        engine.instrument(None)
        assert engine.registry is NULL_REGISTRY

    @pytest.mark.parametrize("spec", ["reference", "batched", "columnar"])
    def test_run_export_matches_ground_truth(self, spec):
        registry = MetricsRegistry()
        engine = get_engine(spec).instrument(registry)
        proto = _run(engine, n=6_000)
        name = engine.name
        assert _value(registry, "repro_engine_runs_total", engine=name) == 1.0
        assert (
            _value(registry, "repro_engine_items_total", engine=name) == 6_000
        )
        hist = registry._families["repro_engine_run_seconds"].labels(
            engine=name
        )
        assert hist.count == 1
        assert hist.sum == pytest.approx(
            engine.last_run_stats["seconds"], rel=1e-9
        )
        counters = proto.counters
        assert (
            _value(registry, "repro_messages", engine=name, direction="upstream")
            == counters.upstream
        )
        assert (
            _value(
                registry, "repro_messages", engine=name, direction="downstream"
            )
            == counters.downstream
        )
        assert (
            _value(registry, "repro_message_words", engine=name)
            == counters.words
        )
        for kind, count in counters.by_kind.items():
            assert (
                _value(registry, "repro_messages_by_kind", engine=name, kind=kind)
                == count
            )
        if "windows" in engine.last_run_stats:
            assert _value(
                registry, "repro_engine_windows_total", engine=name
            ) == engine.last_run_stats["windows"]

    def test_sharded_worker_columns_merge_at_commit(self):
        pytest.importorskip("numpy")
        registry = MetricsRegistry()
        engine = ShardedEngine(
            workers=2, batch_size=4096, pipeline="off"
        ).instrument(registry)
        try:
            _run(engine)
            stats = engine.last_run_stats
            assert stats["mode"] == "sharded"
        finally:
            engine.close()
        windows = stats["windows"]
        # Lockstep: every worker computes every window exactly once.
        per_worker = {
            worker: _value(
                registry, "repro_shard_worker_windows_total", worker=worker
            )
            for worker in (0, 1)
        }
        assert per_worker == {0: float(windows), 1: float(windows)}
        assert _value(registry, "repro_shard_windows_total") == windows
        # The stats dict the registry was computed from is unchanged in
        # shape (the public surface other tests and the CLI rely on).
        for key in ("mode", "windows", "rollbacks", "controls", "timing"):
            assert key in stats

    def test_sharded_fallback_reason_is_labeled(self):
        registry = MetricsRegistry()
        engine = ShardedEngine(workers=1).instrument(registry)
        _run(engine, n=4_000)
        assert engine.last_run_stats["mode"] == "fallback"
        assert (
            _value(registry, "repro_shard_fallbacks_total", reason="single worker")
            == 1.0
        )
        # The fallback still exports the engine-level run metrics under
        # the sharded engine's own name.
        assert (
            _value(registry, "repro_engine_runs_total", engine="sharded") == 1.0
        )

    def test_driver_fold_labels_include_fused_groups(self):
        registry = MetricsRegistry()
        driver = MultiQueryDriver(
            QueryCatalog(
                [
                    SubsetSumQuery("a", sample_size=8),
                    SubsetSumQuery("b", sample_size=8),
                ]
            ),
            num_sites=SITES,
            seed=5,
            registry=registry,
        )
        driver.run(_stream(6_000))
        fold = registry._families["repro_query_fold_seconds_total"]
        labels = {values[0] for values, _cell in fold.samples()}
        # Same-sample-size SWOR queries fuse into one shared consumer.
        assert labels == {"a+b"}
        assert _value(registry, "repro_driver_runs_total") == 1.0
        assert _value(registry, "repro_driver_items_total") == 6_000
        for name, counters in driver.counters().items():
            assert _value(
                registry, "repro_query_messages", query=name, direction="upstream"
            ) == counters.upstream

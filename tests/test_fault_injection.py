"""Fault-injection tests: the protocol layer detects model violations.

The paper's model assumes FIFO channels, monotone thresholds, and
saturation-state agreement between sites and the coordinator.  These
tests break each assumption deliberately and assert the library fails
loudly (ProtocolViolationError) instead of silently producing a biased
sample.
"""

from __future__ import annotations

import random

import pytest

from repro.common import ProtocolViolationError
from repro.core import SworConfig, SworCoordinator, SworSite
from repro.l1.tracker import _L1Site
from repro.net import FifoChannel, Message
from repro.net.messages import EARLY, EPOCH_UPDATE, LEVEL_SATURATED
from repro.stream import Item


class TestChannelFaults:
    def test_reordered_delivery_detected(self):
        ch = FifoChannel("faulty")
        ch.send(Message(EARLY, (0, 1.0)))
        ch.send(Message(EARLY, (1, 1.0)))
        ch.send(Message(EARLY, (2, 1.0)))
        ch.reorder_for_test()
        with pytest.raises(ProtocolViolationError, match="FIFO"):
            list(ch.drain())


class TestSiteFaults:
    def _site(self):
        return SworSite(
            0, SworConfig(num_sites=2, sample_size=2), random.Random(1)
        )

    def test_backwards_epoch_rejected(self):
        site = self._site()
        site.on_control(Message(EPOCH_UPDATE, (16.0,)))
        with pytest.raises(ProtocolViolationError, match="backwards"):
            site.on_control(Message(EPOCH_UPDATE, (2.0,)))

    def test_garbage_control_rejected(self):
        with pytest.raises(ProtocolViolationError):
            self._site().on_control(Message("nonsense", (1,)))


class TestCoordinatorFaults:
    def test_stale_early_for_saturated_level_folded_in(self):
        """A site may still send EARLY for a saturated level while the
        LEVEL_SATURATED broadcast is in flight (delayed control
        delivery, e.g. under the batched engine).  The coordinator must
        not corrupt level-set state: it generates the key itself and
        folds the item straight into the sample."""
        cfg = SworConfig(num_sites=2, sample_size=1, level_set_factor=0.5)
        coord = SworCoordinator(cfg, random.Random(2))
        # saturation_size = 0.5 * 2 * 1 = 1: first early item saturates.
        coord.on_message(0, Message(EARLY, (0, 1.0)))
        saturated_before = set(coord.levels.saturated_levels)
        coord.on_message(1, Message(EARLY, (1, 1.0)))
        assert coord.early_for_saturated == 1
        assert coord.levels.saturated_levels == saturated_before
        assert coord.levels.pending_count() == 0  # not re-parked
        # Both items competed for the single slot with independent keys.
        assert {item.ident for item, _ in coord.sample_with_keys()} <= {0, 1}

    def test_stale_early_respects_sample_threshold(self):
        """The folded-in item goes through Add-to-Sample: a key below
        the current threshold is discarded, not force-inserted."""
        cfg = SworConfig(num_sites=2, sample_size=1, level_set_factor=0.5)
        coord = SworCoordinator(cfg, random.Random(3))
        coord.on_message(0, Message(EARLY, (0, 1.0)))
        before = coord.threshold
        # A stale early item with a vanishing weight (key ~ 1e-9/Exp)
        # loses to the incumbent: discarded, threshold untouched.
        coord.on_message(1, Message(EARLY, (1, 1e-9)))
        assert coord.early_for_saturated == 1
        assert [item.ident for item in coord.sample()] == [0]
        assert coord.threshold == before

    def test_unknown_message_kind_rejected(self):
        cfg = SworConfig(num_sites=2, sample_size=1)
        coord = SworCoordinator(cfg, random.Random(3))
        with pytest.raises(ProtocolViolationError):
            coord.on_message(0, Message("mystery", ()))


class TestL1Faults:
    def test_l1_site_rejects_decreasing_threshold(self):
        site = _L1Site(duplication=4, rng=random.Random(4))
        site.on_control(Message(EPOCH_UPDATE, (8.0,)))
        with pytest.raises(ProtocolViolationError, match="decreased"):
            site.on_control(Message(EPOCH_UPDATE, (4.0,)))

    def test_l1_site_rejects_foreign_control(self):
        site = _L1Site(duplication=4, rng=random.Random(5))
        with pytest.raises(ProtocolViolationError):
            site.on_control(Message(LEVEL_SATURATED, (0,)))

    def test_generator_interruption_is_safe(self):
        """Abandoning a site's message generator mid-item must not
        corrupt site state for the next item (no partial-state leak)."""
        site = _L1Site(duplication=10, rng=random.Random(6))
        gen = site.on_item(Item(0, 1.0))
        next(gen)  # consume one message, then drop the generator
        gen.close()
        out = list(site.on_item(Item(1, 1.0)))
        assert all(m.kind == "regular" for m in out)

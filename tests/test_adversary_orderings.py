"""Tests for adversarial arrival orderings and protocol robustness to them."""

from __future__ import annotations

import random
from collections import Counter

import pytest

from repro.common import (
    ConfigurationError,
    chi_square_pvalue,
    chi_square_statistic,
    exact_swor_inclusion_probabilities,
)
from repro.core import DistributedWeightedSWOR, SworConfig
from repro.stream import (
    ADVERSARIAL_ORDERINGS,
    Item,
    bursty_interleave,
    heaviest_first,
    heaviest_last,
    round_robin,
    sandwich,
    uniform_stream,
)


class TestOrderings:
    def test_heaviest_first_sorted(self, rng):
        items = uniform_stream(50, rng)
        ordered = heaviest_first(items)
        weights = [i.weight for i in ordered]
        assert weights == sorted(weights, reverse=True)

    def test_heaviest_last_sorted(self, rng):
        items = uniform_stream(50, rng)
        ordered = heaviest_last(items)
        weights = [i.weight for i in ordered]
        assert weights == sorted(weights)

    def test_sandwich_structure(self, rng):
        items = uniform_stream(100, rng)
        ordered = sandwich(items)
        assert sorted(ordered) == sorted(items)
        # Giants (top decile) sit at both ends.
        giants = set(
            it.ident for it in heaviest_first(items)[: len(items) // 10]
        )
        assert ordered[0].ident in giants
        assert ordered[-1].ident in giants

    def test_bursty_is_permutation(self, rng):
        items = uniform_stream(101, rng)
        ordered = bursty_interleave(items, 8, rng)
        assert sorted(ordered) == sorted(items)

    def test_bursty_validation(self, rng):
        with pytest.raises(ConfigurationError):
            bursty_interleave(uniform_stream(10, rng), 0, rng)

    def test_registry_complete(self, rng):
        items = uniform_stream(40, rng)
        for name, fn in ADVERSARIAL_ORDERINGS.items():
            out = fn(items, rng)
            assert sorted(out) == sorted(items), name


class TestProtocolUnderAdversarialOrder:
    """The sampler's law must be order-invariant (Definition 3 holds
    for any adversarial arrival order)."""

    @pytest.mark.parametrize("ordering", ["heaviest_first", "heaviest_last", "sandwich"])
    def test_sample_law_order_invariant(self, ordering):
        weights = [1.0, 2.0, 4.0, 8.0, 16.0, 128.0]
        base = [Item(i, w) for i, w in enumerate(weights)]
        items = ADVERSARIAL_ORDERINGS[ordering](base, random.Random(0))
        k, s, trials = 2, 2, 3000
        counts = Counter()
        for t in range(trials):
            proto = DistributedWeightedSWOR(
                SworConfig(num_sites=k, sample_size=s), seed=t
            )
            proto.run(round_robin(items, k))
            for item in proto.sample():
                counts[item.ident] += 1
        exact = exact_swor_inclusion_probabilities(weights, s)
        expected = {i: trials * p for i, p in enumerate(exact)}
        stat, df = chi_square_statistic(counts, expected)
        assert chi_square_pvalue(stat, df) > 1e-4, ordering

"""Property-based tests (hypothesis) on core data structures/invariants."""

from __future__ import annotations

import math
import random

from hypothesis import given, settings, strategies as st

from repro.common.order_stats import (
    anti_ranks,
    exact_swor_inclusion_probabilities,
)
from repro.common.rng import binomial, min_uniform_key_for_weight, truncated_exponential_below
from repro.core import EpochTracker, TopKeySample, level_of
from repro.net import FifoChannel, Message, MessageCounters
from repro.stream import DistributedStream, Item


weights_strategy = st.lists(
    st.floats(min_value=1.0, max_value=1e6, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=8,
)

keys_strategy = st.lists(
    st.floats(min_value=1e-6, max_value=1e9, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=60,
)


class TestTopKeySampleProperties:
    @given(keys=keys_strategy, s=st.integers(min_value=1, max_value=10))
    @settings(max_examples=120)
    def test_keeps_exactly_top_s(self, keys, s):
        ts = TopKeySample(s)
        for i, key in enumerate(keys):
            ts.add(Item(i, 1.0), key)
        kept = sorted((k for _, k in ts.entries()), reverse=True)
        expected = sorted(keys, reverse=True)[: min(s, len(keys))]
        assert kept == expected

    @given(keys=keys_strategy, s=st.integers(min_value=1, max_value=10))
    @settings(max_examples=60)
    def test_threshold_is_sth_largest(self, keys, s):
        ts = TopKeySample(s)
        for i, key in enumerate(keys):
            ts.add(Item(i, 1.0), key)
        if len(keys) < s:
            assert ts.threshold == 0.0
        else:
            assert ts.threshold == sorted(keys, reverse=True)[s - 1]


class TestLevelOfProperties:
    @given(
        w=st.floats(min_value=1e-9, max_value=1e18, allow_nan=False),
        r=st.floats(min_value=2.0, max_value=64.0, allow_nan=False),
    )
    @settings(max_examples=300)
    def test_bracket_invariant(self, w, r):
        j = level_of(w, r)
        assert j >= 0
        if w < r:
            assert j == 0
        else:
            assert r**j <= w * (1 + 1e-12)
            assert w < r ** (j + 1) * (1 + 1e-12)


class TestEpochTrackerProperties:
    @given(
        us=st.lists(
            st.floats(min_value=0.0, max_value=1e12, allow_nan=False),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=120)
    def test_monotone_thresholds_monotone_epochs(self, us):
        et = EpochTracker(2.0)
        announced = []
        for u in sorted(us):
            value = et.observe_threshold(u)
            if value is not None:
                announced.append(value)
        assert announced == sorted(announced)
        # each announced floor is a power of 2 bracketing some u
        for value in announced:
            exponent = math.log2(value)
            assert abs(exponent - round(exponent)) < 1e-9


class TestExactInclusionProperties:
    @given(weights=weights_strategy, s=st.integers(min_value=0, max_value=8))
    @settings(max_examples=40, deadline=None)
    def test_sums_and_bounds(self, weights, s):
        probs = exact_swor_inclusion_probabilities(weights, s)
        assert all(-1e-9 <= p <= 1 + 1e-9 for p in probs)
        assert math.isclose(sum(probs), min(s, len(weights)), rel_tol=1e-6)

    @given(weights=weights_strategy)
    @settings(max_examples=40, deadline=None)
    def test_heavier_items_more_likely(self, weights):
        s = min(2, len(weights))
        probs = exact_swor_inclusion_probabilities(weights, s)
        order = sorted(range(len(weights)), key=lambda i: weights[i])
        sorted_probs = [probs[i] for i in order]
        assert all(
            b >= a - 1e-9 for a, b in zip(sorted_probs, sorted_probs[1:])
        )


class TestFifoChannelProperties:
    @given(
        payloads=st.lists(st.integers(), min_size=0, max_size=50)
    )
    @settings(max_examples=80)
    def test_fifo_roundtrip(self, payloads):
        ch = FifoChannel("prop")
        for p in payloads:
            ch.send(Message("raw_item", (p,)))
        received = [m.payload[0] for m in ch.drain()]
        assert received == payloads


class TestRngProperties:
    @given(
        n=st.integers(min_value=0, max_value=3000),
        p=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        seed=st.integers(min_value=0, max_value=2**32),
    )
    @settings(max_examples=150)
    def test_binomial_in_range(self, n, p, seed):
        value = binomial(random.Random(seed), n, p)
        assert 0 <= value <= n

    @given(
        bound=st.floats(min_value=1e-6, max_value=50.0, allow_nan=False),
        seed=st.integers(min_value=0, max_value=2**32),
    )
    @settings(max_examples=150)
    def test_truncated_exponential_below_bound(self, bound, seed):
        value = truncated_exponential_below(random.Random(seed), bound)
        assert 0.0 <= value < bound

    @given(
        w=st.floats(min_value=0.1, max_value=1e6, allow_nan=False),
        seed=st.integers(min_value=0, max_value=2**32),
    )
    @settings(max_examples=150)
    def test_min_uniform_key_in_unit_interval(self, w, seed):
        value = min_uniform_key_for_weight(random.Random(seed), w)
        assert 0.0 <= value < 1.0


class TestAntiRanksProperties:
    @given(keys=keys_strategy)
    @settings(max_examples=80)
    def test_is_permutation_sorting_keys(self, keys):
        order = anti_ranks(keys)
        assert sorted(order) == list(range(len(keys)))
        sorted_keys = [keys[i] for i in order]
        assert all(a >= b for a, b in zip(sorted_keys, sorted_keys[1:]))


class TestDistributedStreamProperties:
    @given(
        n=st.integers(min_value=1, max_value=60),
        k=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=60)
    def test_local_streams_partition_global(self, n, k, seed):
        rng = random.Random(seed)
        items = [Item(i, 1.0 + rng.random()) for i in range(n)]
        assignment = [rng.randrange(k) for _ in range(n)]
        stream = DistributedStream(items, assignment, k)
        locals_ = stream.local_streams()
        assert sum(len(local) for local in locals_) == n
        rebuilt = sorted(
            (item for local in locals_ for item in local),
            key=lambda it: it.ident,
        )
        assert rebuilt == items


class TestCountersProperties:
    @given(
        ups=st.integers(min_value=0, max_value=50),
        downs=st.integers(min_value=0, max_value=50),
        copies=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=60)
    def test_totals_additive(self, ups, downs, copies):
        counters = MessageCounters()
        for _ in range(ups):
            counters.record_upstream(Message("early", (1, 1.0)))
        for _ in range(downs):
            counters.record_downstream(Message("epoch_update", (2.0,)), copies)
        assert counters.total == ups + downs * copies
        assert counters.upstream == ups
        assert counters.downstream == downs * copies

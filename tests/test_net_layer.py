"""Unit tests for repro.net: messages, counters, channels, simulator."""

from __future__ import annotations

from typing import List, Tuple

import pytest

from repro.common import ConfigurationError, ProtocolViolationError
from repro.net import (
    BROADCAST,
    CoordinatorAlgorithm,
    FifoChannel,
    Message,
    MessageCounters,
    Network,
    SiteAlgorithm,
)
from repro.stream import Item, round_robin, unit_stream


class TestMessage:
    def test_equality_and_hash(self):
        a = Message("early", (1, 2.0))
        b = Message("early", (1, 2.0))
        c = Message("regular", (1, 2.0))
        assert a == b and hash(a) == hash(b)
        assert a != c

    def test_repr_mentions_kind(self):
        assert "early" in repr(Message("early", ()))


class TestMessageCounters:
    def test_upstream_accounting(self):
        counters = MessageCounters()
        counters.record_upstream(Message("early", (1, 2.0)))
        counters.record_upstream(Message("regular", (1, 2.0, 3.0)))
        assert counters.upstream == 2
        assert counters.downstream == 0
        assert counters.total == 2
        assert counters.by_kind["early"] == 1

    def test_broadcast_counts_k_copies(self):
        counters = MessageCounters()
        counters.record_downstream(Message("epoch_update", (4.0,)), copies=8)
        assert counters.downstream == 8
        assert counters.by_kind["epoch_update"] == 8

    def test_words_positive_and_bounded(self):
        counters = MessageCounters()
        counters.record_upstream(Message("regular", (1, 2.0, 3.0)))
        assert counters.words >= 1
        assert counters.max_message_words <= 8  # O(1) words per message

    def test_snapshot_keys(self):
        counters = MessageCounters()
        counters.record_upstream(Message("early", (1, 1.0)))
        snap = counters.snapshot()
        assert snap["total"] == 1
        assert snap["kind:early"] == 1
        assert "words" in snap

    def test_word_cache_matches_fresh_accounting(self):
        # The same message object counted twice (e.g. shared across the
        # multi-query driver's deliveries) must cost the same words as
        # two identical fresh objects.
        shared = Message("early", (1, 2.0))
        twice = MessageCounters()
        twice.record_upstream(shared)
        twice.record_upstream(shared)
        fresh = MessageCounters()
        fresh.record_upstream(Message("early", (1, 2.0)))
        fresh.record_upstream(Message("early", (1, 2.0)))
        assert twice.words == fresh.words
        assert twice.max_message_words == fresh.max_message_words


class TestSimulatorShim:
    def test_deprecated_attribute_access_warns(self):
        import importlib

        simulator = importlib.import_module("repro.net.simulator")
        with pytest.warns(DeprecationWarning, match="repro.runtime"):
            shim_network = simulator.Network
        assert shim_network is Network

    def test_unknown_attribute_raises(self):
        import importlib

        simulator = importlib.import_module("repro.net.simulator")
        with pytest.raises(AttributeError):
            simulator.NoSuchThing


class TestFifoChannel:
    def test_in_order_delivery(self):
        ch = FifoChannel("test")
        for i in range(5):
            ch.send(Message("early", (i,)))
        received = [m.payload[0] for m in ch.drain()]
        assert received == [0, 1, 2, 3, 4]

    def test_empty_receive_none(self):
        assert FifoChannel("t").receive() is None

    def test_reorder_detected(self):
        ch = FifoChannel("t")
        ch.send(Message("early", (0,)))
        ch.send(Message("early", (1,)))
        ch.reorder_for_test()
        with pytest.raises(ProtocolViolationError):
            list(ch.drain())

    def test_len_tracks_queue(self):
        ch = FifoChannel("t")
        ch.send(Message("early", ()))
        assert len(ch) == 1
        ch.receive()
        assert len(ch) == 0


class _EchoSite(SiteAlgorithm):
    """Forwards every item; records controls received."""

    def __init__(self) -> None:
        self.controls: List[Message] = []

    def on_item(self, item: Item) -> List[Message]:
        return [Message("raw_item", (item.ident, item.weight))]

    def on_control(self, message: Message) -> None:
        self.controls.append(message)


class _AckCoordinator(CoordinatorAlgorithm):
    """Acks every 3rd message with a broadcast, every 5th with a unicast."""

    def __init__(self) -> None:
        self.seen: List[Tuple[int, Message]] = []

    def on_message(self, site_id: int, message: Message):
        self.seen.append((site_id, message))
        out = []
        if len(self.seen) % 3 == 0:
            out.append((BROADCAST, Message("round_update", (len(self.seen),))))
        if len(self.seen) % 5 == 0:
            out.append((site_id, Message("round_update", (-1,))))
        return out


class TestNetwork:
    def _build(self, k=3):
        sites = [_EchoSite() for _ in range(k)]
        coord = _AckCoordinator()
        return Network(sites, coord), sites, coord

    def test_global_order_preserved(self):
        net, sites, coord = self._build()
        stream = round_robin(unit_stream(9), 3)
        net.run(stream)
        received_ids = [msg.payload[0] for _, msg in coord.seen]
        assert received_ids == list(range(9))

    def test_broadcast_reaches_every_site_and_counts_k(self):
        net, sites, coord = self._build(k=3)
        net.run(round_robin(unit_stream(3), 3))
        # one broadcast after message 3
        assert all(len(s.controls) >= 1 for s in sites)
        assert net.counters.downstream == 3

    def test_unicast_reaches_only_target(self):
        net, sites, coord = self._build(k=3)
        net.run(round_robin(unit_stream(5), 3))
        # message 5 came from site index 4 % 3 == 1
        unicasts = [c for c in sites[1].controls if c.payload == (-1,)]
        assert len(unicasts) == 1
        assert not any(c.payload == (-1,) for c in sites[0].controls)

    def test_counters_totals(self):
        net, _, _ = self._build(k=3)
        net.run(round_robin(unit_stream(15), 3))
        assert net.counters.upstream == 15
        # 5 broadcasts * 3 + 3 unicasts
        assert net.counters.downstream == 5 * 3 + 3

    def test_checkpoints_fire(self):
        net, _, _ = self._build(k=3)
        fired = []
        net.run(
            round_robin(unit_stream(10), 3),
            checkpoints=[2, 7],
            on_checkpoint=fired.append,
        )
        assert fired == [2, 7]

    def test_on_step_fires_every_item(self):
        net, _, _ = self._build(k=3)
        steps = []
        net.run(round_robin(unit_stream(4), 3), on_step=steps.append)
        assert steps == [1, 2, 3, 4]

    def test_site_count_mismatch_rejected(self):
        net, _, _ = self._build(k=3)
        with pytest.raises(ConfigurationError):
            net.run(round_robin(unit_stream(4), 2))

    def test_bad_destination_rejected(self):
        net, _, _ = self._build(k=3)
        with pytest.raises(ConfigurationError):
            net.deliver_downstream(9, Message("round_update", ()))

    def test_needs_at_least_one_site(self):
        with pytest.raises(ConfigurationError):
            Network([], _AckCoordinator())

    def test_generator_on_item_sees_interleaved_control(self):
        """A generator site must observe controls delivered between its
        own yields — the synchrony the L1 tracker relies on."""

        class GenSite(SiteAlgorithm):
            def __init__(self):
                self.controls_seen_mid_item = 0
                self._got_control = False

            def on_item(self, item):
                self._got_control = False
                yield Message("raw_item", (0, 1.0))
                if self._got_control:
                    self.controls_seen_mid_item += 1
                yield Message("raw_item", (1, 1.0))

            def on_control(self, message):
                self._got_control = True

        class AlwaysAck(CoordinatorAlgorithm):
            def on_message(self, site_id, message):
                return [(BROADCAST, Message("round_update", ()))]

        site = GenSite()
        net = Network([site], AlwaysAck())
        net.step(0, Item(0, 1.0))
        assert site.controls_seen_mid_item == 1

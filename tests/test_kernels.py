"""Kernel tier: backend parity, registry semantics, engine plumbing.

The contract under test is the one :mod:`repro.kernels` states: every
backend returns **bit-identical** outputs — the same floats, the same
integer counts, the same index sets in the same order — because kernels
never draw randomness, only transform columns whose keys were already
drawn.  Three layers pin it:

1. **Kernel-level parity** on adversarial fixtures — ties exactly at
   the selection cut, saturation storms, empty and singleton packs,
   block-boundary window sizes — between the numpy backend, the numba
   backend's loop logic (run as plain Python via
   :func:`~repro.kernels.python_mirror_backend` on numpy-only
   installs, compiled when numba is present), and ``"numba"`` itself
   when importable.
2. **Engine-level parity** — the columnar and sharded engines produce
   identical samples (hence identical RNG consumption) and identical
   message counters under every backend, at batch size 1 and steady
   state, in both pipeline modes.
3. **Selection semantics** — the ``REPRO_KERNELS`` env var, strict vs
   lenient resolution, ``use_kernels`` scoping, ``get_engine``
   plumbing, and the CLI flag.
"""

from __future__ import annotations

import random

import pytest

from repro import kernels as kernels_mod
from repro.common.errors import ConfigurationError
from repro.core import (
    DistributedWeightedSWOR,
    DistributedWeightedSWR,
    SworConfig,
)
from repro.core.coordinator import SworCoordinator
from repro.extensions import SlidingWindowWeightedSWOR
from repro.kernels import (
    KERNEL_NAMES,
    get_kernels,
    kernel_stats,
    python_mirror_backend,
    reset_default_kernels,
    reset_kernel_stats,
    set_default_kernels,
    set_kernel_registry,
    use_kernels,
)
from repro.kernels import numba_backend, numpy_backend
from repro.net.messages import MessagePack
from repro.runtime import ColumnarEngine, ShardedEngine, get_engine
from repro.stream import round_robin, zipf_stream

np = pytest.importorskip("numpy")

NUMPY = get_kernels("numpy")

#: Every backend whose loops can run here; "python" is the numba
#: backend's logic interpreted (or compiled, when numba is present).
OTHER_BACKENDS = [python_mirror_backend()]
if numba_backend.NUMBA_AVAILABLE:
    OTHER_BACKENDS.append(get_kernels("numba"))

other_backend = pytest.mark.parametrize(
    "backend", OTHER_BACKENDS, ids=lambda b: b.name
)


@pytest.fixture(autouse=True)
def _clean_kernel_state():
    reset_default_kernels()
    yield
    reset_default_kernels()
    set_kernel_registry(None)


# ---------------------------------------------------------------------------
# 1. Kernel-level parity on adversarial fixtures
# ---------------------------------------------------------------------------


def _key_fixtures(rng):
    """Adversarial key columns: ties, plateaus, empties, singletons."""
    dense = np.round(rng.uniform(0.0, 4.0, 200), 1)  # heavy tie mass
    return [
        np.array([], dtype=np.float64),
        np.array([2.5]),
        np.full(17, 3.0),  # every key ties
        np.array([5.0, 1.0, 5.0, 5.0, 2.0, 1.0, 5.0]),
        dense,
        rng.uniform(0.0, 100.0, 513),  # crosses the 256-wide rank block
        np.sort(rng.uniform(0.0, 10.0, 300)),
        np.sort(rng.uniform(0.0, 10.0, 300))[::-1].copy(),
    ]


class TestKernelParity:
    @other_backend
    def test_merge_cut_parity_including_boundary_ties(self, backend):
        rng = np.random.default_rng(42)
        for cand in _key_fixtures(rng):
            for h in (0, 1, 4, 16):
                old = np.round(rng.uniform(0.0, 4.0, h), 1)
                for s in (1, 2, 5, 16):
                    if h + len(cand) < s:
                        continue
                    assert backend.merge_cut(old, cand, s) == NUMPY.merge_cut(
                        old, cand, s
                    )

    @other_backend
    def test_swor_fold_parity(self, backend):
        rng = np.random.default_rng(7)
        for keys in _key_fixtures(rng):
            for threshold in (0.0, 1.0, 2.5, 3.0, 1e9):
                for h in (0, 2, 8):
                    old = np.round(rng.uniform(threshold, threshold + 4.0, h), 1)
                    for s in (1, 4, 10):
                        got = backend.swor_fold_regulars(keys, threshold, old, s)
                        want = NUMPY.swor_fold_regulars(keys, threshold, old, s)
                        assert got[0].tolist() == want[0].tolist()
                        assert got[1].tolist() == want[1].tolist()
                        assert (got[2], got[3]) == (want[2], want[3])

    @other_backend
    def test_swr_min_fold_parity_first_arrival_wins_ties(self, backend):
        rng = np.random.default_rng(3)
        cases = [
            (np.array([0]), np.array([1.0])),
            (np.array([2, 2, 2]), np.array([5.0, 5.0, 5.0])),  # pure ties
            (
                np.array([0, 3, 0, 1, 3, 3, 1]),
                np.array([2.0, 1.0, 2.0, 9.0, 1.0, 0.5, 9.0]),
            ),
        ]
        samplers = rng.integers(0, 6, 400)
        keys = np.round(rng.uniform(0.0, 3.0, 400), 1)
        cases.append((samplers, keys.astype(np.float64)))
        for samplers, keys in cases:
            samplers = samplers.astype(np.int64)
            got = backend.swr_min_fold(samplers, keys, 8)
            want = NUMPY.swr_min_fold(samplers, keys, 8)
            assert got.tolist() == want.tolist()
            # Heads are ascending by sampler and each is that sampler's
            # strict minimum with the earliest arrival breaking ties.
            for head in want.tolist():
                mine = np.flatnonzero(samplers == samplers[head])
                best = mine[np.argmin(keys[mine])]  # argmin = first min
                assert head == best

    @other_backend
    def test_window_dominators_parity(self, backend):
        rng = np.random.default_rng(11)
        for keys in _key_fixtures(rng):
            got = backend.window_dominators(keys)
            want = NUMPY.window_dominators(keys)
            assert got.tolist() == want.tolist()
        # Exact semantics on a case small enough to brute-force.
        keys = np.round(rng.uniform(0.0, 2.0, 300), 1)
        brute = [
            int(sum(keys[j] > keys[i] for j in range(i + 1, len(keys))))
            for i in range(len(keys))
        ]
        assert NUMPY.window_dominators(keys).tolist() == brute

    @other_backend
    def test_compute_levels_parity_at_power_boundaries(self, backend):
        for r in (2, 3, 10):
            exact = [float(r) ** j for j in range(0, 40, 3)]
            nudged = [w * (1.0 - 1e-16) for w in exact] + [
                w * (1.0 + 1e-16) for w in exact
            ]
            weights = np.array(
                [0.5, 1.0, 1.5, float(r) - 1e-9, float(r)] + exact + nudged
            )
            got = backend.compute_levels(weights, r)
            want = NUMPY.compute_levels(weights, r)
            assert got.tolist() == want.tolist()
            # The bracket invariant the scalar path guarantees.
            for w, j in zip(weights.tolist(), want.tolist()):
                assert j == 0 or float(r) ** j <= w
                assert w < float(r) ** (j + 1)

    @other_backend
    @pytest.mark.parametrize("bad", [0.0, -1.0, float("nan"), float("inf")])
    def test_compute_levels_rejects_bad_weights_identically(self, backend, bad):
        weights = np.array([1.0, 2.0, bad, 4.0])
        with pytest.raises(ConfigurationError) as got:
            backend.compute_levels(weights, 2)
        with pytest.raises(ConfigurationError) as want:
            NUMPY.compute_levels(weights, 2)
        assert str(got.value) == str(want.value)

    @other_backend
    def test_window_split_parity_with_saturation_storm(self, backend):
        rng = np.random.default_rng(5)
        tables = [
            np.zeros(64, dtype=bool),
            np.ones(64, dtype=bool),  # storm: every table level saturated
            rng.integers(0, 2, 64).astype(bool),
        ]
        r = 2.0
        for weights in (
            np.array([], dtype=np.float64),
            np.array([1.0]),
            np.array([1.0, 2.0, 4.0, 8.0, 1024.0, 3.0, 0.25]),
            rng.uniform(0.25, 2.0**20, 500),
            2.0 ** rng.integers(0, 80, 300).astype(np.float64),  # beyond table
        ):
            for heavy_floor in (0.0, -1.0, 1.0, 16.0, 2.0**70):
                for table in tables:
                    got = backend.window_split(weights, r, heavy_floor, table)
                    want = NUMPY.window_split(weights, r, heavy_floor, table)
                    assert got[0].tolist() == want[0].tolist()
                    assert got[1].tolist() == want[1].tolist()
                    assert got[2].tolist() == want[2].tolist()

    @other_backend
    def test_randomized_sweep(self, backend):
        rng = np.random.default_rng(99)
        for _ in range(40):
            n = int(rng.integers(0, 300))
            keys = np.round(rng.uniform(0.0, 8.0, n), rng.integers(0, 3))
            s = int(rng.integers(1, 12))
            h = int(rng.integers(0, s + 1))
            old = np.round(rng.uniform(0.0, 8.0, h), 1)
            threshold = float(rng.uniform(0.0, 4.0))
            got = backend.swor_fold_regulars(keys, threshold, old, s)
            want = NUMPY.swor_fold_regulars(keys, threshold, old, s)
            assert got[0].tolist() == want[0].tolist()
            assert got[1].tolist() == want[1].tolist()
            assert (got[2], got[3]) == (want[2], want[3])
            assert (
                backend.window_dominators(keys).tolist()
                == NUMPY.window_dominators(keys).tolist()
            )


# ---------------------------------------------------------------------------
# 2. Engine-level parity
# ---------------------------------------------------------------------------


def _swor_fingerprint(stream, engine, sites=6, sample=5, seed=13):
    proto = DistributedWeightedSWOR(
        SworConfig(num_sites=sites, sample_size=sample),
        seed=seed,
        engine=engine,
    )
    proto.run(stream)
    return (
        [(i.ident, i.weight, k) for i, k in proto.sample_with_keys()],
        proto.counters.snapshot(),
    )


class TestEngineParity:
    @pytest.fixture(scope="class")
    def stream(self):
        return round_robin(
            zipf_stream(6000, random.Random(5), alpha=1.2), 6
        )

    @other_backend
    @pytest.mark.parametrize("batch_size", [1, 64, 1024])
    def test_columnar_parity_across_batch_sizes(
        self, stream, backend, batch_size
    ):
        ref = _swor_fingerprint(
            stream, ColumnarEngine(batch_size=batch_size, kernels="numpy")
        )
        got = _swor_fingerprint(
            stream, ColumnarEngine(batch_size=batch_size, kernels=backend)
        )
        assert got == ref

    @other_backend
    def test_swr_parity(self, stream, backend):
        def fingerprint(kernels):
            proto = DistributedWeightedSWR(
                6,
                5,
                seed=13,
                engine=ColumnarEngine(batch_size=256, kernels=kernels),
            )
            proto.run(stream)
            return (
                [(i.ident, i.weight) for i in proto.sample()],
                proto.counters.snapshot(),
            )

        assert fingerprint(backend) == fingerprint("numpy")

    @other_backend
    def test_sliding_window_parity(self, backend):
        def fingerprint(kernels):
            with use_kernels(kernels):
                sw = SlidingWindowWeightedSWOR(4, random.Random(21))
                rng = np.random.default_rng(2)
                sw.insert_columns(
                    np.arange(700, dtype=np.int64),
                    rng.uniform(0.5, 50.0, 700),
                )
            return [
                (e.index, e.item.ident, e.key, e.dominators)
                for e in sw._entries
            ]

        assert fingerprint(backend) == fingerprint("numpy")

    @pytest.mark.parametrize("pipeline", ["on", "off"])
    def test_sharded_parity_both_pipeline_modes(self, stream, pipeline):
        ref = _swor_fingerprint(
            stream,
            ColumnarEngine(batch_size=512, kernels=python_mirror_backend()),
        )
        engine = ShardedEngine(
            batch_size=512, workers=2, pipeline=pipeline, kernels="numpy"
        )
        got = _swor_fingerprint(stream, engine)
        assert engine.last_run_stats["mode"] == "sharded"
        assert engine.last_run_stats["kernels"] == "numpy"
        assert got == ref

    @pytest.mark.skipif(
        not numba_backend.NUMBA_AVAILABLE, reason="numba not installed"
    )
    def test_sharded_parity_numba_workers(self, stream):
        ref = _swor_fingerprint(
            stream, ColumnarEngine(batch_size=512, kernels="numpy")
        )
        engine = ShardedEngine(batch_size=512, workers=2, kernels="numba")
        got = _swor_fingerprint(stream, engine)
        assert engine.last_run_stats["mode"] == "sharded"
        assert got == ref

    def test_columnar_run_records_backend_and_counts_calls(self, stream):
        reset_kernel_stats()
        engine = ColumnarEngine(batch_size=512, kernels="numpy")
        _swor_fingerprint(stream, engine)
        assert engine.last_run_stats["kernels"] == "numpy"
        stats = kernel_stats()
        assert ("window_split", "numpy") in stats
        assert ("merge_cut", "numpy") in stats


class TestCoordinatorFusedFold:
    """Packs above the scalar cutoff (> 32 regulars) take the fused
    ``swor_fold_regulars`` kernel; its commit must equal sequential
    per-message delivery on every backend — push path (underfull
    sample), partition path, and the tie-rich fallback alike."""

    def _coordinator(self, s):
        return SworCoordinator(
            SworConfig(num_sites=4, sample_size=s), random.Random(42)
        )

    def _fingerprint(self, coordinator):
        return (
            coordinator.sample_with_keys(),
            coordinator.regular_received,
            coordinator.sample_set.threshold,
        )

    @other_backend
    @pytest.mark.parametrize("s", [3, 64, 200])
    def test_bulk_pack_matches_sequential_per_backend(self, backend, s):
        rng = np.random.default_rng(17)
        keys = np.round(rng.uniform(0.1, 50.0, 100), 1)  # tie-rich
        pack = MessagePack(
            regular_idents=np.arange(100, dtype=np.int64),
            regular_weights=rng.uniform(1.0, 9.0, 100),
            regular_keys=keys,
        )
        reset_kernel_stats()
        with use_kernels(backend):
            bulk = self._coordinator(s)
            bulk.on_message_pack(0, pack)
        if s <= len(keys):  # the partition path actually engaged
            assert ("swor_fold_regulars", backend.name) in kernel_stats()
        seq = self._coordinator(s)
        for message in pack.messages():
            seq.on_message(0, message)
        assert self._fingerprint(bulk) == self._fingerprint(seq)
        with use_kernels("numpy"):
            ref = self._coordinator(s)
            ref.on_message_pack(0, pack)
        assert self._fingerprint(bulk) == self._fingerprint(ref)

    @other_backend
    def test_unordered_pack_fold_matches_ordered(self, backend):
        rng = np.random.default_rng(23)
        warm = MessagePack(
            regular_idents=np.arange(80, dtype=np.int64),
            regular_weights=rng.uniform(1.0, 9.0, 80),
            regular_keys=rng.uniform(0.1, 50.0, 80),
        )
        # Same epoch bracket as the warm threshold: the fold neither
        # announces nor lands on a tie, so the unordered path accepts.
        pack = MessagePack(
            regular_idents=np.arange(80, 160, dtype=np.int64),
            regular_weights=rng.uniform(1.0, 9.0, 80),
            regular_keys=rng.uniform(0.1, 50.0, 80),
        )
        with use_kernels(backend):
            unordered = self._coordinator(8)
            unordered.on_message_pack(0, warm)
            assert unordered.on_message_pack_unordered(0, pack)
        ordered = self._coordinator(8)
        ordered.on_message_pack(0, warm)
        ordered.on_message_pack(0, pack)
        assert self._fingerprint(unordered) == self._fingerprint(ordered)


# ---------------------------------------------------------------------------
# 3. Selection semantics: registry, env, engines, CLI
# ---------------------------------------------------------------------------


class TestSelection:
    def test_backend_exposes_every_kernel(self):
        for backend in [NUMPY] + OTHER_BACKENDS:
            for name in KERNEL_NAMES:
                assert callable(getattr(backend, name))

    def test_unknown_backend_strict_raises_lenient_warns(self):
        with pytest.raises(ConfigurationError, match="unknown kernel backend"):
            get_kernels("bogus")
        with pytest.warns(UserWarning, match="falling back to auto"):
            backend = get_kernels("bogus", strict=False)
        assert backend.name in ("numpy", "numba")

    @pytest.mark.skipif(
        numba_backend.NUMBA_AVAILABLE, reason="numba is installed here"
    )
    def test_explicit_numba_raises_when_missing(self):
        with pytest.raises(ConfigurationError, match="not available"):
            get_kernels("numba")
        with pytest.warns(UserWarning):
            assert get_kernels("numba", strict=False).name == "numpy"

    def test_env_var_drives_the_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "numpy")
        reset_default_kernels()
        assert kernels_mod.active().name == "numpy"
        monkeypatch.setenv("REPRO_KERNELS", "bogus")
        reset_default_kernels()
        with pytest.warns(UserWarning):  # env typos degrade, never crash
            assert kernels_mod.active().name in ("numpy", "numba")

    def test_use_kernels_scopes_and_restores(self):
        before = kernels_mod.active().name
        with use_kernels(python_mirror_backend()) as backend:
            assert backend.name == "python"
            assert kernels_mod.active().name == "python"
        assert kernels_mod.active().name == before
        with use_kernels(None) as backend:  # no override: pass-through
            assert backend.name == before

    def test_set_default_kernels(self):
        assert set_default_kernels("numpy").name == "numpy"
        assert kernels_mod.active().name == "numpy"

    def test_get_engine_plumbs_kernels(self):
        engine = get_engine("columnar", kernels="numpy")
        assert engine._kernels is NUMPY
        assert get_engine("sharded", workers=2, kernels="numpy")._kernels
        with pytest.raises(ConfigurationError, match="does not take"):
            get_engine("reference", kernels="numpy")
        with pytest.raises(ConfigurationError, match="does not take"):
            get_engine("batched", kernels="numpy")
        with pytest.raises(ConfigurationError, match="engine instance"):
            get_engine(ColumnarEngine(), kernels="numpy")

    def test_engine_rejects_bad_backend_at_construction(self):
        with pytest.raises(ConfigurationError):
            ColumnarEngine(kernels="bogus")

    def test_kernel_stats_reset(self):
        reset_kernel_stats()
        NUMPY.merge_cut(np.array([1.0]), np.array([2.0, 3.0]), 2)
        assert kernel_stats()[("merge_cut", "numpy")][0] == 1
        reset_kernel_stats()
        assert ("merge_cut", "numpy") not in kernel_stats()

    def test_registry_export(self):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        set_kernel_registry(registry)
        NUMPY.merge_cut(np.array([1.0]), np.array([2.0, 3.0]), 2)
        names = registry.metric_names()
        assert "repro_kernel_calls_total" in names
        assert "repro_kernel_seconds" in names
        assert "repro_kernel_backend_info" in names

    def test_cli_kernels_flag(self, capsys):
        from repro.cli import main

        assert (
            main(
                [
                    "swor",
                    "--items",
                    "400",
                    "--engine",
                    "columnar",
                    "--kernels",
                    "numpy",
                ]
            )
            == 0
        )
        capsys.readouterr()
        with pytest.raises(SystemExit, match="--kernels requires"):
            main(["swor", "--items", "10", "--kernels", "numpy"])

    def test_cli_profile_sort(self, capsys):
        from repro.cli import main

        assert (
            main(
                [
                    "swor",
                    "--items",
                    "300",
                    "--engine",
                    "columnar",
                    "--profile",
                    "--profile-sort",
                    "tottime",
                ]
            )
            == 0
        )
        assert "Ordered by: internal time" in capsys.readouterr().err

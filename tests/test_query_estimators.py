"""Tests for the Horvitz–Thompson estimator library (repro.query.estimators).

The statistical properties pinned here:

* **exact regime** — when the sample holds the whole stream, every
  estimator returns the exact answer with a zero-width interval;
* **unbiasedness** — the subset-sum/count estimators average to the
  truth over many independent key draws (the HT conditioning argument);
* **CI coverage** — the nominal 95% interval covers the true
  subset-sum in >= ~90% of seeded trials.
"""

from __future__ import annotations

import random

import pytest

from repro.common.errors import ConfigurationError
from repro.common.rng import exponential
from repro.query import estimators as est
from repro.stream.item import Item


def _swor_entries(items, s, rng):
    """Centralized weighted SWOR via precision-sampling keys — the same
    sample law the distributed protocol realizes (Proposition 1)."""
    keyed = [(item, item.weight / exponential(rng)) for item in items]
    keyed.sort(key=lambda pair: -pair[1])
    return keyed[:s]


@pytest.fixture(scope="module")
def flat_items():
    rng = random.Random(7)
    return [Item(i, 1.0 + 20.0 * rng.random()) for i in range(400)]


class TestExactRegime:
    def test_subset_sum_exact_when_sample_holds_stream(self, flat_items):
        small = flat_items[:30]
        rng = random.Random(0)
        entries = _swor_entries(small, 64, rng)  # s > n: everything sampled
        truth = sum(i.weight for i in small if i.ident % 2 == 0)
        estimate = est.subset_sum(entries, 64, lambda i: i.ident % 2 == 0)
        assert estimate.exact
        # Same addends, different summation order (sample is key-sorted).
        assert estimate.value == pytest.approx(truth, rel=1e-12)
        assert estimate.variance == 0.0
        assert estimate.ci_low == estimate.value == estimate.ci_high

    def test_count_and_quantile_exact(self, flat_items):
        small = flat_items[:20]
        entries = _swor_entries(small, 32, random.Random(1))
        count = est.subset_count(entries, 32)
        assert count.exact and count.value == len(small)
        q = est.weighted_quantile(entries, 32, 0.5)
        assert q.exact and q.ci_low == q.value == q.ci_high

    def test_uniform_count_exact(self, flat_items):
        small = flat_items[:10]
        rng = random.Random(2)
        entries = sorted(
            ((item, rng.random()) for item in small), key=lambda p: p[1]
        )
        estimate = est.count_from_uniform_sample(entries, 32)
        assert estimate.exact and estimate.value == len(small)


class TestUnbiasedness:
    TRIALS = 2000

    def test_subset_sum_unbiased(self, flat_items):
        truth = sum(i.weight for i in flat_items if i.ident % 3 == 0)
        total = 0.0
        for trial in range(self.TRIALS):
            entries = _swor_entries(flat_items, 32, random.Random(100 + trial))
            total += est.subset_sum(entries, 32, lambda i: i.ident % 3 == 0).value
        assert total / self.TRIALS == pytest.approx(truth, rel=0.03)

    def test_subset_count_unbiased(self, flat_items):
        truth = sum(1 for i in flat_items if i.ident % 3 == 0)
        total = 0.0
        for trial in range(self.TRIALS):
            entries = _swor_entries(flat_items, 32, random.Random(500 + trial))
            total += est.subset_count(entries, 32, lambda i: i.ident % 3 == 0).value
        assert total / self.TRIALS == pytest.approx(truth, rel=0.03)

    def test_uniform_count_unbiased(self, flat_items):
        truth = len(flat_items)
        total = 0.0
        for trial in range(self.TRIALS):
            rng = random.Random(900 + trial)
            entries = sorted(
                ((item, rng.random()) for item in flat_items),
                key=lambda p: p[1],
            )[:32]
            total += est.count_from_uniform_sample(entries, 32).value
        assert total / self.TRIALS == pytest.approx(truth, rel=0.03)


class TestConfidenceIntervals:
    def test_nominal_95_covers_at_least_90_percent(self, flat_items):
        """The acceptance gate: 95% CIs cover the truth >= ~90% of the
        time over seeded trials."""
        truth = sum(i.weight for i in flat_items if i.ident % 2 == 0)
        trials = 300
        covered = 0
        for trial in range(trials):
            entries = _swor_entries(flat_items, 64, random.Random(2000 + trial))
            estimate = est.subset_sum(entries, 64, lambda i: i.ident % 2 == 0)
            covered += estimate.covers(truth)
        assert covered / trials >= 0.90

    def test_interval_width_shrinks_with_sample_size(self, flat_items):
        widths = []
        for s in (16, 64, 256):
            entries = _swor_entries(flat_items, s, random.Random(42))
            widths.append(est.total_weight_estimate(entries, s).ci_width)
        assert widths[0] > widths[1] > widths[2]

    def test_estimate_helpers(self):
        e = est.Estimate(
            value=10.0, variance=4.0, ci_low=6.0, ci_high=14.0, n_used=5
        )
        assert e.std_error == 2.0
        assert e.covers(7.0) and not e.covers(5.0)
        assert e.rel_error(8.0) == pytest.approx(0.25)
        assert "[" in f"{e:.3g}"


class TestOtherEstimators:
    def test_mean_weight_ratio(self, flat_items):
        truth = sum(i.weight for i in flat_items) / len(flat_items)
        values = []
        for trial in range(300):
            entries = _swor_entries(flat_items, 64, random.Random(3000 + trial))
            values.append(est.mean_weight(entries, 64).value)
        assert sum(values) / len(values) == pytest.approx(truth, rel=0.05)

    def test_frequency_relative_in_unit_interval(self, flat_items):
        entries = _swor_entries(flat_items, 64, random.Random(5))
        heavy = max(flat_items, key=lambda i: i.weight).ident
        share = est.frequency(entries, 64, heavy, relative=True)
        assert 0.0 <= share.value <= 1.0

    def test_group_by_sums_to_total(self, flat_items):
        entries = _swor_entries(flat_items, 64, random.Random(6))
        groups = est.group_by_sum(entries, 64, lambda i: i.ident % 4)
        total = est.total_weight_estimate(entries, 64)
        assert sum(e.value for e in groups.values()) == pytest.approx(total.value)

    def test_weighted_quantile_tracks_truth(self, flat_items):
        # Weighted median of the weight values themselves.
        ranked = sorted(flat_items, key=lambda i: i.weight)
        total = sum(i.weight for i in ranked)
        acc = 0.0
        for item in ranked:
            acc += item.weight
            if acc >= 0.5 * total:
                truth = item.weight
                break
        values = []
        for trial in range(200):
            entries = _swor_entries(flat_items, 64, random.Random(4000 + trial))
            values.append(est.weighted_quantile(entries, 64, 0.5).value)
        median_of_estimates = sorted(values)[len(values) // 2]
        assert median_of_estimates == pytest.approx(truth, rel=0.15)

    def test_swr_mean_clt(self):
        rng = random.Random(8)
        sample = [Item(i, 5.0 + rng.random()) for i in range(100)]
        estimate = est.swr_mean(sample)
        assert estimate.ci_low < estimate.value < estimate.ci_high
        assert estimate.method == "clt"

    def test_validation_errors(self, flat_items):
        entries = _swor_entries(flat_items, 8, random.Random(9))
        with pytest.raises(ConfigurationError):
            est.subset_sum(entries, 0)
        with pytest.raises(ConfigurationError):
            est.weighted_quantile(entries, 8, 1.5)
        with pytest.raises(ConfigurationError):
            est.subset_sum(entries, 8, confidence=1.0)
        with pytest.raises(ConfigurationError):
            est.swr_mean([])

"""Tests for L1 tracking (Section 5): our tracker and both baselines."""

from __future__ import annotations

import random

import pytest

from repro.analysis import bounds
from repro.common import ConfigurationError, relative_error
from repro.l1 import (
    DeterministicCounterTracker,
    HyzStyleTracker,
    L1Tracker,
    theorem6_duplication,
    theorem6_sample_size,
)
from repro.stream import (
    round_robin,
    uniform_stream,
    unit_stream,
    zipf_stream,
)


class TestParameterFormulas:
    def test_sample_size(self):
        import math

        assert theorem6_sample_size(0.1, 0.1) == math.ceil(
            10 * math.log(10) / 0.01
        )

    def test_duplication(self):
        assert theorem6_duplication(100, 0.25) == 200

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            theorem6_sample_size(2.0, 0.1)
        with pytest.raises(ConfigurationError):
            theorem6_duplication(0, 0.1)


class TestL1Tracker:
    def test_final_estimate_within_eps(self):
        """Theorem 6 accuracy at the end of the stream, several seeds.

        delta=0.2 allows ~1/5 failures; we tolerate 2 of 8 seeds
        exceeding eps (binomial tail ~0.2)."""
        eps = 0.2
        failures = 0
        for seed in range(8):
            tracker = L1Tracker(8, eps=eps, delta=0.2, seed=seed)
            stream = round_robin(unit_stream(20000), 8)
            tracker.run(stream)
            if relative_error(tracker.estimate(), 20000.0) > eps:
                failures += 1
        assert failures <= 2

    def test_estimate_tracks_prefixes(self):
        """Continuous tracking: checkpoint estimates follow W_t."""
        eps = 0.25
        tracker = L1Tracker(4, eps=eps, delta=0.2, seed=3)
        rng = random.Random(5)
        items = uniform_stream(15000, rng, low=1.0, high=10.0)
        stream = round_robin(items, 4)
        prefix = stream.prefix_weights()
        checkpoints = [1000, 5000, 15000]
        errors = []

        def record(t):
            errors.append(relative_error(tracker.estimate(), prefix[t - 1]))

        tracker.run(stream, checkpoints=checkpoints, on_checkpoint=record)
        assert max(errors) < 3 * eps  # loose union over 3 checkpoints

    def test_exact_mode_before_first_epoch(self):
        """While no epoch was broadcast, the estimate is exact."""
        tracker = L1Tracker(
            2, eps=0.3, delta=0.3, seed=1,
            sample_size_override=50, duplication_override=100,
        )
        # One light item: duplicated weight 100*1 = 100, not enough for
        # the 50-key threshold to reach 1 -> exact path... it may
        # announce; in either case the estimate of a 1-item stream of
        # weight w=3 must be close.
        from repro.stream import Item

        tracker.process(0, Item(0, 3.0))
        assert relative_error(tracker.estimate(), 3.0) < 0.5

    def test_message_complexity_shape(self):
        eps, delta, k, n = 0.25, 0.2, 16, 30000
        tracker = L1Tracker(k, eps=eps, delta=delta, seed=7)
        counters = tracker.run(round_robin(unit_stream(n), k))
        bound = bounds.l1_upper_this_work(k, eps, delta, float(n))
        assert counters.total < 20 * bound

    def test_weighted_stream_accuracy(self):
        eps = 0.25
        rng = random.Random(9)
        items = zipf_stream(10000, rng, alpha=1.5, max_weight=1e4)
        stream = round_robin(items, 4)
        w = stream.total_weight()
        tracker = L1Tracker(4, eps=eps, delta=0.2, seed=10)
        tracker.run(stream)
        assert relative_error(tracker.estimate(), w) < 3 * eps

    def test_overrides(self):
        tracker = L1Tracker(
            2, 0.2, seed=1, sample_size_override=30, duplication_override=60
        )
        assert tracker.sample_size == 30
        assert tracker.duplication == 60

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            L1Tracker(0, 0.1)
        with pytest.raises(ConfigurationError):
            L1Tracker(2, 0.0)


class TestDeterministicBaseline:
    def test_always_within_eps_at_every_step(self):
        eps = 0.2
        tracker = DeterministicCounterTracker(4, eps)
        rng = random.Random(1)
        items = uniform_stream(5000, rng, low=1.0, high=20.0)
        stream = round_robin(items, 4)
        prefix = stream.prefix_weights()
        worst = 0.0

        def check(t):
            nonlocal worst
            worst = max(worst, relative_error(tracker.estimate(), prefix[t - 1]))

        tracker.run(stream, on_step=check)
        assert worst <= eps + 1e-9

    def test_message_count_shape(self):
        import math

        eps, k, n = 0.1, 8, 40000
        tracker = DeterministicCounterTracker(k, eps)
        counters = tracker.run(round_robin(unit_stream(n), k))
        # k * log_{1+eps}(n/k) messages, within a small constant.
        per_site = math.log(n / k) / math.log(1 + eps)
        assert counters.total <= 1.5 * k * (per_site + 1)
        assert counters.total >= 0.3 * k * per_site

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            DeterministicCounterTracker(0, 0.1)
        with pytest.raises(ConfigurationError):
            DeterministicCounterTracker(2, 0.0)


class TestHyzBaseline:
    def test_estimate_roughly_accurate(self):
        """Constant-probability guarantee: most seeds land within
        2*eps; we tolerate a couple of outliers."""
        eps = 0.2
        bad = 0
        for seed in range(8):
            tracker = HyzStyleTracker(16, eps, seed=seed)
            tracker.run(round_robin(unit_stream(20000), 16))
            if relative_error(tracker.estimate(), 20000.0) > 2 * eps:
                bad += 1
        assert bad <= 2

    def test_message_shape_sqrt_k(self):
        """Messages grow like sqrt(k)/eps + k, not k/eps."""
        eps, n = 0.05, 40000
        small = HyzStyleTracker(4, eps, seed=1)
        c_small = small.run(round_robin(unit_stream(n), 4))
        big = HyzStyleTracker(64, eps, seed=2)
        c_big = big.run(round_robin(unit_stream(n), 64))
        # 16x sites -> ~4x the sqrt(k) term; allow generous band but
        # rule out linear-in-k growth (16x).
        assert c_big.total < 10 * c_small.total

    def test_beats_deterministic_for_small_eps_large_k(self):
        eps, k, n = 0.02, 64, 40000
        det = DeterministicCounterTracker(k, eps)
        c_det = det.run(round_robin(unit_stream(n), k))
        hyz = HyzStyleTracker(k, eps, seed=3)
        c_hyz = hyz.run(round_robin(unit_stream(n), k))
        assert c_hyz.total < c_det.total

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            HyzStyleTracker(0, 0.1)
        with pytest.raises(ConfigurationError):
            HyzStyleTracker(2, 1.0)

"""Unit tests for repro.stream.item."""

from __future__ import annotations

import pytest

from repro.common import ConfigurationError, InvalidWeightError
from repro.stream import DistributedStream, Item, total_weight, validate_weights


class TestItem:
    def test_fields(self):
        item = Item(3, 2.5)
        assert item.ident == 3 and item.weight == 2.5

    def test_is_hashable_tuple(self):
        assert Item(1, 2.0) == (1, 2.0)
        assert hash(Item(1, 2.0)) == hash((1, 2.0))


class TestValidateWeights:
    def test_accepts_valid(self, tiny_weighted_items):
        validate_weights(tiny_weighted_items)

    def test_rejects_nonpositive(self):
        with pytest.raises(InvalidWeightError):
            validate_weights([Item(0, 0.0)])
        with pytest.raises(InvalidWeightError):
            validate_weights([Item(0, -1.0)])

    def test_rejects_nan_inf(self):
        with pytest.raises(InvalidWeightError):
            validate_weights([Item(0, float("nan"))])
        with pytest.raises(InvalidWeightError):
            validate_weights([Item(0, float("inf"))])

    def test_model_normalization_enforced(self):
        with pytest.raises(InvalidWeightError):
            validate_weights([Item(0, 0.5)])
        validate_weights([Item(0, 0.5)], require_at_least_one=False)


class TestTotalWeight:
    def test_sums(self, tiny_weighted_items):
        assert total_weight(tiny_weighted_items) == 31.0

    def test_empty_zero(self):
        assert total_weight([]) == 0.0


class TestDistributedStream:
    def test_iteration_order(self, tiny_weighted_items):
        stream = DistributedStream(tiny_weighted_items, [0, 1, 0, 1, 0], 2)
        pairs = list(stream)
        assert [site for site, _ in pairs] == [0, 1, 0, 1, 0]
        assert [item for _, item in pairs] == tiny_weighted_items

    def test_length_and_totals(self, tiny_weighted_items):
        stream = DistributedStream(tiny_weighted_items, [0] * 5, 1)
        assert len(stream) == 5
        assert stream.total_weight() == 31.0

    def test_prefix_weights(self, tiny_weighted_items):
        stream = DistributedStream(tiny_weighted_items, [0] * 5, 1)
        assert stream.prefix_weights() == [1.0, 3.0, 7.0, 15.0, 31.0]

    def test_local_streams_partition(self, tiny_weighted_items):
        stream = DistributedStream(tiny_weighted_items, [0, 1, 0, 2, 1], 3)
        locals_ = stream.local_streams()
        assert [i.ident for i in locals_[0]] == [0, 2]
        assert [i.ident for i in locals_[1]] == [1, 4]
        assert [i.ident for i in locals_[2]] == [3]

    def test_mismatched_lengths_rejected(self, tiny_weighted_items):
        with pytest.raises(ConfigurationError):
            DistributedStream(tiny_weighted_items, [0, 1], 2)

    def test_bad_site_index_rejected(self, tiny_weighted_items):
        with pytest.raises(ConfigurationError):
            DistributedStream(tiny_weighted_items, [0, 1, 0, 5, 0], 2)

    def test_zero_sites_rejected(self):
        with pytest.raises(ConfigurationError):
            DistributedStream([], [], 0)

"""Tests for repro.extensions: sliding-window SWOR and cascade sampling."""

from __future__ import annotations

import math
import random
from collections import Counter

import pytest
from hypothesis import given, settings, strategies as st

from repro.common import (
    ConfigurationError,
    InvalidWeightError,
    chi_square_pvalue,
    chi_square_statistic,
    exact_swor_inclusion_probabilities,
    exponential,
)
from repro.extensions import CascadeWeightedSWOR, SlidingWindowWeightedSWOR
from repro.stream import Item


class TestSlidingWindowSWOR:
    def test_whole_stream_sample_law(self):
        weights = [1.0, 3.0, 6.0, 2.0, 8.0]
        s, trials = 2, 6000
        counts = Counter()
        for t in range(trials):
            sw = SlidingWindowWeightedSWOR(s, random.Random(t))
            for i, w in enumerate(weights):
                sw.insert(Item(i, w))
            for item in sw.sample():
                counts[item.ident] += 1
        exact = exact_swor_inclusion_probabilities(weights, s)
        expected = {i: trials * p for i, p in enumerate(exact)}
        stat, df = chi_square_statistic(counts, expected)
        assert chi_square_pvalue(stat, df) > 1e-4

    def test_window_sample_law_excludes_old_giant(self):
        """A giant outside the window must never appear; within-window
        items follow the window's own SWOR law."""
        weights = [1e9, 1.0, 5.0, 2.0, 8.0, 4.0]
        s, window, trials = 2, 4, 6000
        counts = Counter()
        for t in range(trials):
            sw = SlidingWindowWeightedSWOR(s, random.Random(t + 10**6))
            for i, w in enumerate(weights):
                sw.insert(Item(i, w))
            for item in sw.sample(window=window):
                counts[item.ident] += 1
        assert counts[0] == 0  # giant fell out of the window
        exact = exact_swor_inclusion_probabilities(weights[2:], s)
        expected = {i + 2: trials * p for i, p in enumerate(exact)}
        stat, df = chi_square_statistic(counts, expected)
        assert chi_square_pvalue(stat, df) > 1e-4

    def test_sample_size_clamped_to_window(self):
        sw = SlidingWindowWeightedSWOR(5, random.Random(1))
        for i in range(3):
            sw.insert(Item(i, 2.0))
        assert len(sw.sample(window=2)) == 2

    def test_space_is_logarithmic(self):
        """Retained candidates ~ s·ln(n/s), far below n."""
        s, n = 8, 20000
        sw = SlidingWindowWeightedSWOR(s, random.Random(3))
        rng = random.Random(4)
        for i in range(n):
            sw.insert(Item(i, rng.uniform(1.0, 5.0)))
        expected = s * math.log(n / s)
        assert sw.retained_count() < 6 * expected
        assert sw.retained_count() < n / 10

    def test_horizon_discards_old(self):
        sw = SlidingWindowWeightedSWOR(2, random.Random(5), horizon=10)
        for i in range(100):
            sw.insert(Item(i, 1.0))
        assert all(e.index >= 90 for e in sw._entries)

    def test_window_validation(self):
        sw = SlidingWindowWeightedSWOR(2, random.Random(6), horizon=10)
        sw.insert(Item(0, 1.0))
        with pytest.raises(ConfigurationError):
            sw.sample(window=0)
        with pytest.raises(ConfigurationError):
            sw.sample(window=20)

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            SlidingWindowWeightedSWOR(0, random.Random(7))
        with pytest.raises(ConfigurationError):
            SlidingWindowWeightedSWOR(2, random.Random(7), horizon=0)

    def test_invalid_weight(self):
        sw = SlidingWindowWeightedSWOR(2, random.Random(8))
        with pytest.raises(InvalidWeightError):
            sw.insert(Item(0, -1.0))

    def test_keys_decreasing_in_sample(self):
        sw = SlidingWindowWeightedSWOR(4, random.Random(9))
        for i in range(50):
            sw.insert(Item(i, 1.0 + i % 3))
        keys = [k for _, k in sw.sample_with_keys()]
        assert keys == sorted(keys, reverse=True)

    def test_window_beyond_items_seen_is_whole_stream(self):
        """The documented contract: windows are validated against the
        retention guarantee (the horizon), never the arrival count —
        an over-long window just covers everything retained, in both
        horizon modes."""
        unbounded = SlidingWindowWeightedSWOR(2, random.Random(10))
        bounded = SlidingWindowWeightedSWOR(2, random.Random(10), horizon=50)
        for sw in (unbounded, bounded):
            for i in range(5):
                sw.insert(Item(i, 2.0))
        assert unbounded.sample_with_keys(40) == unbounded.sample_with_keys()
        assert bounded.sample_with_keys(40) == bounded.sample_with_keys()
        # ... while beyond-horizon windows raise, with or without data.
        with pytest.raises(ConfigurationError):
            bounded.sample(window=51)


class TestSlidingWindowColumnar:
    """The columnar insert path and its bit-parity contract."""

    np = pytest.importorskip("numpy")

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10**6),
        s=st.integers(min_value=1, max_value=8),
        horizon=st.one_of(st.none(), st.integers(min_value=1, max_value=120)),
        weights=st.lists(
            st.floats(min_value=1e-3, max_value=1e9, allow_nan=False),
            min_size=1,
            max_size=300,
        ),
        data=st.data(),
    )
    def test_chunked_insert_bit_identical_to_per_item(
        self, seed, s, horizon, weights, data
    ):
        """Any chunking of insert_columns — including chunk size 1 —
        equals per-item insertion bit for bit (entries, dominator
        counts, samples), because both consume the same scalar draws."""
        np = self.np
        n = len(weights)
        per_item = SlidingWindowWeightedSWOR(
            s, random.Random(seed), horizon=horizon
        )
        for i, w in enumerate(weights):
            per_item.insert(Item(i, w))
        chunked = SlidingWindowWeightedSWOR(
            s, random.Random(seed), horizon=horizon
        )
        lo = 0
        while lo < n:
            size = data.draw(st.integers(min_value=1, max_value=n - lo))
            chunked.insert_columns(
                np.arange(lo, lo + size),
                np.asarray(weights[lo:lo + size]),
            )
            lo += size
        assert [
            (e.index, e.item, e.key, e.dominators, e.timestamp)
            for e in per_item._entries
        ] == [
            (e.index, e.item, e.key, e.dominators, e.timestamp)
            for e in chunked._entries
        ]
        window = data.draw(
            st.integers(min_value=1, max_value=horizon or (2 * n))
        )
        assert per_item.sample_with_keys(window) == chunked.sample_with_keys(
            window
        )

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10**6),
        s=st.integers(min_value=1, max_value=6),
        horizon=st.one_of(st.none(), st.integers(min_value=1, max_value=100)),
        n=st.integers(min_value=1, max_value=250),
        data=st.data(),
    )
    def test_dominance_invariant_vs_brute_force(self, seed, s, horizon, n, data):
        """``sample(window)`` equals the exact top-``s`` keys of a
        brute-force window replay, across random horizons, evictions,
        window sizes, and the columnar insert path.  The sampler draws
        one exponential per arrival in arrival order, so an
        independent replay of the same ``random.Random`` recovers every
        key — including those of evicted entries."""
        np = self.np
        rng_w = random.Random(seed + 1)
        weights = [rng_w.uniform(0.1, 100.0) for _ in range(n)]
        sw = SlidingWindowWeightedSWOR(s, random.Random(seed), horizon=horizon)
        lo = 0
        while lo < n:
            size = data.draw(st.integers(min_value=1, max_value=n - lo))
            if data.draw(st.booleans()):
                sw.insert_columns(
                    np.arange(lo, lo + size), np.asarray(weights[lo:lo + size])
                )
            else:
                for i in range(lo, lo + size):
                    sw.insert(Item(i, weights[i]))
            lo += size
        replay = random.Random(seed)
        all_keys = [w / exponential(replay) for w in weights]
        max_window = horizon if horizon is not None else 2 * n
        window = data.draw(st.integers(min_value=1, max_value=max_window))
        cutoff = n - window
        brute = sorted(
            ((i, all_keys[i]) for i in range(max(0, cutoff), n)),
            key=lambda pair: -pair[1],
        )[:s]
        got = sw.sample_with_keys(window)
        assert [(item.ident, key) for item, key in got] == brute

    def test_batch_size_one_column_equals_insert(self):
        np = self.np
        a = SlidingWindowWeightedSWOR(3, random.Random(5))
        b = SlidingWindowWeightedSWOR(3, random.Random(5))
        for i in range(40):
            a.insert(Item(i, float(i % 7 + 1)))
            b.insert_columns(np.array([i]), np.array([float(i % 7 + 1)]))
        assert a.sample_with_keys() == b.sample_with_keys()
        assert a.retained_count() == b.retained_count()

    def test_invalid_weight_fails_fast_without_partial_insert(self):
        np = self.np
        sw = SlidingWindowWeightedSWOR(2, random.Random(6))
        with pytest.raises(InvalidWeightError):
            sw.insert_columns(np.arange(3), np.array([1.0, -2.0, 3.0]))
        assert sw.items_seen == 0 and sw.retained_count() == 0

    def test_timestamps_default_to_arrival_index(self):
        np = self.np
        sw = SlidingWindowWeightedSWOR(4, random.Random(7))
        sw.insert_columns(np.arange(10), np.ones(10))
        sw.insert(Item(10, 1.0))
        assert all(e.timestamp == float(e.index) for e in sw._entries)

    def test_timestamps_must_be_nondecreasing(self):
        np = self.np
        sw = SlidingWindowWeightedSWOR(2, random.Random(8))
        sw.insert(Item(0, 1.0), timestamp=100.0)
        with pytest.raises(ConfigurationError):
            sw.insert(Item(1, 1.0), timestamp=99.0)
        with pytest.raises(ConfigurationError):
            sw.insert_columns(
                np.arange(2), np.ones(2), np.array([200.0, 150.0])
            )
        with pytest.raises(ConfigurationError):
            sw.insert_columns(np.arange(2), np.ones(2), np.array([50.0, 60.0]))
        # The index default after a large explicit timestamp also trips.
        with pytest.raises(ConfigurationError):
            sw.insert_columns(np.arange(2), np.ones(2))

    def test_sample_since_exact_on_unbounded_horizon(self):
        np = self.np
        sw = SlidingWindowWeightedSWOR(3, random.Random(9))
        sw.insert_columns(
            np.arange(200),
            np.ones(200),
            np.arange(200, dtype=np.float64) * 2.0,
        )
        # Timestamp suffix ts >= 2*150 is exactly the last-50 window.
        assert sw.sample_since(300.0) == sw.sample_with_keys(50)
        bounded = SlidingWindowWeightedSWOR(3, random.Random(9), horizon=50)
        bounded.insert(Item(0, 1.0))
        with pytest.raises(ConfigurationError):
            bounded.sample_since(0.0)

    def test_numpy_free_fallback(self, monkeypatch):
        import repro.extensions.sliding_window as mod

        a = SlidingWindowWeightedSWOR(3, random.Random(11))
        monkeypatch.setattr(mod, "_np", None)
        b = SlidingWindowWeightedSWOR(3, random.Random(11))
        weights = [float(i % 5 + 1) for i in range(60)]
        for i, w in enumerate(weights):
            a.insert(Item(i, w))
        b.insert_columns(list(range(60)), weights)
        assert a.sample_with_keys() == b.sample_with_keys()


class TestCascadeSWOR:
    def test_matches_exact_law(self):
        """Cascade sampling and exponential keys implement the same
        Definition 1 law — two structurally different algorithms."""
        weights = [1.0, 3.0, 6.0, 2.0, 8.0]
        s, trials = 2, 8000
        counts = Counter()
        for t in range(trials):
            cascade = CascadeWeightedSWOR(s, random.Random(t))
            for i, w in enumerate(weights):
                cascade.insert(Item(i, w))
            for item in cascade.sample():
                counts[item.ident] += 1
        exact = exact_swor_inclusion_probabilities(weights, s)
        expected = {i: trials * p for i, p in enumerate(exact)}
        stat, df = chi_square_statistic(counts, expected)
        assert chi_square_pvalue(stat, df) > 1e-4

    def test_first_level_is_single_weighted_sample(self):
        weights = [1.0, 2.0, 7.0]
        trials = 8000
        counts = Counter()
        for t in range(trials):
            cascade = CascadeWeightedSWOR(1, random.Random(t + 5))
            for i, w in enumerate(weights):
                cascade.insert(Item(i, w))
            counts[cascade.sample()[0].ident] += 1
        for i, w in enumerate(weights):
            assert abs(counts[i] / trials - w / 10.0) < 0.02

    def test_underfull_prefix(self):
        cascade = CascadeWeightedSWOR(5, random.Random(1))
        cascade.insert(Item(0, 1.0))
        cascade.insert(Item(1, 1.0))
        assert len(cascade) == 2
        sample_ids = {item.ident for item in cascade.sample()}
        assert sample_ids == {0, 1}

    def test_sample_is_distinct(self):
        cascade = CascadeWeightedSWOR(4, random.Random(2))
        for i in range(100):
            cascade.insert(Item(i, 1.0 + i % 5))
        idents = [item.ident for item in cascade.sample()]
        assert len(idents) == len(set(idents)) == 4

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            CascadeWeightedSWOR(0, random.Random(3))
        with pytest.raises(InvalidWeightError):
            CascadeWeightedSWOR(2, random.Random(3)).insert(Item(0, 0.0))

    def test_agrees_with_sliding_window_on_full_stream(self):
        """Three-way cross-validation: cascade vs sliding-window (full
        window) on identical inputs, compared via TV distance."""
        weights = [2.0, 5.0, 1.0, 4.0]
        s, trials = 2, 6000
        c1, c2 = Counter(), Counter()
        for t in range(trials):
            a = CascadeWeightedSWOR(s, random.Random(t))
            b = SlidingWindowWeightedSWOR(s, random.Random(t + 7777))
            for i, w in enumerate(weights):
                a.insert(Item(i, w))
                b.insert(Item(i, w))
            for item in a.sample():
                c1[item.ident] += 1
            for item in b.sample():
                c2[item.ident] += 1
        tv = 0.5 * sum(
            abs(c1.get(i, 0) - c2.get(i, 0)) / (trials * s) for i in range(4)
        )
        assert tv < 0.03

"""Tests for repro.extensions: sliding-window SWOR and cascade sampling."""

from __future__ import annotations

import math
import random
from collections import Counter

import pytest

from repro.common import (
    ConfigurationError,
    InvalidWeightError,
    chi_square_pvalue,
    chi_square_statistic,
    exact_swor_inclusion_probabilities,
)
from repro.extensions import CascadeWeightedSWOR, SlidingWindowWeightedSWOR
from repro.stream import Item


class TestSlidingWindowSWOR:
    def test_whole_stream_sample_law(self):
        weights = [1.0, 3.0, 6.0, 2.0, 8.0]
        s, trials = 2, 6000
        counts = Counter()
        for t in range(trials):
            sw = SlidingWindowWeightedSWOR(s, random.Random(t))
            for i, w in enumerate(weights):
                sw.insert(Item(i, w))
            for item in sw.sample():
                counts[item.ident] += 1
        exact = exact_swor_inclusion_probabilities(weights, s)
        expected = {i: trials * p for i, p in enumerate(exact)}
        stat, df = chi_square_statistic(counts, expected)
        assert chi_square_pvalue(stat, df) > 1e-4

    def test_window_sample_law_excludes_old_giant(self):
        """A giant outside the window must never appear; within-window
        items follow the window's own SWOR law."""
        weights = [1e9, 1.0, 5.0, 2.0, 8.0, 4.0]
        s, window, trials = 2, 4, 6000
        counts = Counter()
        for t in range(trials):
            sw = SlidingWindowWeightedSWOR(s, random.Random(t + 10**6))
            for i, w in enumerate(weights):
                sw.insert(Item(i, w))
            for item in sw.sample(window=window):
                counts[item.ident] += 1
        assert counts[0] == 0  # giant fell out of the window
        exact = exact_swor_inclusion_probabilities(weights[2:], s)
        expected = {i + 2: trials * p for i, p in enumerate(exact)}
        stat, df = chi_square_statistic(counts, expected)
        assert chi_square_pvalue(stat, df) > 1e-4

    def test_sample_size_clamped_to_window(self):
        sw = SlidingWindowWeightedSWOR(5, random.Random(1))
        for i in range(3):
            sw.insert(Item(i, 2.0))
        assert len(sw.sample(window=2)) == 2

    def test_space_is_logarithmic(self):
        """Retained candidates ~ s·ln(n/s), far below n."""
        s, n = 8, 20000
        sw = SlidingWindowWeightedSWOR(s, random.Random(3))
        rng = random.Random(4)
        for i in range(n):
            sw.insert(Item(i, rng.uniform(1.0, 5.0)))
        expected = s * math.log(n / s)
        assert sw.retained_count() < 6 * expected
        assert sw.retained_count() < n / 10

    def test_horizon_discards_old(self):
        sw = SlidingWindowWeightedSWOR(2, random.Random(5), horizon=10)
        for i in range(100):
            sw.insert(Item(i, 1.0))
        assert all(e.index >= 90 for e in sw._entries)

    def test_window_validation(self):
        sw = SlidingWindowWeightedSWOR(2, random.Random(6), horizon=10)
        sw.insert(Item(0, 1.0))
        with pytest.raises(ConfigurationError):
            sw.sample(window=0)
        with pytest.raises(ConfigurationError):
            sw.sample(window=20)

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            SlidingWindowWeightedSWOR(0, random.Random(7))
        with pytest.raises(ConfigurationError):
            SlidingWindowWeightedSWOR(2, random.Random(7), horizon=0)

    def test_invalid_weight(self):
        sw = SlidingWindowWeightedSWOR(2, random.Random(8))
        with pytest.raises(InvalidWeightError):
            sw.insert(Item(0, -1.0))

    def test_keys_decreasing_in_sample(self):
        sw = SlidingWindowWeightedSWOR(4, random.Random(9))
        for i in range(50):
            sw.insert(Item(i, 1.0 + i % 3))
        keys = [k for _, k in sw.sample_with_keys()]
        assert keys == sorted(keys, reverse=True)


class TestCascadeSWOR:
    def test_matches_exact_law(self):
        """Cascade sampling and exponential keys implement the same
        Definition 1 law — two structurally different algorithms."""
        weights = [1.0, 3.0, 6.0, 2.0, 8.0]
        s, trials = 2, 8000
        counts = Counter()
        for t in range(trials):
            cascade = CascadeWeightedSWOR(s, random.Random(t))
            for i, w in enumerate(weights):
                cascade.insert(Item(i, w))
            for item in cascade.sample():
                counts[item.ident] += 1
        exact = exact_swor_inclusion_probabilities(weights, s)
        expected = {i: trials * p for i, p in enumerate(exact)}
        stat, df = chi_square_statistic(counts, expected)
        assert chi_square_pvalue(stat, df) > 1e-4

    def test_first_level_is_single_weighted_sample(self):
        weights = [1.0, 2.0, 7.0]
        trials = 8000
        counts = Counter()
        for t in range(trials):
            cascade = CascadeWeightedSWOR(1, random.Random(t + 5))
            for i, w in enumerate(weights):
                cascade.insert(Item(i, w))
            counts[cascade.sample()[0].ident] += 1
        for i, w in enumerate(weights):
            assert abs(counts[i] / trials - w / 10.0) < 0.02

    def test_underfull_prefix(self):
        cascade = CascadeWeightedSWOR(5, random.Random(1))
        cascade.insert(Item(0, 1.0))
        cascade.insert(Item(1, 1.0))
        assert len(cascade) == 2
        sample_ids = {item.ident for item in cascade.sample()}
        assert sample_ids == {0, 1}

    def test_sample_is_distinct(self):
        cascade = CascadeWeightedSWOR(4, random.Random(2))
        for i in range(100):
            cascade.insert(Item(i, 1.0 + i % 5))
        idents = [item.ident for item in cascade.sample()]
        assert len(idents) == len(set(idents)) == 4

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            CascadeWeightedSWOR(0, random.Random(3))
        with pytest.raises(InvalidWeightError):
            CascadeWeightedSWOR(2, random.Random(3)).insert(Item(0, 0.0))

    def test_agrees_with_sliding_window_on_full_stream(self):
        """Three-way cross-validation: cascade vs sliding-window (full
        window) on identical inputs, compared via TV distance."""
        weights = [2.0, 5.0, 1.0, 4.0]
        s, trials = 2, 6000
        c1, c2 = Counter(), Counter()
        for t in range(trials):
            a = CascadeWeightedSWOR(s, random.Random(t))
            b = SlidingWindowWeightedSWOR(s, random.Random(t + 7777))
            for i, w in enumerate(weights):
                a.insert(Item(i, w))
                b.insert(Item(i, w))
            for item in a.sample():
                c1[item.ident] += 1
            for item in b.sample():
                c2[item.ident] += 1
        tv = 0.5 * sum(
            abs(c1.get(i, 0) - c2.get(i, 0)) / (trials * s) for i in range(4)
        )
        assert tv < 0.03

"""The benchmark baseline comparator: ``--only`` guard and comparisons."""

from __future__ import annotations

import importlib.util
import json
import os

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "compare_baselines",
    os.path.join(
        os.path.dirname(__file__), "..", "benchmarks", "compare_baselines.py"
    ),
)
compare_baselines = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(compare_baselines)


class TestOnlyGuard:
    def test_unknown_only_name_fails_loudly(self, capsys):
        # A typo'd --only must not silently compare nothing and pass.
        code = compare_baselines.main(["--only", "BENCH_typo.json"])
        assert code == 2
        err = capsys.readouterr().err
        assert "BENCH_typo.json" in err
        assert "known:" in err
        assert "BENCH_sharded.json" in err  # the error lists valid names

    def test_known_only_name_restricts_comparison(self, tmp_path, capsys):
        baseline = {
            "items": 1,
            "sites": 1,
            "sample_size": 1,
            "workers": 2,
            "batch_size": 64,
            "speedup": 1.0,
            "lockstep_speedup": 1.0,
            "sharded_items_per_sec": 100,
        }
        fresh = dict(baseline, speedup=1.2)
        base_dir = tmp_path / "baselines"
        fresh_dir = tmp_path / "fresh"
        base_dir.mkdir()
        fresh_dir.mkdir()
        (base_dir / "BENCH_sharded.json").write_text(json.dumps(baseline))
        (fresh_dir / "BENCH_sharded.json").write_text(json.dumps(fresh))
        code = compare_baselines.main(
            [
                "--baseline-dir",
                str(base_dir),
                "--fresh-dir",
                str(fresh_dir),
                "--only",
                "BENCH_sharded.json",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        # Only the selected baseline was compared.
        assert "all 1 benchmark baselines within tolerance" in out

    def test_regression_detected(self, tmp_path, capsys):
        baseline = {
            "items": 1,
            "sites": 1,
            "sample_size": 1,
            "workers": 2,
            "batch_size": 64,
            "speedup": 2.0,
            "lockstep_speedup": 2.0,
            "sharded_items_per_sec": 100,
        }
        fresh = dict(baseline, speedup=1.0)  # 50% drop > 20% tolerance
        base_dir = tmp_path / "baselines"
        fresh_dir = tmp_path / "fresh"
        base_dir.mkdir()
        fresh_dir.mkdir()
        (base_dir / "BENCH_sharded.json").write_text(json.dumps(baseline))
        (fresh_dir / "BENCH_sharded.json").write_text(json.dumps(fresh))
        code = compare_baselines.main(
            [
                "--baseline-dir",
                str(base_dir),
                "--fresh-dir",
                str(fresh_dir),
                "--only",
                "BENCH_sharded.json",
            ]
        )
        assert code == 1
        assert "regressed" in capsys.readouterr().err

    def test_config_mismatch_fails(self, tmp_path, capsys):
        baseline = {
            "items": 1,
            "sites": 1,
            "sample_size": 1,
            "workers": 2,
            "batch_size": 64,
            "speedup": 1.0,
            "lockstep_speedup": 1.0,
            "sharded_items_per_sec": 100,
        }
        fresh = dict(baseline, workers=4)
        base_dir = tmp_path / "baselines"
        fresh_dir = tmp_path / "fresh"
        base_dir.mkdir()
        fresh_dir.mkdir()
        (base_dir / "BENCH_sharded.json").write_text(json.dumps(baseline))
        (fresh_dir / "BENCH_sharded.json").write_text(json.dumps(fresh))
        code = compare_baselines.main(
            [
                "--baseline-dir",
                str(base_dir),
                "--fresh-dir",
                str(fresh_dir),
                "--only",
                "BENCH_sharded.json",
            ]
        )
        assert code == 1
        assert "config mismatch" in capsys.readouterr().err

    @pytest.mark.parametrize("name", sorted(compare_baselines.BASELINES))
    def test_committed_baselines_have_all_gated_keys(self, name):
        # Every committed baseline file must carry its config and ratio
        # keys, or the CI comparison would KeyError instead of gate.
        path = os.path.join(
            os.path.dirname(__file__), "..", "benchmarks", "baselines", name
        )
        with open(path) as fh:
            data = json.load(fh)
        spec = compare_baselines.BASELINES[name]
        for key in spec["config"] + spec["ratios"] + spec["absolute"]:
            assert key in data, f"{name} baseline missing {key!r}"


class TestUpdate:
    FRESH = {
        "items": 1,
        "sites": 1,
        "sample_size": 1,
        "workers": 2,
        "batch_size": 64,
        "speedup": 3.4,
        "lockstep_speedup": 2.7,
        "sharded_items_per_sec": 100,
        "samples_identical": True,
        "counters_identical": True,
        "mode": "sharded",
    }

    def _dirs(self, tmp_path):
        base_dir = tmp_path / "baselines"
        fresh_dir = tmp_path / "fresh"
        base_dir.mkdir()
        fresh_dir.mkdir()
        return base_dir, fresh_dir

    def _run_update(self, base_dir, fresh_dir):
        return compare_baselines.main(
            [
                "--baseline-dir",
                str(base_dir),
                "--fresh-dir",
                str(fresh_dir),
                "--only",
                "BENCH_sharded.json",
                "--update",
            ]
        )

    def test_update_copies_fresh_over_baseline(self, tmp_path, capsys):
        base_dir, fresh_dir = self._dirs(tmp_path)
        # No pre-existing baseline needed: --update also records new ones.
        (fresh_dir / "BENCH_sharded.json").write_text(json.dumps(self.FRESH))
        code = self._run_update(base_dir, fresh_dir)
        assert code == 0
        assert "updated 1 benchmark baselines" in capsys.readouterr().out
        written = json.loads((base_dir / "BENCH_sharded.json").read_text())
        assert written == self.FRESH

    def test_update_refuses_parity_failure(self, tmp_path, capsys):
        base_dir, fresh_dir = self._dirs(tmp_path)
        stale = dict(self.FRESH, speedup=1.0)
        (base_dir / "BENCH_sharded.json").write_text(json.dumps(stale))
        bad = dict(self.FRESH, counters_identical=False)
        (fresh_dir / "BENCH_sharded.json").write_text(json.dumps(bad))
        code = self._run_update(base_dir, fresh_dir)
        assert code == 1
        assert "counters_identical" in capsys.readouterr().err
        # The stale baseline was left untouched.
        kept = json.loads((base_dir / "BENCH_sharded.json").read_text())
        assert kept == stale

    def test_update_refuses_fallback_mode(self, tmp_path, capsys):
        base_dir, fresh_dir = self._dirs(tmp_path)
        bad = dict(self.FRESH, lockstep_mode="fallback")
        (fresh_dir / "BENCH_sharded.json").write_text(json.dumps(bad))
        code = self._run_update(base_dir, fresh_dir)
        assert code == 1
        assert "fallback" in capsys.readouterr().err
        assert not (base_dir / "BENCH_sharded.json").exists()

    def test_update_requires_fresh_file(self, tmp_path, capsys):
        base_dir, fresh_dir = self._dirs(tmp_path)
        code = self._run_update(base_dir, fresh_dir)
        assert code == 1
        assert "missing fresh result" in capsys.readouterr().err


class TestCommittedBaselines:
    @pytest.mark.parametrize("name", sorted(compare_baselines.BASELINES))
    def test_committed_baselines_pass_update_guard(self, name):
        # The committed baselines must themselves satisfy the --update
        # guard: a baseline recorded from a parity-broken or fallback
        # run should never have been committed.
        path = os.path.join(
            os.path.dirname(__file__), "..", "benchmarks", "baselines", name
        )
        with open(path) as fh:
            data = json.load(fh)
        assert compare_baselines.update_guard(name, data) == []

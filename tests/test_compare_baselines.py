"""The benchmark baseline comparator: ``--only`` guard and comparisons."""

from __future__ import annotations

import importlib.util
import json
import os

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "compare_baselines",
    os.path.join(
        os.path.dirname(__file__), "..", "benchmarks", "compare_baselines.py"
    ),
)
compare_baselines = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(compare_baselines)


class TestOnlyGuard:
    def test_unknown_only_name_fails_loudly(self, capsys):
        # A typo'd --only must not silently compare nothing and pass.
        code = compare_baselines.main(["--only", "BENCH_typo.json"])
        assert code == 2
        err = capsys.readouterr().err
        assert "BENCH_typo.json" in err
        assert "known:" in err
        assert "BENCH_sharded.json" in err  # the error lists valid names

    def test_known_only_name_restricts_comparison(self, tmp_path, capsys):
        baseline = {
            "items": 1,
            "sites": 1,
            "sample_size": 1,
            "workers": 2,
            "batch_size": 64,
            "speedup": 1.0,
            "sharded_items_per_sec": 100,
        }
        fresh = dict(baseline, speedup=1.2)
        base_dir = tmp_path / "baselines"
        fresh_dir = tmp_path / "fresh"
        base_dir.mkdir()
        fresh_dir.mkdir()
        (base_dir / "BENCH_sharded.json").write_text(json.dumps(baseline))
        (fresh_dir / "BENCH_sharded.json").write_text(json.dumps(fresh))
        code = compare_baselines.main(
            [
                "--baseline-dir",
                str(base_dir),
                "--fresh-dir",
                str(fresh_dir),
                "--only",
                "BENCH_sharded.json",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        # Only the selected baseline was compared.
        assert "all 1 benchmark baselines within tolerance" in out

    def test_regression_detected(self, tmp_path, capsys):
        baseline = {
            "items": 1,
            "sites": 1,
            "sample_size": 1,
            "workers": 2,
            "batch_size": 64,
            "speedup": 2.0,
            "sharded_items_per_sec": 100,
        }
        fresh = dict(baseline, speedup=1.0)  # 50% drop > 20% tolerance
        base_dir = tmp_path / "baselines"
        fresh_dir = tmp_path / "fresh"
        base_dir.mkdir()
        fresh_dir.mkdir()
        (base_dir / "BENCH_sharded.json").write_text(json.dumps(baseline))
        (fresh_dir / "BENCH_sharded.json").write_text(json.dumps(fresh))
        code = compare_baselines.main(
            [
                "--baseline-dir",
                str(base_dir),
                "--fresh-dir",
                str(fresh_dir),
                "--only",
                "BENCH_sharded.json",
            ]
        )
        assert code == 1
        assert "regressed" in capsys.readouterr().err

    def test_config_mismatch_fails(self, tmp_path, capsys):
        baseline = {
            "items": 1,
            "sites": 1,
            "sample_size": 1,
            "workers": 2,
            "batch_size": 64,
            "speedup": 1.0,
            "sharded_items_per_sec": 100,
        }
        fresh = dict(baseline, workers=4)
        base_dir = tmp_path / "baselines"
        fresh_dir = tmp_path / "fresh"
        base_dir.mkdir()
        fresh_dir.mkdir()
        (base_dir / "BENCH_sharded.json").write_text(json.dumps(baseline))
        (fresh_dir / "BENCH_sharded.json").write_text(json.dumps(fresh))
        code = compare_baselines.main(
            [
                "--baseline-dir",
                str(base_dir),
                "--fresh-dir",
                str(fresh_dir),
                "--only",
                "BENCH_sharded.json",
            ]
        )
        assert code == 1
        assert "config mismatch" in capsys.readouterr().err

    @pytest.mark.parametrize("name", sorted(compare_baselines.BASELINES))
    def test_committed_baselines_have_all_gated_keys(self, name):
        # Every committed baseline file must carry its config and ratio
        # keys, or the CI comparison would KeyError instead of gate.
        path = os.path.join(
            os.path.dirname(__file__), "..", "benchmarks", "baselines", name
        )
        with open(path) as fh:
            data = json.load(fh)
        spec = compare_baselines.BASELINES[name]
        for key in spec["config"] + spec["ratios"] + spec["absolute"]:
            assert key in data, f"{name} baseline missing {key!r}"

"""Tests for residual heavy-hitter tracking (Theorem 4)."""

from __future__ import annotations

import random

import pytest

from repro.common import ConfigurationError
from repro.centralized import SpaceSaving, WeightedReservoirSWR
from repro.heavy_hitters import (
    ResidualHeavyHitterTracker,
    score_l1_report,
    score_residual_report,
    theorem4_sample_size,
)
from repro.stream import (
    Item,
    round_robin,
    two_phase_residual_stream,
    uniform_random,
)


def _residual_stream(seed, n=4000, eps=0.1):
    rng = random.Random(seed)
    return two_phase_residual_stream(
        n,
        rng,
        num_giants=int(1 / eps) // 2,
        giant_weight=1e7,
        residual_heavy=6,
        residual_fraction=eps * 1.5,
    )


class TestSampleSize:
    def test_formula(self):
        import math

        s = theorem4_sample_size(0.1, 0.05)
        assert s == math.ceil(6 * math.log(1 / (0.05 * 0.1)) / 0.1)

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            theorem4_sample_size(0.0, 0.1)
        with pytest.raises(ConfigurationError):
            theorem4_sample_size(0.1, 1.0)


class TestResidualTracker:
    def test_recall_is_one_whp(self):
        """Theorem 4: all residual heavy hitters reported, w.p. 1-delta.
        With delta=0.05 and 8 seeds, all-recall-1.0 has probability
        > 0.6^... — allow at most one miss across seeds."""
        eps = 0.1
        misses = 0
        for seed in range(8):
            items = _residual_stream(seed, eps=eps)
            stream = uniform_random(items, 8, random.Random(seed + 100))
            tracker = ResidualHeavyHitterTracker(8, eps, delta=0.05, seed=seed)
            tracker.run(stream)
            score = score_residual_report(items, tracker.heavy_hitters(), eps)
            if score.recall < 1.0:
                misses += 1
        assert misses <= 1

    def test_report_size_bounded(self):
        eps = 0.1
        items = _residual_stream(0, eps=eps)
        tracker = ResidualHeavyHitterTracker(4, eps, seed=1)
        tracker.run(round_robin(items, 4))
        assert len(tracker.heavy_hitters()) <= tracker.report_size()
        assert tracker.report_size() == 20

    def test_swr_fails_where_swor_succeeds(self):
        """The motivating separation: an SWR sampler of the same size
        sees only the giants and misses the residual tier."""
        eps = 0.1
        items = _residual_stream(3, eps=eps)
        s = theorem4_sample_size(eps, 0.05)
        rng = random.Random(4)
        swr = WeightedReservoirSWR(s, rng)
        for item in items:
            swr.insert(item)
        swr_report = sorted(
            set(swr.sample()), key=lambda it: -it.weight
        )[: int(2 / eps)]
        swr_score = score_residual_report(items, swr_report, eps)
        tracker = ResidualHeavyHitterTracker(4, eps, delta=0.05, seed=5)
        tracker.run(round_robin(items, 4))
        swor_score = score_residual_report(items, tracker.heavy_hitters(), eps)
        assert swor_score.recall > swr_score.recall

    def test_l1_guarantee_implied(self):
        """Residual tracking also satisfies the weaker Definition 5."""
        eps = 0.1
        items = _residual_stream(6, eps=eps)
        tracker = ResidualHeavyHitterTracker(4, eps, delta=0.05, seed=7)
        tracker.run(round_robin(items, 4))
        score = score_l1_report(items, tracker.heavy_hitters(), eps)
        assert score.recall == 1.0

    def test_message_complexity_reasonable(self):
        # Needs a stream long enough that level sets saturate (the
        # per-level withholding quota is 4rs = O(s) items); below that
        # scale every item is legitimately an early message.
        eps = 0.1
        items = _residual_stream(8, n=30000, eps=eps)
        tracker = ResidualHeavyHitterTracker(8, eps, delta=0.05, seed=9)
        counters = tracker.run(round_robin(items, 8))
        assert counters.total < 0.6 * len(items)  # far fewer than send-all

    def test_sample_size_override(self):
        tracker = ResidualHeavyHitterTracker(
            2, 0.1, seed=1, sample_size_override=5
        )
        assert tracker.sample_size == 5

    def test_invalid_eps(self):
        with pytest.raises(ConfigurationError):
            ResidualHeavyHitterTracker(2, 1.5)


class TestScoring:
    def test_perfect_report(self):
        items = [Item(0, 100.0), Item(1, 1.0), Item(2, 1.0)]
        score = score_l1_report(items, [Item(0, 100.0)], 0.5)
        assert score.recall == 1.0 and score.precision == 1.0

    def test_missed_hitter_detected(self):
        items = [Item(0, 100.0), Item(1, 90.0), Item(2, 1.0)]
        score = score_l1_report(items, [Item(0, 100.0)], 0.4)
        assert score.recall == 0.5
        assert score.missed == {1}

    def test_empty_truth_recall_one(self):
        items = [Item(i, 1.0) for i in range(100)]
        score = score_l1_report(items, [], 0.5)
        assert score.recall == 1.0

    def test_spacesaving_lacks_residual_guarantee(self):
        """Space-Saving with the usual O(1/eps) capacity misses
        residual heavy hitters that hide below the giants."""
        eps = 0.1
        items = _residual_stream(10, eps=eps)
        ss = SpaceSaving(capacity=int(2 / eps))
        for item in items:
            ss.insert(item)
        report = [Item(i, w) for i, w in ss.heavy_hitters(eps)]
        score = score_residual_report(items, report, eps)
        assert score.recall < 1.0

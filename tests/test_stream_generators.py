"""Unit tests for repro.stream.generators."""

from __future__ import annotations


import pytest

from repro.common import ConfigurationError
from repro.stream import (
    epoch_unit_stream,
    epoch_weight_stream,
    geometric_growth_stream,
    pareto_stream,
    planted_heavy_hitter_stream,
    shuffle_stream,
    two_phase_residual_stream,
    uniform_stream,
    unit_stream,
    validate_weights,
    zipf_stream,
)


class TestUnitStream:
    def test_all_weight_one(self):
        items = unit_stream(100)
        assert len(items) == 100
        assert all(i.weight == 1.0 for i in items)

    def test_identifiers_unique_and_offset(self):
        items = unit_stream(10, start_ident=50)
        assert [i.ident for i in items] == list(range(50, 60))

    def test_zero_length_rejected(self):
        with pytest.raises(ConfigurationError):
            unit_stream(0)


class TestUniformStream:
    def test_range_respected(self, rng):
        items = uniform_stream(500, rng, low=2.0, high=3.0)
        assert all(2.0 <= i.weight <= 3.0 for i in items)
        validate_weights(items)

    def test_invalid_bounds_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            uniform_stream(10, rng, low=0.5, high=3.0)
        with pytest.raises(ConfigurationError):
            uniform_stream(10, rng, low=5.0, high=3.0)


class TestZipfStream:
    def test_weights_at_least_one_and_bounded(self, rng):
        items = zipf_stream(2000, rng, alpha=1.3, max_weight=1e4)
        validate_weights(items)
        assert all(i.weight <= 1e4 for i in items)

    def test_is_skewed(self, rng):
        items = zipf_stream(5000, rng, alpha=1.1)
        weights = sorted((i.weight for i in items), reverse=True)
        top_share = sum(weights[:50]) / sum(weights)
        assert top_share > 0.2  # heavy tail dominates

    def test_universe_reuses_identifiers(self, rng):
        items = zipf_stream(1000, rng, universe=10)
        assert all(0 <= i.ident < 10 for i in items)

    def test_alpha_must_exceed_one(self, rng):
        with pytest.raises(ConfigurationError):
            zipf_stream(10, rng, alpha=1.0)


class TestParetoStream:
    def test_valid_weights(self, rng):
        items = pareto_stream(1000, rng, shape=1.5)
        validate_weights(items)

    def test_shape_positive(self, rng):
        with pytest.raises(ConfigurationError):
            pareto_stream(10, rng, shape=0.0)


class TestPlantedHeavyHitters:
    def test_dominance_achieved(self, rng):
        items = planted_heavy_hitter_stream(1000, rng, num_heavy=3, dominance=0.9)
        weights = sorted((i.weight for i in items), reverse=True)
        assert sum(weights[:3]) / sum(weights) > 0.85

    def test_count_preserved(self, rng):
        items = planted_heavy_hitter_stream(500, rng, num_heavy=5)
        assert len(items) == 500

    def test_invalid_params_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            planted_heavy_hitter_stream(100, rng, num_heavy=0)
        with pytest.raises(ConfigurationError):
            planted_heavy_hitter_stream(100, rng, num_heavy=5, dominance=1.0)


class TestGeometricGrowthStream:
    def test_every_update_is_residual_heavy(self):
        """Theorem 5's property: each new item is an eps/2 heavy hitter
        of the prefix ending with it."""
        eps = 0.3
        items = geometric_growth_stream(eps, total_weight=1e5)
        total = 0.0
        for idx, item in enumerate(items):
            total += item.weight
            if idx >= 1:
                assert item.weight >= (eps / 2) * total * 0.999

    def test_reaches_target_weight(self):
        items = geometric_growth_stream(0.2, total_weight=5000)
        assert sum(i.weight for i in items) >= 5000

    def test_invalid_params_rejected(self):
        with pytest.raises(ConfigurationError):
            geometric_growth_stream(0.0, 100)
        with pytest.raises(ConfigurationError):
            geometric_growth_stream(0.2, 1.0)


class TestEpochStreams:
    def test_epoch_weight_structure(self):
        k, epochs = 4, 3
        items = epoch_weight_stream(k, epochs)
        assert len(items) == k * epochs
        for e in range(epochs):
            for j in range(k):
                assert items[e * k + j].weight == float(k**e)

    def test_epoch_weight_first_item_is_heavy(self):
        """The first arrival of each epoch is a constant-fraction heavy
        hitter: prior weight is at most 2k^i (the Theorem 5 argument),
        so the new item is at least 1/3 of the running total."""
        k = 8
        items = epoch_weight_stream(k, 4)
        total = 0.0
        for e in range(4):
            first = items[e * k]
            assert total <= 2.0 * first.weight  # "at most 2k^i"
            assert first.weight >= (total + first.weight) / 3.0 * 0.999
            for j in range(k):
                total += items[e * k + j].weight

    def test_epoch_unit_stream_capped(self):
        items = epoch_unit_stream(10, 10, cap=500)
        assert len(items) == 500
        assert all(i.weight == 1.0 for i in items)

    def test_invalid_k_rejected(self):
        with pytest.raises(ConfigurationError):
            epoch_weight_stream(1, 3)
        with pytest.raises(ConfigurationError):
            epoch_unit_stream(1, 3)


class TestTwoPhaseResidualStream:
    def test_tier_structure(self, rng):
        n, giants, mids = 2000, 4, 6
        items = two_phase_residual_stream(
            n, rng, num_giants=giants, giant_weight=1e6,
            residual_heavy=mids, residual_fraction=0.1,
        )
        assert len(items) == n
        by_id = {i.ident: i.weight for i in items}
        giant_ids = {n - giants + j for j in range(giants)}
        for gid in giant_ids:
            assert by_id[gid] == 1e6
        # Residual-heavy tier really is eps-heavy in the residual.
        residual_items = [i for i in items if i.ident not in giant_ids]
        residual_weight = sum(i.weight for i in residual_items)
        mid_ids = {n - giants - mids + j for j in range(mids)}
        for mid in mid_ids:
            assert by_id[mid] >= 0.095 * residual_weight

    def test_invalid_fraction_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            two_phase_residual_stream(
                100, rng, num_giants=1, giant_weight=10,
                residual_heavy=2, residual_fraction=0.9,
            )


def test_shuffle_stream_is_permutation(rng):
    items = unit_stream(50)
    shuffled = shuffle_stream(items, rng)
    assert sorted(shuffled) == sorted(items)
    assert shuffled != items  # overwhelmingly likely with 50 items

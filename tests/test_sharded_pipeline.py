"""Pipelined sharded engine under adversarial broadcast pressure.

The broadcast-storm stream below is built to make speculation *lose*
constantly: a tiny ``level_set_factor`` shrinks the saturation size so
LEVEL_SATURATED broadcasts fire repeatedly, and an escalating weight
spine forces the threshold across epoch brackets again and again
(EPOCH_UPDATE broadcasts).  Every control broadcast both rolls back the
in-flight window (dozens of rollbacks per run) and invalidates the
workers' speculative next window (speculation misses).  Bit-parity of
the samples AND the message counters against the single-process
columnar engine must survive all of it, in both pipeline modes, across
transports, batch sizes, reused networks, and checkpoints.

The second half pins the coordinator-level contracts the pipelined
fold relies on — ``on_message_pack_unordered`` declining exactly the
unsafe packs, and ``snapshot_state``/``restore_state`` round-tripping —
because the engine-level overlap that exercises them end-to-end is
timing-dependent (a pack must *arrive* while another worker is still
computing) and so cannot be asserted deterministically from outside.
"""

from __future__ import annotations

import random

import pytest

from repro.core import DistributedWeightedSWOR, SworConfig
from repro.net.counters import MessageCounters
from repro.net.messages import EARLY, Message, MessagePack
from repro.runtime import ColumnarEngine, ShardedEngine
from repro.stream import round_robin, zipf_stream
from repro.stream.item import Item

np = pytest.importorskip("numpy")

SITES = 8
SAMPLE = 4
SEED = 3

#: Shrinks saturation_size to round(0.75 * r * s) = 6 items per level
#: set (r = 2 here), so level sets saturate — and broadcast — within a
#: window or two of filling.
STORM_FACTOR = 0.75


def _config(sites=SITES):
    return SworConfig(
        num_sites=sites, sample_size=SAMPLE, level_set_factor=STORM_FACTOR
    )


def _storm(n=6000, seed=0, sites=SITES):
    """Adversarial stream: a cycling level ladder plus a rising spine.

    Four of five items cycle weights through ``2^0..2^7`` so every
    level set fills (and with STORM_FACTOR, saturates) continuously;
    every fifth item sits on an exponentially rising spine
    ``2^(4..24)`` that drags the sample threshold across epoch
    brackets throughout the run.  Both control families — LEVEL_SATURATED
    and EPOCH_UPDATE — therefore fire dozens of times.
    """
    rng = random.Random(seed)
    items = []
    for i in range(n):
        if i % 5 == 0:
            weight = 2.0 ** (4.0 + 20.0 * i / n) * (1.0 + rng.random())
        else:
            weight = 2.0 ** (i % 8) * (1.0 + rng.random())
        items.append(Item(i, weight))
    return round_robin(items, sites)


def _run(stream, engine, sites=SITES, **kwargs):
    proto = DistributedWeightedSWOR(
        _config(sites), seed=SEED, engine=engine, **kwargs
    )
    proto.run(stream)
    return proto


def _fingerprint(proto):
    return (
        [(item.ident, item.weight, key) for item, key in proto.sample_with_keys()],
        proto.counters.snapshot(),
    )


# ---------------------------------------------------------------------------
# 1. Bit-parity through the storm
# ---------------------------------------------------------------------------


class TestBroadcastStormParity:
    @pytest.fixture(scope="class")
    def storm_stream(self):
        return _storm()

    @pytest.fixture(scope="class")
    def columnar_256(self, storm_stream):
        return _fingerprint(_run(storm_stream, ColumnarEngine(batch_size=256)))

    @pytest.mark.parametrize(
        "workers,transport,pipeline",
        [
            (2, "shm", "on"),
            (3, "pipe", "on"),
            (4, "auto", "on"),
            (2, "shm", "off"),
            (3, "pipe", "off"),
        ],
    )
    def test_parity_and_speculation_accounting(
        self, storm_stream, columnar_256, workers, transport, pipeline
    ):
        engine = ShardedEngine(
            batch_size=256, workers=workers, transport=transport, pipeline=pipeline
        )
        proto = _run(storm_stream, engine)
        st = engine.last_run_stats
        assert st["mode"] == "sharded"
        assert st["pipeline"] == pipeline
        assert _fingerprint(proto) == columnar_256
        # The storm must actually storm: control broadcasts land
        # mid-window dozens of times (38 observed at this config).
        assert st["rollbacks"] >= 24
        if pipeline == "on":
            # Every window but the last is speculated by every worker,
            # and each speculation is resolved as exactly one hit or
            # miss at commit time.
            spec = st["speculation"]
            assert spec["misses"] > 0
            expected = (st["windows"] - 1) * workers
            assert spec["hits"] + spec["misses"] == expected

    @pytest.mark.parametrize("batch_size,n", [(1, 800), (64, 4000), (512, 6000)])
    def test_parity_across_batch_sizes(self, batch_size, n):
        stream = _storm(n=n, seed=5)
        columnar = _fingerprint(
            _run(stream, ColumnarEngine(batch_size=batch_size))
        )
        engine = ShardedEngine(batch_size=batch_size, workers=2, pipeline="on")
        proto = _run(stream, engine)
        assert engine.last_run_stats["mode"] == "sharded"
        assert _fingerprint(proto) == columnar

    @pytest.mark.parametrize("pipeline", ["on", "off"])
    def test_reused_network_continues_through_storm(self, pipeline):
        # Two consecutive runs on one protocol: the worker finals from
        # run 1 (including speculative state discarded at the fin
        # barrier) must transplant back so run 2 continues the RNG
        # streams exactly.
        first = _storm(n=3000, seed=9)
        second = _storm(n=3000, seed=10)

        def run_twice(engine):
            proto = DistributedWeightedSWOR(_config(), seed=SEED, engine=engine)
            proto.run(first)
            proto.run(second)
            return _fingerprint(proto)

        assert run_twice(ColumnarEngine(batch_size=256)) == run_twice(
            ShardedEngine(batch_size=256, workers=3, pipeline=pipeline)
        )

    @pytest.mark.parametrize("pipeline", ["on", "off"])
    def test_checkpoints_and_steps_match_columnar(self, pipeline):
        # Checkpoints force window splits at arbitrary items; the
        # pipelined commit/ack cycle must not disturb their timing.
        stream = _storm(n=6000, seed=11)
        checkpoints = [100, 2500, 2501, 6000]

        def run(engine):
            proto = DistributedWeightedSWOR(_config(), seed=SEED, engine=engine)
            hits, steps = [], []
            proto.run(
                stream,
                checkpoints=checkpoints,
                on_checkpoint=lambda t: hits.append(
                    (t, tuple(i.ident for i in proto.sample()))
                ),
                on_step=steps.append,
            )
            return hits, steps, _fingerprint(proto)

        assert run(ColumnarEngine(batch_size=512)) == run(
            ShardedEngine(batch_size=512, workers=3, pipeline=pipeline)
        )

    def test_stats_shape_pipelined(self, storm_stream, columnar_256):
        engine = ShardedEngine(batch_size=256, workers=2, pipeline="on")
        _run(storm_stream, engine)
        st = engine.last_run_stats
        assert st["timing"].keys() == {
            "worker_compute_seconds",
            "transport_wait_seconds",
            "parent_fold_seconds",
        }
        assert all(v >= 0.0 for v in st["timing"].values())
        assert len(st["per_window"]) == st["windows"]
        assert st["unordered_folds"] >= 0
        assert st["ordered_refolds"] >= 0
        # format_stats renders without raising and names the mode.
        text = engine.format_stats()
        assert "pipeline on" in text
        assert "speculation" in text

    def test_single_worker_fallback_dict(self, storm_stream, columnar_256):
        engine = ShardedEngine(batch_size=256, workers=1, pipeline="on")
        proto = _run(storm_stream, engine)
        stats = engine.last_run_stats
        # The fallback marker survives the run-stats refresh (PR 7 adds
        # engine/items/seconds/windows to every completed run).
        assert stats["mode"] == "fallback"
        assert stats["reason"] == "single worker"
        assert stats["engine"] == "sharded"
        assert _fingerprint(proto) == columnar_256


# ---------------------------------------------------------------------------
# 2. Coordinator contracts behind the arrival-order fold
# ---------------------------------------------------------------------------


def _warm_coordinator():
    """A coordinator mid-run, with a populated sample set and epoch."""
    proto = DistributedWeightedSWOR(
        SworConfig(num_sites=SITES, sample_size=SAMPLE), seed=SEED
    )
    proto.run(round_robin(zipf_stream(2000, random.Random(0), alpha=1.2), SITES))
    return proto.coordinator, proto.network.counters


def _regular_pack(keys, idents=None):
    keys = np.asarray(keys, dtype="float64")
    if idents is None:
        idents = 900_000 + np.arange(len(keys))
    return MessagePack(
        regular_idents=np.asarray(idents, dtype="int64"),
        regular_weights=np.ones(len(keys), dtype="float64"),
        regular_keys=keys,
    )


class TestUnorderedFoldContract:
    def test_safe_regular_pack_commits(self):
        coord, _ = _warm_coordinator()
        thr = coord.sample_set.threshold
        pack = _regular_pack([thr * 1.001, thr * 1.002])
        before = coord.regular_received
        assert coord.on_message_pack_unordered(0, pack) is True
        assert coord.regular_received == before + 2
        assert coord.sample_set.threshold > thr

    def test_unordered_commit_matches_ordered_fold(self):
        # The whole point of the arrival-order fold: for a pack it
        # accepts, the resulting coordinator state is bit-identical to
        # folding the same pack at its ordered position.
        coord, _ = _warm_coordinator()
        thr = coord.sample_set.threshold
        pack = _regular_pack([thr * 1.001, thr * 1.002, thr * 0.5])
        start = coord.snapshot_state()
        assert coord.on_message_pack_unordered(0, pack) is True
        unordered_end = coord.snapshot_state()
        coord.restore_state(start)
        assert coord.on_message_pack(0, pack) == []  # no broadcast
        assert coord.snapshot_state() == unordered_end

    def test_early_bearing_pack_declined(self):
        coord, _ = _warm_coordinator()
        # Early items draw coordinator RNG in fold order — never safe
        # to commit out of order.
        pack = MessagePack(
            early_idents=np.array([7], dtype="int64"),
            early_weights=np.array([2.0], dtype="float64"),
            early_levels=np.array([1], dtype="int64"),
        )
        before = coord.snapshot_state()
        assert coord.on_message_pack_unordered(0, pack) is False
        assert coord.snapshot_state() == before

    def test_epoch_crossing_pack_declined_untouched(self):
        coord, _ = _warm_coordinator()
        big = coord.epochs.r ** (coord.epochs.epoch + 3)
        pack = _regular_pack([big, big * 2, big * 3, big * 4])
        before = coord.snapshot_state()
        # Committing this would fire an EPOCH_UPDATE broadcast whose
        # position in the window matters — must decline, and must leave
        # every piece of state (incl. receipt counters) untouched.
        assert coord.on_message_pack_unordered(0, pack) is False
        assert coord.snapshot_state() == before
        assert coord.epochs.would_announce(
            coord.sample_set.merge_preview(pack.regular_keys)[0]
        )

    def test_snapshot_restore_roundtrip(self):
        coord, _ = _warm_coordinator()
        saved = coord.snapshot_state()
        thr = coord.sample_set.threshold
        # Multipliers stay tiny so the merged threshold does not cross
        # an epoch bracket (which would make the commit decline).
        mutating = _regular_pack([thr * 1.001, thr * 1.002, thr * 1.003])
        assert coord.on_message_pack_unordered(0, mutating) is True
        assert coord.snapshot_state() != saved
        coord.restore_state(saved)
        assert coord.snapshot_state() == saved
        assert coord.sample_set.threshold == thr

    def test_counters_snapshot_restore_roundtrip(self):
        _, counters = _warm_coordinator()
        saved_state = counters.snapshot_state()
        saved_view = counters.snapshot()
        counters.record_upstream(Message(EARLY, (1, 2.0)))
        counters.record_upstream_pack(_regular_pack([1.0, 2.0]))
        assert counters.snapshot() != saved_view
        counters.restore_state(saved_state)
        assert counters.snapshot() == saved_view

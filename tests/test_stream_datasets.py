"""Unit tests for repro.stream.datasets."""

from __future__ import annotations

import pytest

from repro.common import ConfigurationError
from repro.stream import (
    flows_to_stream,
    network_flow_trace,
    queries_to_stream,
    search_query_log,
    validate_weights,
)


class TestSearchQueryLog:
    def test_shapes_and_ranges(self, rng):
        records = search_query_log(500, 8, rng, vocabulary=100)
        assert len(records) == 500
        assert all(0 <= r.query_id < 100 for r in records)
        assert all(0 <= r.server < 8 for r in records)
        assert all(r.cost >= 1.0 for r in records)

    def test_popularity_is_skewed(self, rng):
        records = search_query_log(5000, 4, rng, vocabulary=1000, zipf_alpha=1.5)
        top_query_hits = sum(1 for r in records if r.query_id == 0)
        assert top_query_hits > 5000 / 1000  # far above uniform share

    def test_invalid_params_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            search_query_log(0, 4, rng)
        with pytest.raises(ConfigurationError):
            search_query_log(10, 0, rng)

    def test_stream_conversion(self, rng):
        records = search_query_log(100, 4, rng)
        items = queries_to_stream(records)
        assert len(items) == 100
        validate_weights(items)


class TestNetworkFlowTrace:
    def test_shapes(self, rng):
        records = network_flow_trace(300, 5, rng)
        assert len(records) == 300
        assert all(0 <= r.device < 5 for r in records)
        assert all(r.bytes >= 1.0 for r in records)

    def test_elephants_exist(self, rng):
        records = network_flow_trace(5000, 5, rng, pareto_shape=1.1)
        sizes = sorted((r.bytes for r in records), reverse=True)
        assert sizes[0] / sum(sizes) > 0.005  # heavy-tailed top flow

    def test_invalid_params_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            network_flow_trace(10, 0, rng)

    def test_stream_conversion(self, rng):
        records = network_flow_trace(50, 3, rng)
        items = flows_to_stream(records)
        assert len(items) == 50
        validate_weights(items)

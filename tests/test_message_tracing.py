"""Message-sequencing tests via the trace recorder.

The counters say *how many* messages flowed; these tests pin down the
*order* the paper's algorithms imply: saturation broadcasts fire once
per level after exactly 4rs early messages of that level, epoch
announcements strictly increase, and regular traffic for a level starts
only after its saturation broadcast.
"""

from __future__ import annotations

import random

from repro.core import DistributedWeightedSWOR, SworConfig, level_of
from repro.net import MessageTrace
from repro.net.messages import EARLY, EPOCH_UPDATE, LEVEL_SATURATED, REGULAR
from repro.runtime import ShardedEngine, get_engine
from repro.stream import round_robin, zipf_stream


def _traced_run(k=8, s=8, n=8000, seed=3, engine=None):
    proto = DistributedWeightedSWOR(
        SworConfig(num_sites=k, sample_size=s), seed=seed, engine=engine
    )
    trace = MessageTrace.attach(proto.network)
    rng = random.Random(seed)
    items = zipf_stream(n, rng, alpha=1.3)
    proto.run(round_robin(items, k))
    return proto, trace


class TestSaturationSequencing:
    def test_one_broadcast_per_level(self):
        proto, trace = _traced_run()
        saturated = trace.of_kind(LEVEL_SATURATED)
        levels = [e.payload[0] for e in saturated]
        assert len(levels) == len(set(levels))

    def test_exactly_saturation_size_earlies_before_broadcast(self):
        proto, trace = _traced_run()
        quota = proto.config.saturation_size
        r = proto.config.r
        for event in trace.of_kind(LEVEL_SATURATED):
            level = event.payload[0]
            earlies_before = sum(
                1
                for e in trace.events[: event.seq]
                if e.kind == EARLY and level_of(e.payload[1], r) == level
            )
            assert earlies_before == quota

    def test_no_early_after_saturation(self):
        proto, trace = _traced_run()
        r = proto.config.r
        for event in trace.of_kind(LEVEL_SATURATED):
            level = event.payload[0]
            later_earlies = [
                e
                for e in trace.events[event.seq + 1 :]
                if e.kind == EARLY and level_of(e.payload[1], r) == level
            ]
            assert later_earlies == []

    def test_regular_only_for_saturated_levels(self):
        """A regular message's weight must belong to a level whose
        saturation broadcast already happened."""
        proto, trace = _traced_run()
        r = proto.config.r
        saturated_at = {}
        for e in trace.of_kind(LEVEL_SATURATED):
            saturated_at[e.payload[0]] = e.seq
        for e in trace.of_kind(REGULAR):
            level = level_of(e.payload[1], r)
            assert level in saturated_at and saturated_at[level] < e.seq


class TestEpochSequencing:
    def test_thresholds_strictly_increase(self):
        proto, trace = _traced_run()
        thresholds = [p[0] for p in trace.payload_series(EPOCH_UPDATE)]
        assert len(thresholds) >= 1
        assert all(b > a for a, b in zip(thresholds, thresholds[1:]))

    def test_thresholds_are_powers_of_r(self):
        import math

        proto, trace = _traced_run()
        r = proto.config.r
        for (value,) in trace.payload_series(EPOCH_UPDATE):
            exponent = math.log(value) / math.log(r)
            assert abs(exponent - round(exponent)) < 1e-9


class TestTraceApi:
    def test_kinds_counter_matches_counters(self):
        proto, trace = _traced_run()
        kinds = trace.kinds()
        # Trace logs one event per broadcast; counters count k copies.
        assert kinds[EARLY] == proto.counters.by_kind[EARLY]
        assert kinds[REGULAR] == proto.counters.by_kind[REGULAR]
        k = proto.config.num_sites
        assert kinds[LEVEL_SATURATED] * k == proto.counters.by_kind[LEVEL_SATURATED]

    def test_first_index_and_missing_kind(self):
        proto, trace = _traced_run()
        assert trace.first_index(EARLY) == 0  # first item is withheld
        assert trace.first_index("nonexistent") is None

    def test_events_causally_numbered(self):
        proto, trace = _traced_run(n=2000)
        assert [e.seq for e in trace.events] == list(range(len(trace.events)))


class TestShardedEngineTracing:
    """Tracing on the sharded engine: attaching a trace is a promise to
    see every message in causal order, which the multiprocess fold
    cannot keep — so the engine detects the wrapped delivery methods
    and serves the run in-process, with identical traced events."""

    def test_attach_forces_in_process_fallback(self):
        engine = ShardedEngine(workers=2)
        try:
            _proto, trace = _traced_run(n=2000, engine=engine)
        finally:
            engine.close()
        assert engine.last_run_stats["mode"] == "fallback"
        assert engine.last_run_stats["reason"] == (
            "network delivery is instrumented"
        )
        assert trace.events  # the trace still saw the whole run

    def test_trace_identical_to_reference_at_batch_size_one(self):
        """At batch size 1 the in-process path degenerates to the
        reference engine's per-item schedule exactly — same events,
        same causal order."""
        _ref, ref_trace = _traced_run(n=3000)
        engine = ShardedEngine(workers=2, batch_size=1)
        try:
            _shard, shard_trace = _traced_run(n=3000, engine=engine)
        finally:
            engine.close()
        assert shard_trace.events == ref_trace.events

    def test_trace_identical_to_columnar_at_default_batch(self):
        """At any batch size the traced (fallback) sharded run replays
        the columnar engine's schedule event for event."""
        col, col_trace = _traced_run(n=6000, engine=get_engine("columnar"))
        engine = ShardedEngine(workers=2)
        try:
            shard, shard_trace = _traced_run(n=6000, engine=engine)
        finally:
            engine.close()
        assert shard_trace.events == col_trace.events
        assert shard.counters.snapshot() == col.counters.snapshot()

"""Tests for Misra-Gries / Space-Saving and the exact offline oracles."""

from __future__ import annotations


import pytest

from repro.common import ConfigurationError, InvalidWeightError
from repro.centralized import (
    MisraGries,
    SpaceSaving,
    exact_heavy_hitters,
    exact_residual_heavy_hitters,
    identifier_totals,
    prefix_l1,
    residual_tail_weight,
)
from repro.stream import Item


def _skewed(rng, n=500):
    items = [Item(rng.randrange(40), rng.uniform(1, 3)) for _ in range(n)]
    items += [Item(100, 500.0), Item(101, 400.0)]
    rng.shuffle(items)
    return items


class TestMisraGries:
    def test_undercount_bound(self, rng):
        items = _skewed(rng)
        mg = MisraGries(capacity=20)
        for it in items:
            mg.insert(it)
        totals = identifier_totals(items)
        bound = mg.weight_seen / (mg.capacity + 1)
        for ident, true in totals.items():
            est = mg.estimate(ident)
            assert est <= true + 1e-9
            assert est >= true - bound - 1e-9

    def test_finds_all_eps_heavy(self, rng):
        items = _skewed(rng)
        eps = 0.2
        mg = MisraGries(capacity=int(2 / eps))
        for it in items:
            mg.insert(it)
        totals = identifier_totals(items)
        total = sum(totals.values())
        heavy = {i for i, w in totals.items() if w >= eps * total}
        reported = {i for i, _ in mg.heavy_hitters(eps)}
        assert heavy <= reported

    def test_capacity_respected(self, rng):
        mg = MisraGries(capacity=5)
        for it in _skewed(rng):
            mg.insert(it)
        assert len(mg) <= 5

    def test_invalid_capacity(self):
        with pytest.raises(ConfigurationError):
            MisraGries(0)

    def test_invalid_weight(self):
        with pytest.raises(InvalidWeightError):
            MisraGries(2).insert(Item(0, -1.0))


class TestSpaceSaving:
    def test_overcount_bound(self, rng):
        items = _skewed(rng)
        ss = SpaceSaving(capacity=20)
        for it in items:
            ss.insert(it)
        totals = identifier_totals(items)
        bound = ss.weight_seen / ss.capacity
        for ident, est in [(i, ss.estimate(i)) for i in totals]:
            if est > 0:
                assert est <= totals[ident] + bound + 1e-9
                assert est >= totals[ident] - 1e-9 or est > 0

    def test_finds_all_eps_heavy(self, rng):
        items = _skewed(rng)
        eps = 0.2
        ss = SpaceSaving(capacity=int(2 / eps))
        for it in items:
            ss.insert(it)
        totals = identifier_totals(items)
        total = sum(totals.values())
        heavy = {i for i, w in totals.items() if w >= eps * total}
        reported = {i for i, _ in ss.heavy_hitters(eps)}
        assert heavy <= reported

    def test_capacity_respected(self, rng):
        ss = SpaceSaving(capacity=7)
        for it in _skewed(rng):
            ss.insert(it)
        assert len(ss) <= 7

    def test_invalid_capacity(self):
        with pytest.raises(ConfigurationError):
            SpaceSaving(-1)


class TestExactOracles:
    def test_identifier_totals(self):
        items = [Item(0, 1.0), Item(1, 2.0), Item(0, 3.0)]
        assert identifier_totals(items) == {0: 4.0, 1: 2.0}

    def test_residual_tail_weight(self):
        items = [Item(i, w) for i, w in enumerate([10, 1, 2, 100, 3])]
        # top-2 removes 100 and 10, leaving 1+2+3.
        assert residual_tail_weight(items, 2) == pytest.approx(6.0)
        assert residual_tail_weight(items, 0) == pytest.approx(116.0)
        with pytest.raises(ConfigurationError):
            residual_tail_weight(items, -1)

    def test_exact_heavy_hitters(self):
        items = [Item(i, w) for i, w in enumerate([50, 1, 1, 48])]
        # eps=0.4: threshold 40.
        assert exact_heavy_hitters(items, 0.4) == {0, 3}
        with pytest.raises(ConfigurationError):
            exact_heavy_hitters(items, 0.0)

    def test_exact_residual_heavy_hitters(self):
        # eps=0.5 -> remove top-2; residual = 1+2+3 = 6; threshold 3.
        items = [Item(i, w) for i, w in enumerate([10, 1, 2, 100, 3])]
        hitters, residual = exact_residual_heavy_hitters(items, 0.5)
        assert residual == pytest.approx(6.0)
        assert hitters == {0, 3, 4}  # giants always pass; 3 >= 3

    def test_residual_stronger_than_l1(self, rng):
        """Residual HH is a superset of plain l1 HH on skewed input."""
        items = _skewed(rng)
        eps = 0.1
        l1 = exact_heavy_hitters(items, eps)
        res, _ = exact_residual_heavy_hitters(items, eps)
        assert l1 <= res

    def test_prefix_l1(self):
        items = [Item(0, 1.0), Item(1, 2.5)]
        assert prefix_l1(items) == [1.0, 3.5]

"""Engine parity tests: reference vs batched runtimes.

Three contracts pin the `repro.runtime` refactor:

1. the reference engine is *byte-identical* to the pre-refactor
   ``Network.run`` — golden fingerprints recorded before the refactor
   must keep reproducing exactly;
2. the batched engine is *distributionally* identical — same inclusion
   law (chi-square against the exact SWOR probabilities) — and pays at
   most a bounded message overhead for its staleness;
3. a batch size of 1 degenerates to the reference engine exactly (same
   RNG consumption, same delivery interleaving, same counters).

Plus edge cases: checkpoint splitting, vectorized level parity, the
stale-EARLY fold, and `LazyExponential` overflow clamping
(`core/site.py`'s ``_regular_lazy``).
"""

from __future__ import annotations

import math
import random
from collections import Counter

import pytest

from repro.common import (
    BatchRandom,
    chi_square_pvalue,
    chi_square_statistic,
    exact_swor_inclusion_probabilities,
)
from repro.core import (
    DistributedUnweightedSWOR,
    DistributedWeightedSWOR,
    SworConfig,
    SworSite,
    level_of,
)
from repro.core.levels import levels_of_array
from repro.analysis import bounds
from repro.common.errors import ConfigurationError
from repro.net.messages import REGULAR
from repro.runtime import BatchedEngine, ReferenceEngine, get_engine
from repro.stream import (
    DistributedStream,
    Item,
    heavy_to_one_site,
    round_robin,
    zipf_stream,
)

np = pytest.importorskip("numpy")


# ---------------------------------------------------------------------------
# Golden fingerprints, recorded against the pre-refactor Network.run
# (commit 35b2d21's seed code) — the reference engine must reproduce
# them bit for bit.
# ---------------------------------------------------------------------------

GOLDEN = {
    7: (551, 415, 136, (3440, 1859, 1377, 3707, 3361, 3213, 3807, 4563)),
    2019: (564, 420, 144, (4981, 3012, 2681, 651, 135, 2330, 3854, 816)),
}


def _swor_fingerprint(seed: int, engine=None, batch_size=None):
    rng = random.Random(1234)
    items = zipf_stream(5000, rng, alpha=1.3)
    proto = DistributedWeightedSWOR(
        SworConfig(num_sites=8, sample_size=8),
        seed=seed,
        engine=engine,
        batch_size=batch_size,
    )
    counters = proto.run(round_robin(items, 8))
    idents = tuple(item.ident for item in proto.sample())
    return counters.total, counters.upstream, counters.downstream, idents


class TestReferenceEngineGolden:
    @pytest.mark.parametrize("seed", sorted(GOLDEN))
    def test_default_run_matches_pre_refactor_fingerprint(self, seed):
        assert _swor_fingerprint(seed) == GOLDEN[seed]

    @pytest.mark.parametrize("seed", sorted(GOLDEN))
    def test_explicit_reference_engine_matches(self, seed):
        assert _swor_fingerprint(seed, engine=ReferenceEngine()) == GOLDEN[seed]

    def test_engine_name_string_resolves(self):
        assert _swor_fingerprint(7, engine="reference") == GOLDEN[7]


class TestBatchSizeOneIsReference:
    """Batch size 1 must consume the same RNG draws in the same order
    and interleave delivery identically — not just the same law."""

    def test_swor_identical(self):
        one = BatchedEngine(batch_size=1)
        assert _swor_fingerprint(7, engine=one) == GOLDEN[7]

    def test_unweighted_identical(self):
        items = [Item(i, 1.0) for i in range(3000)]
        stream = round_robin(items, 8)

        def run(engine):
            proto = DistributedUnweightedSWOR(8, 8, seed=11, engine=engine)
            counters = proto.run(stream)
            return (
                counters.total,
                counters.upstream,
                tuple(item.ident for item in proto.sample()),
            )

        assert run(BatchedEngine(batch_size=1)) == run(None)


class TestBatchedDistribution:
    """E4-style check: the batched engine obeys the exact SWOR law even
    with the whole (tiny) stream covered by two stale batches."""

    WEIGHTS = [1.0, 2.0, 4.0, 8.0, 16.0, 64.0, 1.0, 512.0]
    K, S, TRIALS = 4, 3, 2000

    def test_inclusion_law_chi_square(self):
        items = [Item(i, w) for i, w in enumerate(self.WEIGHTS)]
        stream = heavy_to_one_site(items, self.K)
        engine = BatchedEngine(batch_size=4, initial_batch_size=4)
        counts = Counter()
        for trial in range(self.TRIALS):
            proto = DistributedWeightedSWOR(
                SworConfig(num_sites=self.K, sample_size=self.S),
                seed=trial,
                engine=engine,
            )
            proto.run(stream)
            for item in proto.sample():
                counts[item.ident] += 1
        exact = exact_swor_inclusion_probabilities(self.WEIGHTS, self.S)
        expected = {i: self.TRIALS * p for i, p in enumerate(exact)}
        stat, df = chi_square_statistic(counts, expected)
        pvalue = chi_square_pvalue(stat, df)
        assert pvalue > 1e-4, (
            "batched sample deviates from the exact SWOR law "
            f"(chi2={stat:.2f}, p={pvalue:.2e})"
        )

    def test_message_overhead_bounded(self):
        """Staleness may only add messages the coordinator discards;
        the total must stay within a 1.5x slack of the reference run
        (and hence within the same slack of the paper's bound shape)."""
        rng = random.Random(5)
        items = zipf_stream(20_000, rng, alpha=1.2)
        stream = round_robin(items, 16)
        cfg = SworConfig(num_sites=16, sample_size=16)

        def total(engine):
            proto = DistributedWeightedSWOR(cfg, seed=3, engine=engine)
            return proto.run(stream).total

        reference = total(None)
        batched = total(BatchedEngine())
        assert batched <= 1.5 * reference
        # Sanity against the closed form itself: same order of
        # magnitude as the reference engine's bound ratio.
        bound = bounds.swor_message_bound(16, 16, stream.total_weight())
        assert batched / bound <= 1.5 * max(1.0, reference / bound)

    def test_sample_size_and_validity(self):
        rng = random.Random(9)
        items = zipf_stream(5000, rng, alpha=1.3)
        stream = round_robin(items, 8)
        proto = DistributedWeightedSWOR(
            SworConfig(num_sites=8, sample_size=8),
            seed=1,
            engine="batched",
            batch_size=512,
        )
        proto.run(stream)
        pairs = proto.sample_with_keys()
        assert len(pairs) == 8
        keys = [key for _, key in pairs]
        assert keys == sorted(keys, reverse=True)
        assert all(math.isfinite(k) and k > 0 for k in keys)


class TestBatchedMechanics:
    def test_checkpoints_fire_exactly_mid_batch(self):
        items = [Item(i, 1.0 + (i % 7)) for i in range(1000)]
        stream = round_robin(items, 4)
        proto = DistributedWeightedSWOR(
            SworConfig(num_sites=4, sample_size=4),
            seed=2,
            engine=BatchedEngine(batch_size=256, initial_batch_size=256),
        )
        seen = []
        marks = [1, 100, 300, 999, 1000]
        proto.run(stream, checkpoints=marks, on_checkpoint=seen.append)
        assert seen == marks

    def test_checkpoints_cumulative_on_reused_network(self):
        """Checkpoints count cumulative items_processed, like the
        reference engine — a network warmed up with process() calls
        must not re-fire early marks against the new stream."""
        items = [Item(i, 1.0) for i in range(400)]

        def fired(engine):
            proto = DistributedWeightedSWOR(
                SworConfig(num_sites=4, sample_size=4), seed=6, engine=engine
            )
            for i in range(100):  # warm-up: cumulative clock at 100
                proto.process(i % 4, Item(1000 + i, 1.0))
            stream = round_robin(items, 4)
            seen = []
            proto.run(stream, checkpoints=[50, 150, 500], on_checkpoint=seen.append)
            return seen

        reference = fired(None)
        assert reference == [150, 500]
        assert fired(BatchedEngine(batch_size=64, initial_batch_size=64)) == reference

    def test_on_step_monotone_and_complete(self):
        items = [Item(i, 1.0) for i in range(500)]
        stream = round_robin(items, 4)
        proto = DistributedWeightedSWOR(
            SworConfig(num_sites=4, sample_size=4),
            seed=2,
            engine="batched",
            batch_size=128,
        )
        ticks = []
        proto.run(stream, on_step=ticks.append)
        assert ticks == sorted(ticks)
        assert ticks[-1] == 500

    def test_batched_deterministic_given_seed(self):
        fp1 = _swor_fingerprint(7, engine="batched", batch_size=512)
        fp2 = _swor_fingerprint(7, engine="batched", batch_size=512)
        assert fp1 == fp2
        assert fp1 != _swor_fingerprint(8, engine="batched", batch_size=512)

    def test_engine_registry(self):
        assert isinstance(get_engine(None), ReferenceEngine)
        assert isinstance(get_engine("batched", batch_size=64), BatchedEngine)
        inst = BatchedEngine(batch_size=32)
        assert get_engine(inst) is inst
        with pytest.raises(ConfigurationError):
            get_engine("warp-drive")
        with pytest.raises(ConfigurationError):
            get_engine("reference", batch_size=4)
        with pytest.raises(ConfigurationError):
            get_engine(inst, batch_size=4)
        with pytest.raises(ConfigurationError):
            BatchedEngine(batch_size=0)

    def test_stream_iter_batches(self):
        items = [Item(i, 1.0) for i in range(10)]
        stream = DistributedStream(items, [i % 3 for i in range(10)], 3)
        chunks = list(stream.iter_batches(4))
        assert [len(c_items) for _, c_items in chunks] == [4, 4, 2]
        flat = [item for _, c_items in chunks for item in c_items]
        assert flat == items
        with pytest.raises(ConfigurationError):
            list(stream.iter_batches(0))


class TestVectorizedPrimitives:
    def test_levels_of_array_matches_scalar(self, rng):
        weights = [rng.uniform(1.0, 1e6) for _ in range(500)]
        weights += [1.0, 2.0, 4.0, 8.0, 2.0**40, 3.0**12]
        for r in (2.0, 2.5, 4.0):
            vec = levels_of_array(np.array(weights), r)
            assert list(vec) == [level_of(w, r) for w in weights]

    def test_levels_of_array_rejects_invalid_weights(self):
        for bad in (-1.0, 0.0, float("nan"), float("inf")):
            with pytest.raises(ConfigurationError):
                levels_of_array(np.array([1.0, bad, 4.0]), 2.0)

    def test_batch_primitive_functions(self):
        from repro.common import batch_exponentials, batch_uniforms

        t = batch_exponentials(random.Random(1), 5000)
        assert len(t) == 5000 and all(x > 0 for x in t)
        scaled = batch_exponentials(random.Random(1), 5000, rate=4.0)
        assert abs(float(np.mean(scaled)) - 0.25) < 0.02
        u = batch_uniforms(random.Random(2), 1000)
        assert len(u) == 1000 and all(0 < x < 1 for x in u)
        with pytest.raises(ConfigurationError):
            batch_exponentials(random.Random(1), 10, rate=0.0)

    def test_batch_random_reproducible(self):
        a = BatchRandom(random.Random(42)).exponentials(100)
        b = BatchRandom(random.Random(42)).exponentials(100)
        assert np.array_equal(a, b)
        assert (a > 0).all()
        # Sanity: rate-1 exponentials have mean ~1.
        big = BatchRandom(random.Random(7)).exponentials(20_000)
        assert abs(float(np.mean(big)) - 1.0) < 0.05
        u = BatchRandom(random.Random(7)).uniforms(20_000)
        assert ((u > 0) & (u < 1)).all()

    def test_site_bulk_hook_matches_scalar_law(self):
        """The vectorized on_items path must emit REGULAR keys above
        the threshold only, tagged with the right idents."""
        config = SworConfig(num_sites=2, sample_size=2, level_sets_enabled=False)
        site = SworSite(0, config, random.Random(3))
        site._threshold = 5.0
        items = [Item(i, float(1 + i % 4)) for i in range(256)]
        messages = site.on_items(items)
        assert site.items_seen == 256
        assert site.exponentials_generated == 256
        for message in messages:
            assert message.kind == REGULAR
            ident, weight, key = message.payload
            assert key > 5.0
            assert items[ident].weight == weight


class _AllOnesBits:
    """Stub RNG: every revealed bit is 1, pinning U arbitrarily close
    to 1 so ``LazyExponential.value()`` is as small as 64 bits allow."""

    def getrandbits(self, _n):
        return 1

    def random(self):  # pragma: no cover - not used by the lazy path
        return 0.5


class _TinyValueLazy:
    """Stub LazyExponential whose materialized value underflows the
    key division — drives the overflow clamp in ``_regular_lazy``."""

    def __init__(self, _rng):
        self.bits_used = 1

    def below(self, _bound):
        return True

    def value(self):
        return 5e-324  # smallest positive subnormal: w / t == inf


class TestLazyExponentialOverflow:
    def test_value_never_returns_zero_at_max_bits(self):
        from repro.common.rng import LazyExponential

        lazy = LazyExponential(_AllOnesBits())
        t = lazy.value()
        assert t > 0.0 and math.isfinite(t)
        assert lazy.bits_used <= LazyExponential.MAX_BITS

    def test_overflowing_key_is_clamped(self, monkeypatch):
        """site.py's ``_regular_lazy`` guards ``v = w / t`` against
        non-finite keys by clamping to ``w / 1e-300``; force the branch
        with a stub whose value() is subnormal."""
        import repro.core.site as site_mod

        monkeypatch.setattr(site_mod, "LazyExponential", _TinyValueLazy)
        config = SworConfig(
            num_sites=2, sample_size=2, level_sets_enabled=False, count_bits=True
        )
        site = SworSite(0, config, random.Random(1))
        site._threshold = 1.0  # below() path (threshold > 0)
        messages = site.on_item(Item(0, 2.0))
        assert len(messages) == 1
        _, _, key = messages[0].payload
        assert math.isfinite(key)
        assert key == 2.0 / 1e-300

    def test_lazy_mode_end_to_end_finite_keys(self):
        """count_bits mode (bit-by-bit generation) stays finite across
        a real run — the engine falls back to the scalar path."""
        rng = random.Random(1)
        items = zipf_stream(1500, rng, alpha=1.3)
        stream = round_robin(items, 4)
        proto = DistributedWeightedSWOR(
            SworConfig(num_sites=4, sample_size=4, count_bits=True),
            seed=5,
            engine="batched",
            batch_size=256,
        )
        proto.run(stream)
        assert all(
            math.isfinite(key) for _, key in proto.sample_with_keys()
        )
        report = proto.resource_report()
        assert report["bits_generated"] > 0

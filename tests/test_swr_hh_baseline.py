"""Tests for the SWR-based heavy-hitter baseline (Section 1.2 claim).

Both halves of the paper's argument:
* sampling with replacement DOES find plain eps-l1 heavy hitters
  (coupon collector), and
* it does NOT find residual heavy hitters (slots collapse onto giants),
  while the Theorem 4 tracker does — on the very same streams.
"""

from __future__ import annotations

import random

import pytest

from repro.common import ConfigurationError
from repro.heavy_hitters import (
    ResidualHeavyHitterTracker,
    SwrHeavyHitterTracker,
    coupon_collector_sample_size,
    score_l1_report,
    score_residual_report,
)
from repro.stream import round_robin, two_phase_residual_stream, zipf_stream


def _residual_stream(seed, eps=0.1, n=4000):
    rng = random.Random(seed)
    return two_phase_residual_stream(
        n, rng,
        num_giants=3, giant_weight=1e7,
        residual_heavy=5, residual_fraction=eps * 1.5,
    )


class TestSampleSize:
    def test_matches_theorem4_budget(self):
        from repro.heavy_hitters import theorem4_sample_size

        assert coupon_collector_sample_size(0.1, 0.05) == theorem4_sample_size(
            0.1, 0.05
        )

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            coupon_collector_sample_size(0.0, 0.1)


class TestCouponCollectorSuccess:
    def test_finds_plain_l1_heavy_hitters(self):
        """On a skewed stream the SWR tracker must report every
        Definition 5 heavy hitter, w.h.p."""
        eps = 0.1
        misses = 0
        for seed in range(6):
            rng = random.Random(seed)
            items = zipf_stream(3000, rng, alpha=1.1, max_weight=1e5)
            tracker = SwrHeavyHitterTracker(4, eps, delta=0.05, seed=seed)
            tracker.run(round_robin(items, 4))
            score = score_l1_report(items, tracker.heavy_hitters(), eps)
            if score.recall < 1.0:
                misses += 1
        assert misses <= 1


class TestResidualFailure:
    def test_misses_residual_tier_where_swor_succeeds(self):
        eps = 0.1
        swr_recalls, swor_recalls = [], []
        for seed in range(4):
            items = _residual_stream(seed, eps=eps)
            swr = SwrHeavyHitterTracker(4, eps, delta=0.05, seed=seed)
            swr.run(round_robin(items, 4))
            swr_recalls.append(
                score_residual_report(items, swr.heavy_hitters(), eps).recall
            )
            swor = ResidualHeavyHitterTracker(4, eps, delta=0.05, seed=seed)
            swor.run(round_robin(items, 4))
            swor_recalls.append(
                score_residual_report(items, swor.heavy_hitters(), eps).recall
            )
        assert min(swor_recalls) >= max(swr_recalls)
        assert sum(swr_recalls) / len(swr_recalls) < 0.9

    def test_report_is_distinct_and_bounded(self):
        items = _residual_stream(9)
        tracker = SwrHeavyHitterTracker(4, 0.1, seed=9)
        tracker.run(round_robin(items, 4))
        report = tracker.heavy_hitters()
        idents = [item.ident for item in report]
        assert len(idents) == len(set(idents))
        assert len(report) <= tracker.report_size()

    def test_override_and_validation(self):
        tracker = SwrHeavyHitterTracker(2, 0.2, seed=1, sample_size_override=7)
        assert tracker.sample_size == 7
        with pytest.raises(ConfigurationError):
            SwrHeavyHitterTracker(2, 2.0)

"""Definition 3's continuous guarantee, certified at every prefix.

The protocol must hold a valid weighted SWOR after *each* arrival —
including while items sit withheld in level sets.  Using the
certification harness, every prefix length of a small adversarial
universe is statistically tested against its own exact law.
"""

from __future__ import annotations

import pytest

from repro.analysis import certify_swor
from repro.core import DistributedWeightedSWOR, SworConfig

# A universe designed to stress withholding: a giant early, a giant
# late, light items in between.
WEIGHTS = [64.0, 1.0, 2.0, 4.0, 128.0, 3.0]


@pytest.mark.parametrize("prefix", [1, 2, 3, 4, 5, 6])
def test_every_prefix_is_a_valid_swor(prefix):
    result = certify_swor(
        lambda seed: DistributedWeightedSWOR(
            SworConfig(num_sites=2, sample_size=2), seed=seed
        ),
        WEIGHTS,
        sample_size=2,
        trials=2500,
        num_sites=2,
        prefix=prefix,
    )
    assert result.passed, f"prefix {prefix}: {result.summary()}"


def test_prefix_certification_catches_withholding_bugs():
    """A deliberately broken protocol that excludes withheld items from
    queries must FAIL prefix certification — evidence the harness has
    teeth for exactly the bug class level sets could introduce."""

    class BrokenProtocol:
        """Samples only from released (saturated-level) items."""

        def __init__(self, seed):
            self._inner = DistributedWeightedSWOR(
                SworConfig(num_sites=2, sample_size=2), seed=seed
            )

        def run(self, stream):
            return self._inner.run(stream)

        def sample(self):
            # Ignore pending level-set entries (the bug): use only S.
            items = self._inner.coordinator.sample_set.items()
            # Pad deterministically to size 2 so the size check passes
            # and the distributional check does the catching.
            from repro.stream import Item

            while len(items) < 2:
                items.append(Item(-1 - len(items), 1.0))
            return items[:2]

    result = certify_swor(
        BrokenProtocol, WEIGHTS, sample_size=2, trials=1500, num_sites=2,
        prefix=3,
    )
    assert not result.passed

"""Shared fixtures for the test suite.

Statistical tests are seeded and use generous significance levels so the
suite is deterministic in practice; any test that samples uses an
explicit `random.Random` derived from these fixtures.
"""

from __future__ import annotations

import random

import pytest

from repro.stream import Item


@pytest.fixture
def rng() -> random.Random:
    """A fresh deterministic RNG per test."""
    return random.Random(0xC0FFEE)


@pytest.fixture
def tiny_weighted_items() -> list:
    """Five items with distinct weights; ids equal indices."""
    return [Item(i, float(w)) for i, w in enumerate([1, 2, 4, 8, 16])]


@pytest.fixture
def skewed_items(rng) -> list:
    """A 200-item stream where 2 giants dominate."""
    items = [Item(i, rng.uniform(1.0, 3.0)) for i in range(198)]
    items.append(Item(198, 5000.0))
    items.append(Item(199, 8000.0))
    rng.shuffle(items)
    return items

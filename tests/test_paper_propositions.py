"""Executable versions of the paper's internal lemmas and propositions.

The analysis of Theorem 3 rests on a handful of probabilistic facts
(Propositions 2, 3, 5, 8 and Lemma 1).  These tests check each one
numerically, so a future refactor that silently changes key
distributions breaks the *analysis assumptions*, not just end-to-end
behavior.
"""

from __future__ import annotations

import math
import random

from repro.common.rng import exponential
from repro.core import DistributedWeightedSWOR, SworConfig
from repro.analysis import bounds
from repro.stream import round_robin, zipf_stream


class TestProposition2:
    """Pr[sum of k i.i.d. Exp(1) > ck] < lambda * e^{-Cc} for c >= 1/2."""

    def test_tail_decays_exponentially(self):
        rng = random.Random(0)
        k, trials = 20, 20000
        sums = [
            sum(exponential(rng) for _ in range(k)) for _ in range(trials)
        ]
        # Empirical tails at c = 1.5, 2.0, 3.0 must decay and be small.
        tails = []
        for c in (1.5, 2.0, 3.0):
            tails.append(sum(1 for s in sums if s > c * k) / trials)
        assert tails[0] < 0.05
        assert tails[1] < tails[0] or tails[1] == 0.0
        assert tails[2] <= tails[1]
        assert tails[2] < 1e-3


class TestProposition3:
    """If no weight exceeds W/(2l), then Pr[v_D(l) <= W/(c*l)] = O(e^-Cc):
    the l-th largest key concentrates above W/l up to constants."""

    def _tail(self, weights, ell, c, trials, seed):
        total = sum(weights)
        rng = random.Random(seed)
        bad = 0
        for _ in range(trials):
            keys = sorted((w / exponential(rng) for w in weights), reverse=True)
            if keys[ell - 1] <= total / (c * ell):
                bad += 1
        return bad / trials

    def test_tail_shrinks_with_c(self):
        weights = [1.0] * 200  # flat: every item far below W/(2*l)
        ell = 10
        t2 = self._tail(weights, ell, 2.0, 4000, 1)
        t4 = self._tail(weights, ell, 4.0, 4000, 2)
        t8 = self._tail(weights, ell, 8.0, 4000, 3)
        assert t4 <= t2 and t8 <= t4
        assert t8 < 0.01

    def test_heavy_items_break_concentration(self):
        """The precondition matters: with one dominating weight the
        l-th key sits far lower relative to W — exactly why level sets
        withhold heavy items."""
        flat = [1.0] * 100
        dominated = [1.0] * 99 + [9901.0]  # one item with 99% of W
        ell, c = 5, 4.0
        t_flat = self._tail(flat, ell, c, 3000, 4)
        t_dom = self._tail(dominated, ell, c, 3000, 5)
        assert t_dom > 10 * max(t_flat, 1e-4)


class TestProposition5:
    """E[number of epochs] <= 3(log(W/s)/log(r) + 1)."""

    def test_epoch_count_concentrates(self):
        k, s, n = 16, 16, 20000
        epoch_counts = []
        for seed in range(5):
            rng = random.Random(seed)
            items = zipf_stream(n, rng, alpha=1.3)
            proto = DistributedWeightedSWOR(
                SworConfig(num_sites=k, sample_size=s), seed=seed
            )
            proto.run(round_robin(items, k))
            epoch_counts.append(proto.coordinator.epochs.broadcasts)
            w = sum(i.weight for i in items)
        mean_epochs = sum(epoch_counts) / len(epoch_counts)
        bound = bounds.expected_epochs_bound(k, s, w)
        assert mean_epochs <= bound


class TestProposition8:
    """Pr[|sum of s Exp(1) - s| > eps*s] < 2e^{-eps^2 s/5}."""

    def test_two_sided_concentration(self):
        rng = random.Random(9)
        s, trials, eps = 400, 3000, 0.2
        violations = 0
        for _ in range(trials):
            total = sum(exponential(rng) for _ in range(s))
            if abs(total - s) > eps * s:
                violations += 1
        bound = 2 * math.exp(-eps * eps * s / 5.0)
        assert violations / trials <= bound + 0.01

    def test_estimator_core_identity(self):
        """The L1 estimator's engine: s/(sum of s exponentials) is a
        (1±eps) approximation of 1 w.h.p."""
        rng = random.Random(10)
        s, trials = 1000, 500
        good = 0
        for _ in range(trials):
            total = sum(exponential(rng) for _ in range(s))
            if abs(s / total - 1.0) < 0.15:
                good += 1
        assert good / trials > 0.95


class TestLemma1:
    """Every item in a saturated level set is at most 1/(4s) of the
    total weight released to the sampler so far."""

    def test_invariant_holds_throughout_run(self):
        k, s = 8, 4
        cfg = SworConfig(num_sites=k, sample_size=s)
        proto = DistributedWeightedSWOR(cfg, seed=11)
        rng = random.Random(12)
        items = zipf_stream(8000, rng, alpha=1.2)
        stream = round_robin(items, k)
        released_weight = 0.0
        max_released_item = 0.0
        # Track releases by watching the coordinator's level manager.
        seen_saturated = set()
        for site, item in stream:
            proto.process(site, item)
            levels = proto.coordinator.levels
            new_sat = levels.saturated_levels - seen_saturated
            for lvl in sorted(new_sat):
                seen_saturated.add(lvl)
        # Reconstruct: all items in saturated levels were released.
        r = cfg.r
        from repro.core import level_of

        for item in items:
            if level_of(item.weight, r) in seen_saturated:
                released_weight += item.weight
                max_released_item = max(max_released_item, item.weight)
        if released_weight > 0:
            assert max_released_item <= released_weight / (4 * s) * (1 + 1e-9)

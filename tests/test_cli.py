"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_swor_defaults(self):
        args = build_parser().parse_args(["swor"])
        assert args.sites == 16 and args.sample == 16 and args.seed == 0

    def test_all_subcommands_parse(self):
        parser = build_parser()
        for cmd in ("swor", "swr", "hh", "l1", "bounds"):
            args = parser.parse_args([cmd])
            assert args.command == cmd


class TestCommands:
    def test_swor_output(self, capsys):
        code = main(["swor", "--items", "3000", "--sites", "4", "--sample", "4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "weighted SWOR sample" in out
        assert "messages=" in out and "ratio" in out

    def test_swr_output(self, capsys):
        code = main(["swr", "--items", "2000", "--sites", "4", "--sample", "4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "weighted SWR sample" in out
        assert "slot" in out

    def test_hh_output(self, capsys):
        code = main(["hh", "--items", "5000", "--sites", "4", "--eps", "0.2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "residual heavy hitters" in out

    def test_l1_output(self, capsys):
        code = main(["l1", "--items", "4000", "--sites", "4", "--eps", "0.25"])
        out = capsys.readouterr().out
        assert code == 0
        assert "this work" in out
        assert "deterministic [14]" in out
        assert "hyz-style [23]" in out

    def test_bounds_output(self, capsys):
        code = main(["bounds", "--sites", "100", "--weight", "1e12"])
        out = capsys.readouterr().out
        assert code == 0
        for label in ("swor upper", "hh lower", "l1 lower this work"):
            assert label in out

    def test_seed_reproducibility(self, capsys):
        main(["swor", "--items", "2000", "--seed", "7"])
        first = capsys.readouterr().out
        main(["swor", "--items", "2000", "--seed", "7"])
        second = capsys.readouterr().out
        assert first == second

    def test_seed_changes_output(self, capsys):
        main(["swor", "--items", "2000", "--seed", "7"])
        first = capsys.readouterr().out
        main(["swor", "--items", "2000", "--seed", "8"])
        second = capsys.readouterr().out
        assert first != second

"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_swor_defaults(self):
        args = build_parser().parse_args(["swor"])
        # --seed defaults to None at parse time; main() resolves it to
        # the global --seed (or 0) before dispatch.
        assert args.sites == 16 and args.sample == 16 and args.seed is None

    def test_all_subcommands_parse(self):
        parser = build_parser()
        for cmd in ("swor", "swr", "hh", "l1", "query", "bounds"):
            args = parser.parse_args([cmd])
            assert args.command == cmd

    def test_global_seed_parses(self):
        args = build_parser().parse_args(["--seed", "5", "swor"])
        assert args.global_seed == 5 and args.seed is None

    def test_version_exits_zero(self, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--version"])
        assert exc.value.code == 0
        assert "repro" in capsys.readouterr().out

    def test_help_mentions_engine_defaults(self):
        parser = build_parser()
        args = parser.parse_args(["swor"])
        assert args.engine == "reference"
        # The help strings must state the defaults.
        swor_help = next(
            a for a in parser._subparsers._group_actions[0].choices.values()
            if a.prog.endswith("swor")
        ).format_help()
        flat = " ".join(swor_help.split())
        assert "default: reference" in flat
        assert "16384" in flat


class TestCommands:
    def test_swor_output(self, capsys):
        code = main(["swor", "--items", "3000", "--sites", "4", "--sample", "4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "weighted SWOR sample" in out
        assert "messages=" in out and "ratio" in out

    def test_swr_output(self, capsys):
        code = main(["swr", "--items", "2000", "--sites", "4", "--sample", "4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "weighted SWR sample" in out
        assert "slot" in out

    def test_hh_output(self, capsys):
        code = main(["hh", "--items", "5000", "--sites", "4", "--eps", "0.2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "residual heavy hitters" in out

    def test_l1_output(self, capsys):
        code = main(["l1", "--items", "4000", "--sites", "4", "--eps", "0.25"])
        out = capsys.readouterr().out
        assert code == 0
        assert "this work" in out
        assert "deterministic [14]" in out
        assert "hyz-style [23]" in out

    def test_bounds_output(self, capsys):
        code = main(["bounds", "--sites", "100", "--weight", "1e12"])
        out = capsys.readouterr().out
        assert code == 0
        for label in ("swor upper", "hh lower", "l1 lower this work"):
            assert label in out

    def test_seed_reproducibility(self, capsys):
        main(["swor", "--items", "2000", "--seed", "7"])
        first = capsys.readouterr().out
        main(["swor", "--items", "2000", "--seed", "7"])
        second = capsys.readouterr().out
        assert first == second

    def test_seed_changes_output(self, capsys):
        main(["swor", "--items", "2000", "--seed", "7"])
        first = capsys.readouterr().out
        main(["swor", "--items", "2000", "--seed", "8"])
        second = capsys.readouterr().out
        assert first != second

    def test_global_seed_equals_subcommand_seed(self, capsys):
        main(["--seed", "7", "swor", "--items", "2000"])
        global_form = capsys.readouterr().out
        main(["swor", "--items", "2000", "--seed", "7"])
        local_form = capsys.readouterr().out
        assert global_form == local_form

    def test_subcommand_seed_overrides_global(self, capsys):
        main(["--seed", "3", "swor", "--items", "2000", "--seed", "7"])
        overridden = capsys.readouterr().out
        main(["swor", "--items", "2000", "--seed", "7"])
        local_form = capsys.readouterr().out
        assert overridden == local_form

    def test_query_output(self, capsys):
        code = main(["query", "--items", "4000", "--sites", "4", "--sample", "16"])
        out = capsys.readouterr().out
        assert code == 0
        assert "concurrent queries over one pass" in out
        assert "total_weight" in out and "heavy_hitters" in out
        assert "ci95" in out and "total_messages=" in out

    def test_query_rejects_zero_batch_size(self):
        from repro.common import ConfigurationError

        with pytest.raises(ConfigurationError):
            main(
                [
                    "query",
                    "--items",
                    "1000",
                    "--sites",
                    "4",
                    "--engine",
                    "batched",
                    "--batch-size",
                    "0",
                ]
            )

    def test_query_batch_size_requires_batched_engine(self):
        with pytest.raises(SystemExit):
            main(["query", "--items", "1000", "--batch-size", "64"])

    def test_query_batched_engine(self, capsys):
        code = main(
            [
                "query",
                "--items",
                "4000",
                "--sites",
                "4",
                "--sample",
                "16",
                "--engine",
                "batched",
                "--batch-size",
                "512",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "engine=batched" in out


class TestObservability:
    """--metrics-out / --profile-out / the stats subcommand."""

    ARGS = ["--items", "3000", "--sites", "4", "--sample", "4"]

    def test_metrics_out_json(self, tmp_path, capsys):
        import json

        path = tmp_path / "metrics.json"
        code = main(["swor", *self.ARGS, "--metrics-out", str(path)])
        captured = capsys.readouterr()
        assert code == 0
        assert f"metrics written to {path} (json)" in captured.err
        snapshot = json.loads(path.read_text())
        families = snapshot["metrics"]
        assert "repro_engine_runs_total" in families
        sample = families["repro_engine_runs_total"]["samples"][0]
        assert sample == {"labels": {"engine": "reference"}, "value": 1.0}
        assert "repro_messages" in families

    def test_metrics_out_prometheus(self, tmp_path, capsys):
        path = tmp_path / "metrics.prom"
        code = main(["swor", *self.ARGS, "--metrics-out", str(path)])
        captured = capsys.readouterr()
        assert code == 0
        assert f"metrics written to {path} (prometheus)" in captured.err
        text = path.read_text()
        assert "# TYPE repro_engine_runs_total counter" in text
        assert 'repro_engine_runs_total{engine="reference"} 1' in text

    def test_metrics_out_on_query_subcommand(self, tmp_path, capsys):
        path = tmp_path / "query.prom"
        code = main(
            ["query", "--items", "3000", "--sites", "4", "--metrics-out", str(path)]
        )
        capsys.readouterr()
        assert code == 0
        text = path.read_text()
        assert "# TYPE repro_driver_runs_total counter" in text
        assert "repro_query_fold_seconds_total" in text

    def test_profile_out_writes_full_dump(self, tmp_path, capsys):
        path = tmp_path / "run.pstats"
        code = main(["swor", *self.ARGS, "--profile-out", str(path)])
        captured = capsys.readouterr()
        assert code == 0
        assert f"profile written to {path}" in captured.err
        text = path.read_text()
        assert "cumulative" in text and "ncalls" in text
        # The full dump is not truncated to the --profile top-20 view.
        assert "function calls" in text

    def test_stats_prometheus_to_stdout(self, capsys):
        code = main(["stats", *self.ARGS, "--engine", "columnar"])
        captured = capsys.readouterr()
        assert code == 0
        assert "# TYPE repro_engine_runs_total counter" in captured.out
        assert 'repro_engine_runs_total{engine="columnar"} 1' in captured.out
        # format_stats lands on stderr, keeping stdout scrape-clean.
        assert "columnar engine: items 3000" in captured.err

    def test_stats_json_format(self, capsys):
        import json

        code = main(["stats", *self.ARGS, "--format", "json"])
        captured = capsys.readouterr()
        assert code == 0
        snapshot = json.loads(captured.out)
        assert "repro_engine_items_total" in snapshot["metrics"]

    def test_stats_parses_in_subcommand_table(self):
        args = build_parser().parse_args(["stats"])
        assert args.command == "stats" and args.format == "prometheus"

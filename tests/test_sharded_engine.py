"""Multiprocess sharded engine: bit-parity, transports, failure paths.

What is covered:

1. **Bit-parity** — samples AND message counters identical to the
   columnar engine across (batch_size, workers, transport)
   combinations, including batch size 1 (pure scalar-message
   transport), rollback-heavy runs, checkpoints, and reused networks
   (two consecutive ``run`` calls continue the RNG streams exactly).
2. **Fallbacks** — workers=1, numpy-free installs, instrumented
   (traced) networks, and non-shardable sites all take the in-process
   columnar path; the engine is always safe to select.
3. **Worker failure** — a site raising mid-run surfaces the original
   traceback in the parent and leaves no orphaned processes or
   shared-memory segments.
4. **Wire form** — ``MessagePack.to_arrays``/``from_arrays`` round-trip
   (hypothesis property), with exact counter-accounting parity.
5. **Shard slice views** — per-window grouping matches the columnar
   engine's stable argsort slices.
"""

from __future__ import annotations

import glob
import multiprocessing
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ConfigurationError
from repro.core import DistributedWeightedSWOR, SworConfig
from repro.net.counters import MessageCounters
from repro.net.messages import REGULAR, SWR_SAMPLE, MessagePack
from repro.net.tracing import MessageTrace
from repro.runtime import (
    ColumnarEngine,
    ShardedEngine,
    ShardedWorkerError,
    get_engine,
)
from repro.runtime.interfaces import SiteAlgorithm
from repro.stream import round_robin, zipf_stream
from repro.stream.columns import ColumnarStream, ShardSliceView

np = pytest.importorskip("numpy")

SITES = 8
SAMPLE = 4
SEED = 3


def _stream(n=20000, seed=0, sites=SITES):
    return round_robin(zipf_stream(n, random.Random(seed), alpha=1.2), sites)


def _run(stream, engine, seed=SEED, sites=SITES, **kwargs):
    proto = DistributedWeightedSWOR(
        SworConfig(num_sites=sites, sample_size=SAMPLE),
        seed=seed,
        engine=engine,
        **kwargs,
    )
    proto.run(stream)
    return proto


def _fingerprint(proto):
    return (
        [(item.ident, item.weight, key) for item, key in proto.sample_with_keys()],
        proto.counters.snapshot(),
    )


# ---------------------------------------------------------------------------
# 1. Bit-parity with the columnar engine
# ---------------------------------------------------------------------------


class TestShardedParity:
    @pytest.fixture(scope="class")
    def shared_stream(self):
        return _stream()

    @pytest.fixture(scope="class")
    def columnar_1024(self, shared_stream):
        return _fingerprint(_run(shared_stream, ColumnarEngine(batch_size=1024)))

    @pytest.mark.parametrize(
        "workers,transport", [(2, "shm"), (3, "pipe"), (4, "auto")]
    )
    def test_bit_parity_across_workers_and_transports(
        self, shared_stream, columnar_1024, workers, transport
    ):
        engine = ShardedEngine(
            batch_size=1024, workers=workers, transport=transport
        )
        proto = _run(shared_stream, engine)
        assert engine.last_run_stats["mode"] == "sharded"
        assert _fingerprint(proto) == columnar_1024
        # Control broadcasts landed mid-window: the rollback protocol —
        # the one genuinely new piece of the engine — actually ran.
        assert engine.last_run_stats["rollbacks"] > 0

    def test_bit_parity_default_batch_size(self, shared_stream):
        columnar = _fingerprint(_run(shared_stream, "columnar"))
        engine = ShardedEngine(workers=2)
        proto = _run(shared_stream, engine)
        assert engine.last_run_stats["mode"] == "sharded"
        assert _fingerprint(proto) == columnar

    def test_bit_parity_on_columnar_stream(self, shared_stream, columnar_1024):
        columnar_stream = ColumnarStream.from_distributed(shared_stream)
        engine = ShardedEngine(batch_size=1024, workers=3)
        proto = _run(columnar_stream, engine)
        assert engine.last_run_stats["mode"] == "sharded"
        assert _fingerprint(proto) == columnar_1024

    def test_batch_size_one_scalar_transport(self):
        # Every (site, window) result is a scalar message list — the
        # pack-free half of the wire protocol, bit-identical too.
        stream = _stream(n=900, seed=7, sites=6)
        columnar = _fingerprint(
            _run(stream, ColumnarEngine(batch_size=1), sites=6)
        )
        engine = ShardedEngine(batch_size=1, workers=2)
        proto = _run(stream, engine, sites=6)
        assert engine.last_run_stats["mode"] == "sharded"
        assert _fingerprint(proto) == columnar

    def test_checkpoints_and_steps_match_columnar(self):
        stream = _stream(n=6000, seed=11)
        checkpoints = [100, 2500, 2501, 6000]

        def run(engine):
            proto = DistributedWeightedSWOR(
                SworConfig(num_sites=SITES, sample_size=SAMPLE),
                seed=SEED,
                engine=engine,
            )
            hits, steps = [], []
            proto.run(
                stream,
                checkpoints=checkpoints,
                on_checkpoint=lambda t: hits.append(
                    (t, tuple(i.ident for i in proto.sample()))
                ),
                on_step=steps.append,
            )
            return hits, steps, _fingerprint(proto)

        assert run(ColumnarEngine(batch_size=512)) == run(
            ShardedEngine(batch_size=512, workers=3)
        )

    def test_reused_network_continues_rng_streams(self):
        # The second run must pickle the *advanced* site states back in
        # — worker finals are transplanted onto the parent's mirrors.
        items = zipf_stream(3000, random.Random(2), alpha=1.3)
        first = round_robin(items[:1500], 6)
        second = round_robin(items[1500:], 6)

        def run_twice(engine):
            proto = DistributedWeightedSWOR(
                SworConfig(num_sites=6, sample_size=SAMPLE),
                seed=SEED,
                engine=engine,
            )
            proto.run(first)
            proto.run(second)
            return _fingerprint(proto), proto.resource_report()

        assert run_twice(ColumnarEngine(batch_size=512)) == run_twice(
            ShardedEngine(batch_size=512, workers=3)
        )

    def test_swr_parity_via_pickle_snapshots(self):
        # SWR sites implement no fast snapshot hooks, so the worker
        # falls back to pickling whole shards — the other rollback
        # path — and ROUND_UPDATE broadcasts drive the lockstep.
        from repro.core.swr import DistributedWeightedSWR

        stream = _stream(n=8000, seed=21)

        def run(engine):
            proto = DistributedWeightedSWR(
                SITES, SAMPLE, seed=SEED, engine=engine
            )
            proto.run(stream)
            return (
                proto.counters.snapshot(),
                [
                    None if slot is None else (slot.ident, slot.weight)
                    for slot in proto.coordinator._slots
                ],
            )

        columnar = run(ColumnarEngine(batch_size=1024))
        engine = ShardedEngine(batch_size=1024, workers=3)
        sharded = run(engine)
        assert engine.last_run_stats["mode"] == "sharded"
        assert sharded == columnar

    def test_warm_pool_reuse_across_protocols(self, shared_stream, columnar_1024):
        # One engine instance, two independent protocol runs: the
        # second reuses the spawned worker pool (fresh site states are
        # re-shipped) and stays bit-identical.
        engine = ShardedEngine(batch_size=1024, workers=2)
        try:
            first = _run(shared_stream, engine)
            assert engine.last_run_stats["warm_pool"] is False
            second = _run(shared_stream, engine)
            assert engine.last_run_stats["warm_pool"] is True
            assert _fingerprint(first) == columnar_1024
            assert _fingerprint(second) == columnar_1024
        finally:
            engine.close()

    def test_close_is_idempotent_and_unlinks_segments(self):
        from multiprocessing import shared_memory

        engine = ShardedEngine(batch_size=512, workers=2)
        _run(_stream(n=2000), engine)
        segments = engine.last_run_stats["shm_segments"]
        assert segments  # rings + the cached stream columns
        engine.close()
        engine.close()
        for name in segments:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_resource_report_transplanted(self, shared_stream, columnar_1024):
        columnar = _run(shared_stream, ColumnarEngine(batch_size=1024))
        engine = ShardedEngine(batch_size=1024, workers=3)
        sharded = _run(shared_stream, engine)
        assert engine.last_run_stats["mode"] == "sharded"
        assert sharded.resource_report() == columnar.resource_report()
        assert sum(s.items_seen for s in sharded.sites) == len(shared_stream)


# ---------------------------------------------------------------------------
# 2. Fallbacks
# ---------------------------------------------------------------------------


class _UnshardableSite(SiteAlgorithm):
    shardable = False

    def on_item(self, item):
        return []

    def on_control(self, message):
        pass


class TestShardedFallbacks:
    def test_single_worker_runs_in_process(self):
        stream = _stream(n=3000)
        engine = ShardedEngine(batch_size=512, workers=1)
        proto = _run(stream, engine)
        stats = engine.last_run_stats
        # The fallback marker survives the run-stats refresh (PR 7 adds
        # engine/items/seconds/windows to every completed run).
        assert stats["mode"] == "fallback"
        assert stats["reason"] == "single worker"
        assert stats["engine"] == "sharded" and stats["items"] == 3000
        assert _fingerprint(proto) == _fingerprint(
            _run(stream, ColumnarEngine(batch_size=512))
        )

    def test_numpy_free_fallback_matches_batched_fallback(self, monkeypatch):
        import repro.core.site as site_mod
        import repro.runtime.batched as batched_mod
        import repro.runtime.columnar as columnar_mod
        import repro.runtime.sharded as sharded_mod
        import repro.stream.item as item_mod

        stream = _stream(n=3000, seed=5)
        for mod in (site_mod, batched_mod, columnar_mod, sharded_mod, item_mod):
            monkeypatch.setattr(mod, "_np", None)
        batched = _fingerprint(_run(stream, "batched"))
        engine = ShardedEngine(workers=4)
        proto = _run(stream, engine)
        assert engine.last_run_stats["reason"] == "numpy unavailable"
        assert _fingerprint(proto) == batched

    def test_traced_network_falls_back_and_traces_identically(self):
        stream = _stream(n=3000, seed=9)
        reference_proto = DistributedWeightedSWOR(
            SworConfig(num_sites=SITES, sample_size=SAMPLE),
            seed=SEED,
            engine=ColumnarEngine(batch_size=512),
        )
        reference_trace = MessageTrace.attach(reference_proto.network)
        reference_proto.run(stream)
        engine = ShardedEngine(batch_size=512, workers=2)
        proto = DistributedWeightedSWOR(
            SworConfig(num_sites=SITES, sample_size=SAMPLE),
            seed=SEED,
            engine=engine,
        )
        trace = MessageTrace.attach(proto.network)
        proto.run(stream)
        assert engine.last_run_stats["reason"] == (
            "network delivery is instrumented"
        )
        assert trace.events == reference_trace.events
        assert _fingerprint(proto) == _fingerprint(reference_proto)

    def test_non_shardable_site_falls_back(self):
        stream = _stream(n=500)
        engine = ShardedEngine(batch_size=256, workers=2)
        proto = DistributedWeightedSWOR(
            SworConfig(num_sites=SITES, sample_size=SAMPLE),
            seed=SEED,
            engine=engine,
        )
        proto.network.sites[2] = _UnshardableSite()
        proto.run(stream)
        assert engine.last_run_stats["reason"] == "non-shardable site"

    def test_get_engine_workers_validation(self):
        engine = get_engine("sharded", batch_size=2048, workers=3)
        assert isinstance(engine, ShardedEngine)
        assert (engine.batch_size, engine.workers) == (2048, 3)
        with pytest.raises(ConfigurationError, match="does not take workers"):
            get_engine("columnar", workers=2)
        with pytest.raises(ConfigurationError, match="cannot be combined"):
            get_engine(ShardedEngine(), workers=2)
        with pytest.raises(ConfigurationError, match="workers must be >= 1"):
            ShardedEngine(workers=0)
        with pytest.raises(ConfigurationError, match="transport"):
            ShardedEngine(transport="carrier-pigeon")


# ---------------------------------------------------------------------------
# 3. Worker failure: tracebacks surface, nothing leaks
# ---------------------------------------------------------------------------


class FaultySite(SiteAlgorithm):
    """Picklable stub that works for a while, then raises mid-window."""

    def __init__(self, fail_after: int) -> None:
        self.fail_after = fail_after
        self.seen = 0

    def on_item(self, item):
        return []

    def on_columns(self, idents, weights, prep=None):
        self.seen += len(weights)
        if self.seen > self.fail_after:
            raise RuntimeError("faulty-site-exploded")
        return ()

    def on_control(self, message):
        pass


class TestWorkerFailure:
    def _leaked_segments(self):
        return set(glob.glob("/dev/shm/psm_*"))

    def test_worker_exception_surfaces_traceback_without_orphans(self):
        stream = _stream(n=4000)
        before = self._leaked_segments()
        engine = ShardedEngine(batch_size=512, workers=2)
        proto = DistributedWeightedSWOR(
            SworConfig(num_sites=SITES, sample_size=SAMPLE),
            seed=SEED,
            engine=engine,
        )
        # Site 6 sees n / k = 500 arrivals; fail partway through them.
        proto.network.sites[6] = FaultySite(fail_after=250)
        with pytest.raises(ShardedWorkerError) as excinfo:
            proto.run(stream)
        # The original worker traceback (site line included) made it up.
        assert "faulty-site-exploded" in str(excinfo.value)
        assert "on_columns" in excinfo.value.worker_traceback
        for child in multiprocessing.active_children():
            child.join(timeout=10)
        assert multiprocessing.active_children() == []
        assert self._leaked_segments() <= before

    def test_failure_in_first_window_still_cleans_up(self):
        stream = _stream(n=2000)
        before = self._leaked_segments()
        engine = ShardedEngine(batch_size=256, workers=3)
        proto = DistributedWeightedSWOR(
            SworConfig(num_sites=SITES, sample_size=SAMPLE),
            seed=SEED,
            engine=engine,
        )
        proto.network.sites[0] = FaultySite(fail_after=0)
        with pytest.raises(ShardedWorkerError):
            proto.run(stream)
        for child in multiprocessing.active_children():
            child.join(timeout=10)
        assert multiprocessing.active_children() == []
        assert self._leaked_segments() <= before


# ---------------------------------------------------------------------------
# 4. MessagePack wire form round trip
# ---------------------------------------------------------------------------


def _counter_fingerprint(pack):
    counters = MessageCounters()
    counters.record_upstream_pack(pack)
    return counters.snapshot()


class TestPackWireForm:
    @given(
        early=st.lists(
            st.tuples(
                st.integers(-(2**40), 2**40),
                st.floats(
                    min_value=1e-3,
                    max_value=1e12,
                    allow_nan=False,
                    allow_infinity=False,
                ),
                st.integers(0, 60),
            ),
            max_size=8,
        ),
        regular=st.lists(
            st.tuples(
                st.integers(-(2**40), 2**40),
                st.floats(
                    min_value=1e-3,
                    max_value=1e12,
                    allow_nan=False,
                    allow_infinity=False,
                ),
                st.floats(
                    min_value=1e-6,
                    max_value=1e15,
                    allow_nan=False,
                    allow_infinity=False,
                ),
                st.integers(0, 15),
            ),
            max_size=8,
        ),
        kind=st.sampled_from([REGULAR, SWR_SAMPLE]),
        with_extra=st.booleans(),
    )
    @settings(max_examples=120, deadline=None)
    def test_to_arrays_round_trip(self, early, regular, kind, with_extra):
        pack = MessagePack(
            early_idents=(
                np.array([e[0] for e in early], dtype=np.int64)
                if early
                else None
            ),
            early_weights=(
                np.array([e[1] for e in early], dtype=np.float64)
                if early
                else None
            ),
            early_levels=(
                np.array([e[2] for e in early], dtype=np.int64)
                if early
                else None
            ),
            regular_idents=(
                np.array([r[0] for r in regular], dtype=np.int64)
                if regular
                else None
            ),
            regular_weights=(
                np.array([r[1] for r in regular], dtype=np.float64)
                if regular
                else None
            ),
            regular_keys=(
                np.array([r[2] for r in regular], dtype=np.float64)
                if regular
                else None
            ),
            regular_kind=kind,
            regular_extra=(
                np.array([r[3] for r in regular], dtype=np.int64)
                if regular and with_extra
                else None
            ),
        )
        back = MessagePack.from_arrays(*pack.to_arrays())
        assert back.messages() == pack.messages()
        assert back.regular_kind == pack.regular_kind
        assert _counter_fingerprint(back) == _counter_fingerprint(pack)

    def test_from_arrays_rejects_unknown_columns(self):
        with pytest.raises(ValueError, match="unknown MessagePack columns"):
            MessagePack.from_arrays(REGULAR, {"bogus": np.zeros(1)})

    def test_from_arrays_rejects_ragged_halves(self):
        with pytest.raises(ValueError, match="lengths disagree"):
            MessagePack.from_arrays(
                REGULAR,
                {
                    "early_idents": np.zeros(2, dtype=np.int64),
                    "early_weights": np.zeros(3),
                    "early_levels": np.zeros(2, dtype=np.int64),
                },
            )

    def test_from_arrays_rejects_incomplete_halves(self):
        with pytest.raises(ValueError, match="incomplete regular half"):
            MessagePack.from_arrays(
                REGULAR,
                {"regular_idents": [1], "regular_weights": [1.0]},
            )
        with pytest.raises(ValueError, match="incomplete early half"):
            MessagePack.from_arrays(
                REGULAR,
                {"early_idents": [1], "early_weights": [1.0]},
            )
        with pytest.raises(ValueError, match="regular_extra requires"):
            MessagePack.from_arrays(SWR_SAMPLE, {"regular_extra": [0]})

    def test_from_arrays_coerces_lists(self):
        pack = MessagePack.from_arrays(
            REGULAR,
            {
                "regular_idents": [1, 2],
                "regular_weights": [0.5, 2.0],
                "regular_keys": [3.0, 4.0],
            },
        )
        assert pack.regular_idents.dtype == np.int64
        assert len(pack.messages()) == 2


# ---------------------------------------------------------------------------
# 5. Shard slice views
# ---------------------------------------------------------------------------


class TestShardSliceView:
    def test_window_order_matches_columnar_grouping(self):
        from repro.runtime.batched import window_order

        rng = np.random.default_rng(5)
        assignment = rng.integers(0, 7, size=500)
        weights = rng.random(500) + 0.5
        idents = np.arange(500, dtype=np.int64)
        view = ShardSliceView.from_columns(assignment, weights, idents, 2, 5)
        lo, hi = 100, 350
        i0, i1 = view.window_bounds(lo, hi)
        site_ids, starts, ends, idents_sorted, weights_sorted = (
            view.window_order(i0, i1)
        )
        # Reference: the full-window grouping the columnar engine does.
        order, sites_sorted, run_starts, run_ends = window_order(
            assignment[lo:hi]
        )
        positions = order + lo
        expected = {}
        for start, end in zip(run_starts, run_ends):
            sid = int(sites_sorted[start])
            if 2 <= sid < 5:
                expected[sid] = positions[start:end]
        assert site_ids == sorted(expected)
        for sid, start, end in zip(site_ids, starts, ends):
            assert idents_sorted[start:end].tolist() == (
                idents[expected[sid]].tolist()
            )
            assert weights_sorted[start:end].tolist() == (
                weights[expected[sid]].tolist()
            )

    def test_shard_views_partition_the_stream(self):
        stream = ColumnarStream.from_distributed(_stream(n=1000))
        views = stream.shard_views(3)
        assert [v.site_lo for v in views] == [0, 2, 5]
        assert [v.site_hi for v in views] == [2, 5, 8]
        assert sum(len(v) for v in views) == len(stream)
        recovered = np.sort(np.concatenate([v.positions for v in views]))
        assert recovered.tolist() == list(range(len(stream)))

    def test_shard_views_validation(self):
        stream = ColumnarStream.from_distributed(_stream(n=100))
        with pytest.raises(ConfigurationError):
            stream.shard_views(0)
        with pytest.raises(ConfigurationError):
            stream.shard_views(9)


# ---------------------------------------------------------------------------
# 6. CLI + driver passthrough
# ---------------------------------------------------------------------------


class TestShardedPlumbing:
    def test_cli_workers_requires_sharded(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit, match="--workers requires"):
            main(["swor", "--items", "100", "--workers", "2"])

    def test_cli_sharded_smoke(self, capsys):
        from repro.cli import main

        assert (
            main(
                [
                    "swor",
                    "--items",
                    "2000",
                    "--sites",
                    "6",
                    "--engine",
                    "sharded",
                    "--workers",
                    "2",
                    "--batch-size",
                    "512",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "messages=" in out

    def test_driver_sharded_passthrough_matches_columnar(self):
        from repro.query import MultiQueryDriver, SubsetSumQuery

        stream = _stream(n=4000, seed=13)
        queries = [
            SubsetSumQuery("total", sample_size=8),
            SubsetSumQuery(
                "evens",
                predicate=lambda item: item.ident % 2 == 0,
                sample_size=8,
            ),
        ]

        def answers(engine):
            driver = MultiQueryDriver(
                queries, num_sites=SITES, seed=1, engine=engine
            )
            result = driver.run(stream)
            return {
                name: (answer.value, answer.ci_low, answer.ci_high)
                for name, answer in result.answers.items()
            }

        assert answers("sharded") == answers("columnar")

    def test_driver_rejects_unknown_engine(self):
        from repro.query import MultiQueryDriver, SubsetSumQuery

        with pytest.raises(ConfigurationError, match="sharded"):
            MultiQueryDriver(
                [SubsetSumQuery("t", sample_size=4)],
                num_sites=4,
                engine="warp-drive",
            )

"""End-to-end scenarios: all trackers on one realistic stream.

Simulates the paper's two motivating deployments at once: the same
distributed stream is consumed by the weighted SWOR sampler, the
residual heavy-hitter tracker, and the L1 tracker, and every output is
checked against the exact offline oracles.  This is the "would a
downstream user get coherent answers" test.
"""

from __future__ import annotations

import random

import pytest

from repro import (
    DistributedWeightedSWOR,
    L1Tracker,
    ResidualHeavyHitterTracker,
    SworConfig,
)
from repro.centralized import (
    exact_residual_heavy_hitters,
    identifier_totals,
)
from repro.common import relative_error
from repro.heavy_hitters import score_residual_report
from repro.stream import (
    DistributedStream,
    flows_to_stream,
    network_flow_trace,
    queries_to_stream,
    search_query_log,
)


@pytest.fixture(scope="module")
def flow_scenario():
    """A 16-device flow trace with its distributed stream."""
    rng = random.Random(2019)
    records = network_flow_trace(25000, 16, rng, pareto_shape=1.1)
    items = flows_to_stream(records)
    assignment = [r.device for r in records]
    return items, DistributedStream(items, assignment, 16)


class TestFlowMonitoringPipeline:
    def test_sampler_outputs_valid_flows(self, flow_scenario):
        items, stream = flow_scenario
        proto = DistributedWeightedSWOR(
            SworConfig(num_sites=16, sample_size=32), seed=1
        )
        proto.run(stream)
        valid_ids = {item.ident for item in items}
        sample = proto.sample()
        assert len(sample) == 32
        assert all(item.ident in valid_ids for item in sample)

    def test_sample_biased_toward_elephants(self, flow_scenario):
        """Average sampled weight must far exceed the stream average."""
        items, stream = flow_scenario
        proto = DistributedWeightedSWOR(
            SworConfig(num_sites=16, sample_size=32), seed=2
        )
        proto.run(stream)
        mean_stream = sum(i.weight for i in items) / len(items)
        sample = proto.sample()
        mean_sample = sum(i.weight for i in sample) / len(sample)
        assert mean_sample > 3 * mean_stream

    def test_residual_tracker_recall(self, flow_scenario):
        items, stream = flow_scenario
        eps = 0.1
        tracker = ResidualHeavyHitterTracker(16, eps, delta=0.05, seed=3)
        tracker.run(stream)
        score = score_residual_report(items, tracker.heavy_hitters(), eps)
        assert score.recall == 1.0

    def test_l1_estimate_matches_oracle(self, flow_scenario):
        items, stream = flow_scenario
        truth = sum(i.weight for i in items)
        tracker = L1Tracker(16, eps=0.25, delta=0.2, seed=4)
        tracker.run(stream)
        assert relative_error(tracker.estimate(), truth) < 0.5

    def test_message_budgets_comparable(self, flow_scenario):
        """All three trackers together should communicate far less than
        centralizing the stream once."""
        items, stream = flow_scenario
        total = 0
        proto = DistributedWeightedSWOR(
            SworConfig(num_sites=16, sample_size=32), seed=5
        )
        total += proto.run(stream).total
        hh = ResidualHeavyHitterTracker(16, 0.1, delta=0.05, seed=6)
        total += hh.run(stream).total
        l1 = L1Tracker(16, eps=0.25, delta=0.2, seed=7)
        total += l1.run(stream).total
        assert total < len(items)


class TestQueryLogPipeline:
    def test_popular_queries_dominate_sample(self):
        rng = random.Random(77)
        records = search_query_log(20000, 8, rng, vocabulary=500, zipf_alpha=1.4)
        items = queries_to_stream(records)
        stream = DistributedStream(items, [r.server for r in records], 8)
        proto = DistributedWeightedSWOR(
            SworConfig(num_sites=8, sample_size=50), seed=8
        )
        proto.run(stream)
        totals = identifier_totals(items)
        top_queries = set(
            sorted(totals, key=lambda q: -totals[q])[:50]
        )
        sampled = {item.ident for item in proto.sample()}
        # Weighted sampling should surface mostly-popular queries.
        assert len(sampled & top_queries) >= 10

    def test_residual_oracle_consistency(self):
        """The guarantee scorer and the raw oracle must agree on a
        stream with repeated identifiers."""
        rng = random.Random(78)
        records = search_query_log(5000, 4, rng, vocabulary=50)
        items = queries_to_stream(records)
        hitters, residual = exact_residual_heavy_hitters(items, 0.1)
        assert residual > 0
        # every reported index is a real stream position
        assert all(0 <= i < len(items) for i in hitters)

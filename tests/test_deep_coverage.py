"""Deeper coverage: rarely-exercised paths, parameter corners, and a
throughput smoke test."""

from __future__ import annotations

import random
import time

import pytest

from repro.centralized import (
    SkipWeightedReservoirSWOR,
    WeightedReservoirSWOR,
)
from repro.core import (
    DistributedUnweightedSWOR,
    DistributedWeightedSWOR,
    DistributedWeightedSWR,
    SworConfig,
)
from repro.l1 import L1Tracker
from repro.net.messages import EARLY, EPOCH_UPDATE, Message
from repro.stream import (
    Item,
    contiguous_blocks,
    round_robin,
    uniform_stream,
    unit_stream,
    zipf_stream,
)


class TestLazyBitModeFullProtocol:
    def test_protocol_correct_with_bit_counting(self):
        """count_bits changes the RNG consumption pattern but must not
        change protocol semantics (valid sample, sane messages)."""
        k, s = 4, 8
        rng = random.Random(1)
        items = zipf_stream(3000, rng, alpha=1.3)
        proto = DistributedWeightedSWOR(
            SworConfig(num_sites=k, sample_size=s, count_bits=True), seed=2
        )
        counters = proto.run(round_robin(items, k))
        assert len(proto.sample()) == s
        assert counters.total > 0
        report = proto.resource_report()
        assert report["bits_generated"] > 0
        assert report["mean_bits_per_exponential"] < 70  # bounded by MAX_BITS

    def test_lazy_early_messages_unaffected(self):
        cfg = SworConfig(num_sites=2, sample_size=2, count_bits=True)
        from repro.core import SworSite

        site = SworSite(0, cfg, random.Random(3))
        msgs = site.on_item(Item(0, 100.0))
        assert msgs[0].kind == EARLY  # withholding happens before keys


class TestContiguousPartition:
    """One site sees the whole prefix — the maximally stale-view case."""

    def test_weighted_protocol_completes_and_sizes(self):
        k, s = 8, 16
        rng = random.Random(4)
        items = uniform_stream(5000, rng, low=1.0, high=50.0)
        proto = DistributedWeightedSWOR(
            SworConfig(num_sites=k, sample_size=s), seed=5
        )
        stream = contiguous_blocks(items, k)
        counters = proto.run(stream)
        assert len(proto.sample()) == s
        # Stale sites over-send but the coordinator filter keeps the
        # accepted count near s + epochs.
        assert proto.coordinator.regular_accepted <= counters.upstream

    def test_unweighted_protocol_on_blocks(self):
        proto = DistributedUnweightedSWOR(4, 8, seed=6)
        proto.run(contiguous_blocks(unit_stream(4000), 4))
        assert len(proto.sample()) == 8


class TestFractionalWeights:
    def test_swr_accepts_fractional_weights(self):
        """The min-of-uniforms key extends continuously below/between
        integers; weights >= 1 but non-integral must work."""
        items = [Item(i, 1.0 + 0.37 * (i % 5)) for i in range(500)]
        proto = DistributedWeightedSWR(4, 8, seed=7)
        proto.run(round_robin(items, 4))
        assert len(proto.sample()) == 8

    def test_swor_fractional_weights(self):
        items = [Item(i, 1.5 + (i % 3) * 0.25) for i in range(500)]
        proto = DistributedWeightedSWOR(
            SworConfig(num_sites=2, sample_size=4), seed=8
        )
        proto.run(round_robin(items, 2))
        assert len(proto.sample()) == 4


class TestL1LargeEpochBase:
    def test_r_above_two_path(self):
        """k >> s forces r = k/s > 2 in the L1 tracker's epoch logic."""
        tracker = L1Tracker(
            64, eps=0.3, delta=0.3, seed=9,
            sample_size_override=8, duplication_override=16,
        )
        assert tracker.r == 8.0
        counters = tracker.run(round_robin(unit_stream(5000), 64))
        assert counters.total > 0
        # Small s gives weak concentration; only sanity-check the scale.
        assert 0.2 * 5000 < tracker.estimate() < 5.0 * 5000

    def test_single_item_stream(self):
        tracker = L1Tracker(
            2, eps=0.3, delta=0.3, seed=10,
            sample_size_override=16, duplication_override=32,
        )
        tracker.process(0, Item(0, 7.0))
        assert tracker.estimate() == pytest.approx(7.0, rel=0.6)


class TestSkipSamplerAgreement:
    def test_thresholds_track_plain_sampler(self):
        """On a long stream, A-ExpJ's threshold must be statistically
        indistinguishable from the plain sampler's (same law)."""
        n, s, reps = 20000, 16, 5
        plain_thresholds, skip_thresholds = [], []
        for rep in range(reps):
            rng1, rng2 = random.Random(rep), random.Random(rep + 100)
            plain = WeightedReservoirSWOR(s, rng1)
            skip = SkipWeightedReservoirSWOR(s, rng2)
            stream_rng = random.Random(rep + 200)
            for i in range(n):
                item = Item(i, stream_rng.uniform(1.0, 10.0))
                plain.insert(item)
                skip.insert(item)
            plain_thresholds.append(plain.threshold)
            skip_thresholds.append(skip.threshold)
        mean_plain = sum(plain_thresholds) / reps
        mean_skip = sum(skip_thresholds) / reps
        assert 0.3 < mean_skip / mean_plain < 3.0


class TestEpochUpdateStaleness:
    def test_stale_site_oversends_but_coordinator_filters(self):
        """A site that never receives epoch updates (simulated by
        feeding items directly) over-sends; the coordinator's
        Algorithm 2 line 19 check keeps the sample law intact."""
        cfg = SworConfig(num_sites=2, sample_size=2)
        from repro.core import SworCoordinator

        coord = SworCoordinator(cfg, random.Random(11))
        from repro.net.messages import REGULAR

        # Feed keys directly with decreasing values: later ones fall
        # below the threshold and must be rejected silently.
        coord.on_message(0, Message(REGULAR, (0, 1.0, 100.0)))
        coord.on_message(0, Message(REGULAR, (1, 1.0, 90.0)))
        coord.on_message(0, Message(REGULAR, (2, 1.0, 1.0)))
        coord.on_message(0, Message(REGULAR, (3, 1.0, 0.5)))
        assert coord.regular_received == 4
        assert coord.regular_accepted == 2
        assert {i.ident for i in coord.sample()} == {0, 1}


class TestThroughput:
    def test_core_protocol_throughput_floor(self):
        """Loose smoke test: the site hot path must stay lightweight
        (> 20k items/s on any modern machine; typical is far higher)."""
        k, s, n = 8, 16, 40000
        rng = random.Random(12)
        items = zipf_stream(n, rng, alpha=1.3)
        proto = DistributedWeightedSWOR(
            SworConfig(num_sites=k, sample_size=s), seed=13
        )
        stream = round_robin(items, k)
        start = time.perf_counter()
        proto.run(stream)
        elapsed = time.perf_counter() - start
        assert n / elapsed > 20_000, f"throughput {n/elapsed:.0f} items/s"


class TestControlMessageEdges:
    def test_epoch_update_equal_threshold_ok(self):
        from repro.core import SworSite

        site = SworSite(0, SworConfig(num_sites=2, sample_size=2), random.Random(14))
        site.on_control(Message(EPOCH_UPDATE, (4.0,)))
        site.on_control(Message(EPOCH_UPDATE, (4.0,)))  # idempotent
        assert site._threshold == 4.0

    def test_level_saturated_idempotent(self):
        from repro.core import SworSite
        from repro.net.messages import LEVEL_SATURATED

        site = SworSite(0, SworConfig(num_sites=2, sample_size=2), random.Random(15))
        site.on_control(Message(LEVEL_SATURATED, (3,)))
        site.on_control(Message(LEVEL_SATURATED, (3,)))
        assert (site._saturated_mask >> 3) & 1

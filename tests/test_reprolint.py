"""reprolint — the AST determinism analyzer that guards this repo's contracts.

Four layers of coverage:

1. **per-rule fixtures** — for each of R001..R006 a known-bad tree that
   must trigger the rule and a known-good twin that must not (the
   analyzer's own regression suite);
2. **engine semantics** — inline/file-wide suppressions (justification
   mandatory, audited as R000), baseline matching (snippet-keyed, so
   line drift survives but edits do not), syntax-error reporting;
3. **CLI** — exit codes, text/JSON output schema, ``--write-baseline``;
4. **the live tree** — a meta-test asserting ``src/repro`` + ``tests``
   are clean under the committed (empty) baseline, which is the same
   invariant the CI lint job enforces.

Plus regression tests for the genuine findings the initial sweep fixed
(checkpoint-set iteration order, inclusion-frequency table order).
"""

from __future__ import annotations

import json
import random
import sys
import textwrap
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT) not in sys.path:  # `tools` lives at the repo root
    sys.path.insert(0, str(REPO_ROOT))

from tools.reprolint.baseline import (  # noqa: E402
    BASELINE_VERSION,
    apply_baseline,
    load_baseline,
    render_baseline,
)
from tools.reprolint.cli import main as reprolint_main  # noqa: E402
from tools.reprolint.engine import (  # noqa: E402
    META_RULE,
    all_rules,
    analyze_paths,
    find_repo_root,
)

# ---------------------------------------------------------------------------
# fixture-tree helpers
# ---------------------------------------------------------------------------

#: Golden metric list for R005 fixtures (mirrors tests/test_obs.py's role).
_FIXTURE_GOLDEN = """\
GOLDEN_METRIC_NAMES = [
    "repro_good_total",
    "repro_fold_seconds",
]
"""


def write_tree(root: Path, files: dict) -> Path:
    """Materialize a miniature repo: pyproject.toml anchors
    ``find_repo_root``, then each ``rel -> source`` pair."""
    (root / "pyproject.toml").write_text('[project]\nname = "fixture"\n')
    for rel, text in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(text), encoding="utf-8")
    return root


def run_lint(root: Path, rule_ids=None):
    return analyze_paths([root], root=root, rule_ids=rule_ids)


def findings_of(root: Path, rule: str):
    return [f for f in run_lint(root).findings if f.rule == rule]


# ---------------------------------------------------------------------------
# R001 rng-discipline
# ---------------------------------------------------------------------------


class TestRngDiscipline:
    def test_global_random_flagged(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "src/repro/core/x.py": """\
                import random

                def draw():
                    return random.random()
                """
            },
        )
        found = findings_of(tmp_path, "R001")
        assert len(found) == 1
        assert "interpreter-global" in found[0].message

    def test_from_random_import_flagged(self, tmp_path):
        write_tree(
            tmp_path,
            {"src/repro/core/x.py": "from random import randint\n"},
        )
        assert len(findings_of(tmp_path, "R001")) == 1

    def test_numpy_global_state_flagged(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "src/repro/core/x.py": """\
                import numpy as np

                def bad():
                    np.random.seed(0)
                    return np.random.rand(3)
                """
            },
        )
        assert len(findings_of(tmp_path, "R001")) == 2

    def test_unseeded_default_rng_flagged(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "src/repro/core/x.py": """\
                from numpy.random import default_rng

                gen = default_rng()
                """
            },
        )
        found = findings_of(tmp_path, "R001")
        assert len(found) == 1
        assert "seed" in found[0].message

    def test_seeded_instances_clean(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "src/repro/core/x.py": """\
                import random

                from numpy.random import PCG64, Generator, default_rng

                rng = random.Random(7)
                gen = Generator(PCG64(7))
                gen2 = default_rng(2019)

                def draw():
                    return rng.random() + gen.random()
                """
            },
        )
        assert findings_of(tmp_path, "R001") == []


# ---------------------------------------------------------------------------
# R002 kernel-purity
# ---------------------------------------------------------------------------


class TestKernelPurity:
    def test_impure_kernel_flagged(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "src/repro/kernels/bad.py": """\
                import time

                _calls = 0

                def fold(xs):
                    global _calls
                    _calls += 1
                    print(time.time())
                    return sum(xs)
                """
            },
        )
        messages = [f.message for f in findings_of(tmp_path, "R002")]
        assert any("clock" in m for m in messages)
        assert any("globals" in m for m in messages)
        assert any("print" in m for m in messages)

    def test_kernel_rng_import_flagged(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "src/repro/kernels/bad.py": """\
                import random

                import numpy as np

                def fold(xs):
                    return xs[np.random.permutation(len(xs))]
                """
            },
        )
        messages = [f.message for f in findings_of(tmp_path, "R002")]
        assert any("import random" in m for m in messages)
        assert any("numpy.random" in m for m in messages)

    def test_pure_kernel_clean(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "src/repro/kernels/good.py": """\
                import numpy as np

                def fold(keys, threshold):
                    mask = keys > threshold
                    return keys[mask], int(mask.sum())
                """
            },
        )
        assert findings_of(tmp_path, "R002") == []

    def test_purity_scoped_to_kernels_dir(self, tmp_path):
        # The same `print` outside src/repro/kernels/ is not R002's business.
        write_tree(
            tmp_path,
            {"src/repro/cli2.py": "print('hello')\n"},
        )
        assert findings_of(tmp_path, "R002") == []


# ---------------------------------------------------------------------------
# R003 snapshot-completeness
# ---------------------------------------------------------------------------

_SNAPSHOT_BAD = """\
class Sampler:
    def __init__(self):
        self.items = []
        self.count = 0

    def add(self, x):
        self.items.append(x)
        self.count += 1

    def snapshot_state(self):
        return (list(self.items),)

    def restore_state(self, state):
        self.items = list(state[0])
"""

_SNAPSHOT_GOOD = _SNAPSHOT_BAD.replace(
    "return (list(self.items),)",
    "return (list(self.items), self.count)",
).replace(
    "self.items = list(state[0])",
    "self.items = list(state[0])\n        self.count = state[1]",
)


class TestSnapshotCompleteness:
    def test_uncovered_attribute_flagged(self, tmp_path):
        write_tree(tmp_path, {"src/repro/core/s.py": _SNAPSHOT_BAD})
        found = findings_of(tmp_path, "R003")
        assert len(found) == 1
        assert "Sampler.count" in found[0].message

    def test_complete_pair_clean(self, tmp_path):
        write_tree(tmp_path, {"src/repro/core/s.py": _SNAPSHOT_GOOD})
        assert findings_of(tmp_path, "R003") == []

    def test_snapshot_exclude_exempts(self, tmp_path):
        code = _SNAPSHOT_BAD.replace(
            "class Sampler:",
            'class Sampler:\n    _SNAPSHOT_EXCLUDE = ("count",)\n',
        )
        write_tree(tmp_path, {"src/repro/core/s.py": code})
        assert findings_of(tmp_path, "R003") == []

    def test_snapshot_without_restore_flagged(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "src/repro/core/s.py": """\
                class Sampler:
                    def snapshot_state(self):
                        return (1,)
                """
            },
        )
        found = findings_of(tmp_path, "R003")
        assert len(found) == 1
        assert "without" in found[0].message

    def test_none_returning_default_exempt(self, tmp_path):
        # The base-class "snapshots unsupported" stub must not count.
        write_tree(
            tmp_path,
            {
                "src/repro/core/s.py": """\
                class Base:
                    def tick(self):
                        self.t = 1

                    def snapshot_state(self):
                        return None
                """
            },
        )
        assert findings_of(tmp_path, "R003") == []

    def test_captured_but_never_restored_flagged(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "src/repro/core/s.py": """\
                class Sampler:
                    def snapshot_state(self):
                        return (self.extra,)

                    def restore_state(self, state):
                        pass
                """
            },
        )
        found = findings_of(tmp_path, "R003")
        assert len(found) == 1
        assert "captured" in found[0].message

    def test_staticmethod_stores_ignored(self, tmp_path):
        # A staticmethod's first arg is not the instance; writes through
        # it are not protocol-state mutations.
        write_tree(
            tmp_path,
            {
                "src/repro/core/s.py": """\
                class Box:
                    @staticmethod
                    def tag(message):
                        message.cached = 1
                        return message.cached

                    def snapshot_state(self):
                        return ()

                    def restore_state(self, state):
                        pass
                """
            },
        )
        assert findings_of(tmp_path, "R003") == []


# ---------------------------------------------------------------------------
# R004 clock-discipline
# ---------------------------------------------------------------------------

_CLOCKED = """\
import time

def stamp():
    return time.time()
"""


class TestClockDiscipline:
    def test_clock_in_protocol_code_flagged(self, tmp_path):
        write_tree(tmp_path, {"src/repro/core/x.py": _CLOCKED})
        found = findings_of(tmp_path, "R004")
        assert len(found) == 1
        assert "time.time" in found[0].message

    def test_from_time_import_flagged(self, tmp_path):
        write_tree(
            tmp_path,
            {"src/repro/net/x.py": "from time import perf_counter\n"},
        )
        assert len(findings_of(tmp_path, "R004")) == 1

    def test_telemetry_layers_allowed(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "src/repro/obs/x.py": _CLOCKED,
                "src/repro/runtime/x.py": _CLOCKED,
                "src/repro/cli.py": _CLOCKED,
                "src/repro/query/driver.py": _CLOCKED,
            },
        )
        assert findings_of(tmp_path, "R004") == []


# ---------------------------------------------------------------------------
# R005 metric-name-drift
# ---------------------------------------------------------------------------


class TestMetricNameDrift:
    def test_unlisted_metric_flagged(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "tests/test_obs.py": _FIXTURE_GOLDEN,
                "src/repro/obs/x.py": """\
                def register(registry):
                    registry.counter("repro_rogue_total", "undeclared")
                """,
            },
        )
        found = findings_of(tmp_path, "R005")
        assert len(found) == 1
        assert "repro_rogue_total" in found[0].message

    def test_span_maps_to_seconds_family(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "tests/test_obs.py": _FIXTURE_GOLDEN,
                "src/repro/obs/x.py": """\
                def timed(registry):
                    with registry.span("rogue"):
                        pass
                """,
            },
        )
        found = findings_of(tmp_path, "R005")
        assert len(found) == 1
        assert "repro_rogue_seconds" in found[0].message

    def test_missing_namespace_prefix_flagged(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "tests/test_obs.py": _FIXTURE_GOLDEN,
                "src/repro/obs/x.py": """\
                def register(registry):
                    registry.gauge("items_total", "no prefix")
                """,
            },
        )
        found = findings_of(tmp_path, "R005")
        assert len(found) == 1
        assert "prefix" in found[0].message

    def test_golden_names_clean(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "tests/test_obs.py": _FIXTURE_GOLDEN,
                "src/repro/obs/x.py": """\
                def register(registry):
                    registry.counter("repro_good_total", "on the list")
                    with registry.span("fold"):
                        pass
                """,
            },
        )
        assert findings_of(tmp_path, "R005") == []

    def test_missing_golden_list_is_reported(self, tmp_path):
        # No tests/test_obs.py in the tree: surface that the check
        # cannot run instead of silently passing.
        write_tree(
            tmp_path,
            {
                "src/repro/obs/x.py": """\
                def register(registry):
                    registry.counter("repro_good_total", "x")
                """
            },
        )
        found = findings_of(tmp_path, "R005")
        assert len(found) == 1
        assert "GOLDEN_METRIC_NAMES" in found[0].message


# ---------------------------------------------------------------------------
# R006 order-hazards
# ---------------------------------------------------------------------------


class TestOrderHazards:
    @pytest.mark.parametrize(
        "stmt",
        [
            "for x in {1, 2, 3}:\n    out.append(x)",
            "for x in set(xs):\n    out.append(x)",
            "out = list(set(xs))",
            "out = tuple(set(xs) | {0})",
            "out = [y for y in set(xs)]",
            "out = ','.join({str(x) for x in xs})",
            "for x in set(a) - set(b):\n    out.append(x)",
        ],
    )
    def test_unordered_iteration_flagged(self, tmp_path, stmt):
        write_tree(
            tmp_path,
            {"src/repro/core/x.py": f"def go(xs, a, b, out):\n{textwrap.indent(stmt, '    ')}\n"},
        )
        assert len(findings_of(tmp_path, "R006")) == 1

    @pytest.mark.parametrize(
        "stmt",
        [
            "for x in sorted(set(xs)):\n    out.append(x)",
            "out = sorted(y for y in set(xs))",
            "total = sum(y for y in set(xs))",
            "hit = any(y > 0 for y in set(xs))",
            "n = len(set(xs))",
            "for x in xs:\n    out.append(x)",
        ],
    )
    def test_ordered_or_insensitive_clean(self, tmp_path, stmt):
        write_tree(
            tmp_path,
            {"src/repro/core/x.py": f"def go(xs, out):\n{textwrap.indent(stmt, '    ')}\n"},
        )
        assert findings_of(tmp_path, "R006") == []


# ---------------------------------------------------------------------------
# suppressions and R000
# ---------------------------------------------------------------------------

_VIOLATION = "import random\nx = random.random()"


class TestSuppressions:
    def test_same_line_suppression(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "src/repro/core/x.py": "import random\n"
                "x = random.random()  # reprolint: disable=R001 fixture exercises the analyzer\n"
            },
        )
        result = run_lint(tmp_path)
        assert result.findings == []
        assert result.suppressed == 1

    def test_line_above_suppression(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "src/repro/core/x.py": "import random\n"
                "# reprolint: disable=R001 fixture exercises the analyzer\n"
                "x = random.random()\n"
            },
        )
        result = run_lint(tmp_path)
        assert result.findings == []
        assert result.suppressed == 1

    def test_file_wide_suppression(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "src/repro/core/x.py": "# reprolint: disable-file=R001 fixture file\n"
                "import random\n"
                "x = random.random()\ny = random.random()\n"
            },
        )
        result = run_lint(tmp_path)
        assert result.findings == []
        assert result.suppressed == 2

    def test_suppression_without_reason_is_r000(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "src/repro/core/x.py": "import random\n"
                "x = random.random()  # reprolint: disable=R001\n"
            },
        )
        rules_hit = {f.rule for f in run_lint(tmp_path).findings}
        # The bare suppression is audited AND does not suppress.
        assert rules_hit == {META_RULE, "R001"}

    def test_malformed_comment_is_r000(self, tmp_path):
        write_tree(
            tmp_path,
            {"src/repro/core/x.py": "# reprolint: disable R001 typo\nx = 1\n"},
        )
        found = run_lint(tmp_path).findings
        assert [f.rule for f in found] == [META_RULE]
        assert "malformed" in found[0].message

    def test_docstring_mention_is_not_a_comment(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "src/repro/core/x.py": '"""Suppress with '
                "``# reprolint: disable=R001 why``.\"\"\"\n"
            },
        )
        assert run_lint(tmp_path).findings == []

    def test_suppressing_other_rule_does_not_apply(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "src/repro/core/x.py": "import random\n"
                "x = random.random()  # reprolint: disable=R006 wrong rule id\n"
            },
        )
        assert [f.rule for f in run_lint(tmp_path).findings] == ["R001"]

    def test_syntax_error_is_r000(self, tmp_path):
        write_tree(tmp_path, {"src/repro/core/x.py": "def broken(:\n"})
        found = run_lint(tmp_path).findings
        assert [f.rule for f in found] == [META_RULE]
        assert "syntax error" in found[0].message


# ---------------------------------------------------------------------------
# baseline semantics
# ---------------------------------------------------------------------------


class TestBaseline:
    def _one_finding(self, tmp_path):
        write_tree(tmp_path, {"src/repro/core/x.py": _VIOLATION + "\n"})
        found = run_lint(tmp_path).findings
        assert len(found) == 1
        return found

    def test_render_load_round_trip(self, tmp_path):
        found = self._one_finding(tmp_path)
        path = tmp_path / "baseline.json"
        path.write_text(render_baseline(found))
        fresh, matched = apply_baseline(found, load_baseline(path))
        assert fresh == [] and matched == 1

    def test_line_drift_keeps_match(self, tmp_path):
        found = self._one_finding(tmp_path)
        path = tmp_path / "baseline.json"
        path.write_text(render_baseline(found))
        # Push the violation down two lines: same snippet, new lineno.
        (tmp_path / "src/repro/core/x.py").write_text(
            "import random\n\nA = 1\nx = random.random()\n"
        )
        drifted = run_lint(tmp_path).findings
        assert drifted[0].line != found[0].line
        fresh, matched = apply_baseline(drifted, load_baseline(path))
        assert fresh == [] and matched == 1

    def test_edited_line_drops_match(self, tmp_path):
        found = self._one_finding(tmp_path)
        path = tmp_path / "baseline.json"
        path.write_text(render_baseline(found))
        (tmp_path / "src/repro/core/x.py").write_text(
            "import random\nx = random.random() + 1\n"
        )
        edited = run_lint(tmp_path).findings
        fresh, matched = apply_baseline(edited, load_baseline(path))
        assert matched == 0 and len(fresh) == 1

    def test_budget_is_consumed(self, tmp_path):
        found = self._one_finding(tmp_path)
        path = tmp_path / "baseline.json"
        path.write_text(render_baseline(found))
        # A second identical offence on an identical line exceeds budget.
        (tmp_path / "src/repro/core/x.py").write_text(
            "import random\nx = random.random()\nx = random.random()\n"
        )
        doubled = run_lint(tmp_path).findings
        assert len(doubled) == 2
        fresh, matched = apply_baseline(doubled, load_baseline(path))
        assert matched == 1 and len(fresh) == 1

    def test_missing_file_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json") == {}

    def test_bad_version_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "entries": []}))
        with pytest.raises(ValueError):
            load_baseline(path)
        path.write_text("not json")
        with pytest.raises(ValueError):
            load_baseline(path)

    def test_version_constant_matches_committed_file(self):
        committed = json.loads(
            (REPO_ROOT / "tools/reprolint/baseline.json").read_text()
        )
        assert committed["version"] == BASELINE_VERSION


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestCli:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        write_tree(tmp_path, {"src/repro/core/x.py": "x = 1\n"})
        assert reprolint_main([str(tmp_path), "--no-baseline"]) == 0

    def test_findings_exit_one(self, tmp_path, capsys):
        write_tree(tmp_path, {"src/repro/core/x.py": _VIOLATION + "\n"})
        assert reprolint_main([str(tmp_path), "--no-baseline"]) == 1
        out = capsys.readouterr().out
        assert "R001" in out and "src/repro/core/x.py" in out

    def test_unknown_rule_exits_two(self, tmp_path, capsys):
        write_tree(tmp_path, {"src/repro/core/x.py": "x = 1\n"})
        assert reprolint_main([str(tmp_path), "--rule", "R999"]) == 2

    def test_malformed_baseline_exits_two(self, tmp_path, capsys):
        write_tree(tmp_path, {"src/repro/core/x.py": "x = 1\n"})
        bad = tmp_path / "b.json"
        bad.write_text("{}")
        assert reprolint_main([str(tmp_path), "--baseline", str(bad)]) == 2

    def test_rule_filter_restricts(self, tmp_path, capsys):
        write_tree(
            tmp_path,
            {"src/repro/core/x.py": _VIOLATION + "\nfor v in {1, 2}:\n    pass\n"},
        )
        assert (
            reprolint_main([str(tmp_path), "--rule", "R006", "--no-baseline"]) == 1
        )
        out = capsys.readouterr().out
        assert "R006" in out and "R001" not in out

    def test_json_schema(self, tmp_path, capsys):
        write_tree(tmp_path, {"src/repro/core/x.py": _VIOLATION + "\n"})
        rc = reprolint_main([str(tmp_path), "--format", "json", "--no-baseline"])
        assert rc == 1
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {
            "root",
            "checked_files",
            "suppressed",
            "baselined",
            "findings",
        }
        (finding,) = payload["findings"]
        assert set(finding) == {"rule", "path", "line", "col", "message", "snippet"}
        assert finding["rule"] == "R001"
        assert finding["path"] == "src/repro/core/x.py"
        assert finding["snippet"] == "x = random.random()"

    def test_write_baseline_then_clean(self, tmp_path, capsys):
        write_tree(tmp_path, {"src/repro/core/x.py": _VIOLATION + "\n"})
        baseline = tmp_path / "b.json"
        assert (
            reprolint_main(
                [str(tmp_path), "--baseline", str(baseline), "--write-baseline"]
            )
            == 0
        )
        assert reprolint_main([str(tmp_path), "--baseline", str(baseline)]) == 0

    def test_list_rules(self, capsys):
        assert reprolint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in all_rules():
            assert rule.id in out


# ---------------------------------------------------------------------------
# the live tree
# ---------------------------------------------------------------------------


class TestLiveTree:
    def test_repo_root_resolution(self):
        assert find_repo_root(Path(__file__)) == REPO_ROOT

    def test_live_tree_is_clean(self, capsys):
        """The committed tree passes its own analyzer with the committed
        (empty) baseline — exactly what the CI lint job runs."""
        rc = reprolint_main(
            [str(REPO_ROOT / "src" / "repro"), str(REPO_ROOT / "tests")]
        )
        assert rc == 0, capsys.readouterr().out

    def test_shipped_baseline_is_empty_for_core_rules(self):
        committed = json.loads(
            (REPO_ROOT / "tools/reprolint/baseline.json").read_text()
        )
        grandfathered = {e["rule"] for e in committed["entries"]}
        assert not grandfathered & {"R001", "R002", "R004"}


# ---------------------------------------------------------------------------
# regressions for the genuine findings the initial sweep fixed
# ---------------------------------------------------------------------------


class TestSweepRegressions:
    def test_inclusion_frequency_order_is_first_appearance(self):
        """empirical_inclusion_frequencies iterates deduped samples in
        first-appearance order (dict.fromkeys), so the returned table's
        key order is input-determined, not hash-seed-determined — and
        duplicates within one trial still count once."""
        from repro.common.stats import empirical_inclusion_frequencies

        freq = empirical_inclusion_frequencies(
            [["b", "a", "b"], ["a", "c"], ["c", "a"]]
        )
        assert list(freq) == ["b", "a", "c"]
        assert freq == {"b": 1 / 3, "a": 1.0, "c": 2 / 3}

    @pytest.mark.parametrize("engine_kwargs", [
        {"engine": "batched", "batch_size": 128},
        {"engine": "columnar", "batch_size": 128},
    ])
    def test_checkpoint_order_and_duplicates_are_irrelevant(self, engine_kwargs):
        """Engines canonicalize the checkpoint set via sorted(set(...)),
        so a scrambled, duplicated checkpoint list fires the same marks
        in the same order and leaves the sample bit-identical."""
        pytest.importorskip("numpy")
        from repro.core import DistributedWeightedSWOR, SworConfig
        from repro.stream import Item, round_robin

        def fire(checkpoints):
            items = [Item(i, 1.0 + (i % 7)) for i in range(1000)]
            proto = DistributedWeightedSWOR(
                SworConfig(num_sites=4, sample_size=4), seed=2, **engine_kwargs
            )
            seen = []
            proto.run(
                round_robin(items, 4),
                checkpoints=checkpoints,
                on_checkpoint=seen.append,
            )
            return seen, tuple(item.ident for item in proto.sample())

        canonical = fire([1, 100, 300, 999, 1000])
        scrambled = [999, 1, 300, 100, 1000, 300, 1]
        random.Random(0).shuffle(scrambled)
        assert fire(scrambled) == canonical
        assert canonical[0] == [1, 100, 300, 999, 1000]

"""Columnar runtime tests: zero-object streams, packs, and the engine.

Five contracts pin the columnar refactor:

1. **Stream round-trip** — ``ColumnarStream`` <-> ``DistributedStream``
   converts exactly (idents and weights bit for bit), with a lazy
   ``items`` view that never materializes the stream;
2. **Pack accounting** — a ``MessagePack``'s word/count accounting
   equals the sum over the individual messages it replaces, exactly;
3. **Engine bit-parity** — the columnar engine reproduces the batched
   engine's samples *and* counters bit for bit (same RNG draw order),
   on both stream representations, under tracing, and across the
   coordinator's bulk/replay paths;
4. **Scalar fallback** — with numpy simulated away the columnar engine
   degrades to the batched engine's object path, and at batch size 1
   to the reference engine exactly;
5. **Bulk sample merge** — ``TopKeySample.merge_columns`` equals
   sequential ``add`` calls (including the tie fallback), and the
   sorted query view is cached per mutation epoch.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ConfigurationError, ProtocolViolationError
from repro.common.words import words_for_value, words_for_values_array
from repro.core import (
    DistributedUnweightedSWOR,
    DistributedWeightedSWOR,
    SworConfig,
)
from repro.core.coordinator import SworCoordinator
from repro.core.sample_set import TopKeySample
from repro.net.counters import MessageCounters
from repro.net.messages import EARLY, Message, MessagePack, REGULAR
from repro.net.tracing import MessageTrace
from repro.runtime import BatchedEngine, ColumnarEngine, get_engine
from repro.stream import (
    ColumnarStream,
    DistributedStream,
    Item,
    columnar_zipf_stream,
    heavy_to_one_site,
    round_robin,
    zipf_stream,
)

np = pytest.importorskip("numpy")


def _swor_run(stream, engine, seed=7, sites=8, sample=8, **kwargs):
    proto = DistributedWeightedSWOR(
        SworConfig(num_sites=sites, sample_size=sample),
        seed=seed,
        engine=engine,
    )
    counters = proto.run(stream, **kwargs)
    return proto, counters


def _fingerprint(proto, counters):
    return (
        counters.snapshot(),
        tuple(
            (item.ident, item.weight, key)
            for item, key in proto.sample_with_keys()
        ),
    )


# ---------------------------------------------------------------------------
# 1. ColumnarStream
# ---------------------------------------------------------------------------


class TestColumnarStream:
    def _stream(self, n=500, k=7, seed=3):
        items = zipf_stream(n, random.Random(seed), alpha=1.3)
        return round_robin(items, k)

    def test_round_trip_exact(self):
        stream = self._stream()
        columnar = ColumnarStream.from_distributed(stream)
        back = columnar.to_distributed()
        assert back.items == stream.items
        assert back.assignment == stream.assignment
        assert back.num_sites == stream.num_sites

    @settings(max_examples=40, deadline=None)
    @given(
        weights=st.lists(
            st.floats(min_value=1.0, max_value=1e12, allow_nan=False),
            min_size=1,
            max_size=60,
        ),
        k=st.integers(min_value=1, max_value=9),
        data=st.data(),
    )
    def test_round_trip_property(self, weights, k, data):
        idents = data.draw(
            st.lists(
                st.integers(min_value=-(2**62), max_value=2**62),
                min_size=len(weights),
                max_size=len(weights),
            )
        )
        assignment = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=k - 1),
                min_size=len(weights),
                max_size=len(weights),
            )
        )
        stream = DistributedStream(
            [Item(e, w) for e, w in zip(idents, weights)], assignment, k
        )
        back = ColumnarStream.from_distributed(stream).to_distributed()
        assert back.items == stream.items  # bit-exact floats and ints
        assert back.assignment == stream.assignment

    def test_lazy_items_view(self):
        stream = self._stream(n=50)
        columnar = ColumnarStream.from_distributed(stream)
        view = columnar.items
        assert len(view) == 50
        assert view[0] == stream.items[0]
        assert view[-1] == stream.items[-1]
        assert view[10:13] == stream.items[10:13]
        assert list(view) == stream.items
        with pytest.raises(IndexError):
            view[50]

    def test_iteration_yields_site_item_pairs(self):
        stream = self._stream(n=40)
        columnar = ColumnarStream.from_distributed(stream)
        assert list(columnar) == list(stream)

    def test_generate_chunked_fill(self):
        def fill(lo, idents, weights, sites):
            n = len(idents)
            idents[:] = np.arange(lo, lo + n)
            weights[:] = np.arange(lo, lo + n) + 1.0
            sites[:] = np.arange(lo, lo + n) % 3

        columnar = ColumnarStream.generate(100, 3, fill, chunk_size=7)
        assert len(columnar) == 100
        assert columnar.items[42] == Item(42, 43.0)
        assert int(columnar.assignment[42]) == 0

    def test_generator_round_robin_zipf(self):
        columnar = columnar_zipf_stream(1000, 8, seed=5, alpha=1.2)
        assert len(columnar) == 1000
        assert columnar.num_sites == 8
        assert (columnar.weights >= 1.0).all()
        assert (columnar.sites == np.arange(1000) % 8).all()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ColumnarStream([1], [1.0, 2.0], [0], 1)
        with pytest.raises(ConfigurationError):
            ColumnarStream([1], [1.0], [3], 2)
        with pytest.raises(ConfigurationError):
            ColumnarStream([1], [1.0], [0], 0)

    def test_arrays_triple_matches_distributed(self):
        stream = self._stream(n=64)
        columnar = ColumnarStream.from_distributed(stream)
        a_s, a_w, a_i = stream.arrays()
        c_s, c_w, c_i = columnar.arrays()
        assert (a_s == c_s).all()
        assert (a_w == c_w).all()
        assert (a_i == c_i).all()

    def test_iter_batches_matches(self):
        stream = self._stream(n=30)
        columnar = ColumnarStream.from_distributed(stream)
        got = [
            (sites, items) for sites, items in columnar.iter_batches(7)
        ]
        want = [(sites, items) for sites, items in stream.iter_batches(7)]
        assert got == want

    def test_non_integer_idents_fall_back(self):
        stream = DistributedStream([Item("a", 2.0)], [0], 1)  # type: ignore[arg-type]
        assert stream.arrays()[2] is None
        with pytest.raises(ConfigurationError):
            ColumnarStream.from_distributed(stream)

    def test_float_idents_fall_back_not_truncate(self):
        # np.fromiter would silently truncate 2.5 -> 2; arrays() must
        # instead take the object-path fallback for non-integral idents.
        stream = DistributedStream([Item(2.5, 2.0)], [0], 1)  # type: ignore[arg-type]
        assert stream.arrays()[2] is None


# ---------------------------------------------------------------------------
# 2. MessagePack accounting
# ---------------------------------------------------------------------------


class TestPackAccounting:
    def _random_pack(self, rng, ne, nr, huge=False):
        scale = 1e280 if huge else 1e6
        return MessagePack(
            np.array([rng.randrange(2**40) for _ in range(ne)], dtype=np.int64),
            np.array([rng.uniform(1, scale) for _ in range(ne)]),
            np.array([rng.randrange(20) for _ in range(ne)], dtype=np.int64),
            np.array([rng.randrange(2**40) for _ in range(nr)], dtype=np.int64),
            np.array([rng.uniform(1, scale) for _ in range(nr)]),
            np.array([rng.uniform(1, 1e300 if huge else 1e9) for _ in range(nr)]),
        )

    @pytest.mark.parametrize("ne,nr,huge", [
        (3, 5, False),
        (0, 4, False),
        (6, 0, False),
        (2, 3, True),
        (100, 80, False),   # above the scalar-accounting cutoff
        (50, 70, True),
    ])
    def test_pack_counts_equal_per_message_counts(self, rng, ne, nr, huge):
        pack = self._random_pack(rng, ne, nr, huge=huge)
        bulk = MessageCounters()
        bulk.record_upstream_pack(pack)
        scalar = MessageCounters()
        for message in pack.messages():
            scalar.record_upstream(message)
        assert bulk.snapshot() == scalar.snapshot()

    def test_empty_pack_counts_nothing(self):
        counters = MessageCounters()
        counters.record_upstream_pack(MessagePack())
        assert counters.total == 0

    def test_messages_materialize_in_delivery_order(self):
        pack = MessagePack(
            np.array([1, 2]), np.array([3.0, 4.0]), np.array([0, 1]),
            np.array([9]), np.array([5.0]), np.array([7.5]),
        )
        assert pack.messages() == [
            Message(EARLY, (1, 3.0)),
            Message(EARLY, (2, 4.0)),
            Message(REGULAR, (9, 5.0, 7.5)),
        ]
        assert len(pack) == 3

    def test_words_for_values_array_matches_scalar(self, rng):
        values = (
            [0.0, 1.0, -1.0, 2.0**62, 2.0**62 + 2**10, 2.0**63, 2.0**64]
            + [rng.uniform(-1e300, 1e300) for _ in range(200)]
            + [rng.uniform(-1e9, 1e9) for _ in range(200)]
        )
        vectorized = words_for_values_array(np.array(values))
        for value, words in zip(values, vectorized.tolist()):
            assert words == words_for_value(float(value)), value


# ---------------------------------------------------------------------------
# 3. Engine bit-parity with the batched engine
# ---------------------------------------------------------------------------


class TestColumnarEngineParity:
    @pytest.mark.parametrize("seed,k,s,partition", [
        (7, 8, 8, round_robin),
        (2019, 32, 16, round_robin),
        (3, 5, 4, heavy_to_one_site),
    ])
    def test_bit_identical_to_batched(self, seed, k, s, partition):
        items = zipf_stream(40_000, random.Random(seed), alpha=1.25)
        stream = partition(items, k)
        batched = _fingerprint(*_swor_run(stream, "batched", seed, k, s))
        columnar = _fingerprint(*_swor_run(stream, "columnar", seed, k, s))
        assert columnar == batched

    def test_columnar_stream_input_identical(self):
        stream = round_robin(zipf_stream(25_000, random.Random(1), alpha=1.2), 8)
        columnar = ColumnarStream.from_distributed(stream)
        a = _fingerprint(*_swor_run(stream, "columnar"))
        b = _fingerprint(*_swor_run(columnar, "columnar"))
        assert a == b

    def test_generic_site_default_on_columns(self):
        """Protocols without a columnar hook run through the default
        wrapper — still bit-identical to the batched engine."""
        items = [Item(i, 1.0) for i in range(8000)]
        stream = round_robin(items, 8)

        def run(engine):
            proto = DistributedUnweightedSWOR(8, 8, seed=11, engine=engine)
            counters = proto.run(stream)
            return (
                counters.snapshot(),
                tuple(item.ident for item in proto.sample()),
            )

        assert run("columnar") == run("batched")

    def test_checkpoints_fire_exactly_and_accumulate(self):
        stream = round_robin(zipf_stream(9000, random.Random(4), alpha=1.3), 8)
        seen_b, seen_c = [], []
        proto_b, _ = _swor_run(
            stream, "batched",
            checkpoints=[1, 300, 8191, 9000],
            on_checkpoint=seen_b.append,
        )
        proto_c, _ = _swor_run(
            stream, "columnar",
            checkpoints=[1, 300, 8191, 9000],
            on_checkpoint=seen_c.append,
        )
        assert seen_b == seen_c == [1, 300, 8191, 9000]
        assert proto_b.sample_with_keys() == proto_c.sample_with_keys()
        # cumulative clock across run() calls on a reused network
        more = round_robin(zipf_stream(1000, random.Random(5), alpha=1.3), 8)
        seen2 = []
        proto_c.run(more, checkpoints=[9500], on_checkpoint=seen2.append)
        assert seen2 == [9500]

    def test_tracing_preserves_per_message_causal_order(self):
        stream = round_robin(zipf_stream(6000, random.Random(9), alpha=1.3), 8)

        def traced(engine):
            proto = DistributedWeightedSWOR(
                SworConfig(num_sites=8, sample_size=8), seed=7, engine=engine
            )
            trace = MessageTrace.attach(proto.network)
            proto.run(stream)
            return trace.events, proto.sample_with_keys(), proto.counters.snapshot()

        events_b, sample_b, counters_b = traced("batched")
        events_c, sample_c, counters_c = traced("columnar")
        assert events_c == events_b
        assert sample_c == sample_b
        assert counters_c == counters_b

    def test_class_level_wrapper_sees_every_upstream_message(self, monkeypatch):
        """Instrumentation installed on the class (not the instance)
        must also force per-message pack expansion."""
        from repro.runtime.network import Network

        seen = []
        original = Network.deliver_upstream

        def spy(self, site_id, message):
            seen.append(message.kind)
            return original(self, site_id, message)

        monkeypatch.setattr(Network, "deliver_upstream", spy)
        stream = round_robin(zipf_stream(4000, random.Random(1), alpha=1.3), 8)
        _, counters = _swor_run(stream, "columnar")
        assert len(seen) == counters.upstream > 0

    def test_engine_registry_and_batch_size(self):
        engine = get_engine("columnar", batch_size=512)
        assert isinstance(engine, ColumnarEngine)
        assert isinstance(engine, BatchedEngine)
        assert engine.batch_size == 512
        with pytest.raises(ConfigurationError):
            get_engine("reference", batch_size=512)

    def test_batch_size_one_is_reference(self):
        stream = round_robin(zipf_stream(3000, random.Random(2), alpha=1.3), 8)
        ref = _fingerprint(*_swor_run(stream, None))
        one = _fingerprint(*_swor_run(stream, ColumnarEngine(batch_size=1)))
        assert one == ref

    def test_sub_one_weights_with_open_level_zero(self):
        """Level 0 open while a higher level is saturated: sub-1 weights
        live in level 0 and must stay EARLY — the window-prep heavy-floor
        shortcut proves nothing when the lowest open level is 0."""
        from repro.core import SworSite
        from repro.net.messages import LEVEL_SATURATED

        config = SworConfig(num_sites=4, sample_size=2)  # r = 2
        shared = SworSite(0, config, random.Random(1))
        solo = SworSite(0, config, random.Random(1))
        for site in (shared, solo):
            site.on_control(Message(LEVEL_SATURATED, (1,)))  # bit 0 stays clear
        weights = np.array([0.5, 2.0, 4.0, 0.9])  # levels 0, 1, 2, 0
        idents = np.arange(4, dtype=np.int64)
        prep = shared.prepare_window(weights)
        with_prep = shared.on_columns(idents, weights, prep=(prep, 0, 4))
        without_prep = solo.on_columns(idents, weights)
        assert with_prep.messages() == without_prep.messages()
        assert with_prep.num_early == 3  # only the saturated level-1 item filters

    def test_parity_with_sub_one_weights_and_open_level_zero(self):
        """End-to-end bit-parity on a stream where a higher level
        saturates while level 0 never does (rare sub-1 weights)."""
        rng = random.Random(21)
        rare = set(rng.sample(range(20_000), 20))
        items = [
            Item(i, 0.5 if i in rare else rng.uniform(2.0, 3.9))
            for i in range(20_000)
        ]
        stream = round_robin(items, 8)
        batched = _fingerprint(*_swor_run(stream, "batched", seed=5, sample=4))
        columnar = _fingerprint(*_swor_run(stream, "columnar", seed=5, sample=4))
        assert columnar == batched

    def test_coordinator_stats_match_on_replay_paths(self):
        """early_received / regular_received / levels state agree with
        batched (accepted-counts may differ only on the bulk fast path,
        which is documented)."""
        stream = round_robin(zipf_stream(30_000, random.Random(6), alpha=1.2), 8)
        proto_b, _ = _swor_run(stream, "batched", seed=6)
        proto_c, _ = _swor_run(stream, "columnar", seed=6)
        cb, cc = proto_b.coordinator, proto_c.coordinator
        assert cc.early_received == cb.early_received
        assert cc.regular_received == cb.regular_received
        assert cc.early_for_saturated == cb.early_for_saturated
        assert cc.levels.saturated_levels == cb.levels.saturated_levels
        assert sorted(
            (i.ident, k) for i, k in cc.levels.pending_entries()
        ) == sorted((i.ident, k) for i, k in cb.levels.pending_entries())


# ---------------------------------------------------------------------------
# 4. Coordinator pack paths (bulk commit vs sequential replay)
# ---------------------------------------------------------------------------


class TestCoordinatorPackPaths:
    def _twins(self, k=4, s=3, saturation=4):
        config = SworConfig(
            num_sites=k,
            sample_size=s,
            # saturation_size is derived as round(factor * r * s).
            level_set_factor=saturation / (max(2.0, k / s) * s),
        )
        assert config.saturation_size == saturation
        bulk = SworCoordinator(config, random.Random(42))
        seq = SworCoordinator(config, random.Random(42))
        return bulk, seq

    def _assert_equivalent(self, bulk, seq, pack):
        responses_bulk = bulk.on_message_pack(0, pack)
        responses_seq = []
        for message in pack.messages():
            responses_seq.extend(seq.on_message(0, message))
        assert [(d, m.kind, m.payload) for d, m in responses_bulk] == [
            (d, m.kind, m.payload) for d, m in responses_seq
        ]
        assert bulk.sample_with_keys() == seq.sample_with_keys()
        assert bulk.early_received == seq.early_received
        assert bulk.regular_received == seq.regular_received
        assert bulk.levels.saturated_levels == seq.levels.saturated_levels

    def test_saturating_pack_takes_replay_path(self):
        """A pack whose earlies saturate a level must broadcast at the
        exact release point — forced through the sequential replay."""
        bulk, seq = self._twins(saturation=3)
        pack = MessagePack(
            np.arange(5, dtype=np.int64),
            np.ones(5),            # all level 0 -> saturates at the 3rd
            np.zeros(5, dtype=np.int64),
        )
        self._assert_equivalent(bulk, seq, pack)
        assert bulk.early_for_saturated == seq.early_for_saturated == 2

    def test_epoch_crossing_pack_takes_replay_path(self):
        bulk, seq = self._twins(s=2, saturation=4)
        # Pre-saturate level 0 so regulars flow; huge keys force the
        # threshold through several epoch brackets inside one pack.
        warm = MessagePack(
            np.arange(4, dtype=np.int64),
            np.ones(4),
            np.zeros(4, dtype=np.int64),
        )
        self._assert_equivalent(bulk, seq, warm)
        pack = MessagePack(
            regular_idents=np.array([10, 11, 12], dtype=np.int64),
            regular_weights=np.array([1.0, 1.0, 1.0]),
            regular_keys=np.array([5.0, 40.0, 600.0]),
        )
        self._assert_equivalent(bulk, seq, pack)
        assert bulk.epochs.epoch == seq.epochs.epoch

    def test_quiet_pack_takes_bulk_path(self, rng):
        bulk, seq = self._twins()
        pack = MessagePack(
            np.arange(2, dtype=np.int64),
            np.array([1.0, 2.0]),
            np.zeros(2, dtype=np.int64),
            np.array([7, 8], dtype=np.int64),
            np.array([3.0, 4.0]),
            np.array([0.5, 0.25]),
        )
        self._assert_equivalent(bulk, seq, pack)
        assert bulk.levels.pending_count() == 2

    def test_early_for_disabled_level_sets_raises(self):
        config = SworConfig(num_sites=4, sample_size=3, level_sets_enabled=False)
        coord = SworCoordinator(config, random.Random(0))
        pack = MessagePack(
            np.array([1], dtype=np.int64), np.array([2.0]),
            np.array([0], dtype=np.int64),
        )
        with pytest.raises(ProtocolViolationError):
            coord.on_message_pack(0, pack)


# ---------------------------------------------------------------------------
# 5. TopKeySample bulk merge + cached sorted view
# ---------------------------------------------------------------------------


class TestTopKeySampleMerge:
    @settings(max_examples=60, deadline=None)
    @given(
        s=st.integers(min_value=1, max_value=12),
        keys=st.lists(
            st.floats(min_value=1e-3, max_value=1e6, allow_nan=False),
            min_size=0,
            max_size=50,
        ),
    )
    def test_merge_equals_sequential(self, s, keys):
        bulk = TopKeySample(s)
        seq = TopKeySample(s)
        half = len(keys) // 2
        for i, key in enumerate(keys[:half]):
            bulk.add(Item(i, 1.0), key)
            seq.add(Item(i, 1.0), key)
        threshold = bulk.threshold
        cand = [
            (half + j, key)
            for j, key in enumerate(keys[half:])
            if key > threshold
        ]
        bulk.merge_columns(
            [ident for ident, _ in cand],
            [1.0] * len(cand),
            [key for _, key in cand],
        )
        for ident, key in cand:
            seq.add(Item(ident, 1.0), key)
        assert sorted(
            (item.ident, key) for item, key in bulk.entries()
        ) == sorted((item.ident, key) for item, key in seq.entries())
        assert bulk.threshold == seq.threshold

    def test_boundary_ties_fall_back_exactly(self):
        bulk = TopKeySample(2)
        seq = TopKeySample(2)
        for sample in (bulk, seq):
            sample.add(Item(0, 1.0), 5.0)
            sample.add(Item(1, 1.0), 7.0)
        bulk.merge_columns([2, 3], [1.0, 1.0], [5.0 + 1e-9, 5.0 + 1e-9])
        seq.add(Item(2, 1.0), 5.0 + 1e-9)
        seq.add(Item(3, 1.0), 5.0 + 1e-9)
        assert bulk.threshold == seq.threshold
        assert {i.ident for i, _ in bulk.entries()} == {
            i.ident for i, _ in seq.entries()
        }

    def test_sorted_view_cached_per_mutation_epoch(self):
        sample = TopKeySample(4)
        for i in range(4):
            sample.add(Item(i, 1.0), float(i + 1))
        first = sample._sorted_view()
        assert sample._sorted_view() is first  # no re-sort between mutations
        assert sample.entries() is not first  # callers get their own copy
        sample.add(Item(9, 1.0), 10.0)
        assert sample._sorted is None  # mutation invalidates
        assert [i.ident for i in sample.items()] == [9, 3, 2, 1]
        # rejected insert (below threshold) does not invalidate the cache
        cached = sample._sorted_view()
        assert sample.add(Item(5, 1.0), 0.5) is not None
        assert sample._sorted is cached


# ---------------------------------------------------------------------------
# 6. ItemBatch sequence protocol (slices, negative indices)
# ---------------------------------------------------------------------------


class TestItemBatchSequence:
    def _batch(self):
        from repro.runtime.batched import ItemBatch

        source = [Item(i, float(i + 1)) for i in range(10)]
        positions = np.array([2, 4, 6, 8])
        weights = np.array([3.0, 5.0, 7.0, 9.0])
        idents = np.array([2, 4, 6, 8])
        return ItemBatch(source, positions, weights, idents)

    def test_negative_indices(self):
        batch = self._batch()
        assert batch[-1] == Item(8, 9.0)
        assert batch[-4] == batch[0] == Item(2, 3.0)

    def test_out_of_range_raises(self):
        batch = self._batch()
        with pytest.raises(IndexError):
            batch[4]
        with pytest.raises(IndexError):
            batch[-5]

    def test_slicing_keeps_columns_aligned(self):
        batch = self._batch()
        view = batch[1:3]
        assert list(view) == [Item(4, 5.0), Item(6, 7.0)]
        assert view.weights.tolist() == [5.0, 7.0]
        assert view.idents.tolist() == [4, 6]
        assert list(batch[::-2]) == [Item(8, 9.0), Item(4, 5.0)]
        assert list(batch[2:]) == [Item(6, 7.0), Item(8, 9.0)]

    def test_sequence_mixin_methods(self):
        batch = self._batch()
        assert Item(6, 7.0) in batch
        assert batch.index(Item(4, 5.0)) == 1
        assert list(reversed(batch)) == list(batch)[::-1]


# ---------------------------------------------------------------------------
# 7. Numpy-free fallback (simulated)
# ---------------------------------------------------------------------------


class TestScalarFallback:
    def _patch_numpy_away(self, monkeypatch):
        import repro.core.site as site_mod
        import repro.query.driver as driver_mod
        import repro.runtime.batched as batched_mod
        import repro.runtime.columnar as columnar_mod
        import repro.stream.item as item_mod

        for mod in (site_mod, driver_mod, batched_mod, columnar_mod, item_mod):
            monkeypatch.setattr(mod, "_np", None)

    def _fingerprint(self, stream, engine, seed=2019):
        proto, counters = _swor_run(stream, engine, seed=seed)
        return _fingerprint(proto, counters)

    def test_columnar_scalar_fallback_bs1_matches_reference(self, monkeypatch):
        stream = round_robin(zipf_stream(5000, random.Random(1234), alpha=1.3), 8)
        reference = self._fingerprint(stream, None)
        self._patch_numpy_away(monkeypatch)
        fallback = self._fingerprint(stream, ColumnarEngine(batch_size=1))
        assert fallback == reference

    def test_columnar_fallback_matches_batched_fallback(self, monkeypatch):
        stream = round_robin(zipf_stream(5000, random.Random(77), alpha=1.3), 8)
        self._patch_numpy_away(monkeypatch)
        assert self._fingerprint(stream, "columnar") == self._fingerprint(
            stream, "batched"
        )


# ---------------------------------------------------------------------------
# 8. Multi-query driver columnar mode
# ---------------------------------------------------------------------------


class TestDriverColumnarMode:
    def test_fused_columnar_bit_identical(self):
        from repro.query import (
            MultiQueryDriver,
            QuantileQuery,
            QueryCatalog,
            SubsetSumQuery,
            query_seed,
        )

        items = zipf_stream(20_000, random.Random(0), alpha=1.2)
        stream = round_robin(items, 16)
        queries = [
            SubsetSumQuery("total", sample_size=32),
            SubsetSumQuery(
                "evens",
                predicate=lambda item: item.ident % 2 == 0,
                sample_size=32,
            ),
            QuantileQuery("q", qs=(0.5,), sample_size=32),
        ]

        def run(engine):
            driver = MultiQueryDriver(
                QueryCatalog(list(queries)), num_sites=16, seed=5, engine=engine
            )
            driver.run(stream)
            return {
                q.name: (
                    driver[q.name].protocol.sample_with_keys(),
                    driver[q.name].counters.snapshot(),
                )
                for q in queries
            }

        batched = run("batched")
        columnar = run("columnar")
        assert columnar == batched
        # ... and each matches its standalone columnar run.
        for name, (sample, snapshot) in columnar.items():
            proto = DistributedWeightedSWOR(
                SworConfig(num_sites=16, sample_size=32),
                seed=query_seed(5, name),
                engine="columnar",
            )
            counters = proto.run(stream)
            assert proto.sample_with_keys() == sample
            assert counters.snapshot() == snapshot

"""The coordinator's sample set ``S`` — top-``s`` keys with a threshold.

Algorithm 3 ("Add-to-Sample") maintains the invariant that ``S`` holds
the items with the ``s`` largest keys seen by the sampler, and exposes
``u``, the smallest key in a full ``S`` — the quantity whose epoch
bracket drives all site-side filtering.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

from ..common.errors import ConfigurationError
from ..stream.item import Item

__all__ = ["TopKeySample"]


class TopKeySample:
    """A bounded min-heap of ``(key, item)`` keeping the top ``s`` keys.

    ``threshold`` is the paper's ``u``: the ``s``-th largest key once
    the set is full, and ``0`` before that (matching Algorithm 2's
    initialization ``u <- 0``, which makes every key pass).
    """

    def __init__(self, sample_size: int) -> None:
        if sample_size <= 0:
            raise ConfigurationError(
                f"sample size must be positive, got {sample_size}"
            )
        self.sample_size = sample_size
        self._heap: List[Tuple[float, int, Item]] = []
        self._counter = 0  # tiebreak so equal keys stay heap-comparable

    def add(self, item: Item, key: float) -> Optional[Item]:
        """Insert ``(item, key)``; evict and return the displaced item.

        Returns ``None`` when nothing was evicted (set was underfull) —
        note an insertion whose key is *below* the threshold still
        enters and immediately evicts itself is impossible here because
        callers filter on ``key > threshold`` first; we defensively
        discard such keys and report the incoming item as displaced.
        """
        entry = (key, self._counter, item)
        self._counter += 1
        if len(self._heap) < self.sample_size:
            heapq.heappush(self._heap, entry)
            return None
        if key <= self._heap[0][0]:
            return item
        evicted = heapq.heapreplace(self._heap, entry)
        return evicted[2]

    @property
    def threshold(self) -> float:
        """``u`` — the ``s``-th largest key, or 0 while underfull."""
        if len(self._heap) < self.sample_size:
            return 0.0
        return self._heap[0][0]

    @property
    def full(self) -> bool:
        return len(self._heap) >= self.sample_size

    def entries(self) -> List[Tuple[Item, float]]:
        """``(item, key)`` pairs in decreasing key order."""
        return [(e[2], e[0]) for e in sorted(self._heap, key=lambda e: -e[0])]

    def items(self) -> List[Item]:
        """Sampled items in decreasing key order."""
        return [e[2] for e in sorted(self._heap, key=lambda e: -e[0])]

    def __len__(self) -> int:
        return len(self._heap)

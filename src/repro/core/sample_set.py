"""The coordinator's sample set ``S`` — top-``s`` keys with a threshold.

Algorithm 3 ("Add-to-Sample") maintains the invariant that ``S`` holds
the items with the ``s`` largest keys seen by the sampler, and exposes
``u``, the smallest key in a full ``S`` — the quantity whose epoch
bracket drives all site-side filtering.

Two mutation paths share the invariant:

* :meth:`TopKeySample.add` — one ``heapreplace`` per arrival (the
  paper's per-round model);
* :meth:`TopKeySample.merge_columns` — the columnar runtime's bulk
  fold: one ``np.partition`` selects the surviving top-``s`` over the
  old set plus a whole batch of candidates, and the heap is rebuilt
  once.  ``Item`` objects are created only for candidates that
  actually survive.

The sorted query view (:meth:`entries` / :meth:`items`) is computed
once per mutation epoch and cached — checkpoint-heavy runs used to pay
``O(s log s)`` per snapshot, every snapshot.
"""

from __future__ import annotations

import heapq
from typing import Any, List, Optional, Tuple

try:  # optional: bulk top-s merge for the columnar runtime
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-free installs
    _np = None  # type: ignore[assignment]

from ..common.errors import ConfigurationError
from ..kernels import active as _active_kernels
from ..stream.item import Item

__all__ = ["TopKeySample"]

#: What :meth:`TopKeySample.snapshot_state` returns: heap entries,
#: entry counter, tie-fallback count.
SampleSnapshot = Tuple[List[Tuple[float, int, Item]], int, int]


class TopKeySample:
    """A bounded min-heap of ``(key, item)`` keeping the top ``s`` keys.

    ``threshold`` is the paper's ``u``: the ``s``-th largest key once
    the set is full, and ``0`` before that (matching Algorithm 2's
    initialization ``u <- 0``, which makes every key pass).
    """

    def __init__(self, sample_size: int) -> None:
        if sample_size <= 0:
            raise ConfigurationError(
                f"sample size must be positive, got {sample_size}"
            )
        self.sample_size = sample_size
        self._heap: List[Tuple[float, int, Item]] = []
        self._counter = 0  # tiebreak so equal keys stay heap-comparable
        self._sorted: Optional[List[Tuple[Item, float]]] = None
        #: How often :meth:`merge_columns` hit an ambiguous selection
        #: tie and replayed sequentially (observability for the
        #: order-invariance guards of the pipelined sharded engine).
        self.tie_fallbacks = 0

    def add(self, item: Item, key: float) -> Optional[Item]:
        """Insert ``(item, key)``; evict and return the displaced item.

        Returns ``None`` when nothing was evicted (set was underfull) —
        note an insertion whose key is *below* the threshold still
        enters and immediately evicts itself is impossible here because
        callers filter on ``key > threshold`` first; we defensively
        discard such keys and report the incoming item as displaced.
        """
        entry = (key, self._counter, item)
        self._counter += 1
        if len(self._heap) < self.sample_size:
            heapq.heappush(self._heap, entry)
            self._sorted = None
            return None
        if key <= self._heap[0][0]:
            return item
        evicted = heapq.heapreplace(self._heap, entry)
        self._sorted = None
        return evicted[2]

    # -- bulk path (columnar runtime) ----------------------------------

    def heap_keys(self) -> _np.ndarray:
        """The current keys as a float64 column (heap order — every
        consumer treats it as a multiset).  The kernel-tier fold's view
        of ``S``; ``len(heap) <= s`` keeps this cheap per pack."""
        return _np.fromiter(
            (e[0] for e in self._heap), dtype=_np.float64, count=len(self._heap)
        )

    def merged_threshold(self, keys: Any) -> float:
        """The threshold ``u`` that :meth:`merge_columns` with these
        candidate ``keys`` would leave behind — computed *without*
        mutating, so callers (the coordinator's pack path) can decide
        whether the merge crosses an epoch boundary before committing.
        """
        return self.merge_preview(keys)[0]

    def merge_preview(self, keys: Any) -> Tuple[float, bool]:
        """``(threshold, ambiguous)``: what :meth:`merge_columns` with
        these candidate ``keys`` would leave behind, and whether it
        would land on the ambiguous-tie sequential fallback (whose
        result depends on candidate *order*).  Pure — the pipelined
        sharded engine uses the ``ambiguous`` bit to decline an
        out-of-order fold that would not be order-invariant.
        """
        n = len(keys)
        total = len(self._heap) + n
        if total < self.sample_size:
            return 0.0, False
        cut, at_cut = _active_kernels().merge_cut(
            self.heap_keys(),
            _np.asarray(keys, dtype=_np.float64),
            self.sample_size,
        )
        # The n <= free insertion path never selects a boundary, so a
        # tie is only ambiguous when merge_columns would partition.
        ambiguous = n > self.sample_size - len(self._heap) and at_cut != 1
        return cut, ambiguous

    def merge_columns(self, idents: Any, weights: Any, keys: Any) -> int:
        """Fold a batch of candidate columns into ``S`` in one rebuild.

        Candidates must already be strictly above the current
        :attr:`threshold` (callers mask first).  The final set equals
        what per-candidate :meth:`add` calls in arrival order would
        produce — sequential insertion into a top-``s`` structure keeps
        exactly the ``s`` largest keys of the union, which is what the
        single ``np.partition`` selects here — while touching the heap
        once and building ``Item`` objects only for survivors.  On key
        ties at the selection boundary (measure-zero for continuous
        keys) it falls back to exact sequential insertion.  Returns the
        number of candidates that ended up in the set.
        """
        n = len(keys)
        if n == 0:
            return 0
        heap = self._heap
        free = self.sample_size - len(heap)
        if n <= free:
            for i in range(n):
                heapq.heappush(
                    heap,
                    (
                        float(keys[i]),
                        self._counter,
                        Item(int(idents[i]), float(weights[i])),
                    ),
                )
                self._counter += 1
            self._sorted = None
            return n
        cand = _np.asarray(keys, dtype=_np.float64)
        cut, at_cut = _active_kernels().merge_cut(
            self.heap_keys(), cand, self.sample_size
        )
        if at_cut != 1:
            # Ambiguous boundary — replay the exact per-item semantics.
            self.tie_fallbacks += 1
            kept = 0
            for i in range(n):
                key = float(cand[i])
                if key > self.threshold:
                    self.add(Item(int(idents[i]), float(weights[i])), key)
                    kept += 1
            return kept
        new_heap = [e for e in heap if e[0] >= cut]
        kept_idx = _np.flatnonzero(cand >= cut).tolist()
        for i in kept_idx:
            new_heap.append(
                (
                    float(cand[i]),
                    self._counter,
                    Item(int(idents[i]), float(weights[i])),
                )
            )
            self._counter += 1
        heapq.heapify(new_heap)
        self._heap = new_heap
        self._sorted = None
        return len(kept_idx)

    def fold_selected(
        self,
        idents: Any,
        weights: Any,
        keys: Any,
        surv_idx: Any,
        kept_idx: Any,
        cut: float,
        at_cut: int,
    ) -> int:
        """Commit a fold whose selection the fused kernel
        (``swor_fold_regulars``) already computed — the same final heap
        :meth:`merge_columns` would build from the survivor columns,
        without re-partitioning.

        ``idents``/``weights``/``keys`` are the *full* pack columns;
        ``surv_idx`` indexes the candidates above the entry threshold,
        ``kept_idx`` the subset at or above the merged ``cut`` (equal to
        ``surv_idx`` on the underfull push path), and ``at_cut != 1``
        routes to the exact sequential tie fallback — entry counters and
        ``Item`` construction order all match :meth:`merge_columns`.
        """
        n = len(surv_idx)
        if n == 0:
            return 0
        heap = self._heap
        free = self.sample_size - len(heap)
        if n <= free:
            for i in surv_idx.tolist():
                heapq.heappush(
                    heap,
                    (
                        float(keys[i]),
                        self._counter,
                        Item(int(idents[i]), float(weights[i])),
                    ),
                )
                self._counter += 1
            self._sorted = None
            return n
        if at_cut != 1:
            # Ambiguous boundary — replay the exact per-item semantics.
            self.tie_fallbacks += 1
            kept = 0
            for i in surv_idx.tolist():
                key = float(keys[i])
                if key > self.threshold:
                    self.add(Item(int(idents[i]), float(weights[i])), key)
                    kept += 1
            return kept
        new_heap = [e for e in heap if e[0] >= cut]
        for i in kept_idx.tolist():
            new_heap.append(
                (
                    float(keys[i]),
                    self._counter,
                    Item(int(idents[i]), float(weights[i])),
                )
            )
            self._counter += 1
        heapq.heapify(new_heap)
        self._heap = new_heap
        self._sorted = None
        return len(kept_idx)

    # -- snapshots (pipelined sharded engine) --------------------------

    def snapshot_state(self) -> SampleSnapshot:
        """Cheap rewind point: heap entries are immutable tuples, so a
        shallow list copy suffices."""
        return (list(self._heap), self._counter, self.tie_fallbacks)

    def restore_state(self, state: SampleSnapshot) -> None:
        heap, counter, tie_fallbacks = state
        self._heap = list(heap)
        self._counter = counter
        self.tie_fallbacks = tie_fallbacks
        self._sorted = None

    # -- queries -------------------------------------------------------

    @property
    def threshold(self) -> float:
        """``u`` — the ``s``-th largest key, or 0 while underfull."""
        if len(self._heap) < self.sample_size:
            return 0.0
        return self._heap[0][0]

    @property
    def full(self) -> bool:
        return len(self._heap) >= self.sample_size

    def _sorted_view(self) -> List[Tuple[Item, float]]:
        """The decreasing-key view, re-sorted only after a mutation."""
        if self._sorted is None:
            self._sorted = [
                (e[2], e[0]) for e in sorted(self._heap, key=lambda e: -e[0])
            ]
        return self._sorted

    def entries(self) -> List[Tuple[Item, float]]:
        """``(item, key)`` pairs in decreasing key order (cached per
        mutation epoch; the returned list is the caller's to mutate)."""
        return list(self._sorted_view())

    def items(self) -> List[Item]:
        """Sampled items in decreasing key order."""
        return [item for item, _ in self._sorted_view()]

    def __len__(self) -> int:
        return len(self._heap)

"""Naive distributed samplers — the straw men the paper improves on.

Two baselines frame the message-complexity experiments:

* :class:`SendEverything` — every site forwards every item; the
  coordinator samples centrally.  Messages = ``n``.  This is the
  "infeasible as volume scales" strawman of the introduction.
* :class:`PerSiteTopS` — every site runs a local Efraimidis–Spirakis
  top-``s`` sampler and forwards each local sample *change*; the
  coordinator keeps the global top ``s``.  No feedback, no epochs.
  Expected messages ``~ k·s·ln(W)`` — the multiplicative ``Õ(ks)``
  bound the paper's Section 1.2 explicitly sets out to beat with its
  additive ``Õ(k + s)``.

Both are *correct* weighted SWOR protocols (the top-``s`` global keys
always reach the coordinator), so the comparison isolates message cost.
"""

from __future__ import annotations

import random
from typing import Any, List, Optional, Tuple

from ..common.errors import ConfigurationError, ProtocolViolationError
from ..common.rng import RandomSource, exponential
from ..net.counters import MessageCounters
from ..net.messages import Message, RAW_ITEM, REGULAR
from ..runtime import CoordinatorAlgorithm, Network, SiteAlgorithm
from ..stream.item import DistributedStream, Item
from .sample_set import TopKeySample

__all__ = ["SendEverything", "PerSiteTopS"]


class _ForwardingSite(SiteAlgorithm):
    """Site that forwards every raw item."""

    def on_item(self, item: Item) -> List[Message]:
        return [Message(RAW_ITEM, (item.ident, item.weight))]

    def on_control(self, message: Message) -> None:
        raise ProtocolViolationError("send-everything sites expect no control")

    def state_words(self) -> int:
        return 0


class _CentralSamplingCoordinator(CoordinatorAlgorithm):
    """Coordinator that keys and samples every forwarded item."""

    def __init__(self, sample_size: int, rng: random.Random) -> None:
        self.sample_set = TopKeySample(sample_size)
        self._rng = rng

    def on_message(self, site_id: int, message: Message) -> List[Tuple[int, Message]]:
        if message.kind != RAW_ITEM:
            raise ProtocolViolationError(f"unexpected kind {message.kind!r}")
        ident, weight = message.payload
        key = weight / exponential(self._rng)
        if key > self.sample_set.threshold:
            self.sample_set.add(Item(ident, weight), key)
        return []

    def sample(self) -> List[Item]:
        return self.sample_set.items()


class SendEverything:
    """Baseline: centralize the stream, sample at the coordinator."""

    def __init__(
        self, num_sites: int, sample_size: int, seed: Optional[int] = None
    ) -> None:
        if num_sites <= 0 or sample_size <= 0:
            raise ConfigurationError("num_sites and sample_size must be positive")
        source = RandomSource(seed)
        self.sites = [_ForwardingSite() for _ in range(num_sites)]
        self.coordinator = _CentralSamplingCoordinator(
            sample_size, source.substream("coordinator")
        )
        self.network = Network(self.sites, self.coordinator)

    def run(self, stream: DistributedStream, **kwargs: Any) -> MessageCounters:
        return self.network.run(stream, **kwargs)

    def sample(self) -> List[Item]:
        """The current weighted SWOR (centrally drawn)."""
        return self.coordinator.sample()

    @property
    def counters(self) -> MessageCounters:
        return self.network.counters


class _LocalTopSSite(SiteAlgorithm):
    """Site with a local top-``s`` sampler; forwards every local change."""

    def __init__(self, sample_size: int, rng: random.Random) -> None:
        self._local = TopKeySample(sample_size)
        self._rng = rng

    def on_item(self, item: Item) -> List[Message]:
        key = item.weight / exponential(self._rng)
        if key <= self._local.threshold:
            return []
        self._local.add(item, key)
        return [Message(REGULAR, (item.ident, item.weight, key))]

    def on_control(self, message: Message) -> None:
        raise ProtocolViolationError("per-site-top-s sites expect no control")

    def state_words(self) -> int:
        return 3 * len(self._local)


class _GlobalTopSCoordinator(CoordinatorAlgorithm):
    """Keeps the global top ``s`` among forwarded (item, key) pairs."""

    def __init__(self, sample_size: int) -> None:
        self.sample_set = TopKeySample(sample_size)

    def on_message(self, site_id: int, message: Message) -> List[Tuple[int, Message]]:
        if message.kind != REGULAR:
            raise ProtocolViolationError(f"unexpected kind {message.kind!r}")
        ident, weight, key = message.payload
        if key > self.sample_set.threshold:
            self.sample_set.add(Item(ident, weight), key)
        return []

    def sample(self) -> List[Item]:
        return self.sample_set.items()


class PerSiteTopS:
    """Baseline: independent local samplers, no coordinator feedback.

    The ``O(ks log W)`` protocol sketched in Section 1.2 ("if each site
    independently ran such a sampler ... one would have a correct
    protocol with O(ks log(W)) expected communication").
    """

    def __init__(
        self, num_sites: int, sample_size: int, seed: Optional[int] = None
    ) -> None:
        if num_sites <= 0 or sample_size <= 0:
            raise ConfigurationError("num_sites and sample_size must be positive")
        source = RandomSource(seed)
        self.sites = [
            _LocalTopSSite(sample_size, source.substream(f"naive-site-{i}"))
            for i in range(num_sites)
        ]
        self.coordinator = _GlobalTopSCoordinator(sample_size)
        self.network = Network(self.sites, self.coordinator)

    def run(self, stream: DistributedStream, **kwargs: Any) -> MessageCounters:
        return self.network.run(stream, **kwargs)

    def sample(self) -> List[Item]:
        """The current weighted SWOR (global top-``s`` keys)."""
        return self.coordinator.sample()

    @property
    def counters(self) -> MessageCounters:
        return self.network.counters

"""Level sets — the paper's mechanism for defusing heavy hitters.

Definition 4: an item of weight ``w`` has *level* ``j >= 0`` with
``w in [r^j, r^{j+1})`` (level 0 also covers ``w in [0, r)``), where
``r = max(2, k/s)``.  The first ``4rs`` items of each level are
*withheld*: forwarded to the coordinator as "early" messages and parked
in the level set ``D_j`` instead of entering the sampler.  Once ``D_j``
holds ``4rs`` items it *saturates*: all parked items are released to the
sampler at once and the sites are told to stop sending early messages
for ``j``.

Lemma 1's payoff: any item in a saturated level shares its level with
``>= 4rs`` items of weight within a factor ``r``, so it is at most a
``1/(4s)`` fraction of the weight released so far — the precondition of
the key-concentration bound (Proposition 3).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Set, Tuple

try:  # optional: vectorized level computation for the batched fast path
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-free installs
    _np = None  # type: ignore[assignment]

from ..common.errors import ConfigurationError, ProtocolViolationError
from ..kernels import active as _active_kernels
from ..stream.item import Item

#: What :meth:`LevelSetManager.snapshot_state` returns: pending
#: buckets, saturated levels, and the two counters.
LevelSnapshot = Tuple[
    Dict[int, List[Tuple["Item", float]]], Set[int], int, int
]

__all__ = ["level_of", "levels_of_array", "LevelSetManager"]


def level_of(weight: float, r: float) -> int:
    """The level ``j`` with ``weight in [r^j, r^{j+1})`` (0 for w < r).

    Float-robust: corrects the ``log`` estimate against exact powers so
    boundary weights (exactly ``r^j``) land in the right bracket.
    """
    if weight <= 0.0 or not math.isfinite(weight):
        raise ConfigurationError(f"weight must be positive and finite: {weight}")
    if r < 2.0:
        raise ConfigurationError(f"level base r must be >= 2, got {r}")
    if weight < r:
        return 0
    j = int(math.log(weight) / math.log(r))
    while r ** (j + 1) <= weight:
        j += 1
    while j > 0 and r**j > weight:
        j -= 1
    return j


def levels_of_array(weights: _np.ndarray, r: float) -> _np.ndarray:
    """Vectorized :func:`level_of` over a numpy weight array.

    Applies the same float-edge corrections as the scalar version (the
    backends converge on the exact power-bracket comparisons, so the
    result is independent of how the initial ``log`` estimate rounded).
    Dispatches to the active kernel backend (:mod:`repro.kernels`);
    requires numpy.
    """
    if _np is None:  # pragma: no cover - guarded by callers
        raise ConfigurationError("levels_of_array requires numpy")
    if r < 2.0:
        raise ConfigurationError(f"level base r must be >= 2, got {r}")
    return _active_kernels().compute_levels(weights, r)


class LevelSetManager:
    """Coordinator-side store of the unsaturated level sets ``D_j``.

    Keys for early items are generated on arrival (Algorithm 2 lines
    10–11), so queries can rank withheld items without touching sampler
    state — the Theorem 3 query procedure.

    Parameters
    ----------
    r:
        Level base ``max(2, k/s)``.
    saturation_size:
        Items needed to saturate a level — the paper's ``4rs`` (kept as
        an explicit parameter so the ablation bench can shrink it and
        watch Lemma 1 break).
    """

    def __init__(self, r: float, saturation_size: int) -> None:
        if saturation_size <= 0:
            raise ConfigurationError(
                f"saturation size must be positive, got {saturation_size}"
            )
        self.r = r
        self.saturation_size = saturation_size
        self._pending: Dict[int, List[Tuple[Item, float]]] = {}
        self._saturated: Set[int] = set()
        self.early_items_received = 0
        self.levels_saturated = 0

    def is_saturated(self, level: int) -> bool:
        return level in self._saturated

    def add(
        self, item: Item, key: float, level: Optional[int] = None
    ) -> Optional[List[Tuple[Item, float]]]:
        """Park an early item (with its pre-generated key) in its level.

        Returns the full batch of ``(item, key)`` entries when this
        arrival saturates the level — the caller must then feed them to
        the sampler and broadcast ``LEVEL_SATURATED`` — else ``None``.
        ``level`` may be passed when the caller already computed it.
        """
        if level is None:
            level = level_of(item.weight, self.r)
        if level in self._saturated:
            raise ProtocolViolationError(
                f"early item for already-saturated level {level} "
                f"(item {item.ident}); site state out of sync"
            )
        bucket = self._pending.setdefault(level, [])
        bucket.append((item, key))
        self.early_items_received += 1
        if len(bucket) >= self.saturation_size:
            self._saturated.add(level)
            self.levels_saturated += 1
            del self._pending[level]
            return bucket
        return None

    def can_absorb(self, level: int, count: int) -> bool:
        """Whether ``count`` more earlies can be parked in ``level``
        without touching a saturated level or triggering saturation —
        the precondition of :meth:`add_many` (saturation events must
        take the sequential path so the release point stays exact)."""
        if level in self._saturated:
            return False
        return len(self._pending.get(level, ())) + count < self.saturation_size

    def add_many(self, level: int, entries: List[Tuple[Item, float]]) -> None:
        """Park a batch of pre-keyed entries in one unsaturated level.

        Bulk counterpart of :meth:`add` for the coordinator's columnar
        pack path; entries must be in arrival order and the caller must
        have checked :meth:`can_absorb` first.
        """
        if not self.can_absorb(level, len(entries)):
            raise ProtocolViolationError(
                f"bulk park of {len(entries)} items would saturate (or hit "
                f"an already-saturated) level {level}; use sequential add"
            )
        self._pending.setdefault(level, []).extend(entries)
        self.early_items_received += len(entries)

    def snapshot_state(self) -> "LevelSnapshot":
        """Cheap rewind point: bucket entries are immutable tuples, so
        shallow per-bucket copies suffice.  Bucket *insertion order* is
        part of the state (``pending_entries`` concatenates in dict
        order), so the dict is copied as-is."""
        return (
            {level: list(bucket) for level, bucket in self._pending.items()},
            set(self._saturated),
            self.early_items_received,
            self.levels_saturated,
        )

    def restore_state(self, state: "LevelSnapshot") -> None:
        pending, saturated, received, saturated_count = state
        self._pending = {level: list(bucket) for level, bucket in pending.items()}
        self._saturated = set(saturated)
        self.early_items_received = received
        self.levels_saturated = saturated_count

    def pending_entries(self) -> List[Tuple[Item, float]]:
        """All withheld ``(item, key)`` pairs across unsaturated levels.

        Queries rank these alongside the sampler's set ``S``
        (Algorithm 2 line 22: ``S ∪ (∪_j D_j)``).
        """
        out: List[Tuple[Item, float]] = []
        for bucket in self._pending.values():
            out.extend(bucket)
        return out

    def pending_count(self) -> int:
        return sum(len(b) for b in self._pending.values())

    def pending_weight(self) -> float:
        """Total withheld weight (used by invariants in tests)."""
        return sum(
            item.weight for bucket in self._pending.values() for item, _ in bucket
        )

    @property
    def saturated_levels(self) -> Set[int]:
        return set(self._saturated)

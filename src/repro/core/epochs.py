"""Epoch tracking — the coordinator's threshold-broadcast policy.

The algorithm's epochs bracket the sample threshold ``u`` (the ``s``-th
largest key) by powers of ``r = max(2, k/s)``: epoch ``j`` holds while
``u in [r^j, r^{j+1})``.  On an epoch change the coordinator broadcasts
the bracket floor ``r^j`` to every site (``k`` messages), and sites then
drop keys below it locally.  Because ``u`` only grows, epochs advance
monotonically; Proposition 5 bounds their expected number by
``~3 log(W/s)/log(r)``.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

from ..common.errors import ConfigurationError

__all__ = ["EpochTracker"]


class EpochTracker:
    """Maps the evolving threshold ``u`` to epoch broadcasts."""

    def __init__(self, r: float) -> None:
        if r < 2.0:
            raise ConfigurationError(f"epoch base r must be >= 2, got {r}")
        self.r = r
        self._epoch: Optional[int] = None  # None = epoch 0, u < r^0
        self.broadcasts = 0

    @staticmethod
    def _epoch_of(u: float, r: float) -> Optional[int]:
        """Index ``j`` with ``u in [r^j, r^{j+1})``; None for ``u < 1``."""
        if u < 1.0:
            return None
        j = int(math.log(u) / math.log(r))
        while r ** (j + 1) <= u:
            j += 1
        while j > 0 and r**j > u:
            j -= 1
        return j

    @property
    def epoch(self) -> Optional[int]:
        """Current epoch index (None before ``u`` first reaches 1)."""
        return self._epoch

    def would_announce(self, u: float) -> bool:
        """Whether :meth:`observe_threshold(u)` would broadcast —
        *pure*, so bulk paths can test an epoch crossing before
        committing a merge."""
        new_epoch = self._epoch_of(u, self.r)
        return new_epoch is not None and new_epoch != self._epoch

    def snapshot_state(self) -> Tuple[Optional[int], int]:
        """Rewind point for the pipelined sharded engine."""
        return (self._epoch, self.broadcasts)

    def restore_state(self, state: Tuple[Optional[int], int]) -> None:
        self._epoch, self.broadcasts = state

    def observe_threshold(self, u: float) -> Optional[float]:
        """Update with the new threshold; return ``r^j`` if the epoch
        changed (the value to broadcast), else ``None``."""
        new_epoch = self._epoch_of(u, self.r)
        if new_epoch is None or new_epoch == self._epoch:
            return None
        self._epoch = new_epoch
        self.broadcasts += 1
        return self.r**new_epoch

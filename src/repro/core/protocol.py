"""Facade for the full distributed weighted-SWOR protocol (Theorem 3).

Wires ``k`` :class:`~repro.core.site.SworSite` instances and a
:class:`~repro.core.coordinator.SworCoordinator` into a
:class:`~repro.runtime.Network`, giving a one-object API:

>>> from repro import DistributedWeightedSWOR, SworConfig
>>> from repro.stream import zipf_stream, round_robin
>>> import random
>>> proto = DistributedWeightedSWOR(SworConfig(num_sites=8, sample_size=4), seed=7)
>>> stream = round_robin(zipf_stream(1000, random.Random(0)), 8)
>>> counters = proto.run(stream)
>>> len(proto.sample())
4

For turning the live sample into *answers* — subset-sum / mean /
frequency / quantile estimates with confidence intervals, or many
concurrent queries over one shared stream pass — see
:mod:`repro.query` (:func:`repro.query.subset_sum`,
:class:`repro.query.MultiQueryDriver`).
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple, Union

from ..common.rng import RandomSource
from ..net.counters import MessageCounters
from ..runtime import Engine, Network, get_engine
from ..stream.item import DistributedStream, Item
from .config import SworConfig
from .coordinator import SworCoordinator
from .site import SworSite

__all__ = ["DistributedWeightedSWOR"]


class DistributedWeightedSWOR:
    """Continuously maintains a weighted SWOR of size ``s`` at the
    coordinator of a ``k``-site distributed stream.

    Parameters
    ----------
    config:
        Protocol parameters (``k``, ``s``, level-set knobs).
    seed:
        Root seed; sites and coordinator get independent sub-streams.
    engine:
        Execution engine — an :class:`~repro.runtime.Engine` instance,
        a registry name (``"reference"`` / ``"batched"``), or ``None``
        for the synchronous reference engine.
    batch_size:
        Steady-state batch size when ``engine`` names the batched
        engine.
    """

    def __init__(
        self,
        config: SworConfig,
        seed: Optional[int] = None,
        engine: Union[str, Engine, None] = None,
        batch_size: Optional[int] = None,
    ) -> None:
        self.config = config
        self.engine = get_engine(engine, batch_size=batch_size)
        source = RandomSource(seed)
        self.sites = [
            SworSite(i, config, source.substream(f"site-{i}"))
            for i in range(config.num_sites)
        ]
        self.coordinator = SworCoordinator(config, source.substream("coordinator"))
        self.network = Network(self.sites, self.coordinator)

    # -- stream processing ---------------------------------------------

    def process(self, site_id: int, item: Item) -> None:
        """Feed one arrival at one site (incremental API)."""
        self.network.step(site_id, item)

    def run(self, stream: DistributedStream, **kwargs: Any) -> MessageCounters:
        """Replay a whole distributed stream; returns message counters.

        Keyword arguments are forwarded to
        :meth:`repro.runtime.network.Network.run` (checkpoints etc.);
        the facade's configured engine is used unless overridden.
        """
        kwargs.setdefault("engine", self.engine)
        return self.network.run(stream, **kwargs)

    # -- queries ----------------------------------------------------------

    def sample(self) -> List[Item]:
        """The current weighted SWOR (valid at every time step)."""
        return self.coordinator.sample()

    def sample_with_keys(self) -> List[Tuple[Item, float]]:
        """Current sample as ``(item, key)`` pairs, decreasing keys.

        This is the estimator-ready view: feed it (with
        ``config.sample_size``) to the Horvitz–Thompson estimators in
        :mod:`repro.query.estimators` for unbiased subset-sum /
        count / quantile answers with confidence intervals.
        """
        return self.coordinator.sample_with_keys()

    @property
    def counters(self) -> MessageCounters:
        """Message counters accumulated so far."""
        return self.network.counters

    @property
    def threshold(self) -> float:
        """The coordinator's current threshold ``u``."""
        return self.coordinator.threshold

    def resource_report(self) -> dict:
        """Space/bit usage snapshot for the resource experiment (E12)."""
        site_words = self.network.site_state_words()
        exps = sum(site.exponentials_generated for site in self.sites)
        bits = sum(site.bits_generated for site in self.sites)
        return {
            "site_state_words_max": max(site_words),
            "coordinator_state_words": self.coordinator.state_words(),
            "exponentials_generated": exps,
            "bits_generated": bits,
            "mean_bits_per_exponential": (bits / exps) if exps else 0.0,
        }

"""Site-side algorithm for distributed weighted SWOR (paper Algorithm 1).

Per arrival the site does O(1) work:

1. compute the item's level ``j``;
2. if ``D_j`` is (as far as the site knows) unsaturated, forward the raw
   item as an *early* message — no key is generated at the site;
3. otherwise generate the precision-sampling key ``v = w/t`` and send a
   *regular* message iff ``v`` beats the last epoch threshold the
   coordinator announced.

Control traffic updates the site's two pieces of state: the saturated-
level bitmask and the epoch threshold ``u_i`` — together O(1) machine
words, the paper's optimal site space (Proposition 6).

Snapshot contract: ``snapshot_state()``/``restore_state()`` must cover
every attribute protocol methods mutate — the sharded engine's
rollback replays from these snapshots and any uncovered attribute
breaks bit-parity only on the rare rollback paths.  reprolint rule
R003 checks this statically; derived caches that rebuild themselves
are exempted explicitly via ``_SNAPSHOT_EXCLUDE``.
"""

from __future__ import annotations

import math
import random
from bisect import bisect_left
from typing import Any, List, Optional, Sequence, Tuple, Union

try:  # optional: the vectorized bulk path of the batched engine
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-free installs
    _np = None  # type: ignore[assignment]

from ..common.errors import ProtocolViolationError
from ..common.rng import BatchRandom, LazyExponential, exponential
from ..kernels import active as _active_kernels
from ..net.messages import (
    EARLY,
    EPOCH_UPDATE,
    LEVEL_SATURATED,
    Message,
    MessagePack,
    REGULAR,
)
from ..runtime import SiteAlgorithm
from ..stream.item import Item
from .config import SworConfig
from .levels import level_of, levels_of_array

__all__ = ["SworSite"]


class _WindowPrep:
    """Per-window shared context built by :meth:`SworSite.prepare_window`.

    ``levels`` spans the whole (site-sorted) window and is exact for
    every arrival that can possibly be early under ``mask`` (it may be
    a zero-filled placeholder for arrivals of provably saturated
    levels, whose level index no consumer reads); ``saturated`` is the
    per-arrival saturation lookup (``None`` when ``all_saturated``), and
    ``all_saturated`` short-circuits the common steady-state window
    where nothing is early.
    """

    __slots__ = ("levels", "mask", "saturated", "all_saturated", "early_positions")

    def __init__(
        self,
        levels: Any,
        mask: int,
        saturated: Any,
        all_saturated: bool,
        early_positions: Optional[List[int]] = None,
    ) -> None:
        self.levels = levels
        self.mask = mask
        self.saturated = saturated
        self.all_saturated = all_saturated
        #: Sorted window positions of the early arrivals (when known):
        #: lets each site bisect its [start, end) slice instead of
        #: reducing a boolean array to discover "no earlies here".
        self.early_positions = early_positions


class SworSite(SiteAlgorithm):
    """One site of the weighted-SWOR protocol.

    Parameters
    ----------
    site_id:
        This site's index in ``0..k-1``.
    config:
        Shared protocol parameters.
    rng:
        Site-local randomness (independent across sites).
    """

    #: Derived cache, keyed by ``_saturated_mask`` and rebuilt on any
    #: mismatch — safe to omit from snapshot/restore (reprolint R003).
    _SNAPSHOT_EXCLUDE = ("_sat_table", "_sat_table_mask")

    def __init__(self, site_id: int, config: SworConfig, rng: random.Random) -> None:
        self.site_id = site_id
        self.config = config
        self._rng = rng
        self._r = config.r
        # Bitmask of saturated levels (level j -> bit j): O(1) words for
        # any realistic W since levels top out at log_r(W).
        self._saturated_mask = 0
        self._threshold = 0.0  # u_i, last announced epoch floor r^j
        self._batch_rng: Optional[BatchRandom] = None
        # Saturation lookup table cache for the columnar path (rebuilt
        # only when the mask changes or a deeper level appears).
        self._sat_table = None
        self._sat_table_mask = -1
        self.items_seen = 0
        self.exponentials_generated = 0
        self.bits_generated = 0

    # -- SiteAlgorithm interface ------------------------------------

    def on_item(self, item: Item) -> List[Message]:
        """Algorithm 1 main loop for one arrival."""
        self.items_seen += 1
        if self.config.level_sets_enabled:
            level = level_of(item.weight, self._r)
            if not (self._saturated_mask >> level) & 1:
                return [Message(EARLY, (item.ident, item.weight))]
        if self.config.count_bits:
            return self._regular_lazy(item)
        return self._regular_fast(item)

    def on_items(self, items: Sequence[Item]) -> List[Message]:
        """Vectorized Algorithm 1 over a batch of arrivals.

        One numpy pass replaces the per-item interpreter dispatch: the
        whole batch's levels are computed at once, the saturation
        bitmask is applied as a table lookup, and all regular keys come
        from a single batch exponential draw filtered against the epoch
        threshold.  Item objects are touched only for arrivals that
        actually produce a message.

        Falls back to the scalar path for single-item batches (keeping
        batch size 1 bit-identical to the reference engine), when numpy
        is unavailable, and in ``count_bits`` mode (bit-by-bit
        generation is inherently sequential).
        """
        n = len(items)
        if n <= 1 or _np is None or self.config.count_bits:
            return SiteAlgorithm.on_items(self, items)
        weights = getattr(items, "weights", None)
        if weights is None:
            weights = _np.fromiter(
                (item.weight for item in items), dtype=_np.float64, count=n
            )
        self.items_seen += n
        out: List[Message] = []
        regular_idx: Optional[Any] = None
        if self.config.level_sets_enabled:
            levels = levels_of_array(weights, self._r)
            mask = self._saturated_mask
            if mask:
                early = ~self._saturation_table(int(levels.max()))[levels]
            else:
                early = _np.ones(n, dtype=_np.bool_)
            for i in _np.flatnonzero(early):
                item = items[int(i)]
                out.append(Message(EARLY, (item.ident, item.weight)))
            regular_idx = _np.flatnonzero(~early)
            if len(regular_idx) == 0:
                return out
            weights = weights[regular_idx]
        if self._batch_rng is None:
            self._batch_rng = BatchRandom(self._rng)
        draws = self._batch_rng.exponentials(len(weights))
        self.exponentials_generated += len(weights)
        keys = weights / draws
        for j in _np.flatnonzero(keys > self._threshold):
            j = int(j)
            i = j if regular_idx is None else int(regular_idx[j])
            item = items[i]
            out.append(Message(REGULAR, (item.ident, item.weight, float(keys[j]))))
        return out

    def prepare_window(self, weights: _np.ndarray) -> "Optional[_WindowPrep]":
        """Shared per-window precomputation for the columnar engine.

        Levels and the saturation lookup are pure functions of the
        weights, the shared config, and the saturation mask — and every
        site's mask is broadcast-synchronized, so one computation on
        the window's site-sorted weight column serves every site (each
        :meth:`on_columns` call still *verifies* its own mask against
        the context and recomputes locally in the rare mid-window
        divergence between a ``LEVEL_SATURATED`` broadcast and the
        sites processed before it).  Returns ``None`` when there is
        nothing to share (level sets disabled, or numpy missing).
        """
        if not self.config.level_sets_enabled or _np is None:
            return None
        mask = self._saturated_mask
        if mask == 0:
            # Warm-up: everything is early, so every level is consumed.
            return _WindowPrep(levels_of_array(weights, self._r), 0, None, False)
        # Saturation typically fills from the bottom first: let J be the
        # lowest unsaturated level.  For J >= 1, any weight below r^J
        # lies in a level < J — all saturated (level_of maps every
        # w < r, sub-1 weights included, to level 0) — so only the
        # (rare) heavy tail w >= r^J needs exact level computation.  The
        # threshold is shaded down by 1e-9 so a 1-ulp power discrepancy
        # can only over-include (over-included items just get exact
        # levels).  J == 0 (level 0 open under a nonzero mask) proves
        # nothing about any weight, so everything gets exact levels.
        lowest_open = 0
        while (mask >> lowest_open) & 1:
            lowest_open += 1
        heavy_floor = (
            0.0
            if lowest_open == 0
            else (self._r**lowest_open) * (1.0 - 1e-9)
        )
        levels, saturated, early_positions = _active_kernels().window_split(
            weights, self._r, heavy_floor, self._mask_table()
        )
        if len(early_positions) == 0:
            return _WindowPrep(None, mask, None, True)
        return _WindowPrep(
            levels, mask, saturated, False, early_positions.tolist()
        )

    def _saturation_table(self, max_level: int) -> _np.ndarray:
        """Cached bool table ``table[j] = level j saturated``.

        Shared by every bulk path (``on_items``, ``on_columns``,
        ``prepare_window``, the fused multi-query pass) and rebuilt
        only when the mask changes — a ``LEVEL_SATURATED`` broadcast, a
        handful of times per run — or a deeper level appears.
        """
        table = self._sat_table
        if (
            table is None
            or self._sat_table_mask != self._saturated_mask
            or len(table) <= max_level
        ):
            mask = self._saturated_mask
            size = max(max_level + 1, 64)
            table = _np.fromiter(
                ((mask >> j) & 1 for j in range(size)),
                dtype=_np.bool_,
                count=size,
            )
            self._sat_table = table
            self._sat_table_mask = mask
        return table

    def _mask_table(self) -> _np.ndarray:
        """The saturation table sized to cover every set mask bit —
        the form the ``window_split`` kernel wants (levels beyond the
        table are unsaturated by construction, since the table spans
        the mask's bit length)."""
        return self._saturation_table(
            max(63, self._saturated_mask.bit_length() - 1)
        )

    def on_columns(
        self,
        idents: _np.ndarray,
        weights: _np.ndarray,
        prep: Optional[Tuple["_WindowPrep", int, int]] = None,
    ) -> Union[MessagePack, List[Message], tuple]:
        """Fully columnar Algorithm 1 over a batch of arrivals.

        The zero-object counterpart of :meth:`on_items`: identical
        decisions, identical RNG consumption (same batch exponentials
        from the same :class:`~repro.common.rng.BatchRandom`, in the
        same order), but the result is a single
        :class:`~repro.net.messages.MessagePack` of parallel arrays —
        no ``Item`` and no per-message ``Message`` objects (an empty
        tuple when the batch sends nothing).  Falls back to the scalar
        path (returning a plain message list) in exactly the cases
        ``on_items`` does: single-item batches, numpy-free installs,
        and ``count_bits`` mode.
        """
        n = len(weights)
        if n <= 1 or _np is None or self.config.count_bits:
            items = [Item(int(e), float(w)) for e, w in zip(idents, weights)]
            if not items:
                return ()
            return SiteAlgorithm.on_items(self, items)
        self.items_seen += n
        early_idents: Optional[Any] = None
        early_weights: Optional[Any] = None
        early_levels: Optional[Any] = None
        regular_idents, regular_weights = idents, weights
        if self.config.level_sets_enabled:
            mask = self._saturated_mask
            if prep is not None and prep[0].mask == mask:
                wctx, start, end = prep
                levels: Any = None  # sliced lazily below
                saturated: Any = None
                if not mask:
                    # Warm-up: nothing saturated, the whole batch is
                    # early (and, like on_items, no exponentials drawn).
                    return MessagePack(idents, weights, wctx.levels[start:end])
                if not wctx.all_saturated:
                    # Bisect the window's early-position index: most
                    # sites discover "no earlies in my slice" without
                    # touching (or reducing) any array.
                    positions = wctx.early_positions
                    if bisect_left(positions, start) != bisect_left(
                        positions, end
                    ):
                        saturated = wctx.saturated[start:end]
            elif not mask:
                # Warm-up without a shared window context.
                return MessagePack(
                    idents, weights, levels_of_array(weights, self._r)
                )
            else:
                wctx = None
                # Fused kernel: exact levels + saturation lookup +
                # early positions in one pass (floor 0 = every weight).
                levels, saturated, early_positions = (
                    _active_kernels().window_split(
                        weights, self._r, 0.0, self._mask_table()
                    )
                )
                if len(early_positions) == 0:
                    saturated = None  # nothing early: skip the split
            if saturated is not None and not saturated.all():
                if levels is None:
                    levels = wctx.levels[start:end]
                early = ~saturated
                early_idents = idents[early]
                early_weights = weights[early]
                early_levels = levels[early]
                if early.all():
                    return MessagePack(early_idents, early_weights, early_levels)
                regular_idents = idents[saturated]
                regular_weights = weights[saturated]
        if self._batch_rng is None:
            self._batch_rng = BatchRandom(self._rng)
        m = len(regular_weights)
        draws = self._batch_rng.exponentials(m)
        self.exponentials_generated += m
        keys = _np.divide(regular_weights, draws, out=draws)
        send = keys > self._threshold
        num_send = _np.count_nonzero(send)
        if num_send == 0:
            if early_idents is None:
                return ()
            return MessagePack(early_idents, early_weights, early_levels)
        if num_send != m:
            regular_idents = regular_idents[send]
            regular_weights = regular_weights[send]
            keys = keys[send]
        return MessagePack(
            early_idents,
            early_weights,
            early_levels,
            regular_idents,
            regular_weights,
            keys,
        )

    def snapshot_state(self) -> tuple:
        """Fast window-boundary snapshot for the sharded engine.

        Captures exactly the state the site-pass hooks mutate: the two
        RNG streams (scalar + batch), the control view (mask,
        threshold), and the resource counters.  The ``_sat_table``
        cache is deliberately excluded — it is keyed by the mask and
        rebuilds itself on mismatch.
        """
        batch = self._batch_rng
        return (
            self._rng.getstate(),
            # Distinguish "no batch stream yet" (its creation draw must
            # be re-consumed on replay) from an existing stream's state.
            None if batch is None else (batch.snapshot(),),
            self._saturated_mask,
            self._threshold,
            self.items_seen,
            self.exponentials_generated,
            self.bits_generated,
        )

    def restore_state(self, state: tuple) -> None:
        rng_state, batch_state, mask, threshold, seen, exps, bits = state
        self._rng.setstate(rng_state)
        if batch_state is None:
            # The batch stream (if any) was created after the snapshot;
            # dropping it un-consumes its derivation draw (restored
            # into ``_rng`` above), so replay re-derives it identically.
            self._batch_rng = None
        else:
            assert self._batch_rng is not None  # stream predates the snapshot
            self._batch_rng.restore(batch_state[0])
        self._saturated_mask = mask
        self._threshold = threshold
        self.items_seen = seen
        self.exponentials_generated = exps
        self.bits_generated = bits

    def on_control(self, message: Message) -> None:
        """Handle ``LEVEL_SATURATED`` / ``EPOCH_UPDATE`` broadcasts."""
        if message.kind == LEVEL_SATURATED:
            (level,) = message.payload
            self._saturated_mask |= 1 << level
        elif message.kind == EPOCH_UPDATE:
            (threshold,) = message.payload
            if threshold < self._threshold:
                raise ProtocolViolationError(
                    "epoch threshold moved backwards: "
                    f"{self._threshold} -> {threshold}"
                )
            self._threshold = threshold
        else:
            raise ProtocolViolationError(
                f"site {self.site_id} got unexpected control {message.kind!r}"
            )

    def state_words(self) -> int:
        """Persistent state in machine words: bitmask + threshold + r."""
        mask_words = max(1, (self._saturated_mask.bit_length() + 63) // 64)
        return mask_words + 2

    # -- internals ----------------------------------------------------

    def _regular_fast(self, item: Item) -> List[Message]:
        """Generate the key with one full-precision exponential."""
        t = exponential(self._rng)
        self.exponentials_generated += 1
        v = item.weight / t
        if v > self._threshold:
            return [Message(REGULAR, (item.ident, item.weight, v))]
        return []

    def _regular_lazy(self, item: Item) -> List[Message]:
        """Proposition 7 mode: reveal only the bits the comparison needs.

        ``v > u``  iff  ``t < w/u``; with ``u == 0`` every key passes
        and must be materialized.
        """
        lazy = LazyExponential(self._rng)
        self.exponentials_generated += 1
        u = self._threshold
        if u <= 0.0:
            v = item.weight / lazy.value()
            self.bits_generated += lazy.bits_used
            return [Message(REGULAR, (item.ident, item.weight, v))]
        send = lazy.below(item.weight / u)
        if not send:
            self.bits_generated += lazy.bits_used
            return []
        v = item.weight / lazy.value()
        self.bits_generated += lazy.bits_used  # cumulative: includes below()
        if not math.isfinite(v):
            v = item.weight / 1e-300
        return [Message(REGULAR, (item.ident, item.weight, v))]

    @property
    def mean_bits_per_comparison(self) -> float:
        """Average bits revealed per generated exponential (E12 metric)."""
        if self.exponentials_generated == 0:
            return 0.0
        return self.bits_generated / self.exponentials_generated

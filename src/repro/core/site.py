"""Site-side algorithm for distributed weighted SWOR (paper Algorithm 1).

Per arrival the site does O(1) work:

1. compute the item's level ``j``;
2. if ``D_j`` is (as far as the site knows) unsaturated, forward the raw
   item as an *early* message — no key is generated at the site;
3. otherwise generate the precision-sampling key ``v = w/t`` and send a
   *regular* message iff ``v`` beats the last epoch threshold the
   coordinator announced.

Control traffic updates the site's two pieces of state: the saturated-
level bitmask and the epoch threshold ``u_i`` — together O(1) machine
words, the paper's optimal site space (Proposition 6).
"""

from __future__ import annotations

import math
import random
from typing import List, Optional, Sequence

try:  # optional: the vectorized bulk path of the batched engine
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-free installs
    _np = None  # type: ignore[assignment]

from ..common.errors import ProtocolViolationError
from ..common.rng import BatchRandom, LazyExponential, exponential
from ..net.messages import EARLY, EPOCH_UPDATE, LEVEL_SATURATED, Message, REGULAR
from ..runtime import SiteAlgorithm
from ..stream.item import Item
from .config import SworConfig
from .levels import level_of, levels_of_array

__all__ = ["SworSite"]


class SworSite(SiteAlgorithm):
    """One site of the weighted-SWOR protocol.

    Parameters
    ----------
    site_id:
        This site's index in ``0..k-1``.
    config:
        Shared protocol parameters.
    rng:
        Site-local randomness (independent across sites).
    """

    def __init__(self, site_id: int, config: SworConfig, rng: random.Random) -> None:
        self.site_id = site_id
        self.config = config
        self._rng = rng
        self._r = config.r
        # Bitmask of saturated levels (level j -> bit j): O(1) words for
        # any realistic W since levels top out at log_r(W).
        self._saturated_mask = 0
        self._threshold = 0.0  # u_i, last announced epoch floor r^j
        self._batch_rng: Optional[BatchRandom] = None
        self.items_seen = 0
        self.exponentials_generated = 0
        self.bits_generated = 0

    # -- SiteAlgorithm interface ------------------------------------

    def on_item(self, item: Item) -> List[Message]:
        """Algorithm 1 main loop for one arrival."""
        self.items_seen += 1
        if self.config.level_sets_enabled:
            level = level_of(item.weight, self._r)
            if not (self._saturated_mask >> level) & 1:
                return [Message(EARLY, (item.ident, item.weight))]
        if self.config.count_bits:
            return self._regular_lazy(item)
        return self._regular_fast(item)

    def on_items(self, items: Sequence[Item]) -> List[Message]:
        """Vectorized Algorithm 1 over a batch of arrivals.

        One numpy pass replaces the per-item interpreter dispatch: the
        whole batch's levels are computed at once, the saturation
        bitmask is applied as a table lookup, and all regular keys come
        from a single batch exponential draw filtered against the epoch
        threshold.  Item objects are touched only for arrivals that
        actually produce a message.

        Falls back to the scalar path for single-item batches (keeping
        batch size 1 bit-identical to the reference engine), when numpy
        is unavailable, and in ``count_bits`` mode (bit-by-bit
        generation is inherently sequential).
        """
        n = len(items)
        if n <= 1 or _np is None or self.config.count_bits:
            return SiteAlgorithm.on_items(self, items)
        weights = getattr(items, "weights", None)
        if weights is None:
            weights = _np.fromiter(
                (item.weight for item in items), dtype=_np.float64, count=n
            )
        self.items_seen += n
        out: List[Message] = []
        regular_idx = None
        if self.config.level_sets_enabled:
            levels = levels_of_array(weights, self._r)
            mask = self._saturated_mask
            if mask:
                table = _np.fromiter(
                    ((mask >> j) & 1 for j in range(int(levels.max()) + 1)),
                    dtype=_np.bool_,
                )
                early = ~table[levels]
            else:
                early = _np.ones(n, dtype=_np.bool_)
            for i in _np.flatnonzero(early):
                item = items[int(i)]
                out.append(Message(EARLY, (item.ident, item.weight)))
            regular_idx = _np.flatnonzero(~early)
            if len(regular_idx) == 0:
                return out
            weights = weights[regular_idx]
        if self._batch_rng is None:
            self._batch_rng = BatchRandom(self._rng)
        draws = self._batch_rng.exponentials(len(weights))
        self.exponentials_generated += len(weights)
        keys = weights / draws
        for j in _np.flatnonzero(keys > self._threshold):
            j = int(j)
            i = j if regular_idx is None else int(regular_idx[j])
            item = items[i]
            out.append(Message(REGULAR, (item.ident, item.weight, float(keys[j]))))
        return out

    def on_control(self, message: Message) -> None:
        """Handle ``LEVEL_SATURATED`` / ``EPOCH_UPDATE`` broadcasts."""
        if message.kind == LEVEL_SATURATED:
            (level,) = message.payload
            self._saturated_mask |= 1 << level
        elif message.kind == EPOCH_UPDATE:
            (threshold,) = message.payload
            if threshold < self._threshold:
                raise ProtocolViolationError(
                    "epoch threshold moved backwards: "
                    f"{self._threshold} -> {threshold}"
                )
            self._threshold = threshold
        else:
            raise ProtocolViolationError(
                f"site {self.site_id} got unexpected control {message.kind!r}"
            )

    def state_words(self) -> int:
        """Persistent state in machine words: bitmask + threshold + r."""
        mask_words = max(1, (self._saturated_mask.bit_length() + 63) // 64)
        return mask_words + 2

    # -- internals ----------------------------------------------------

    def _regular_fast(self, item: Item) -> List[Message]:
        """Generate the key with one full-precision exponential."""
        t = exponential(self._rng)
        self.exponentials_generated += 1
        v = item.weight / t
        if v > self._threshold:
            return [Message(REGULAR, (item.ident, item.weight, v))]
        return []

    def _regular_lazy(self, item: Item) -> List[Message]:
        """Proposition 7 mode: reveal only the bits the comparison needs.

        ``v > u``  iff  ``t < w/u``; with ``u == 0`` every key passes
        and must be materialized.
        """
        lazy = LazyExponential(self._rng)
        self.exponentials_generated += 1
        u = self._threshold
        if u <= 0.0:
            v = item.weight / lazy.value()
            self.bits_generated += lazy.bits_used
            return [Message(REGULAR, (item.ident, item.weight, v))]
        send = lazy.below(item.weight / u)
        if not send:
            self.bits_generated += lazy.bits_used
            return []
        v = item.weight / lazy.value()
        self.bits_generated += lazy.bits_used  # cumulative: includes below()
        if not math.isfinite(v):
            v = item.weight / 1e-300
        return [Message(REGULAR, (item.ident, item.weight, v))]

    @property
    def mean_bits_per_comparison(self) -> float:
        """Average bits revealed per generated exponential (E12 metric)."""
        if self.exponentials_generated == 0:
            return 0.0
        return self.bits_generated / self.exponentials_generated

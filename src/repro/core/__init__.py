"""The paper's core contribution: distributed weighted sampling protocols."""

from .config import SworConfig
from .coordinator import SworCoordinator
from .epochs import EpochTracker
from .levels import LevelSetManager, level_of
from .naive import PerSiteTopS, SendEverything
from .protocol import DistributedWeightedSWOR
from .sample_set import TopKeySample
from .site import SworSite
from .swr import DistributedWeightedSWR
from .unweighted import DistributedUnweightedSWOR

__all__ = [
    "SworConfig",
    "DistributedWeightedSWOR",
    "SworSite",
    "SworCoordinator",
    "TopKeySample",
    "LevelSetManager",
    "level_of",
    "EpochTracker",
    "DistributedWeightedSWR",
    "DistributedUnweightedSWOR",
    "SendEverything",
    "PerSiteTopS",
]

"""Shared configuration for the distributed weighted SWOR protocol."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..common.errors import ConfigurationError

__all__ = ["SworConfig"]


@dataclass(frozen=True)
class SworConfig:
    """Parameters of Algorithms 1–3.

    Attributes
    ----------
    num_sites:
        ``k``, the number of sites.
    sample_size:
        ``s``, the target sample size.
    level_set_factor:
        Saturation happens at ``level_set_factor * r * s`` items; the
        paper uses 4 (Lemma 1 needs the released fraction ``<= 1/(4s)``).
        Exposed for the ablation benchmark.
    level_sets_enabled:
        Ablation switch: ``False`` releases every item straight to the
        sampler (no withholding) — experiment E5 shows why that's bad.
    epoch_base_override:
        Use a custom epoch/level base instead of ``max(2, k/s)``
        (ablation of the ``r`` choice).
    count_bits:
        Generate site-side exponentials bit-by-bit (Proposition 7) and
        record bits used; slower, only for the resource experiment.
    """

    num_sites: int
    sample_size: int
    level_set_factor: float = 4.0
    level_sets_enabled: bool = True
    epoch_base_override: Optional[float] = None
    count_bits: bool = False

    def __post_init__(self) -> None:
        if self.num_sites <= 0:
            raise ConfigurationError(
                f"num_sites must be positive, got {self.num_sites}"
            )
        if self.sample_size <= 0:
            raise ConfigurationError(
                f"sample_size must be positive, got {self.sample_size}"
            )
        if self.level_set_factor <= 0:
            raise ConfigurationError(
                f"level_set_factor must be positive, got {self.level_set_factor}"
            )
        if self.epoch_base_override is not None and self.epoch_base_override < 2.0:
            raise ConfigurationError(
                f"epoch base must be >= 2, got {self.epoch_base_override}"
            )

    @property
    def r(self) -> float:
        """The paper's ``r = max(2, k/s)`` (unless overridden)."""
        if self.epoch_base_override is not None:
            return float(self.epoch_base_override)
        return max(2.0, self.num_sites / self.sample_size)

    @property
    def saturation_size(self) -> int:
        """Items needed to saturate one level set (``4rs`` by default)."""
        return max(1, int(round(self.level_set_factor * self.r * self.sample_size)))

"""Distributed weighted sampling *with* replacement (Corollary 1).

The paper reduces weighted SWR to unweighted SWR [14] by conceptually
duplicating an item of weight ``w`` into ``w`` unit items, then removes
the ``O(w)`` blow-up with two tricks it spells out in the Corollary 1
proof, both implemented here:

* **aggregate coin** — for one single-item sampler at threshold ``τ``,
  the probability that *any* of the ``w`` duplicates would be forwarded
  is ``α(w, τ) = 1 - (1-τ)^w``; the site flips one coin instead of ``w``;
* **binomial batching** — across the ``s`` independent samplers, the
  number forwarding is ``Binomial(s, α)``; the site draws it once and
  picks a uniform subset of samplers, which (as the paper notes) equals
  the law of ``s`` independent decisions.

Keys: each sampler tracks the *minimum* of per-duplicate uniform keys;
``min`` of ``w`` uniforms has tail ``(1-x)^w``, so the item with the
global minimum key is a single weighted sample — exactly Definition 2
per sampler, independent across samplers.  Thresholds are maintained as
powers of ``β = 2 + k/s`` bracketing the worst (largest) per-sampler
minimum, giving the ``log(W)/log(2+k/s)`` round structure of [14].
"""

from __future__ import annotations

import math
import random
from typing import Any, List, Optional, Sequence, Tuple, Union

try:  # optional: vectorized bulk paths for the batched/columnar engines
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-free installs
    _np = None  # type: ignore[assignment]

from ..common.errors import ConfigurationError, ProtocolViolationError
from ..common.rng import BatchRandom, RandomSource, binomial
from ..kernels import active as _active_kernels
from ..net.counters import MessageCounters
from ..net.messages import Message, MessagePack, ROUND_UPDATE, SWR_SAMPLE
from ..runtime import (
    BROADCAST,
    CoordinatorAlgorithm,
    Engine,
    Network,
    SiteAlgorithm,
    get_engine,
)
from ..stream.item import DistributedStream, Item

__all__ = ["DistributedWeightedSWR"]


class _SwrSite(SiteAlgorithm):
    """Site half of the SWR protocol."""

    def __init__(self, sample_size: int, rng: random.Random) -> None:
        self.sample_size = sample_size
        self._rng = rng
        self._threshold = 1.0  # uniform keys live in (0,1)
        self._batch_rng: Optional[BatchRandom] = None
        self.items_seen = 0

    def on_item(self, item: Item) -> List[Message]:
        self.items_seen += 1
        w = item.weight
        tau = self._threshold
        if tau >= 1.0:
            alpha = 1.0
        else:
            # alpha = 1 - (1-tau)^w, computed stably for tiny tau.
            alpha = -math.expm1(w * math.log1p(-tau))
        hits = binomial(self._rng, self.sample_size, alpha)
        if hits == 0:
            return []
        chosen = self._rng.sample(range(self.sample_size), hits)
        messages = []
        for sampler_id in chosen:
            key = self._conditional_min_key(w, tau, alpha)
            messages.append(
                Message(SWR_SAMPLE, (sampler_id, item.ident, w, key))
            )
        return messages

    def _draw_batch(self, weights: _np.ndarray) -> Tuple[Any, Optional[Any]]:
        """The bulk draw shared by :meth:`on_items` and
        :meth:`on_columns` — one source, so the two hooks are
        draw-for-draw identical by construction.

        Draw order (all from this site's :class:`BatchRandom`): one
        binomial per arrival (the Corollary 1 aggregate coin, over the
        ``s`` samplers at the batch-entry threshold), then one uniform
        per *forwarded* copy, transformed through the conditional
        min-of-``w``-uniforms law of :meth:`_conditional_min_key` with
        the same clamps.  Sampler subsets are drawn afterwards by the
        callers, per sending arrival in arrival order, from the site's
        scalar stream.  Returns ``(hits, keys)``.
        """
        tau = self._threshold
        if tau >= 1.0:
            alphas = _np.ones(len(weights))
        else:
            alphas = -_np.expm1(weights * math.log1p(-tau))
        if self._batch_rng is None:
            self._batch_rng = BatchRandom(self._rng)
        hits = self._batch_rng.binomials(self.sample_size, alphas)
        total = int(hits.sum())
        if total == 0:
            return hits, None
        us = self._batch_rng.uniforms(total)
        rep_w = _np.repeat(weights, hits)
        xs = -_np.expm1(_np.log1p(-us * _np.repeat(alphas, hits)) / rep_w)
        if tau < 1.0:
            _np.minimum(xs, tau * (1.0 - 1e-12), out=xs)
        return hits, _np.maximum(xs, 1e-300, out=xs)

    def on_items(self, items: Sequence[Item]) -> List[Message]:
        """Vectorized Corollary 1 over a batch of arrivals.

        One :meth:`_draw_batch` replaces the per-item scalar coins;
        ``Item`` objects are touched only for arrivals that actually
        forward to a sampler.  Falls back to the scalar path for
        single-item batches (batch size 1 stays bit-identical to the
        reference engine) and on numpy-free installs.
        """
        n = len(items)
        if n <= 1 or _np is None:
            return SiteAlgorithm.on_items(self, items)
        weights = getattr(items, "weights", None)
        if weights is None:
            weights = _np.fromiter(
                (item.weight for item in items), dtype=_np.float64, count=n
            )
        self.items_seen += n
        hits, keys = self._draw_batch(weights)
        if keys is None:
            return []
        out: List[Message] = []
        pos = 0
        for i in _np.flatnonzero(hits).tolist():
            item = items[i]
            for sampler_id in self._rng.sample(
                range(self.sample_size), int(hits[i])
            ):
                out.append(
                    Message(
                        SWR_SAMPLE,
                        (sampler_id, item.ident, item.weight, float(keys[pos])),
                    )
                )
                pos += 1
        return out

    def on_columns(
        self, idents: _np.ndarray, weights: _np.ndarray, prep: Any = None
    ) -> Union[MessagePack, List[Message], tuple]:
        """Zero-object counterpart of :meth:`on_items`: identical draws
        (same :meth:`_draw_batch`, same per-sender scalar sampler
        subsets, in the same order) packed into one
        :class:`~repro.net.messages.MessagePack` with
        ``regular_kind=SWR_SAMPLE`` and the sampler index in the
        ``regular_extra`` column."""
        n = len(weights)
        if n <= 1 or _np is None:
            items = [Item(int(e), float(w)) for e, w in zip(idents, weights)]
            if not items:
                return ()
            return SiteAlgorithm.on_items(self, items)
        self.items_seen += n
        hits, keys = self._draw_batch(weights)
        if keys is None:
            return ()
        samplers: List[int] = []
        for i in _np.flatnonzero(hits).tolist():
            samplers.extend(
                self._rng.sample(range(self.sample_size), int(hits[i]))
            )
        return MessagePack(
            regular_idents=_np.repeat(idents, hits),
            regular_weights=_np.repeat(weights, hits),
            regular_keys=keys,
            regular_kind=SWR_SAMPLE,
            regular_extra=_np.asarray(samplers, dtype=_np.int64),
        )

    def _conditional_min_key(self, w: float, tau: float, alpha: float) -> float:
        """Min-of-``w``-uniforms key conditioned on being below ``tau``.

        CDF ``F(x) = 1-(1-x)^w``; inverse of ``u*F(tau)`` is
        ``1 - (1 - u*alpha)^{1/w}``.
        """
        u = self._rng.random()
        x = -math.expm1(math.log1p(-u * alpha) / w)
        if tau < 1.0:
            x = min(x, tau * (1.0 - 1e-12))
        return max(x, 1e-300)

    def on_control(self, message: Message) -> None:
        if message.kind != ROUND_UPDATE:
            raise ProtocolViolationError(
                f"SWR site got unexpected control {message.kind!r}"
            )
        (threshold,) = message.payload
        if threshold > self._threshold:
            raise ProtocolViolationError("SWR threshold increased")
        self._threshold = threshold

    def state_words(self) -> int:
        return 2


class _SwrCoordinator(CoordinatorAlgorithm):
    """Coordinator half: per-sampler minimum keys + round broadcasts."""

    def __init__(self, sample_size: int, beta: float) -> None:
        self.sample_size = sample_size
        self.beta = beta
        self._min_keys: List[float] = [math.inf] * sample_size
        self._slots: List[Optional[Item]] = [None] * sample_size
        self._announced = 1.0
        self.rounds_announced = 0

    def on_message(self, site_id: int, message: Message) -> List[Tuple[int, Message]]:
        if message.kind != SWR_SAMPLE:
            raise ProtocolViolationError(f"SWR coordinator got {message.kind!r}")
        sampler_id, ident, weight, key = message.payload
        if key < self._min_keys[sampler_id]:
            self._min_keys[sampler_id] = key
            self._slots[sampler_id] = Item(ident, weight)
        return self._maybe_advance_round()

    def _maybe_advance_round(self) -> List[Tuple[int, Message]]:
        worst = max(self._min_keys)
        if not math.isfinite(worst) or worst <= 0.0:
            return []
        # Smallest beta-power >= worst (float-edge corrected).
        bracket = self._bracket_of(worst)
        if bracket < self._announced:
            self._announced = bracket
            self.rounds_announced += 1
            return [(BROADCAST, Message(ROUND_UPDATE, (bracket,)))]
        return []

    # -- bulk path: one pack per (site, batch) --------------------------

    def on_message_pack(self, site_id: int, pack: Any) -> List[Tuple[int, Message]]:
        """Vectorized per-sampler min-key fold of a whole site batch.

        One kernel-tier pass (``swr_min_fold`` — a stable lexsort on
        the numpy backend, a fused loop on the compiled one) groups the
        pack's entries by sampler and finds each sampler's minimum key
        (first arrival wins ties, as the scalar strict-``<`` update
        does); ``Item`` objects are built only for the winners.  The fast path commits only when
        the folded state provably announces no round — the bracket of
        the folded worst-of-minima is monotone in the (only-decreasing)
        worst, so the final bracket decides whether *any*
        ``ROUND_UPDATE`` would fire mid-pack (mirroring
        ``EpochTracker.would_announce`` in the SWOR path).  Otherwise
        the pack replays message by message, reproducing broadcast
        count and timing exactly.
        """
        nr = pack.num_regular
        if nr == 0:
            return []
        if (
            _np is None
            or nr <= 16  # numpy fold overhead dwarfs tiny packs
            or pack.num_early
            or pack.regular_kind != SWR_SAMPLE
        ):
            return self._replay_pack(site_id, pack)
        samplers = pack.regular_extra
        keys = pack.regular_keys
        # Stable per-sampler minimum (kernel-tier): each sampler's head
        # is its min key, earliest arrival on ties, ascending sampler.
        heads = _active_kernels().swr_min_fold(samplers, keys, self.sample_size)
        winners: List[Tuple[int, int, float]] = []
        for i in heads.tolist():
            sid = int(samplers[i])
            key = float(keys[i])
            if key < self._min_keys[sid]:
                winners.append((sid, i, key))
        if winners:
            folded = list(self._min_keys)
            for sid, _, key in winners:
                folded[sid] = key
            worst = max(folded)
            if (
                math.isfinite(worst)
                and worst > 0.0
                and self._bracket_of(worst) < self._announced
            ):
                return self._replay_pack(site_id, pack)
            ids, ws = pack.regular_idents, pack.regular_weights
            for sid, i, key in winners:
                self._min_keys[sid] = key
                self._slots[sid] = Item(int(ids[i]), float(ws[i]))
        return []

    def _bracket_of(self, worst: float) -> float:
        """Smallest beta-power ``>= worst`` (the round bracket), with
        the same float-edge correction as :meth:`_maybe_advance_round`."""
        j = int(math.floor(-math.log(worst) / math.log(self.beta)))
        j = max(j, 0)
        bracket = self.beta**-j
        if bracket < worst:
            j -= 1
            bracket = self.beta**-j
        return bracket

    def _replay_pack(self, site_id: int, pack: Any) -> List[Tuple[int, Message]]:
        """Exact sequential semantics for packs the fast path declines
        — the interface default's expand-and-replay loop."""
        return CoordinatorAlgorithm.on_message_pack(self, site_id, pack)

    def sample(self) -> List[Item]:
        """One item per sampler slot — the with-replacement sample."""
        return [slot for slot in self._slots if slot is not None]

    def state_words(self) -> int:
        return 3 * self.sample_size + 2


class DistributedWeightedSWR:
    """Message-efficient distributed weighted SWR (Corollary 1).

    Parameters
    ----------
    num_sites / sample_size:
        ``k`` and ``s``.
    seed:
        Root seed for site/coordinator sub-streams.
    engine / batch_size:
        Execution engine selection (name or instance; see
        :func:`repro.runtime.get_engine`).
    """

    def __init__(
        self,
        num_sites: int,
        sample_size: int,
        seed: Optional[int] = None,
        engine: Union[str, Engine, None] = None,
        batch_size: Optional[int] = None,
    ) -> None:
        if num_sites <= 0 or sample_size <= 0:
            raise ConfigurationError("num_sites and sample_size must be positive")
        self.num_sites = num_sites
        self.sample_size = sample_size
        self.beta = 2.0 + num_sites / sample_size
        self.engine = get_engine(engine, batch_size=batch_size)
        source = RandomSource(seed)
        self.sites = [
            _SwrSite(sample_size, source.substream(f"swr-site-{i}"))
            for i in range(num_sites)
        ]
        self.coordinator = _SwrCoordinator(sample_size, self.beta)
        self.network = Network(self.sites, self.coordinator)

    def run(self, stream: DistributedStream, **kwargs: Any) -> MessageCounters:
        """Replay a distributed stream; returns message counters."""
        kwargs.setdefault("engine", self.engine)
        return self.network.run(stream, **kwargs)

    def process(self, site_id: int, item: Item) -> None:
        self.network.step(site_id, item)

    def sample(self) -> List[Item]:
        """The current weighted sample *with* replacement (one per slot)."""
        return self.coordinator.sample()

    @property
    def counters(self) -> MessageCounters:
        return self.network.counters

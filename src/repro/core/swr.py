"""Distributed weighted sampling *with* replacement (Corollary 1).

The paper reduces weighted SWR to unweighted SWR [14] by conceptually
duplicating an item of weight ``w`` into ``w`` unit items, then removes
the ``O(w)`` blow-up with two tricks it spells out in the Corollary 1
proof, both implemented here:

* **aggregate coin** — for one single-item sampler at threshold ``τ``,
  the probability that *any* of the ``w`` duplicates would be forwarded
  is ``α(w, τ) = 1 - (1-τ)^w``; the site flips one coin instead of ``w``;
* **binomial batching** — across the ``s`` independent samplers, the
  number forwarding is ``Binomial(s, α)``; the site draws it once and
  picks a uniform subset of samplers, which (as the paper notes) equals
  the law of ``s`` independent decisions.

Keys: each sampler tracks the *minimum* of per-duplicate uniform keys;
``min`` of ``w`` uniforms has tail ``(1-x)^w``, so the item with the
global minimum key is a single weighted sample — exactly Definition 2
per sampler, independent across samplers.  Thresholds are maintained as
powers of ``β = 2 + k/s`` bracketing the worst (largest) per-sampler
minimum, giving the ``log(W)/log(2+k/s)`` round structure of [14].
"""

from __future__ import annotations

import math
import random
from typing import List, Optional, Tuple, Union

from ..common.errors import ConfigurationError, ProtocolViolationError
from ..common.rng import RandomSource, binomial
from ..net.counters import MessageCounters
from ..net.messages import Message, ROUND_UPDATE, SWR_SAMPLE
from ..runtime import (
    BROADCAST,
    CoordinatorAlgorithm,
    Engine,
    Network,
    SiteAlgorithm,
    get_engine,
)
from ..stream.item import DistributedStream, Item

__all__ = ["DistributedWeightedSWR"]


class _SwrSite(SiteAlgorithm):
    """Site half of the SWR protocol."""

    def __init__(self, sample_size: int, rng: random.Random) -> None:
        self.sample_size = sample_size
        self._rng = rng
        self._threshold = 1.0  # uniform keys live in (0,1)
        self.items_seen = 0

    def on_item(self, item: Item) -> List[Message]:
        self.items_seen += 1
        w = item.weight
        tau = self._threshold
        if tau >= 1.0:
            alpha = 1.0
        else:
            # alpha = 1 - (1-tau)^w, computed stably for tiny tau.
            alpha = -math.expm1(w * math.log1p(-tau))
        hits = binomial(self._rng, self.sample_size, alpha)
        if hits == 0:
            return []
        chosen = self._rng.sample(range(self.sample_size), hits)
        messages = []
        for sampler_id in chosen:
            key = self._conditional_min_key(w, tau, alpha)
            messages.append(
                Message(SWR_SAMPLE, (sampler_id, item.ident, w, key))
            )
        return messages

    def _conditional_min_key(self, w: float, tau: float, alpha: float) -> float:
        """Min-of-``w``-uniforms key conditioned on being below ``tau``.

        CDF ``F(x) = 1-(1-x)^w``; inverse of ``u*F(tau)`` is
        ``1 - (1 - u*alpha)^{1/w}``.
        """
        u = self._rng.random()
        x = -math.expm1(math.log1p(-u * alpha) / w)
        if tau < 1.0:
            x = min(x, tau * (1.0 - 1e-12))
        return max(x, 1e-300)

    def on_control(self, message: Message) -> None:
        if message.kind != ROUND_UPDATE:
            raise ProtocolViolationError(
                f"SWR site got unexpected control {message.kind!r}"
            )
        (threshold,) = message.payload
        if threshold > self._threshold:
            raise ProtocolViolationError("SWR threshold increased")
        self._threshold = threshold

    def state_words(self) -> int:
        return 2


class _SwrCoordinator(CoordinatorAlgorithm):
    """Coordinator half: per-sampler minimum keys + round broadcasts."""

    def __init__(self, sample_size: int, beta: float) -> None:
        self.sample_size = sample_size
        self.beta = beta
        self._min_keys: List[float] = [math.inf] * sample_size
        self._slots: List[Optional[Item]] = [None] * sample_size
        self._announced = 1.0
        self.rounds_announced = 0

    def on_message(self, site_id: int, message: Message) -> List[Tuple[int, Message]]:
        if message.kind != SWR_SAMPLE:
            raise ProtocolViolationError(f"SWR coordinator got {message.kind!r}")
        sampler_id, ident, weight, key = message.payload
        if key < self._min_keys[sampler_id]:
            self._min_keys[sampler_id] = key
            self._slots[sampler_id] = Item(ident, weight)
        return self._maybe_advance_round()

    def _maybe_advance_round(self) -> List[Tuple[int, Message]]:
        worst = max(self._min_keys)
        if not math.isfinite(worst) or worst <= 0.0:
            return []
        # Smallest beta-power >= worst: beta^-j with j = floor(-log_beta).
        j = int(math.floor(-math.log(worst) / math.log(self.beta)))
        j = max(j, 0)
        bracket = self.beta**-j
        if bracket < worst:  # float-edge correction
            j -= 1
            bracket = self.beta**-j
        if bracket < self._announced:
            self._announced = bracket
            self.rounds_announced += 1
            return [(BROADCAST, Message(ROUND_UPDATE, (bracket,)))]
        return []

    def sample(self) -> List[Item]:
        """One item per sampler slot — the with-replacement sample."""
        return [slot for slot in self._slots if slot is not None]

    def state_words(self) -> int:
        return 3 * self.sample_size + 2


class DistributedWeightedSWR:
    """Message-efficient distributed weighted SWR (Corollary 1).

    Parameters
    ----------
    num_sites / sample_size:
        ``k`` and ``s``.
    seed:
        Root seed for site/coordinator sub-streams.
    engine / batch_size:
        Execution engine selection (name or instance; see
        :func:`repro.runtime.get_engine`).
    """

    def __init__(
        self,
        num_sites: int,
        sample_size: int,
        seed: Optional[int] = None,
        engine: Union[str, Engine, None] = None,
        batch_size: Optional[int] = None,
    ) -> None:
        if num_sites <= 0 or sample_size <= 0:
            raise ConfigurationError("num_sites and sample_size must be positive")
        self.num_sites = num_sites
        self.sample_size = sample_size
        self.beta = 2.0 + num_sites / sample_size
        self.engine = get_engine(engine, batch_size=batch_size)
        source = RandomSource(seed)
        self.sites = [
            _SwrSite(sample_size, source.substream(f"swr-site-{i}"))
            for i in range(num_sites)
        ]
        self.coordinator = _SwrCoordinator(sample_size, self.beta)
        self.network = Network(self.sites, self.coordinator)

    def run(self, stream: DistributedStream, **kwargs) -> MessageCounters:
        """Replay a distributed stream; returns message counters."""
        kwargs.setdefault("engine", self.engine)
        return self.network.run(stream, **kwargs)

    def process(self, site_id: int, item: Item) -> None:
        self.network.step(site_id, item)

    def sample(self) -> List[Item]:
        """The current weighted sample *with* replacement (one per slot)."""
        return self.coordinator.sample()

    @property
    def counters(self) -> MessageCounters:
        return self.network.counters

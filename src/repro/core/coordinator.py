"""Coordinator algorithm for distributed weighted SWOR (Algorithms 2–3).

Responsibilities:

* park early items in level sets, generating their keys on arrival;
* on saturation, release the whole level into the sample set and
  broadcast ``LEVEL_SATURATED`` (``k`` messages);
* fold regular items into the sample set when their key beats ``u``;
* after every sample change, check whether ``u`` crossed into a new
  ``[r^j, r^{j+1})`` bracket and broadcast ``EPOCH_UPDATE`` if so
  (Algorithm 3 lines 5–8);
* answer queries with the top-``s`` keys over ``S ∪ (∪_j D_j)``
  (Algorithm 2 line 22) — valid at *every* time step, per Definition 3.
"""

from __future__ import annotations

import math
import random
from typing import Any, Dict, List, Optional, Tuple

try:  # optional: the bulk pack path (packs only exist with numpy)
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-free installs
    _np = None  # type: ignore[assignment]

from ..common.errors import ProtocolViolationError
from ..common.rng import exponential
from ..kernels import active as _active_kernels
from ..net.messages import (
    EARLY,
    EPOCH_UPDATE,
    LEVEL_SATURATED,
    Message,
    REGULAR,
)
from ..runtime import BROADCAST, CoordinatorAlgorithm
from ..stream.item import Item
from .config import SworConfig
from .epochs import EpochTracker
from .levels import LevelSetManager, level_of
from .sample_set import TopKeySample

__all__ = ["SworCoordinator"]


class SworCoordinator(CoordinatorAlgorithm):
    """The coordinator of the weighted-SWOR protocol."""

    def __init__(self, config: SworConfig, rng: random.Random) -> None:
        self.config = config
        self._rng = rng
        self._r = config.r
        self.sample_set = TopKeySample(config.sample_size)
        self.levels = LevelSetManager(self._r, config.saturation_size)
        self.epochs = EpochTracker(self._r)
        self.regular_received = 0
        self.regular_accepted = 0
        self.early_received = 0
        self.early_for_saturated = 0

    # -- CoordinatorAlgorithm interface --------------------------------

    def on_message(self, site_id: int, message: Message) -> List[Tuple[int, Message]]:
        if message.kind == EARLY:
            return self._on_early(message)
        if message.kind == REGULAR:
            return self._on_regular(message)
        raise ProtocolViolationError(
            f"coordinator got unexpected message kind {message.kind!r}"
        )

    def state_words(self) -> int:
        """Sample set + withheld top keys, in words (O(s) claim).

        The space-optimized variant of Proposition 6 stores only the
        top-``s`` withheld keys; we store all withheld entries for query
        simplicity but report the optimized footprint, which tests
        verify is what the optimized variant would keep.
        """
        sample_words = 3 * len(self.sample_set)
        withheld = min(self.levels.pending_count(), self.config.sample_size)
        counter_words = max(1, len(self.levels.saturated_levels))
        return sample_words + 3 * withheld + counter_words

    # -- message handlers ----------------------------------------------

    def _on_early(self, message: Message) -> List[Tuple[int, Message]]:
        self.early_received += 1
        if not self.config.level_sets_enabled:
            raise ProtocolViolationError(
                "early message received but level sets are disabled"
            )
        # Batch drivers attach the (item, level) this handler would
        # otherwise rebuild from the payload — the level is equal by
        # definition to level_of(weight, r), the item to Item(*payload);
        # the memo is just cheaper, and shared across every query of a
        # multi-query pass.  (The slot is unset outside batch paths.)
        hint = getattr(message, "early_hint", None)
        if hint is not None:
            item, level = hint
            weight = item.weight
        else:
            ident, weight = message.payload
            item = Item(ident, weight)
            level = level_of(weight, self._r)
        key = weight / exponential(self._rng)
        return self._early_core(item, level, key)

    def _early_core(
        self, item: Item, level: int, key: float
    ) -> List[Tuple[int, Message]]:
        """Algorithm 2 lines 8-17 for one early item with its key
        already generated (shared by the per-message and pack paths)."""
        if self.levels.is_saturated(level):
            # The sender filtered on a stale saturation view (its
            # LEVEL_SATURATED broadcast is still in flight — possible
            # under any engine with delayed control delivery).  The item
            # must not corrupt the released level's set; it competes for
            # the sample directly with a coordinator-generated key,
            # exactly as it would have had it been parked and released.
            self.early_for_saturated += 1
            return self._add_to_sample(item, key)
        released = self.levels.add(item, key, level=level)
        if released is None:
            return []
        responses: List[Tuple[int, Message]] = [
            (BROADCAST, Message(LEVEL_SATURATED, (level,)))
        ]
        for rel_item, rel_key in released:
            responses.extend(self._add_to_sample(rel_item, rel_key))
        return responses

    def _on_regular(self, message: Message) -> List[Tuple[int, Message]]:
        ident, weight, key = message.payload
        self.regular_received += 1
        return self._regular_core(ident, weight, key)

    def _regular_core(
        self, ident: int, weight: float, key: float
    ) -> List[Tuple[int, Message]]:
        if key <= self.sample_set.threshold:
            # Site filtered on a stale (smaller) epoch threshold; the
            # coordinator's check (Algorithm 2 line 19) discards.
            return []
        self.regular_accepted += 1
        return self._add_to_sample(Item(ident, weight), key)

    # -- bulk path: one pack per (site, batch) --------------------------

    def on_message_pack(self, site_id: int, pack: Any) -> List[Tuple[int, Message]]:
        """Columnar Algorithms 2-3 over a whole site batch.

        Early keys are drawn first, in delivery order, with exactly the
        scalar path's RNG consumption — so samples stay bit-identical
        to per-message processing.  The *fast path* then commits the
        pack in bulk: earlies are parked level-by-level with one list
        extend each, and regulars are re-checked against the live
        threshold with one boolean mask before a single
        ``np.partition`` top-``s`` merge folds the survivors into the
        sample.  The fast path is only taken when the pack provably
        emits no broadcast — no early touches a saturated (or
        about-to-saturate) level, and the merged threshold stays inside
        the current epoch bracket; pack processing is then
        indistinguishable from sequential delivery.  Otherwise (a
        logarithmic number of packs per run) the pack is replayed
        message by message, which reproduces the sequential semantics —
        including broadcast timing — exactly.

        One observability stat differs on the fast path:
        ``regular_accepted`` counts the survivors of the
        pack-entry threshold, whereas sequential processing re-checks
        each regular against the threshold *as it evolves* within the
        batch; the sample itself is identical either way (rejected
        candidates can never be among the final top ``s``).
        """
        ne = pack.num_early
        early_keys: List[float] = []
        levels_list: List[int] = []
        early_items: Any = None
        if ne:
            if not self.config.level_sets_enabled:
                raise ProtocolViolationError(
                    "early message received but level sets are disabled"
                )
            # Identical RNG consumption to ne scalar exponential() draws.
            rand = self._rng.random
            log = math.log
            weights_list = pack.early_weights.tolist()
            for w in weights_list:
                u = rand()
                while u <= 0.0:
                    u = rand()
                early_keys.append(w / -log(u))
            levels_list = pack.early_levels.tolist()
            early_items = pack.early_items
            if early_items is None:
                ids = pack.early_idents.tolist()
                early_items = [
                    Item(ids[i], weights_list[i]) for i in range(ne)
                ]
        fast = True
        grouped: Dict[int, List[int]] = {}
        if ne:
            for i in range(ne):
                grouped.setdefault(levels_list[i], []).append(i)
            for lv, indices in grouped.items():
                if not self.levels.can_absorb(lv, len(indices)):
                    fast = False
                    break
        nr = pack.num_regular
        surv_ids: Any = None
        surv_ws: Any = None
        surv_keys: Any = None
        keys: Any = None
        fold: Any = None
        accepted = 0
        if fast and nr:
            threshold = self.sample_set.threshold
            keys = pack.regular_keys
            if nr <= 32:  # scalar path: numpy call overhead dwarfs tiny packs
                keys_list = keys.tolist()
                idx = [i for i, k in enumerate(keys_list) if k > threshold]
                accepted = len(idx)
                if accepted:
                    ids = pack.regular_idents.tolist()
                    ws = pack.regular_weights.tolist()
                    surv_ids = [ids[i] for i in idx]
                    surv_ws = [ws[i] for i in idx]
                    surv_keys = [keys_list[i] for i in idx]
                    if self.epochs.would_announce(
                        self.sample_set.merged_threshold(surv_keys)
                    ):
                        fast = False
            else:
                # The fused kernel computes the threshold mask, the
                # merged cut (= merged_threshold), the boundary-tie
                # count, and the kept-candidate set in one pass.
                fold = _active_kernels().swor_fold_regulars(
                    keys,
                    threshold,
                    self.sample_set.heap_keys(),
                    self.sample_set.sample_size,
                )
                accepted = len(fold[0])
                if accepted and self.epochs.would_announce(fold[2]):
                    fast = False
        if not fast:
            return self._replay_pack(pack, early_items, early_keys, levels_list)
        if ne:
            self.early_received += ne
            for lv, indices in grouped.items():
                self.levels.add_many(
                    lv, [(early_items[i], early_keys[i]) for i in indices]
                )
        if nr:
            self.regular_received += nr
            if accepted:
                self.regular_accepted += accepted
                if fold is not None:
                    self.sample_set.fold_selected(
                        pack.regular_idents, pack.regular_weights, keys, *fold
                    )
                else:
                    self.sample_set.merge_columns(surv_ids, surv_ws, surv_keys)
                announce = self.epochs.observe_threshold(self.sample_set.threshold)
                if announce is not None:  # pragma: no cover - precluded above
                    return [(BROADCAST, Message(EPOCH_UPDATE, (announce,)))]
        return []

    def on_message_pack_unordered(self, site_id: int, pack: Any) -> bool:
        """Commit a pack out of (batch, site) order when that is
        provably order-invariant; return whether it was committed.

        The pipelined sharded engine folds each window's packs in
        arrival order where it can.  A commit here is safe exactly when
        the pack's effect is a *pure top-``s`` merge* whose outcome
        does not depend on its position within the window's fold order:

        * **regular-only** — early items draw coordinator RNG and park
          in level sets in fold order, so any pack carrying earlies is
          declined (it folds at the exact ordered position);
        * **no epoch crossing** — the merged threshold stays inside the
          current bracket (``would_announce`` is ``False``), so no
          broadcast fires.  The threshold ``u`` is monotone along every
          fold order, so a crossing can never be *silently skipped*: the
          first fold that would push ``u`` over the bracket is declined
          here and caught by the engine's ordered fallback;
        * **no ambiguous tie** — the merge would not hit
          ``merge_columns``' order-dependent sequential tie fallback.

        Under those guards the surviving candidate set (every key above
        the *final* window threshold survives; every rejected key is
        below some intermediate, hence the final, threshold) and the
        counter accounting (sums plus a max watermark) are identical to
        the ordered fold's.  ``regular_accepted`` may differ from a
        sequential scalar replay by the same intermediate-threshold
        slack the ordered fast path already has (see
        :meth:`on_message_pack`).  The caller accounts the pack iff
        this returns ``True``.
        """
        if _np is None or pack.num_early:
            return False
        nr = pack.num_regular
        if nr == 0:  # pragma: no cover - empty packs filtered at encode
            return True
        threshold = self.sample_set.threshold
        keys = pack.regular_keys
        if nr <= 32:  # scalar path: numpy call overhead dwarfs tiny packs
            keys_list = keys.tolist()
            idx = [i for i, k in enumerate(keys_list) if k > threshold]
            accepted = len(idx)
            if accepted:
                ids = pack.regular_idents.tolist()
                ws = pack.regular_weights.tolist()
                surv_ids = [ids[i] for i in idx]
                surv_ws = [ws[i] for i in idx]
                surv_keys = [keys_list[i] for i in idx]
                merged_u, ambiguous = self.sample_set.merge_preview(surv_keys)
                if ambiguous or self.epochs.would_announce(merged_u):
                    return False
            self.regular_received += nr
            if accepted:
                self.regular_accepted += accepted
                self.sample_set.merge_columns(surv_ids, surv_ws, surv_keys)
            return True
        fold = _active_kernels().swor_fold_regulars(
            keys,
            threshold,
            self.sample_set.heap_keys(),
            self.sample_set.sample_size,
        )
        accepted = len(fold[0])
        if accepted:
            ambiguous = (
                accepted > self.sample_set.sample_size - len(self.sample_set)
                and fold[3] != 1
            )
            if ambiguous or self.epochs.would_announce(fold[2]):
                return False
        self.regular_received += nr
        if accepted:
            self.regular_accepted += accepted
            self.sample_set.fold_selected(
                pack.regular_idents, pack.regular_weights, keys, *fold
            )
        return True

    def snapshot_state(self) -> tuple:
        """Window-boundary snapshot for the pipelined sharded engine.

        Captures everything the message handlers can mutate — the
        coordinator RNG position, sample set, level sets, epoch
        tracker, and receipt counters — so an out-of-order window fold
        can be rewound and replayed in exact order.
        """
        return (
            self._rng.getstate(),
            self.sample_set.snapshot_state(),
            self.levels.snapshot_state(),
            self.epochs.snapshot_state(),
            self.regular_received,
            self.regular_accepted,
            self.early_received,
            self.early_for_saturated,
        )

    def restore_state(self, state: tuple) -> None:
        (
            rng_state,
            sample_state,
            levels_state,
            epochs_state,
            regular_received,
            regular_accepted,
            early_received,
            early_for_saturated,
        ) = state
        self._rng.setstate(rng_state)
        self.sample_set.restore_state(sample_state)
        self.levels.restore_state(levels_state)
        self.epochs.restore_state(epochs_state)
        self.regular_received = regular_received
        self.regular_accepted = regular_accepted
        self.early_received = early_received
        self.early_for_saturated = early_for_saturated

    def _replay_pack(
        self,
        pack: Any,
        early_items: Any,
        early_keys: List[float],
        levels_list: List[int],
    ) -> List[Tuple[int, Message]]:
        """Sequential pack replay with pre-drawn early keys and
        pre-built early Items — the exact per-message semantics, used
        when a pack would saturate a level or cross an epoch boundary."""
        responses: List[Tuple[int, Message]] = []
        for i in range(pack.num_early):
            self.early_received += 1
            responses.extend(
                self._early_core(early_items[i], levels_list[i], early_keys[i])
            )
        if pack.num_regular:
            ids = pack.regular_idents.tolist()
            ws = pack.regular_weights.tolist()
            keys = pack.regular_keys.tolist()
            for i in range(len(keys)):
                self.regular_received += 1
                responses.extend(self._regular_core(ids[i], ws[i], keys[i]))
        return responses

    # -- Algorithm 3: Add-to-Sample --------------------------------------

    def _add_to_sample(self, item: Item, key: float) -> List[Tuple[int, Message]]:
        """Insert into ``S``; broadcast if the epoch advanced."""
        if key <= self.sample_set.threshold:
            return []
        self.sample_set.add(item, key)
        announce = self.epochs.observe_threshold(self.sample_set.threshold)
        if announce is None:
            return []
        return [(BROADCAST, Message(EPOCH_UPDATE, (announce,)))]

    # -- queries --------------------------------------------------------

    def sample_with_keys(self) -> List[Tuple[Item, float]]:
        """The weighted SWOR at this instant: top-``s`` keys over
        ``S ∪ (∪_j D_j)`` (withheld items use their pre-generated keys)."""
        entries = self.sample_set.entries() + self.levels.pending_entries()
        entries.sort(key=lambda pair: -pair[1])
        return entries[: self.config.sample_size]

    def sample(self) -> List[Item]:
        """Sampled items in decreasing key order."""
        return [item for item, _ in self.sample_with_keys()]

    @property
    def threshold(self) -> float:
        """Current ``u`` (the ``s``-th largest *released* key)."""
        return self.sample_set.threshold

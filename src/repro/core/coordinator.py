"""Coordinator algorithm for distributed weighted SWOR (Algorithms 2–3).

Responsibilities:

* park early items in level sets, generating their keys on arrival;
* on saturation, release the whole level into the sample set and
  broadcast ``LEVEL_SATURATED`` (``k`` messages);
* fold regular items into the sample set when their key beats ``u``;
* after every sample change, check whether ``u`` crossed into a new
  ``[r^j, r^{j+1})`` bracket and broadcast ``EPOCH_UPDATE`` if so
  (Algorithm 3 lines 5–8);
* answer queries with the top-``s`` keys over ``S ∪ (∪_j D_j)``
  (Algorithm 2 line 22) — valid at *every* time step, per Definition 3.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from ..common.errors import ProtocolViolationError
from ..common.rng import exponential
from ..net.messages import (
    EARLY,
    EPOCH_UPDATE,
    LEVEL_SATURATED,
    Message,
    REGULAR,
)
from ..runtime import BROADCAST, CoordinatorAlgorithm
from ..stream.item import Item
from .config import SworConfig
from .epochs import EpochTracker
from .levels import LevelSetManager, level_of
from .sample_set import TopKeySample

__all__ = ["SworCoordinator"]


class SworCoordinator(CoordinatorAlgorithm):
    """The coordinator of the weighted-SWOR protocol."""

    def __init__(self, config: SworConfig, rng: random.Random) -> None:
        self.config = config
        self._rng = rng
        self._r = config.r
        self.sample_set = TopKeySample(config.sample_size)
        self.levels = LevelSetManager(self._r, config.saturation_size)
        self.epochs = EpochTracker(self._r)
        self.regular_received = 0
        self.regular_accepted = 0
        self.early_received = 0
        self.early_for_saturated = 0

    # -- CoordinatorAlgorithm interface --------------------------------

    def on_message(self, site_id: int, message: Message) -> List[Tuple[int, Message]]:
        if message.kind == EARLY:
            return self._on_early(message)
        if message.kind == REGULAR:
            return self._on_regular(message)
        raise ProtocolViolationError(
            f"coordinator got unexpected message kind {message.kind!r}"
        )

    def state_words(self) -> int:
        """Sample set + withheld top keys, in words (O(s) claim).

        The space-optimized variant of Proposition 6 stores only the
        top-``s`` withheld keys; we store all withheld entries for query
        simplicity but report the optimized footprint, which tests
        verify is what the optimized variant would keep.
        """
        sample_words = 3 * len(self.sample_set)
        withheld = min(self.levels.pending_count(), self.config.sample_size)
        counter_words = max(1, len(self.levels.saturated_levels))
        return sample_words + 3 * withheld + counter_words

    # -- message handlers ----------------------------------------------

    def _on_early(self, message: Message) -> List[Tuple[int, Message]]:
        self.early_received += 1
        if not self.config.level_sets_enabled:
            raise ProtocolViolationError(
                "early message received but level sets are disabled"
            )
        try:
            # Batch drivers attach the (item, level) this handler would
            # otherwise rebuild from the payload — the level is equal by
            # definition to level_of(weight, r), the item to
            # Item(*payload); the memo is just cheaper, and shared
            # across every query of a multi-query pass.
            item, level = message.early_hint
            weight = item.weight
        except AttributeError:
            ident, weight = message.payload
            item = Item(ident, weight)
            level = level_of(weight, self._r)
        key = weight / exponential(self._rng)
        if self.levels.is_saturated(level):
            # The sender filtered on a stale saturation view (its
            # LEVEL_SATURATED broadcast is still in flight — possible
            # under any engine with delayed control delivery).  The item
            # must not corrupt the released level's set; it competes for
            # the sample directly with a coordinator-generated key,
            # exactly as it would have had it been parked and released.
            self.early_for_saturated += 1
            return self._add_to_sample(item, key)
        released = self.levels.add(item, key, level=level)
        if released is None:
            return []
        responses: List[Tuple[int, Message]] = [
            (BROADCAST, Message(LEVEL_SATURATED, (level,)))
        ]
        for rel_item, rel_key in released:
            responses.extend(self._add_to_sample(rel_item, rel_key))
        return responses

    def _on_regular(self, message: Message) -> List[Tuple[int, Message]]:
        ident, weight, key = message.payload
        self.regular_received += 1
        if key <= self.sample_set.threshold:
            # Site filtered on a stale (smaller) epoch threshold; the
            # coordinator's check (Algorithm 2 line 19) discards.
            return []
        self.regular_accepted += 1
        return self._add_to_sample(Item(ident, weight), key)

    # -- Algorithm 3: Add-to-Sample --------------------------------------

    def _add_to_sample(self, item: Item, key: float) -> List[Tuple[int, Message]]:
        """Insert into ``S``; broadcast if the epoch advanced."""
        if key <= self.sample_set.threshold:
            return []
        self.sample_set.add(item, key)
        announce = self.epochs.observe_threshold(self.sample_set.threshold)
        if announce is None:
            return []
        return [(BROADCAST, Message(EPOCH_UPDATE, (announce,)))]

    # -- queries --------------------------------------------------------

    def sample_with_keys(self) -> List[Tuple[Item, float]]:
        """The weighted SWOR at this instant: top-``s`` keys over
        ``S ∪ (∪_j D_j)`` (withheld items use their pre-generated keys)."""
        entries = self.sample_set.entries() + self.levels.pending_entries()
        entries.sort(key=lambda pair: -pair[1])
        return entries[: self.config.sample_size]

    def sample(self) -> List[Item]:
        """Sampled items in decreasing key order."""
        return [item for item, _ in self.sample_with_keys()]

    @property
    def threshold(self) -> float:
        """Current ``u`` (the ``s``-th largest *released* key)."""
        return self.sample_set.threshold

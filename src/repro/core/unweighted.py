"""Distributed *unweighted* SWOR — the [11]/[31] baseline protocol.

The thresholded-uniform-key protocol that the paper's weighted algorithm
generalizes: every item gets a uniform key, the coordinator keeps the
``s`` smallest keys, and sites filter against a broadcast bracket of the
``s``-th smallest key (powers of ``1/r``, ``r = max(2, k/s)``).

Used two ways: as the baseline whose lower bound (Theorem 2) transfers
to weighted SWOR (Corollary 2), and as an independently-implemented
cross-check — on unit-weight streams the weighted protocol must match
this one's sample law and message shape.
"""

from __future__ import annotations

import heapq
import math
import random
from typing import Any, List, Optional, Sequence, Tuple, Union

try:  # optional: vectorized bulk path for the batched engine
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-free installs
    _np = None  # type: ignore[assignment]

from ..common.errors import ConfigurationError, ProtocolViolationError
from ..common.rng import BatchRandom, RandomSource
from ..net.counters import MessageCounters
from ..net.messages import Message, MessagePack, REGULAR, ROUND_UPDATE
from ..runtime import (
    BROADCAST,
    CoordinatorAlgorithm,
    Engine,
    Network,
    SiteAlgorithm,
    get_engine,
)
from ..stream.item import DistributedStream, Item

__all__ = ["DistributedUnweightedSWOR"]


class _UnweightedSite(SiteAlgorithm):
    """Site half: forward items whose uniform key beats the bracket."""

    def __init__(
        self, config: "DistributedUnweightedSWOR", rng: random.Random
    ) -> None:
        self._rng = rng
        self._threshold = 1.0  # keys live in (0,1); start unfiltered
        self._batch_rng: Optional[BatchRandom] = None
        self.items_seen = 0

    def on_item(self, item: Item) -> List[Message]:
        self.items_seen += 1
        key = self._rng.random()
        while key <= 0.0:
            key = self._rng.random()
        if key < self._threshold:
            return [Message(REGULAR, (item.ident, item.weight, key))]
        return []

    def on_items(self, items: Sequence[Item]) -> List[Message]:
        """Bulk path: one uniform batch draw, filtered against the
        (possibly one-batch-stale) round threshold; the coordinator's
        top-``s`` heap discards any extra passes."""
        n = len(items)
        if n <= 1 or _np is None:
            return SiteAlgorithm.on_items(self, items)
        self.items_seen += n
        if self._batch_rng is None:
            self._batch_rng = BatchRandom(self._rng)
        keys = self._batch_rng.uniforms(n)
        out: List[Message] = []
        for i in _np.flatnonzero(keys < self._threshold):
            item = items[int(i)]
            out.append(Message(REGULAR, (item.ident, item.weight, float(keys[i]))))
        return out

    def on_columns(
        self, idents: _np.ndarray, weights: _np.ndarray, prep: Any = None
    ) -> Union[MessagePack, List[Message], tuple]:
        """Zero-object counterpart of :meth:`on_items`: the identical
        uniform batch draw (same ``BatchRandom``, same order) filtered
        against the same stale-round threshold, but the passers come
        back as one :class:`~repro.net.messages.MessagePack` of
        parallel columns — no ``Item`` or ``Message`` objects.  Falls
        back to the scalar list path exactly when ``on_items`` does
        (single-item batches, numpy-free installs)."""
        n = len(weights)
        if n <= 1 or _np is None:
            items = [Item(int(e), float(w)) for e, w in zip(idents, weights)]
            if not items:
                return ()
            return SiteAlgorithm.on_items(self, items)
        self.items_seen += n
        if self._batch_rng is None:
            self._batch_rng = BatchRandom(self._rng)
        keys = self._batch_rng.uniforms(n)
        send = keys < self._threshold
        num_send = int(_np.count_nonzero(send))
        if num_send == 0:
            return ()
        if num_send != n:
            idents = idents[send]
            weights = weights[send]
            keys = keys[send]
        return MessagePack(
            regular_idents=idents,
            regular_weights=weights,
            regular_keys=keys,
        )

    def on_control(self, message: Message) -> None:
        if message.kind != ROUND_UPDATE:
            raise ProtocolViolationError(
                f"unweighted site got unexpected control {message.kind!r}"
            )
        (threshold,) = message.payload
        if threshold > self._threshold:
            raise ProtocolViolationError("unweighted threshold increased")
        self._threshold = threshold

    def state_words(self) -> int:
        return 2


class _UnweightedCoordinator(CoordinatorAlgorithm):
    """Coordinator half: keep the ``s`` smallest keys; bracket-broadcast."""

    def __init__(self, sample_size: int, r: float) -> None:
        self.sample_size = sample_size
        self.r = r
        # Max-heap (negated keys) of the s smallest keys.
        self._heap: List[Tuple[float, int, Item]] = []
        self._counter = 0
        self._epoch = 0  # threshold bracket r^-epoch currently announced

    @property
    def threshold(self) -> float:
        """``s``-th smallest key (1.0 while underfull)."""
        if len(self._heap) < self.sample_size:
            return 1.0
        return -self._heap[0][0]

    def on_message(self, site_id: int, message: Message) -> List[Tuple[int, Message]]:
        if message.kind != REGULAR:
            raise ProtocolViolationError(
                f"unweighted coordinator got {message.kind!r}"
            )
        ident, weight, key = message.payload
        entry = (-key, self._counter, Item(ident, weight))
        self._counter += 1
        if len(self._heap) < self.sample_size:
            heapq.heappush(self._heap, entry)
        elif key < -self._heap[0][0]:
            heapq.heapreplace(self._heap, entry)
        else:
            return []
        u = self.threshold
        if u >= 1.0 or u <= 0.0:
            return []
        new_epoch = int(math.floor(-math.log(u) / math.log(self.r)))
        if new_epoch > self._epoch:
            self._epoch = new_epoch
            bracket = self.r**-new_epoch
            return [(BROADCAST, Message(ROUND_UPDATE, (bracket,)))]
        return []

    # -- bulk path: one pack per (site, batch) --------------------------

    def on_message_pack(self, site_id: int, pack: Any) -> List[Tuple[int, Message]]:
        """Columnar fold of a whole site batch into the top-``s`` heap.

        Mirrors :meth:`repro.core.coordinator.SworCoordinator.on_message_pack`:
        the fast path masks the pack's keys against the entry threshold
        and rebuilds the heap with one ``np.partition`` selection —
        taken only when it is provably indistinguishable from
        sequential delivery (heap already full, unambiguous selection
        boundary, and the merged threshold stays inside the current
        epoch bracket so no ``ROUND_UPDATE`` broadcast fires mid-pack).
        Otherwise the pack replays message by message, reproducing the
        exact per-round semantics including broadcast count and timing.
        ``Item`` objects are built only for candidates that enter the
        heap; the tie-break counter advances exactly as sequential
        processing would have advanced it.
        """
        nr = pack.num_regular
        if nr == 0:
            return []
        if (
            _np is None
            or nr <= 16  # numpy fold overhead dwarfs tiny packs
            or pack.num_early
            or pack.regular_kind != REGULAR
            or len(self._heap) < self.sample_size
        ):
            # Underfull warm-up (threshold still 1.0, epochs may fire
            # per message), a tiny pack, or a foreign shape: exact
            # replay — always bit-identical, and for tiny packs as
            # cheap as per-message delivery.
            return self._replay_pack(site_id, pack)
        u0 = -self._heap[0][0]
        keys = pack.regular_keys
        base = self._counter
        self._counter += nr
        cand_idx = _np.flatnonzero(keys < u0)
        if len(cand_idx) == 0:
            return []
        old = _np.fromiter(
            (-e[0] for e in self._heap),
            dtype=_np.float64,
            count=len(self._heap),
        )
        merged = _np.concatenate([old, keys[cand_idx]])
        cut = float(_np.partition(merged, self.sample_size - 1)[
            self.sample_size - 1
        ])
        replay = int((merged == cut).sum()) != 1
        if not replay and 0.0 < cut < 1.0:
            # Would observe_threshold(cut) cross a bracket?  Epochs are
            # monotone in the (only-decreasing) threshold, so the final
            # epoch decides whether any broadcast fires inside the pack.
            replay = (
                int(math.floor(-math.log(cut) / math.log(self.r)))
                > self._epoch
            )
        if replay:
            self._counter = base
            return self._replay_pack(site_id, pack)
        new_heap = [e for e in self._heap if -e[0] <= cut]
        ids, ws = pack.regular_idents, pack.regular_weights
        for i in cand_idx[keys[cand_idx] <= cut].tolist():
            new_heap.append(
                (-float(keys[i]), base + i, Item(int(ids[i]), float(ws[i])))
            )
        heapq.heapify(new_heap)
        self._heap = new_heap
        return []

    def _replay_pack(self, site_id: int, pack: Any) -> List[Tuple[int, Message]]:
        """Exact sequential semantics for packs the fast path declines
        — the interface default's expand-and-replay loop."""
        return CoordinatorAlgorithm.on_message_pack(self, site_id, pack)

    def sample(self) -> List[Item]:
        """Current uniform SWOR (increasing key order)."""
        return [e[2] for e in sorted(self._heap, key=lambda e: -e[0])]

    def sample_with_keys(self) -> List[Tuple[Item, float]]:
        """``(item, key)`` pairs in increasing key order — the input
        shape :func:`repro.query.estimators.count_from_uniform_sample`
        expects."""
        return [(e[2], -e[0]) for e in sorted(self._heap, key=lambda e: -e[0])]

    def state_words(self) -> int:
        return 3 * len(self._heap) + 2


class DistributedUnweightedSWOR:
    """Facade mirroring :class:`~repro.core.protocol.DistributedWeightedSWOR`."""

    def __init__(
        self,
        num_sites: int,
        sample_size: int,
        seed: Optional[int] = None,
        engine: Union[str, Engine, None] = None,
        batch_size: Optional[int] = None,
    ) -> None:
        if num_sites <= 0 or sample_size <= 0:
            raise ConfigurationError("num_sites and sample_size must be positive")
        self.num_sites = num_sites
        self.sample_size = sample_size
        self.r = max(2.0, num_sites / sample_size)
        self.engine = get_engine(engine, batch_size=batch_size)
        source = RandomSource(seed)
        self.sites = [
            _UnweightedSite(self, source.substream(f"usite-{i}"))
            for i in range(num_sites)
        ]
        self.coordinator = _UnweightedCoordinator(sample_size, self.r)
        self.network = Network(self.sites, self.coordinator)

    def run(self, stream: DistributedStream, **kwargs: Any) -> MessageCounters:
        """Replay a distributed stream; returns message counters."""
        kwargs.setdefault("engine", self.engine)
        return self.network.run(stream, **kwargs)

    def process(self, site_id: int, item: Item) -> None:
        self.network.step(site_id, item)

    def sample(self) -> List[Item]:
        """The current uniform sample without replacement."""
        return self.coordinator.sample()

    def sample_with_keys(self) -> List[Tuple[Item, float]]:
        """``(item, key)`` pairs in increasing key order."""
        return self.coordinator.sample_with_keys()

    @property
    def counters(self) -> MessageCounters:
        return self.network.counters

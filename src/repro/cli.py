"""Command-line interface: run the paper's protocols from a shell.

Examples::

    python -m repro swor --sites 32 --sample 16 --items 50000
    python -m repro swr  --sites 8  --sample 16 --items 20000
    python -m repro hh   --sites 16 --eps 0.1 --items 40000
    python -m repro l1   --sites 16 --eps 0.2 --items 30000
    python -m repro query --sites 16 --items 50000
    python -m repro bounds --sites 1000 --sample 64 --weight 1e12

Each subcommand synthesizes a seeded workload, runs the protocol, and
prints a result table (sample / report / estimate plus message counts
against the relevant closed-form bound).  ``query`` runs a whole
catalog of estimation queries concurrently over one shared stream pass
(see :mod:`repro.query`).

Every subcommand accepts ``--engine {reference,batched,columnar,sharded}``
(``--batch-size N`` for the batching engines, ``--workers N``,
``--pipeline {auto,on,off}``, ``--worker-timeout SECONDS``,
``--max-worker-restarts N``, and the debug-only ``--fault-plan PLAN``
for the sharded engine, ``--kernels {auto,numba,numpy}`` for the
columnar-plane engines — see :mod:`repro.kernels`) to pick the
execution runtime; see :mod:`repro.runtime`.
Every protocol has a native columnar fast path, so ``--engine columnar``
is bit-identical to ``batched`` on each subcommand, just faster —
and ``--engine sharded`` runs the site passes across worker processes,
bit-identical to ``columnar`` at any worker count.  ``--seed`` may be
given either globally (``repro --seed 7 swor``) or per subcommand; the
subcommand's value wins when both are present.

``--profile`` profiles the parent process: under ``--engine sharded``
that is the coordinator fold and transport (the interesting hot path);
worker processes are spawned fresh and are not traced.
``--profile-out FILE`` writes the full profile to a file instead
(implies profiling even without ``--profile``).

Every run-driving subcommand also accepts ``--metrics-out FILE``: the
run executes with a live :class:`~repro.obs.MetricsRegistry` attached
and the telemetry is written at exit — Prometheus text for ``.prom`` /
``.txt`` paths, a JSON snapshot otherwise.  ``repro stats`` runs a
seeded SWOR workload and dumps the exposition straight to stdout.
"""

from __future__ import annotations

import argparse
import random
import sys
from typing import List, Optional

from .analysis import bounds, format_table
from .core import DistributedWeightedSWOR, DistributedWeightedSWR, SworConfig
from .heavy_hitters import ResidualHeavyHitterTracker
from .l1 import DeterministicCounterTracker, HyzStyleTracker, L1Tracker
from .runtime import ENGINES, get_engine
from .runtime.batched import DEFAULT_BATCH_SIZE, DEFAULT_INITIAL_BATCH_SIZE
from .stream import (
    round_robin,
    two_phase_residual_stream,
    unit_stream,
    zipf_stream,
)

__all__ = ["main", "build_parser"]


def _package_version() -> str:
    """Installed distribution version, falling back to the module's."""
    try:
        from importlib.metadata import version

        return version("repro-weighted-reservoir")
    except Exception:  # not installed (PYTHONPATH=src use)
        from . import __version__

        return __version__


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for tests and docs tooling)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Weighted reservoir sampling from distributed streams "
        "(PODS 2019) - protocol runner",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {_package_version()}"
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        dest="global_seed",
        help="root seed applied to every subcommand (a subcommand's own "
        "--seed overrides it; default 0)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def engine_opts(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--engine",
            choices=sorted(ENGINES),
            default="reference",
            help="execution engine (reference = synchronous round model, "
            "batched = vectorized chunked fast path, columnar = zero-object "
            "pack fast path, bit-identical to batched, sharded = columnar "
            "site passes across worker processes, bit-identical to "
            "columnar; default: reference)",
        )
        p.add_argument(
            "--batch-size",
            type=int,
            default=None,
            help="steady-state batch size for --engine batched/columnar/"
            f"sharded (default: {DEFAULT_BATCH_SIZE}, ramping up from "
            f"{DEFAULT_INITIAL_BATCH_SIZE})",
        )
        p.add_argument(
            "--workers",
            type=int,
            default=None,
            help="worker process count for --engine sharded "
            "(default: all CPU cores)",
        )
        p.add_argument(
            "--pipeline",
            choices=("auto", "on", "off"),
            default=None,
            help="pipelined window protocol for --engine sharded: "
            "speculative windows + double-buffered rings + arrival-order "
            "folds (auto/on) or strict lockstep (off); default: auto",
        )
        p.add_argument(
            "--kernels",
            choices=("auto", "numba", "numpy"),
            default=None,
            help="kernel backend for --engine columnar/sharded: the "
            "compiled tier behind the hottest fold and site loops "
            "(numba when installed, numpy always; bit-identical either "
            "way; default: the REPRO_KERNELS env var, else auto)",
        )
        p.add_argument(
            "--worker-timeout",
            type=float,
            default=None,
            help="seconds the sharded supervisor waits for a worker "
            "message before classifying it as hung (--engine sharded "
            "only; default: 60)",
        )
        p.add_argument(
            "--max-worker-restarts",
            type=int,
            default=None,
            help="worker respawns the sharded supervisor may perform "
            "per run before degrading to a slower engine rung "
            "(--engine sharded only; default: 2)",
        )
        p.add_argument(
            "--fault-plan",
            metavar="PLAN",
            default=None,
            help="inject deterministic faults into the sharded engine's "
            "chaos seams: comma-separated kind:worker:window entries, "
            "e.g. 'kill:1:2,corrupt:0:3' (debug/test only)",
        )
        p.add_argument(
            "--profile",
            action="store_true",
            help="profile the run with cProfile and dump the top 20 "
            "functions to stderr (plus the sharded engine's window/"
            "speculation/timing breakdown when --engine sharded ran)",
        )
        p.add_argument(
            "--profile-sort",
            choices=("cumulative", "tottime"),
            default="cumulative",
            help="sort order for the profile dumps: cumulative time "
            "(callers inclusive) or tottime (self time — the view that "
            "surfaces the hot inner loops); default: cumulative",
        )
        p.add_argument(
            "--profile-out",
            metavar="FILE",
            default=None,
            help="write the full cProfile output to FILE (implies "
            "profiling; combine with --profile to also get the stderr "
            "summary)",
        )
        p.add_argument(
            "--metrics-out",
            metavar="FILE",
            default=None,
            help="run with a live metrics registry and write the "
            "telemetry to FILE at exit (.prom/.txt: Prometheus text; "
            "anything else: JSON snapshot)",
        )

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--sites", type=int, default=16, help="number of sites k")
        p.add_argument("--items", type=int, default=20000, help="stream length")
        p.add_argument(
            "--seed",
            type=int,
            default=None,
            help="root seed (default: the global --seed, else 0)",
        )
        engine_opts(p)

    p_swor = sub.add_parser("swor", help="weighted SWOR (Theorem 3)")
    common(p_swor)
    p_swor.add_argument("--sample", type=int, default=16, help="sample size s")
    p_swor.add_argument(
        "--alpha", type=float, default=1.2, help="Zipf tail index of weights"
    )

    p_swr = sub.add_parser("swr", help="weighted SWR (Corollary 1)")
    common(p_swr)
    p_swr.add_argument("--sample", type=int, default=16)
    p_swr.add_argument("--alpha", type=float, default=1.2)

    p_hh = sub.add_parser("hh", help="residual heavy hitters (Theorem 4)")
    common(p_hh)
    p_hh.add_argument("--eps", type=float, default=0.1)
    p_hh.add_argument("--delta", type=float, default=0.05)

    p_l1 = sub.add_parser("l1", help="L1 tracking (Theorem 6) vs baselines")
    common(p_l1)
    p_l1.add_argument("--eps", type=float, default=0.2)
    p_l1.add_argument("--delta", type=float, default=0.2)

    p_query = sub.add_parser(
        "query",
        help="run a catalog of estimation queries concurrently over one "
        "shared stream pass (subset sums, quantiles, group-bys, heavy "
        "hitters, total weight)",
    )
    common(p_query)
    p_query.add_argument(
        "--sample", type=int, default=64, help="sample size s per SWOR-backed query"
    )
    p_query.add_argument(
        "--alpha", type=float, default=1.2, help="Zipf tail index of weights"
    )

    p_stats = sub.add_parser(
        "stats",
        help="run a seeded SWOR workload with a live metrics registry "
        "and dump the telemetry to stdout (Prometheus text or JSON)",
    )
    common(p_stats)
    p_stats.add_argument("--sample", type=int, default=16, help="sample size s")
    p_stats.add_argument(
        "--alpha", type=float, default=1.2, help="Zipf tail index of weights"
    )
    p_stats.add_argument(
        "--format",
        choices=("prometheus", "json"),
        default="prometheus",
        help="exposition format printed to stdout (default: prometheus)",
    )

    p_bounds = sub.add_parser(
        "bounds", help="print every closed-form bound at given parameters"
    )
    p_bounds.add_argument("--sites", type=int, default=16)
    p_bounds.add_argument("--sample", type=int, default=16)
    p_bounds.add_argument("--eps", type=float, default=0.1)
    p_bounds.add_argument("--delta", type=float, default=0.05)
    p_bounds.add_argument("--weight", type=float, default=1e9)
    engine_opts(p_bounds)  # accepted for flag uniformity; bounds runs no stream
    return parser


def _check_engine_flags(args: argparse.Namespace) -> None:
    """Shared flag validation for every subcommand."""
    if args.batch_size is not None and args.engine not in (
        "batched",
        "columnar",
        "sharded",
    ):
        raise SystemExit(
            "--batch-size requires --engine batched, columnar, or sharded"
        )
    if args.workers is not None and args.engine != "sharded":
        raise SystemExit("--workers requires --engine sharded")
    if args.pipeline is not None and args.engine != "sharded":
        raise SystemExit("--pipeline requires --engine sharded")
    if args.kernels is not None and args.engine not in (
        "columnar",
        "sharded",
    ):
        raise SystemExit("--kernels requires --engine columnar or sharded")
    if args.worker_timeout is not None and args.engine != "sharded":
        raise SystemExit("--worker-timeout requires --engine sharded")
    if args.max_worker_restarts is not None and args.engine != "sharded":
        raise SystemExit("--max-worker-restarts requires --engine sharded")
    if args.fault_plan is not None and args.engine != "sharded":
        raise SystemExit("--fault-plan requires --engine sharded")


def _engine_of(args: argparse.Namespace):
    """Resolve the subcommand's engine selection (stashed on ``args``
    so ``--profile`` can print the engine's run stats afterwards).
    ``--metrics-out`` (and the ``stats`` subcommand) attach a live
    registry here, so every engine-driven run exports telemetry."""
    _check_engine_flags(args)
    engine = get_engine(
        args.engine,
        batch_size=args.batch_size,
        workers=args.workers,
        pipeline=args.pipeline,
        kernels=args.kernels,
        worker_timeout=args.worker_timeout,
        max_worker_restarts=args.max_worker_restarts,
        fault_plan=args.fault_plan,
    )
    args._engine = engine
    if getattr(args, "metrics_out", None) or args.command == "stats":
        from .obs import MetricsRegistry

        registry = MetricsRegistry()
        engine.instrument(registry)
        args._registry = registry
    return engine


def _resolve_seed(args: argparse.Namespace) -> None:
    """Fold the global ``--seed`` into the subcommand's (default 0)."""
    local = getattr(args, "seed", None)
    if local is None:
        local = args.global_seed if args.global_seed is not None else 0
    args.seed = local


def _cmd_swor(args: argparse.Namespace) -> str:
    rng = random.Random(args.seed)
    items = zipf_stream(args.items, rng, alpha=args.alpha)
    stream = round_robin(items, args.sites)
    proto = DistributedWeightedSWOR(
        SworConfig(num_sites=args.sites, sample_size=args.sample),
        seed=args.seed,
        engine=_engine_of(args),
    )
    counters = proto.run(stream)
    w = stream.total_weight()
    bound = bounds.swor_message_bound(args.sites, args.sample, w)
    rows = [
        {"ident": item.ident, "weight": item.weight, "key": key}
        for item, key in proto.sample_with_keys()
    ]
    table = format_table(rows, title="weighted SWOR sample (top keys first)")
    summary = (
        f"W={w:.4g}  messages={counters.total} "
        f"(bound {bound:.0f}, ratio {counters.total / bound:.2f})"
    )
    return table + summary


def _cmd_swr(args: argparse.Namespace) -> str:
    rng = random.Random(args.seed)
    items = zipf_stream(args.items, rng, alpha=args.alpha)
    stream = round_robin(items, args.sites)
    proto = DistributedWeightedSWR(
        args.sites, args.sample, seed=args.seed, engine=_engine_of(args)
    )
    counters = proto.run(stream)
    w = stream.total_weight()
    bound = bounds.swr_message_bound(args.sites, args.sample, w)
    rows = [
        {"slot": i, "ident": item.ident, "weight": item.weight}
        for i, item in enumerate(proto.sample())
    ]
    table = format_table(rows, title="weighted SWR sample (one item per slot)")
    summary = (
        f"W={w:.4g}  messages={counters.total} "
        f"(bound {bound:.0f}, ratio {counters.total / bound:.2f})"
    )
    return table + summary


def _cmd_hh(args: argparse.Namespace) -> str:
    rng = random.Random(args.seed)
    items = two_phase_residual_stream(
        args.items,
        rng,
        num_giants=4,
        giant_weight=1e7,
        residual_heavy=5,
        residual_fraction=min(0.15, args.eps * 1.5),
    )
    stream = round_robin(items, args.sites)
    tracker = ResidualHeavyHitterTracker(
        args.sites, args.eps, delta=args.delta, seed=args.seed,
        engine=_engine_of(args),
    )
    counters = tracker.run(stream)
    rows = [
        {"ident": item.ident, "weight": item.weight}
        for item in tracker.heavy_hitters()
    ]
    table = format_table(
        rows, title=f"residual heavy hitters (eps={args.eps}, s={tracker.sample_size})"
    )
    return table + f"messages={counters.total}"


def _cmd_l1(args: argparse.Namespace) -> str:
    items = unit_stream(args.items)
    truth = float(args.items)
    engine = _engine_of(args)
    rows = []
    trackers = [
        (
            "this work",
            L1Tracker(
                args.sites, args.eps, args.delta, seed=args.seed, engine=engine
            ),
        ),
        (
            "deterministic [14]",
            DeterministicCounterTracker(args.sites, args.eps, engine=engine),
        ),
        (
            "hyz-style [23]",
            HyzStyleTracker(args.sites, args.eps, seed=args.seed, engine=engine),
        ),
    ]
    for name, tracker in trackers:
        counters = tracker.run(round_robin(items, args.sites))
        estimate = tracker.estimate()
        rows.append(
            {
                "tracker": name,
                "estimate": estimate,
                "rel_err": abs(estimate - truth) / truth,
                "messages": counters.total,
            }
        )
    return format_table(
        rows, title=f"L1 tracking (W={truth:.0f}, eps={args.eps})"
    )


def _cmd_query(args: argparse.Namespace) -> str:
    from .query import (
        CountQuery,
        GroupByQuery,
        HeavyHittersQuery,
        MultiQueryDriver,
        QuantileQuery,
        QueryCatalog,
        SlidingWindowQuery,
        SubsetSumQuery,
        TotalWeightQuery,
    )

    _check_engine_flags(args)
    if (
        args.workers is not None
        or args.pipeline is not None
        or args.worker_timeout is not None
        or args.max_worker_restarts is not None
        or args.fault_plan is not None
    ):
        raise SystemExit(
            "repro query runs its fused multi-query pass in-process; "
            "--workers/--pipeline/--worker-timeout/--max-worker-restarts/"
            "--fault-plan do not apply (engine 'sharded' selects "
            "the columnar data plane)"
        )
    rng = random.Random(args.seed)
    items = zipf_stream(args.items, rng, alpha=args.alpha)
    stream = round_robin(items, args.sites)
    s = args.sample
    window = max(1, args.items // 4)  # shared by the query and its truth row
    catalog = QueryCatalog(
        [
            SubsetSumQuery("total_weight", sample_size=s),
            SubsetSumQuery(
                "even_idents",
                predicate=lambda item: item.ident % 2 == 0,
                sample_size=s,
            ),
            QuantileQuery("weight_quantiles", qs=(0.5, 0.9), sample_size=s),
            GroupByQuery(
                "by_ident_mod4", key=lambda item: item.ident % 4, sample_size=s
            ),
            CountQuery("item_count", sample_size=s),
            HeavyHittersQuery("heavy_hitters", eps=0.1),
            TotalWeightQuery("l1_total", eps=0.25, delta=0.1),
            SlidingWindowQuery("recent_weight", window=window, sample_size=s),
        ]
    )
    registry = None
    if getattr(args, "metrics_out", None):
        from .obs import MetricsRegistry

        registry = MetricsRegistry()
        args._registry = registry
    driver = MultiQueryDriver(
        catalog,
        num_sites=args.sites,
        seed=args.seed,
        engine=args.engine,
        batch_size=args.batch_size,
        registry=registry,
    )
    # The driver builds its engines internally (kernels=None), so a
    # --kernels request scopes the process default around the run.
    from .kernels import use_kernels

    with use_kernels(args.kernels):
        result = driver.run(stream)

    w = stream.total_weight()
    truths = {
        "total_weight": w,
        "even_idents": sum(i.weight for i in items if i.ident % 2 == 0),
        "item_count": float(len(items)),
        "l1_total": w,
        "recent_weight": sum(i.weight for i in items[-window:]),
    }
    rows = []
    for query in catalog:
        answer = result.answers[query.name]
        row = {"query": query.name, "spec": query.describe()}
        if hasattr(answer, "value"):
            row["estimate"] = answer.value
            row["ci95"] = f"[{answer.ci_low:.4g}, {answer.ci_high:.4g}]"
            truth = truths.get(query.name)
            if truth is not None:
                row["truth"] = truth
                row["rel_err"] = answer.rel_error(truth)
        elif isinstance(answer, dict):
            parts = ", ".join(
                f"{key}={est.value:.4g}" for key, est in sorted(answer.items())
            )
            row["estimate"] = parts
        else:  # heavy-hitter item list
            row["estimate"] = f"{len(answer)} items, top={answer[0].ident}"
        rows.append(row)
    table = format_table(
        rows,
        title=f"concurrent queries over one pass (k={args.sites}, "
        f"n={args.items}, engine={args.engine})",
    )
    messages = sum(c.total for c in result.counters.values())
    return table + (
        f"queries={len(catalog)}  items={result.items_processed}  "
        f"total_messages={messages}"
    )


def _cmd_stats(args: argparse.Namespace) -> str:
    """Run a seeded SWOR workload under a live registry and return the
    exposition: the quickest way to *see* the telemetry plane (and a
    handy smoke test that every layer exports)."""
    from .obs import render_json, render_prometheus

    engine = _engine_of(args)  # attaches args._registry (stats command)
    registry = args._registry
    rng = random.Random(args.seed)
    items = zipf_stream(args.items, rng, alpha=args.alpha)
    stream = round_robin(items, args.sites)
    proto = DistributedWeightedSWOR(
        SworConfig(num_sites=args.sites, sample_size=args.sample),
        seed=args.seed,
        engine=engine,
    )
    proto.run(stream)
    print(engine.format_stats(), file=sys.stderr)
    if args.format == "json":
        return render_json(registry)
    return render_prometheus(registry)


def _cmd_bounds(args: argparse.Namespace) -> str:
    _engine_of(args)  # no stream to run, but validate the flags uniformly
    k, s, eps, delta, w = (
        args.sites,
        args.sample,
        args.eps,
        args.delta,
        args.weight,
    )
    rows = [
        {"bound": "swor upper (Thm 3)", "value": bounds.swor_message_bound(k, s, w)},
        {"bound": "swor lower (Cor 2)", "value": bounds.swor_lower_bound(k, s, w)},
        {"bound": "swr upper (Cor 1)", "value": bounds.swr_message_bound(k, s, w)},
        {"bound": "naive per-site top-s", "value": bounds.naive_per_site_top_s_bound(k, s, w)},
        {"bound": "hh upper (Thm 4)", "value": bounds.hh_upper_bound(k, eps, delta, w)},
        {"bound": "hh lower (Thm 5)", "value": bounds.hh_lower_bound(k, eps, w)},
        {"bound": "l1 upper this work (Thm 6)", "value": bounds.l1_upper_this_work(k, eps, delta, w)},
        {"bound": "l1 upper [14]+folklore", "value": bounds.l1_upper_cmyz_folklore(k, eps, w)},
        {"bound": "l1 upper [23]", "value": bounds.l1_upper_hyz(k, eps, delta, w)},
        {"bound": "l1 lower [23]", "value": bounds.l1_lower_hyz(k, eps, w)},
        {"bound": "l1 lower this work (Thm 7)", "value": bounds.l1_lower_this_work(k, w)},
    ]
    return format_table(
        rows,
        title=f"closed-form bounds at k={k}, s={s}, eps={eps}, delta={delta}, W={w:.3g}",
    )


_COMMANDS = {
    "swor": _cmd_swor,
    "swr": _cmd_swr,
    "hh": _cmd_hh,
    "l1": _cmd_l1,
    "query": _cmd_query,
    "stats": _cmd_stats,
    "bounds": _cmd_bounds,
}


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    _resolve_seed(args)
    command = _COMMANDS[args.command]
    profile_out = getattr(args, "profile_out", None)
    if getattr(args, "profile", False) or profile_out:
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        profiler.enable()
        output = command(args)
        profiler.disable()
        sort_key = getattr(args, "profile_sort", "cumulative")
        if profile_out:
            with open(profile_out, "w", encoding="utf-8") as fh:
                pstats.Stats(profiler, stream=fh).sort_stats(
                    sort_key
                ).print_stats()
            print(f"profile written to {profile_out}", file=sys.stderr)
        if getattr(args, "profile", False):
            stats = pstats.Stats(profiler, stream=sys.stderr)
            stats.sort_stats(sort_key).print_stats(20)
            engine = getattr(args, "_engine", None)
            if hasattr(engine, "format_stats"):
                print(engine.format_stats(), file=sys.stderr)
    else:
        output = command(args)
    metrics_out = getattr(args, "metrics_out", None)
    registry = getattr(args, "_registry", None)
    if metrics_out and registry is not None:
        from .obs import write_metrics

        written = write_metrics(registry, metrics_out)
        print(f"metrics written to {metrics_out} ({written})", file=sys.stderr)
    print(output)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())

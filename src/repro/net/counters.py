"""Message accounting — the experiment's primary measurement.

Every experiment in DESIGN.md reports message counts; this module keeps
them honestly.  A broadcast from the coordinator to ``k`` sites costs
``k`` messages (the paper charges broadcasts the same way, e.g. "this
announcement requires k messages", Section 3).  Word counts are tracked
alongside so Proposition 7's O(1)-words-per-message claim is auditable.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict

from ..common.words import (
    _ONE_WORD_MAGNITUDE,
    words_for_payload,
    words_for_value,
    words_for_values_array,
)
from .messages import EARLY, Message, MessagePack

__all__ = ["MessageCounters"]

#: Packs at or below this size are accounted with a scalar loop (the
#: typical steady-state pack carries a handful of entries, where numpy
#: call overhead dwarfs the arithmetic); larger packs vectorize.
_SCALAR_PACK_LIMIT = 64


def _value_words(value: float) -> int:
    """Scalar fast path of :func:`~repro.common.words.words_for_value`
    — equal by the same case analysis as ``words_for_values_array``."""
    if -_ONE_WORD_MAGNITUDE <= value <= _ONE_WORD_MAGNITUDE:
        return 1
    return words_for_value(float(value))


class MessageCounters:
    """Tallies of messages by kind and direction.

    Attributes
    ----------
    upstream:
        Total site -> coordinator messages.
    downstream:
        Total coordinator -> site messages (a broadcast to ``k`` sites
        adds ``k``).
    by_kind:
        Per-kind message counts.
    words:
        Total machine words carried by all counted messages.
    """

    def __init__(self) -> None:
        self.upstream = 0
        self.downstream = 0
        self.by_kind: Counter = Counter()
        self.words = 0
        self.max_message_words = 0

    @staticmethod
    def _message_words(message: Message) -> int:
        """Words for one copy of ``message`` (+1 for the kind tag),
        cached on the message object — repeat counts of the same object
        (broadcast copies, multi-query shared deliveries) are free."""
        try:
            return message._words
        except AttributeError:
            w = words_for_payload(message.payload) + 1
            message._words = w
            return w

    def record_upstream(self, message: Message) -> None:
        """Count one site -> coordinator message."""
        self.upstream += 1
        self.by_kind[message.kind] += 1
        w = self._message_words(message)
        self.words += w
        if w > self.max_message_words:
            self.max_message_words = w

    def record_upstream_pack(self, pack: MessagePack) -> None:
        """Count a :class:`~repro.net.messages.MessagePack` as the
        messages it stands for.

        Every tally — totals, per-kind counts, words, and the
        max-words watermark — lands exactly where
        :meth:`record_upstream` over ``pack.messages()`` would put it:
        per-entry words are ``words_for_payload(payload) + 1`` via
        :func:`~repro.common.words.words_for_values_array`, whose
        element-wise equality with the scalar accounting is proved in
        its docstring (and pinned by tests).
        """
        ne, nr = pack.num_early, pack.num_regular
        if ne == 0 and nr == 0:
            return
        self.upstream += ne + nr
        extra = pack.regular_extra
        max_words = self.max_message_words
        words = 0
        if ne + nr <= _SCALAR_PACK_LIMIT:
            if ne:
                self.by_kind[EARLY] += ne
                for e, w in zip(
                    pack.early_idents.tolist(), pack.early_weights.tolist()
                ):
                    per = _value_words(e) + _value_words(w) + 1
                    words += per
                    if per > max_words:
                        max_words = per
            if nr:
                self.by_kind[pack.regular_kind] += nr
                extra_list = (
                    extra.tolist() if extra is not None else [None] * nr
                )
                for e, w, k, x in zip(
                    pack.regular_idents.tolist(),
                    pack.regular_weights.tolist(),
                    pack.regular_keys.tolist(),
                    extra_list,
                ):
                    per = _value_words(e) + _value_words(w) + _value_words(k) + 1
                    if x is not None:
                        per += _value_words(x)
                    words += per
                    if per > max_words:
                        max_words = per
        else:
            if ne:
                self.by_kind[EARLY] += ne
                per = words_for_values_array(pack.early_idents)
                per += words_for_values_array(pack.early_weights)
                per += 1  # the kind tag
                words += int(per.sum())
                max_words = max(max_words, int(per.max()))
            if nr:
                self.by_kind[pack.regular_kind] += nr
                per = words_for_values_array(pack.regular_idents)
                per += words_for_values_array(pack.regular_weights)
                per += words_for_values_array(pack.regular_keys)
                if extra is not None:
                    per += words_for_values_array(extra)
                per += 1  # the kind tag
                words += int(per.sum())
                max_words = max(max_words, int(per.max()))
        self.words += words
        self.max_message_words = max_words

    def record_downstream(self, message: Message, copies: int = 1) -> None:
        """Count a coordinator -> site message (``copies`` recipients)."""
        self.downstream += copies
        self.by_kind[message.kind] += copies
        per = self._message_words(message)
        self.words += per * copies
        if per > self.max_message_words:
            self.max_message_words = per

    @property
    def total(self) -> int:
        """Total messages in both directions — the paper's metric."""
        return self.upstream + self.downstream

    def snapshot_state(self):
        """An opaque rewind point for the pipelined sharded engine.

        The engine counts packs as it folds them out of order; when a
        mid-window response forces an exact ordered refold, the
        counters rewind with the coordinator so the replay re-records
        everything exactly once.
        """
        return (
            self.upstream,
            self.downstream,
            Counter(self.by_kind),
            self.words,
            self.max_message_words,
        )

    def restore_state(self, state) -> None:
        """Rewind to a :meth:`snapshot_state` taken on this instance."""
        upstream, downstream, by_kind, words, max_words = state
        self.upstream = upstream
        self.downstream = downstream
        self.by_kind = Counter(by_kind)
        self.words = words
        self.max_message_words = max_words

    def snapshot(self) -> Dict[str, int]:
        """A plain-dict summary for experiment tables."""
        out = {
            "total": self.total,
            "upstream": self.upstream,
            "downstream": self.downstream,
            "words": self.words,
            "max_message_words": self.max_message_words,
        }
        for kind, count in sorted(self.by_kind.items()):
            out[f"kind:{kind}"] = count
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MessageCounters(total={self.total}, by_kind={dict(self.by_kind)})"

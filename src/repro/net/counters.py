"""Message accounting — the experiment's primary measurement.

Every experiment in DESIGN.md reports message counts; this module keeps
them honestly.  A broadcast from the coordinator to ``k`` sites costs
``k`` messages (the paper charges broadcasts the same way, e.g. "this
announcement requires k messages", Section 3).  Word counts are tracked
alongside so Proposition 7's O(1)-words-per-message claim is auditable.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict

from ..common.words import words_for_payload
from .messages import Message

__all__ = ["MessageCounters"]


class MessageCounters:
    """Tallies of messages by kind and direction.

    Attributes
    ----------
    upstream:
        Total site -> coordinator messages.
    downstream:
        Total coordinator -> site messages (a broadcast to ``k`` sites
        adds ``k``).
    by_kind:
        Per-kind message counts.
    words:
        Total machine words carried by all counted messages.
    """

    def __init__(self) -> None:
        self.upstream = 0
        self.downstream = 0
        self.by_kind: Counter = Counter()
        self.words = 0
        self.max_message_words = 0

    @staticmethod
    def _message_words(message: Message) -> int:
        """Words for one copy of ``message`` (+1 for the kind tag),
        cached on the message object — repeat counts of the same object
        (broadcast copies, multi-query shared deliveries) are free."""
        try:
            return message._words
        except AttributeError:
            w = words_for_payload(message.payload) + 1
            message._words = w
            return w

    def record_upstream(self, message: Message) -> None:
        """Count one site -> coordinator message."""
        self.upstream += 1
        self.by_kind[message.kind] += 1
        w = self._message_words(message)
        self.words += w
        if w > self.max_message_words:
            self.max_message_words = w

    def record_downstream(self, message: Message, copies: int = 1) -> None:
        """Count a coordinator -> site message (``copies`` recipients)."""
        self.downstream += copies
        self.by_kind[message.kind] += copies
        per = self._message_words(message)
        self.words += per * copies
        if per > self.max_message_words:
            self.max_message_words = per

    @property
    def total(self) -> int:
        """Total messages in both directions — the paper's metric."""
        return self.upstream + self.downstream

    def snapshot(self) -> Dict[str, int]:
        """A plain-dict summary for experiment tables."""
        out = {
            "total": self.total,
            "upstream": self.upstream,
            "downstream": self.downstream,
            "words": self.words,
            "max_message_words": self.max_message_words,
        }
        for kind, count in sorted(self.by_kind.items()):
            out[f"kind:{kind}"] = count
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MessageCounters(total={self.total}, by_kind={dict(self.by_kind)})"

"""Deprecated location of the coordinator/sites driver.

The execution layer moved to :mod:`repro.runtime`, which owns the
protocol interfaces (:class:`~repro.runtime.SiteAlgorithm`,
:class:`~repro.runtime.CoordinatorAlgorithm`, :data:`~repro.runtime.BROADCAST`),
the wiring (:class:`~repro.runtime.Network`), and the pluggable engines
(:class:`~repro.runtime.ReferenceEngine`, :class:`~repro.runtime.BatchedEngine`).

This module remains only as a compatibility shim: attribute access
re-exports the moved names and emits a :class:`DeprecationWarning`.
Import from :mod:`repro.runtime` (or :mod:`repro.net`, which re-exports
the stable names without a warning) instead.
"""

from __future__ import annotations

import warnings

__all__ = ["SiteAlgorithm", "CoordinatorAlgorithm", "BROADCAST", "Network"]


def __getattr__(name: str):
    if name in __all__:
        warnings.warn(
            f"repro.net.simulator.{name} is deprecated; import it from "
            "repro.runtime instead",
            DeprecationWarning,
            stacklevel=2,
        )
        from .. import runtime

        return getattr(runtime, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(__all__)

"""Synchronous coordinator/sites driver (the model of Section 2.1).

The continuous distributed streaming model: ``k`` sites each observe a
local stream; in each round a site may observe one item, send messages
to the coordinator, and receive a response before the next arrival.
FIFO order, no loss, no crashes.  Message count is the cost.

This driver replays a :class:`~repro.stream.item.DistributedStream` in
global arrival order, delivering each site's upstream messages to the
coordinator immediately and the coordinator's responses (possibly
broadcasts) back before the next item — the synchrony the paper assumes.
Every message passes through :class:`~repro.net.counters.MessageCounters`.

Protocol implementations plug in via two small interfaces,
:class:`SiteAlgorithm` and :class:`CoordinatorAlgorithm`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from ..common.errors import ConfigurationError
from ..stream.item import DistributedStream, Item
from .counters import MessageCounters
from .messages import Message

__all__ = ["SiteAlgorithm", "CoordinatorAlgorithm", "BROADCAST", "Network"]

#: Destination constant: deliver to every site (costs ``k`` messages).
BROADCAST = -1


class SiteAlgorithm(ABC):
    """Per-site half of a distributed protocol."""

    @abstractmethod
    def on_item(self, item: Item) -> List[Message]:
        """Observe one local arrival; return upstream messages (maybe [])."""

    @abstractmethod
    def on_control(self, message: Message) -> None:
        """Receive a downstream control message from the coordinator."""

    def state_words(self) -> int:
        """Approximate persistent state size in machine words.

        Default implementation counts nothing; protocol sites override
        so experiment E12 can check the O(1)-words claim.
        """
        return 0


class CoordinatorAlgorithm(ABC):
    """Coordinator half of a distributed protocol."""

    @abstractmethod
    def on_message(
        self, site_id: int, message: Message
    ) -> List[Tuple[int, Message]]:
        """Handle one upstream message.

        Returns a list of ``(destination, message)`` responses, where
        destination is a site index or :data:`BROADCAST`.
        """

    def state_words(self) -> int:
        """Approximate persistent state size in machine words."""
        return 0


class Network:
    """Wires ``k`` site instances and a coordinator, counting messages.

    Parameters
    ----------
    sites:
        One :class:`SiteAlgorithm` per site.
    coordinator:
        The :class:`CoordinatorAlgorithm`.
    counters:
        Optional externally-owned counters (a fresh one is created
        otherwise).
    """

    def __init__(
        self,
        sites: Sequence[SiteAlgorithm],
        coordinator: CoordinatorAlgorithm,
        counters: Optional[MessageCounters] = None,
    ) -> None:
        if not sites:
            raise ConfigurationError("need at least one site")
        self.sites: List[SiteAlgorithm] = list(sites)
        self.coordinator = coordinator
        self.counters = counters if counters is not None else MessageCounters()
        self.items_processed = 0

    @property
    def num_sites(self) -> int:
        return len(self.sites)

    def deliver_upstream(self, site_id: int, message: Message) -> None:
        """Deliver one site message to the coordinator, then fan out the
        coordinator's responses synchronously."""
        self.counters.record_upstream(message)
        responses = self.coordinator.on_message(site_id, message)
        for dest, response in responses:
            self.deliver_downstream(dest, response)

    def deliver_downstream(self, dest: int, message: Message) -> None:
        """Deliver a coordinator response to one site or to all sites."""
        if dest == BROADCAST:
            self.counters.record_downstream(message, copies=self.num_sites)
            for site in self.sites:
                site.on_control(message)
            return
        if not 0 <= dest < self.num_sites:
            raise ConfigurationError(f"destination site {dest} out of range")
        self.counters.record_downstream(message, copies=1)
        self.sites[dest].on_control(message)

    def step(self, site_id: int, item: Item) -> None:
        """Process one arrival at one site (one model round)."""
        messages = self.sites[site_id].on_item(item)
        for message in messages:
            self.deliver_upstream(site_id, message)
        self.items_processed += 1

    def run(
        self,
        stream: DistributedStream,
        on_step: Optional[Callable[[int], None]] = None,
        checkpoints: Optional[Iterable[int]] = None,
        on_checkpoint: Optional[Callable[[int], None]] = None,
    ) -> MessageCounters:
        """Replay a full distributed stream in global arrival order.

        Parameters
        ----------
        stream:
            The distributed stream to replay.
        on_step:
            Optional callback invoked after *every* item with the number
            of items processed so far.
        checkpoints / on_checkpoint:
            When both given, ``on_checkpoint(t)`` fires after processing
            item ``t`` (1-indexed) for each ``t`` in ``checkpoints`` —
            used by the accuracy experiments to query the coordinator at
            fixed times.
        """
        if stream.num_sites != self.num_sites:
            raise ConfigurationError(
                f"stream has {stream.num_sites} sites, network has {self.num_sites}"
            )
        checkset = set(checkpoints) if checkpoints is not None else None
        for site_id, item in stream:
            self.step(site_id, item)
            t = self.items_processed
            if on_step is not None:
                on_step(t)
            if checkset is not None and on_checkpoint is not None and t in checkset:
                on_checkpoint(t)
        return self.counters

    def site_state_words(self) -> List[int]:
        """Per-site persistent state, in words (experiment E12)."""
        return [site.state_words() for site in self.sites]

"""Coordinator/sites driver — compatibility re-exports from ``repro.runtime``.

Historically this module owned the single, strictly synchronous driver.
Execution strategy is now a first-class abstraction in
:mod:`repro.runtime`, with two engines behind a common interface:

* **reference** (:class:`repro.runtime.ReferenceEngine`) — the model of
  Section 2.1: ``k`` sites each observe a local stream; in each round a
  site may observe one item, send messages to the coordinator, and
  receive a response before the next arrival.  FIFO order, no loss, no
  crashes; message count is the cost.  This is the historical
  ``Network.run`` behavior, preserved bit for bit on golden seeds.

* **batched** (:class:`repro.runtime.BatchedEngine`) — arrivals are
  processed in chunks: sites vectorize per-batch key generation through
  the bulk hook ``on_items``, upstream messages flush to the
  coordinator per batch, and control broadcasts (``EPOCH_UPDATE`` /
  ``LEVEL_SATURATED``) take effect at batch boundaries.  Sites then
  filter on *stale* (smaller) thresholds, which only produces extra
  messages that the coordinator re-checks and discards — the sample
  distribution is preserved exactly, at a bounded message overhead.

Both engines replay a :class:`~repro.stream.item.DistributedStream` in
global arrival order and pass every message through
:class:`~repro.net.counters.MessageCounters`.  Protocol implementations
plug in via :class:`SiteAlgorithm` and :class:`CoordinatorAlgorithm`;
all four names below are re-exports and remain API-compatible.
"""

from __future__ import annotations

from ..runtime.interfaces import BROADCAST, CoordinatorAlgorithm, SiteAlgorithm
from ..runtime.network import Network

__all__ = ["SiteAlgorithm", "CoordinatorAlgorithm", "BROADCAST", "Network"]

"""Network substrate: messages, FIFO channels, counters, and the driver."""

from .channel import FifoChannel
from .counters import MessageCounters
from .messages import (
    COUNT_REPORT,
    DOWNSTREAM_KINDS,
    EARLY,
    EPOCH_UPDATE,
    ESTIMATE_BROADCAST,
    LEVEL_SATURATED,
    Message,
    RAW_ITEM,
    REGULAR,
    ROUND_UPDATE,
    SWR_SAMPLE,
    UPSTREAM_KINDS,
)
from ..runtime import BROADCAST, CoordinatorAlgorithm, Network, SiteAlgorithm
from .tracing import MessageTrace, TraceEvent

__all__ = [
    "Message",
    "EARLY",
    "REGULAR",
    "LEVEL_SATURATED",
    "EPOCH_UPDATE",
    "ROUND_UPDATE",
    "SWR_SAMPLE",
    "COUNT_REPORT",
    "ESTIMATE_BROADCAST",
    "RAW_ITEM",
    "UPSTREAM_KINDS",
    "DOWNSTREAM_KINDS",
    "FifoChannel",
    "MessageCounters",
    "BROADCAST",
    "Network",
    "SiteAlgorithm",
    "CoordinatorAlgorithm",
    "MessageTrace",
    "TraceEvent",
]

"""Message tracing — observability for protocol debugging.

Wraps a :class:`~repro.runtime.Network`'s counters with an
event log that records every message in causal order, so tests (and
humans) can assert *sequencing* properties the counters cannot see:
e.g. that a ``LEVEL_SATURATED`` broadcast happens exactly once per
level and only after its ``4rs``-th early message, or that epoch
announcements are strictly increasing.

Usage::

    trace = MessageTrace.attach(protocol.network)
    protocol.run(stream)
    trace.events               # [TraceEvent, ...] in causal order
    trace.kinds()              # Counter of kinds
"""

from __future__ import annotations

from collections import Counter
from typing import List, NamedTuple, Optional, Tuple

from ..runtime import Network
from .messages import Message

__all__ = ["TraceEvent", "MessageTrace"]


class TraceEvent(NamedTuple):
    """One recorded message."""

    seq: int            # causal position
    direction: str      # "up" or "down"
    endpoint: int       # site id for "up"; destination (or -1) for "down"
    kind: str
    payload: Tuple


class MessageTrace:
    """An event log attached to a live network.

    Attach *before* running the stream; detaching is unnecessary (the
    wrapper delegates everything and keeps no protocol state).
    """

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []

    @classmethod
    def attach(cls, network: Network) -> "MessageTrace":
        """Instrument ``network`` in place and return the trace."""
        trace = cls()
        original_up = network.deliver_upstream
        original_down = network.deliver_downstream

        def traced_up(site_id: int, message: Message) -> None:
            trace.events.append(
                TraceEvent(
                    len(trace.events), "up", site_id, message.kind, message.payload
                )
            )
            original_up(site_id, message)

        def traced_down(dest: int, message: Message) -> None:
            trace.events.append(
                TraceEvent(
                    len(trace.events), "down", dest, message.kind, message.payload
                )
            )
            original_down(dest, message)

        network.deliver_upstream = traced_up  # type: ignore[method-assign]
        network.deliver_downstream = traced_down  # type: ignore[method-assign]
        return trace

    # -- queries --------------------------------------------------------

    def kinds(self) -> Counter:
        """Message counts by kind (one entry per broadcast, not per copy)."""
        return Counter(e.kind for e in self.events)

    def of_kind(self, kind: str) -> List[TraceEvent]:
        """All events of one kind, in causal order."""
        return [e for e in self.events if e.kind == kind]

    def first_index(self, kind: str) -> Optional[int]:
        """Causal position of the first event of ``kind`` (None if absent)."""
        for event in self.events:
            if event.kind == kind:
                return event.seq
        return None

    def payload_series(self, kind: str) -> List[Tuple]:
        """Payloads of a kind in causal order (e.g. epoch thresholds)."""
        return [e.payload for e in self.events if e.kind == kind]

"""FIFO channels between sites and the coordinator.

The model (Section 2.1) assumes FIFO delivery, no loss, and no crashes.
The synchronous driver in :mod:`repro.runtime` delivers messages
immediately, so channels exist to (a) make the FIFO assumption an
*enforced invariant* rather than an accident of the driver, and (b) let
fault-injection tests violate it deliberately and observe that the
protocol layer detects the violation.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

from ..common.errors import ProtocolViolationError
from .messages import Message

__all__ = ["FifoChannel"]


class FifoChannel:
    """An order-preserving message queue with sequence-number checking."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._queue: Deque[Tuple[int, Message]] = deque()
        self._next_send_seq = 0
        self._next_recv_seq = 0

    def send(self, message: Message) -> None:
        """Enqueue a message; stamps it with the next sequence number."""
        self._queue.append((self._next_send_seq, message))
        self._next_send_seq += 1

    def receive(self) -> Optional[Message]:
        """Dequeue the next message, enforcing FIFO order.

        Returns ``None`` when the channel is empty.
        """
        if not self._queue:
            return None
        seq, message = self._queue.popleft()
        if seq != self._next_recv_seq:
            raise ProtocolViolationError(
                f"channel {self.name}: message {seq} delivered, "
                f"expected {self._next_recv_seq} (FIFO violated)"
            )
        self._next_recv_seq += 1
        return message

    def drain(self):
        """Yield all queued messages in FIFO order."""
        while self._queue:
            msg = self.receive()
            if msg is None:  # pragma: no cover - loop guard
                break
            yield msg

    def reorder_for_test(self) -> None:
        """Swap the two front messages (fault injection for tests)."""
        if len(self._queue) >= 2:
            first = self._queue.popleft()
            second = self._queue.popleft()
            self._queue.appendleft(first)
            self._queue.appendleft(second)

    def __len__(self) -> int:
        return len(self._queue)

"""Typed messages exchanged between sites and the coordinator.

The paper's cost model counts *messages*, each a constant number of
machine words (Section 2.1, Proposition 7).  We model a message as a
kind tag plus a small payload tuple; the word accounting in
:mod:`repro.common.words` verifies payloads stay O(1) words.

Message kinds mirror the paper's vocabulary:

* ``EARLY`` — site forwards a withheld item to a level set
  (Algorithm 1 line 8);
* ``REGULAR`` — site forwards an item whose key beat the epoch
  threshold (Algorithm 1 line 13);
* ``LEVEL_SATURATED`` — coordinator broadcast when a level set fills
  (Algorithm 2 line 17);
* ``EPOCH_UPDATE`` — coordinator broadcast of the new threshold
  (Algorithm 3 line 8);
* the remaining kinds serve the SWR reduction and the application-layer
  trackers (rounds, counter reports, estimate refreshes).
"""

from __future__ import annotations

from typing import Tuple

__all__ = [
    "Message",
    "EARLY",
    "REGULAR",
    "LEVEL_SATURATED",
    "EPOCH_UPDATE",
    "ROUND_UPDATE",
    "SWR_SAMPLE",
    "COUNT_REPORT",
    "ESTIMATE_BROADCAST",
    "RAW_ITEM",
    "UPSTREAM_KINDS",
    "DOWNSTREAM_KINDS",
]

EARLY = "early"
REGULAR = "regular"
LEVEL_SATURATED = "level_saturated"
EPOCH_UPDATE = "epoch_update"
ROUND_UPDATE = "round_update"
SWR_SAMPLE = "swr_sample"
COUNT_REPORT = "count_report"
ESTIMATE_BROADCAST = "estimate_broadcast"
RAW_ITEM = "raw_item"

#: Kinds that travel site -> coordinator.
UPSTREAM_KINDS = frozenset({EARLY, REGULAR, SWR_SAMPLE, COUNT_REPORT, RAW_ITEM})
#: Kinds that travel coordinator -> site(s).
DOWNSTREAM_KINDS = frozenset(
    {LEVEL_SATURATED, EPOCH_UPDATE, ROUND_UPDATE, ESTIMATE_BROADCAST}
)


class Message:
    """One network message: a kind tag and a small payload tuple.

    Deliberately minimal (``__slots__``) — protocol hot paths construct
    many of these.  ``_words`` caches the payload's word-accounting cost
    (filled lazily by :class:`~repro.net.counters.MessageCounters`): the
    same object is counted once per broadcast copy, and the multi-query
    driver delivers one shared ``EARLY`` object to every concurrent
    query, so the cache amortizes the accounting across deliveries.

    ``early_hint`` is an optional sender-attached memo for ``EARLY``
    messages: the ``(Item, level)`` pair the receiving coordinator
    would otherwise rebuild from the payload (the level is a pure
    function of the weight and the protocol's ``r``; the item is the
    payload as an :class:`~repro.stream.item.Item`).  Batch drivers
    that already computed levels vectorized attach it; it carries no
    information beyond the payload and is not counted as message words.
    """

    __slots__ = ("kind", "payload", "_words", "early_hint")

    def __init__(self, kind: str, payload: Tuple = ()) -> None:
        self.kind = kind
        self.payload = payload

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Message({self.kind!r}, {self.payload!r})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Message)
            and other.kind == self.kind
            and other.payload == self.payload
        )

    def __hash__(self) -> int:
        return hash((self.kind, self.payload))

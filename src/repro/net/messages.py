"""Typed messages exchanged between sites and the coordinator.

The paper's cost model counts *messages*, each a constant number of
machine words (Section 2.1, Proposition 7).  We model a message as a
kind tag plus a small payload tuple; the word accounting in
:mod:`repro.common.words` verifies payloads stay O(1) words.

Message kinds mirror the paper's vocabulary:

* ``EARLY`` — site forwards a withheld item to a level set
  (Algorithm 1 line 8);
* ``REGULAR`` — site forwards an item whose key beat the epoch
  threshold (Algorithm 1 line 13);
* ``LEVEL_SATURATED`` — coordinator broadcast when a level set fills
  (Algorithm 2 line 17);
* ``EPOCH_UPDATE`` — coordinator broadcast of the new threshold
  (Algorithm 3 line 8);
* the remaining kinds serve the SWR reduction and the application-layer
  trackers (rounds, counter reports, estimate refreshes).
"""

from __future__ import annotations

from typing import Dict, Tuple

__all__ = [
    "Message",
    "MessagePack",
    "PackWireError",
    "EARLY",
    "REGULAR",
    "LEVEL_SATURATED",
    "EPOCH_UPDATE",
    "ROUND_UPDATE",
    "SWR_SAMPLE",
    "COUNT_REPORT",
    "ESTIMATE_BROADCAST",
    "RAW_ITEM",
    "UPSTREAM_KINDS",
    "DOWNSTREAM_KINDS",
]

EARLY = "early"
REGULAR = "regular"
LEVEL_SATURATED = "level_saturated"
EPOCH_UPDATE = "epoch_update"
ROUND_UPDATE = "round_update"
SWR_SAMPLE = "swr_sample"
COUNT_REPORT = "count_report"
ESTIMATE_BROADCAST = "estimate_broadcast"
RAW_ITEM = "raw_item"

#: Kinds that travel site -> coordinator.
UPSTREAM_KINDS = frozenset({EARLY, REGULAR, SWR_SAMPLE, COUNT_REPORT, RAW_ITEM})
#: Kinds that travel coordinator -> site(s).
DOWNSTREAM_KINDS = frozenset(
    {LEVEL_SATURATED, EPOCH_UPDATE, ROUND_UPDATE, ESTIMATE_BROADCAST}
)


class PackWireError(ValueError):
    """A pack's wire form is malformed: unknown or incomplete columns,
    ragged halves, or a descriptor pointing outside its buffer.

    Raised at the process/network boundary (:meth:`MessagePack.from_arrays`
    / :meth:`MessagePack.read_from`) so a poisoned or truncated pack is
    rejected before it can crash a coordinator fold; the sharded
    supervisor classifies it as a ``poison`` fault.  Subclasses
    :class:`ValueError` for compatibility with pre-existing callers.
    """


class Message:
    """One network message: a kind tag and a small payload tuple.

    Deliberately minimal (``__slots__``) — protocol hot paths construct
    many of these.  ``_words`` caches the payload's word-accounting cost
    (filled lazily by :class:`~repro.net.counters.MessageCounters`): the
    same object is counted once per broadcast copy, and the multi-query
    driver delivers one shared ``EARLY`` object to every concurrent
    query, so the cache amortizes the accounting across deliveries.

    ``early_hint`` is an optional sender-attached memo for ``EARLY``
    messages: the ``(Item, level)`` pair the receiving coordinator
    would otherwise rebuild from the payload (the level is a pure
    function of the weight and the protocol's ``r``; the item is the
    payload as an :class:`~repro.stream.item.Item`).  Batch drivers
    that already computed levels vectorized attach it; it carries no
    information beyond the payload and is not counted as message words.
    """

    __slots__ = ("kind", "payload", "_words", "early_hint")

    def __init__(self, kind: str, payload: Tuple = ()) -> None:
        self.kind = kind
        self.payload = payload

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Message({self.kind!r}, {self.payload!r})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Message)
            and other.kind == self.kind
            and other.payload == self.payload
        )

    def __hash__(self) -> int:
        return hash((self.kind, self.payload))


class MessagePack:
    """One site -> coordinator transmission carrying a whole batch.

    The columnar runtime's wire unit: instead of ``N`` separate
    :class:`Message` objects per (site, batch), a single pack carries
    the batch's ``EARLY`` and keyed entries as parallel arrays, in the
    exact order the batched engine would have delivered the individual
    messages (all earlies in arrival order, then all keyed entries in
    arrival order).  A pack is pure transport: it stands for its
    constituent messages, and its word accounting (see
    :meth:`~repro.net.counters.MessageCounters.record_upstream_pack`)
    equals the sum over :meth:`messages` exactly — a pack is never
    cheaper or dearer than what it replaces, it just avoids the
    per-message Python objects.

    The keyed ("regular") half is kind-parametric so every protocol's
    columnar path shares one wire unit: ``regular_kind`` defaults to
    ``REGULAR`` (payload ``(ident, weight, key)`` — weighted SWOR,
    unweighted SWOR, the L1 tracker), and the SWR reduction sets it to
    ``SWR_SAMPLE`` with the per-entry sampler index in the
    ``regular_extra`` column (payload
    ``(sampler, ident, weight, key)``).

    ``early_levels`` is the per-early level index (a pure function of
    the weight and the protocol's ``r``, computed vectorized at the
    site); like ``Message.early_hint`` it carries no information beyond
    the payloads and is not counted as words.  ``early_items`` is an
    optional memo of pre-built :class:`~repro.stream.item.Item` objects
    aligned with the early columns — multi-query drivers attach one
    shared list so every member coordinator parks the same objects.

    Either half may be ``None`` (no entries of that kind).
    """

    __slots__ = (
        "early_idents",
        "early_weights",
        "early_levels",
        "regular_idents",
        "regular_weights",
        "regular_keys",
        "regular_kind",
        "regular_extra",
        "early_items",
    )

    def __init__(
        self,
        early_idents=None,
        early_weights=None,
        early_levels=None,
        regular_idents=None,
        regular_weights=None,
        regular_keys=None,
        regular_kind: str = REGULAR,
        regular_extra=None,
    ) -> None:
        self.early_idents = early_idents
        self.early_weights = early_weights
        self.early_levels = early_levels
        self.regular_idents = regular_idents
        self.regular_weights = regular_weights
        self.regular_keys = regular_keys
        self.regular_kind = regular_kind
        self.regular_extra = regular_extra
        self.early_items = None

    @property
    def num_early(self) -> int:
        return 0 if self.early_idents is None else len(self.early_idents)

    @property
    def num_regular(self) -> int:
        return 0 if self.regular_idents is None else len(self.regular_idents)

    def __len__(self) -> int:
        return self.num_early + self.num_regular

    def messages(self):
        """Materialize the constituent :class:`Message` objects, in
        delivery order — the pack's meaning, used by traced networks,
        generic coordinators, and the accounting-equality tests."""
        out = []
        for i in range(self.num_early):
            out.append(
                Message(
                    EARLY,
                    (int(self.early_idents[i]), float(self.early_weights[i])),
                )
            )
        kind = self.regular_kind
        extra = self.regular_extra
        for i in range(self.num_regular):
            payload = (
                int(self.regular_idents[i]),
                float(self.regular_weights[i]),
                float(self.regular_keys[i]),
            )
            if extra is not None:
                payload = (int(extra[i]),) + payload
            out.append(Message(kind, payload))
        return out

    #: Canonical wire dtype per column (the site fast paths already
    #: produce exactly these; :meth:`from_arrays` re-coerces so a pack
    #: that crossed a process or network boundary word-accounts exactly
    #: like the pack it was serialized from).
    WIRE_DTYPES = {
        "early_idents": "int64",
        "early_weights": "float64",
        "early_levels": "int64",
        "regular_idents": "int64",
        "regular_weights": "float64",
        "regular_keys": "float64",
        "regular_extra": "int64",
    }

    def to_arrays(self) -> Tuple[str, Dict[str, object]]:
        """Pure-array wire form: ``(regular_kind, {column: array})``.

        The inverse of :meth:`from_arrays`.  Only the columns that are
        present appear in the dict (see :data:`WIRE_DTYPES` for the
        full set); the ``early_items`` memo is transport-local and
        deliberately **not** part of the wire form.  This is what the
        sharded engine ships between worker and coordinator processes —
        a handful of flat int64/float64 buffers per (site, batch) — and
        doubles as the natural frame for shipping packs over a real
        network.
        """
        columns: Dict[str, object] = {}
        for name in self.WIRE_DTYPES:
            value = getattr(self, name)
            if value is not None:
                columns[name] = value
        return self.regular_kind, columns

    def write_into(self, view, offset: int, limit: int):
        """Serialize the wire columns into a writable buffer slot.

        Copies each :meth:`to_arrays` column into ``view`` starting at
        ``offset`` and returns ``(regular_kind, spec, end)`` where
        ``spec`` maps column name to ``(offset, dtype_str, count)`` —
        the descriptor :meth:`read_from` rebuilds from.  Returns
        ``None`` when the columns do not fit before ``limit`` (the
        caller then falls back to inline transport).  This is the
        sharded engine's shared-memory ring format: with the
        double-buffered pipelined transport each (worker, window) owns
        the ``[offset, limit)`` slot exclusively until the window
        commits, so a writer never races the parent's zero-copy reads
        of the previous slot.
        """
        import numpy as _np

        _, columns = self.to_arrays()
        total = sum(array.nbytes for array in columns.values())
        if offset + total > limit:
            return None
        spec = {}
        for name, array in columns.items():
            array = _np.ascontiguousarray(array)
            nbytes = array.nbytes
            view[offset : offset + nbytes] = memoryview(array).cast("B")
            spec[name] = (offset, array.dtype.str, len(array))
            offset += nbytes
        return self.regular_kind, spec, offset

    @classmethod
    def read_from(
        cls, buf, regular_kind: str, spec: Dict[str, Tuple[int, str, int]]
    ) -> "MessagePack":
        """Rebuild a pack from a :meth:`write_into` descriptor.

        The returned pack's columns are zero-copy views over ``buf``
        (wire dtypes match, so :meth:`from_arrays` does not copy);
        callers must consume the pack before the slot is rewritten.
        """
        import numpy as _np

        nbytes = len(buf) if isinstance(buf, (bytes, bytearray)) else buf.nbytes
        columns = {}
        for name, (offset, dtype, count) in spec.items():
            dt = _np.dtype(dtype)
            end = offset + dt.itemsize * count
            if offset < 0 or count < 0 or end > nbytes:
                raise PackWireError(
                    f"truncated pack: column {name!r} wants bytes "
                    f"[{offset}, {end}) of a {nbytes}-byte buffer"
                )
            columns[name] = _np.frombuffer(
                buf, dtype=dt, count=count, offset=offset
            )
        return cls.from_arrays(regular_kind, columns)

    @classmethod
    def from_arrays(
        cls, regular_kind: str, columns: Dict[str, object]
    ) -> "MessagePack":
        """Rebuild a pack from its :meth:`to_arrays` wire form.

        Columns are coerced to their canonical :data:`WIRE_DTYPES`
        (no-copy for arrays already in wire dtype, e.g. zero-copy views
        over a shared-memory ring), so ``pack.messages()`` and the
        counter accounting of the round-tripped pack match the original
        exactly.  Requires numpy.
        """
        try:
            import numpy as _np
        except ImportError:  # pragma: no cover - packs only exist with numpy
            from ..common.errors import ConfigurationError

            raise ConfigurationError(
                "MessagePack.from_arrays requires numpy"
            ) from None
        unknown = set(columns) - set(cls.WIRE_DTYPES)
        if unknown:
            raise PackWireError(
                f"unknown MessagePack columns: {sorted(unknown)}"
            )
        kwargs = {
            name: _np.ascontiguousarray(value, dtype=cls.WIRE_DTYPES[name])
            for name, value in columns.items()
        }
        # Each half travels complete or not at all (``regular_extra``
        # is the one genuinely optional column): a partial half would
        # build a pack that only crashes later, deep in a coordinator
        # fold — wire input gets rejected here, at the boundary.
        for half, required in (
            ("early", ("early_idents", "early_weights", "early_levels")),
            ("regular", ("regular_idents", "regular_weights", "regular_keys")),
        ):
            present = [name for name in required if name in kwargs]
            if present and len(present) != len(required):
                missing = sorted(set(required) - set(present))
                raise PackWireError(
                    f"incomplete {half} half: missing columns {missing}"
                )
            lengths = {
                name: len(value)
                for name, value in kwargs.items()
                if name.startswith(half)
            }
            if len(set(lengths.values())) > 1:
                raise PackWireError(
                    f"{half} column lengths disagree: {lengths}"
                )
        if "regular_extra" in kwargs and "regular_idents" not in kwargs:
            raise PackWireError(
                "regular_extra requires the regular half to be present"
            )
        return cls(regular_kind=regular_kind, **kwargs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MessagePack(early={self.num_early}, regular={self.num_regular})"

"""L1-tracking baselines: the two prior-work rows of the Section 5 table.

* :class:`DeterministicCounterTracker` — the "[14] + folklore"
  ``O(k·log(W)/eps)`` protocol: each site reports its exact local total
  whenever it has grown by a ``(1+eps)`` factor since the last report.
  Deterministically correct (the coordinator's sum undercounts each
  site by at most an ``eps`` fraction of its reported weight).

* :class:`HyzStyleTracker` — a faithful-in-shape re-implementation of
  the Huang–Yi–Zhang randomized tracker [23],
  ``O((k + sqrt(k)/eps)·log W)`` messages: each site forwards its exact
  local total with probability ``~ sqrt(k)/(eps·B)`` per unit of weight
  (one aggregate coin per weighted update), where ``B`` is the
  coordinator's last broadcast estimate; ``B`` doubles trigger
  k-message refreshes.  The coordinator corrects for unreported drift
  with its expectation ``(#reporting sites)/q``.  [23] has no public
  implementation; the message *shape* (the sqrt(k)/eps term and the
  doubling broadcasts) is what the table compares — documented as a
  substitution in DESIGN.md.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional, Tuple, Union

from ..common.errors import ConfigurationError, ProtocolViolationError
from ..common.rng import RandomSource
from ..net.counters import MessageCounters
from ..net.messages import COUNT_REPORT, ESTIMATE_BROADCAST, Message
from ..runtime import (
    BROADCAST,
    CoordinatorAlgorithm,
    Engine,
    Network,
    SiteAlgorithm,
    get_engine,
)
from ..stream.item import DistributedStream, Item

__all__ = ["DeterministicCounterTracker", "HyzStyleTracker"]


# ---------------------------------------------------------------------------
# Deterministic (1+eps) local-growth tracker
# ---------------------------------------------------------------------------


class _DeterministicSite(SiteAlgorithm):
    def __init__(self, eps: float) -> None:
        self._eps = eps
        self._local = 0.0
        self._reported = 0.0

    def on_item(self, item: Item) -> List[Message]:
        self._local += item.weight
        if self._reported == 0.0 or self._local >= (1.0 + self._eps) * self._reported:
            self._reported = self._local
            return [Message(COUNT_REPORT, (self._local,))]
        return []

    def on_control(self, message: Message) -> None:
        raise ProtocolViolationError("deterministic tracker sends no control")

    def state_words(self) -> int:
        return 2


class _SumCoordinator(CoordinatorAlgorithm):
    def __init__(self, num_sites: int) -> None:
        self._latest = [0.0] * num_sites

    def on_message(self, site_id: int, message: Message) -> List[Tuple[int, Message]]:
        if message.kind != COUNT_REPORT:
            raise ProtocolViolationError(f"unexpected kind {message.kind!r}")
        (total,) = message.payload
        self._latest[site_id] = total
        return []

    def estimate(self) -> float:
        return sum(self._latest)


class DeterministicCounterTracker:
    """Always-correct ``(1±eps)`` L1 tracker with ``O(k·logW/eps)`` messages."""

    def __init__(
        self,
        num_sites: int,
        eps: float,
        seed: Optional[int] = None,
        engine: Union[str, Engine, None] = None,
        batch_size: Optional[int] = None,
    ) -> None:
        if num_sites <= 0:
            raise ConfigurationError(f"num_sites must be positive, got {num_sites}")
        if not 0 < eps < 1:
            raise ConfigurationError(f"eps must be in (0,1), got {eps}")
        self.num_sites = num_sites
        self.eps = eps
        self.engine = get_engine(engine, batch_size=batch_size)
        self.sites = [_DeterministicSite(eps) for _ in range(num_sites)]
        self.coordinator = _SumCoordinator(num_sites)
        self.network = Network(self.sites, self.coordinator)

    def run(self, stream: DistributedStream, **kwargs) -> MessageCounters:
        kwargs.setdefault("engine", self.engine)
        return self.network.run(stream, **kwargs)

    def process(self, site_id: int, item: Item) -> None:
        self.network.step(site_id, item)

    def estimate(self) -> float:
        """Sum of last-reported local totals (within ``eps·W`` below W)."""
        return self.coordinator.estimate()

    @property
    def counters(self) -> MessageCounters:
        return self.network.counters


# ---------------------------------------------------------------------------
# HYZ-style randomized tracker
# ---------------------------------------------------------------------------


class _HyzSite(SiteAlgorithm):
    def __init__(self, rng: random.Random) -> None:
        self._rng = rng
        self._local = 0.0
        self._send_prob_per_unit = 1.0  # before any broadcast: send always
        self.reports = 0

    def on_item(self, item: Item) -> List[Message]:
        self._local += item.weight
        q = self._send_prob_per_unit
        if q >= 1.0:
            send = True
        else:
            # One aggregate coin for the whole weighted update:
            # P(at least one of the w unit-coins fires) = 1-(1-q)^w.
            p = -math.expm1(item.weight * math.log1p(-q))
            send = self._rng.random() < p
        if send:
            self.reports += 1
            return [Message(COUNT_REPORT, (self._local,))]
        return []

    def on_control(self, message: Message) -> None:
        if message.kind != ESTIMATE_BROADCAST:
            raise ProtocolViolationError(f"unexpected control {message.kind!r}")
        (q,) = message.payload
        self._send_prob_per_unit = q

    def state_words(self) -> int:
        return 2


class _HyzCoordinator(CoordinatorAlgorithm):
    def __init__(self, num_sites: int, eps: float) -> None:
        self.num_sites = num_sites
        self.eps = eps
        self._latest = [0.0] * num_sites
        self._reported_sites = 0
        self._broadcast_base = 0.0  # B: estimate at last broadcast
        self._q = 1.0
        self.broadcasts = 0

    def _raw_sum(self) -> float:
        return sum(self._latest)

    def on_message(self, site_id: int, message: Message) -> List[Tuple[int, Message]]:
        if message.kind != COUNT_REPORT:
            raise ProtocolViolationError(f"unexpected kind {message.kind!r}")
        (total,) = message.payload
        if self._latest[site_id] == 0.0 and total > 0.0:
            self._reported_sites += 1
        self._latest[site_id] = total
        current = self._raw_sum()
        if self._broadcast_base == 0.0 or current >= 2.0 * self._broadcast_base:
            # Refresh the probability: q = sqrt(k) / (eps * B).
            self._broadcast_base = max(current, 1.0)
            self._q = min(
                1.0,
                math.sqrt(self.num_sites) / (self.eps * self._broadcast_base),
            )
            self.broadcasts += 1
            return [(BROADCAST, Message(ESTIMATE_BROADCAST, (self._q,)))]
        return []

    def estimate(self) -> float:
        """Reported sums plus the expected unreported drift.

        A site's unreported weight since its last report is a
        renewal age — between 0 and a Geometric(q) with mean ``~1/q``
        units, capped by the weight the site received since the last
        probability refresh; its expectation is approximated by the
        uniform-age value ``1/(2q)``.  The deviation of the corrected
        sum is ``O(sqrt(k)/q) = O(eps·B)``, the [23] argument.
        """
        drift = self._reported_sites * (1.0 - self._q) / max(self._q, 1e-12) / 2.0
        return self._raw_sum() + drift


class HyzStyleTracker:
    """Randomized ``O((k + sqrt(k)/eps)·logW)``-message L1 tracker [23]."""

    def __init__(
        self,
        num_sites: int,
        eps: float,
        seed: Optional[int] = None,
        engine: Union[str, Engine, None] = None,
        batch_size: Optional[int] = None,
    ) -> None:
        if num_sites <= 0:
            raise ConfigurationError(f"num_sites must be positive, got {num_sites}")
        if not 0 < eps < 1:
            raise ConfigurationError(f"eps must be in (0,1), got {eps}")
        self.num_sites = num_sites
        self.eps = eps
        self.engine = get_engine(engine, batch_size=batch_size)
        source = RandomSource(seed)
        self.sites = [
            _HyzSite(source.substream(f"hyz-site-{i}")) for i in range(num_sites)
        ]
        self.coordinator = _HyzCoordinator(num_sites, eps)
        self.network = Network(self.sites, self.coordinator)

    def run(self, stream: DistributedStream, **kwargs) -> MessageCounters:
        kwargs.setdefault("engine", self.engine)
        return self.network.run(stream, **kwargs)

    def process(self, site_id: int, item: Item) -> None:
        self.network.step(site_id, item)

    def estimate(self) -> float:
        """Current (approximately centered) L1 estimate."""
        return self.coordinator.estimate()

    @property
    def counters(self) -> MessageCounters:
        return self.network.counters

"""Distributed L1 (count) tracking: Section 5 algorithm and baselines."""

from .baselines import DeterministicCounterTracker, HyzStyleTracker
from .tracker import L1Tracker, theorem6_duplication, theorem6_sample_size

__all__ = [
    "L1Tracker",
    "theorem6_sample_size",
    "theorem6_duplication",
    "DeterministicCounterTracker",
    "HyzStyleTracker",
]

"""L1 (count) tracking via weighted SWOR keys — Section 5, Algorithm 1.

The coordinator continuously maintains ``W~ = (1±eps)·W_t``.  The
paper's construction: duplicate every update ``(e, w)`` into
``l = s/(2·eps)`` copies and feed them to the weighted SWOR machinery
with ``s = Θ(eps^-2·log(1/δ))``; the ``s``-th largest key ``u`` then
concentrates (Proposition 8 + Nagaraja) so that ``W~ = s·u/l``.

Duplication makes every copy at most an ``eps/(2s)`` heavy hitter the
moment its original finishes processing, so level sets saturate
instantly and are dropped entirely (Theorem 6's proof) — the tracker
uses the bare key/epoch machinery.

The ``l``-fold duplication is *simulated in O(1 + sends)* per update:

* while the site's epoch threshold is 0 it must literally forward every
  copy's key (each beats threshold 0) — this self-limits, because the
  coordinator's threshold rises after ``s`` keys and an epoch broadcast
  follows; the site's ``on_item`` is a generator, so under the
  synchronous driver the broadcast lands *between* copies, exactly like
  the paper's one-message-per-round model;
* once the threshold ``u`` is positive, each copy independently beats it
  with ``p = 1 - e^{-w/u}``, so the site jumps over non-senders with one
  Geometric(p) draw and generates only the sending copies' keys from the
  conditional (truncated-exponential) law.  Distributionally identical
  to materializing all ``l`` copies.
"""

from __future__ import annotations

import math
import random
from typing import Iterator, List, Optional, Sequence, Tuple, Union

try:  # optional: vectorized bulk paths for the batched/columnar engines
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-free installs
    _np = None  # type: ignore[assignment]

from ..common.errors import ConfigurationError, ProtocolViolationError
from ..common.rng import (
    BatchRandom,
    RandomSource,
    exponential,
    truncated_exponential_below,
)
from ..core.epochs import EpochTracker
from ..core.sample_set import TopKeySample
from ..net.counters import MessageCounters
from ..net.messages import EPOCH_UPDATE, Message, MessagePack, REGULAR
from ..runtime import (
    BROADCAST,
    CoordinatorAlgorithm,
    Engine,
    Network,
    SiteAlgorithm,
    get_engine,
)
from ..stream.item import DistributedStream, Item

__all__ = ["L1Tracker", "theorem6_sample_size", "theorem6_duplication"]


def theorem6_sample_size(eps: float, delta: float) -> int:
    """The proof's ``s = 10·log(1/delta)/eps^2`` (Theorem 6)."""
    if not 0 < eps < 1:
        raise ConfigurationError(f"eps must be in (0,1), got {eps}")
    if not 0 < delta < 1:
        raise ConfigurationError(f"delta must be in (0,1), got {delta}")
    return max(2, math.ceil(10.0 * math.log(1.0 / delta) / (eps * eps)))


def theorem6_duplication(s: int, eps: float) -> int:
    """The algorithm's ``l = s/(2·eps)`` copies per update."""
    if s <= 0:
        raise ConfigurationError(f"s must be positive, got {s}")
    return max(1, math.ceil(s / (2.0 * eps)))


class _L1Site(SiteAlgorithm):
    """Site half: duplication-aware key generation with geometric skips."""

    def __init__(
        self, duplication: int, rng: random.Random
    ) -> None:
        self._dup = duplication
        self._rng = rng
        self._threshold = 0.0  # epoch floor r^j announced by coordinator
        self._batch_rng: Optional[BatchRandom] = None
        self.items_seen = 0
        self.keys_sent = 0

    def on_item(self, item: Item) -> Iterator[Message]:
        """Yield one REGULAR message per *sending* duplicate.

        A generator so the synchronous driver delivers each message (and
        any resulting epoch broadcast) before the next duplicate is
        considered — matching the paper's round model.
        """
        self.items_seen += 1
        w = item.weight
        remaining = self._dup
        rng = self._rng
        while remaining > 0:
            u = self._threshold
            if u <= 0.0:
                # Threshold 0: every key passes; send this copy.
                v = w / exponential(rng)
                remaining -= 1
                self.keys_sent += 1
                yield Message(REGULAR, (item.ident, w, v))
                continue
            # P(copy's key beats u) = P(t < w/u).
            bound = w / u
            p = -math.expm1(-bound)
            if p <= 0.0:
                return
            if p >= 1.0:
                skip = 0
            else:
                x = rng.random()
                while x <= 0.0:
                    x = rng.random()
                skip = int(math.floor(math.log(x) / math.log1p(-p)))
            if skip >= remaining:
                return
            remaining -= skip + 1
            t = truncated_exponential_below(rng, bound)
            self.keys_sent += 1
            yield Message(REGULAR, (item.ident, w, w / t))

    def _draw_batch(self, weights):
        """The bulk draw shared by :meth:`on_items` and
        :meth:`on_columns` — one source, so the two hooks are
        draw-for-draw identical by construction.

        Against the fixed batch-entry threshold ``u``, the number of a
        weight's ``l`` duplicates that beat it is ``Binomial(l, p)``
        with ``p = 1 - e^{-w/u}`` — the distribution the scalar path's
        geometric skips realize one jump at a time — and each sender's
        key comes from the truncated-exponential law of
        :func:`~repro.common.rng.truncated_exponential_below`,
        vectorized.  While ``u == 0`` every copy sends with an
        unconditional exponential key, exactly like the scalar path.
        Returns ``(counts, keys)`` with ``keys`` in arrival order,
        senders of one update contiguous.
        """
        n = len(weights)
        dup = self._dup
        if self._batch_rng is None:
            self._batch_rng = BatchRandom(self._rng)
        u = self._threshold
        if u <= 0.0:
            counts = _np.full(n, dup, dtype=_np.int64)
            draws = self._batch_rng.exponentials(dup * n)
            keys = _np.repeat(weights, dup) / draws
            return counts, keys
        bounds = weights / u
        ps = -_np.expm1(-bounds)
        counts = self._batch_rng.binomials(dup, ps)
        total = int(counts.sum())
        if total == 0:
            return counts, None
        us = self._batch_rng.uniforms(total)
        rep_bound = _np.repeat(bounds, counts)
        mass = -_np.expm1(-rep_bound)
        ts = -_np.log1p(-us * mass)
        _np.minimum(ts, rep_bound * (1.0 - 1e-12), out=ts)
        keys = _np.repeat(weights, counts) / ts
        return counts, keys

    def on_items(self, items: Sequence["Item"]) -> List[Message]:
        """Vectorized duplication over a batch of arrivals.

        One :meth:`_draw_batch` replaces the per-update generator loop
        (whose batch-materialized semantics against the batch-stale
        threshold this path reproduces distribution-for-distribution);
        ``Item`` objects are touched only for updates that actually
        send keys.  Falls back to the scalar generator for single-item
        batches (batch size 1 stays bit-identical to the reference
        engine) and on numpy-free installs.
        """
        n = len(items)
        if n <= 1 or _np is None:
            return SiteAlgorithm.on_items(self, items)
        weights = getattr(items, "weights", None)
        if weights is None:
            weights = _np.fromiter(
                (item.weight for item in items), dtype=_np.float64, count=n
            )
        self.items_seen += n
        counts, keys = self._draw_batch(weights)
        if keys is None:
            return []
        self.keys_sent += len(keys)
        out: List[Message] = []
        pos = 0
        for i in _np.flatnonzero(counts).tolist():
            item = items[i]
            for _ in range(int(counts[i])):
                out.append(
                    Message(REGULAR, (item.ident, item.weight, float(keys[pos])))
                )
                pos += 1
        return out

    def on_columns(self, idents, weights, prep=None):
        """Zero-object counterpart of :meth:`on_items`: identical draws
        (same :meth:`_draw_batch`), packed into one
        :class:`~repro.net.messages.MessagePack` of ``REGULAR``
        columns — one entry per sending duplicate."""
        n = len(weights)
        if n <= 1 or _np is None:
            items = [Item(int(e), float(w)) for e, w in zip(idents, weights)]
            if not items:
                return ()
            return SiteAlgorithm.on_items(self, items)
        self.items_seen += n
        counts, keys = self._draw_batch(weights)
        if keys is None:
            return ()
        self.keys_sent += len(keys)
        return MessagePack(
            regular_idents=_np.repeat(idents, counts),
            regular_weights=_np.repeat(weights, counts),
            regular_keys=keys,
        )

    def on_control(self, message: Message) -> None:
        if message.kind != EPOCH_UPDATE:
            raise ProtocolViolationError(
                f"L1 site got unexpected control {message.kind!r}"
            )
        (threshold,) = message.payload
        if threshold < self._threshold:
            raise ProtocolViolationError("L1 epoch threshold decreased")
        self._threshold = threshold

    def state_words(self) -> int:
        return 2


class _L1Coordinator(CoordinatorAlgorithm):
    """Coordinator half: top-``s`` duplicate keys and the estimator."""

    def __init__(self, sample_size: int, duplication: int, r: float) -> None:
        self.sample_size = sample_size
        self.duplication = duplication
        self.sample_set = TopKeySample(sample_size)
        self.epochs = EpochTracker(r)
        # Exact duplicated weight received while no epoch has ever been
        # announced (all copies reach us until then).
        self._exact_duplicated_weight = 0.0
        self._announced_any = False

    def on_message(self, site_id: int, message: Message) -> List[Tuple[int, Message]]:
        if message.kind != REGULAR:
            raise ProtocolViolationError(f"L1 coordinator got {message.kind!r}")
        ident, weight, key = message.payload
        if not self._announced_any:
            self._exact_duplicated_weight += weight
        if key <= self.sample_set.threshold:
            return []
        self.sample_set.add(Item(ident, weight), key)
        announce = self.epochs.observe_threshold(self.sample_set.threshold)
        if announce is None:
            return []
        self._announced_any = True
        return [(BROADCAST, Message(EPOCH_UPDATE, (announce,)))]

    # -- bulk path: one pack per (site, batch) --------------------------

    def on_message_pack(self, site_id: int, pack) -> List[Tuple[int, Message]]:
        """Columnar fold of a whole site batch of duplicate keys.

        Mirrors the SWOR coordinator's pack path: survivors of the
        pack-entry threshold fold into the sample via one
        :meth:`~repro.core.sample_set.TopKeySample.merge_columns`
        rebuild, taken only when
        :meth:`~repro.core.epochs.EpochTracker.would_announce` proves
        the merged threshold stays inside the current epoch bracket (no
        ``EPOCH_UPDATE`` fires mid-pack); otherwise the pack replays
        message by message, reproducing broadcast count and timing —
        and the exact-phase weight accounting — precisely.  On the fast
        path the pre-announce exact weight accumulates in the same
        left-fold order as sequential delivery, so the exact-regime
        estimate stays bit-identical.
        """
        nr = pack.num_regular
        if nr == 0:
            return []
        if (
            _np is None
            or nr <= 16  # numpy fold overhead dwarfs tiny packs
            or pack.num_early
            or pack.regular_kind != REGULAR
        ):
            return self._replay_pack(site_id, pack)
        keys = pack.regular_keys
        send = keys > self.sample_set.threshold
        accepted = int(_np.count_nonzero(send))
        if accepted and self.epochs.would_announce(
            self.sample_set.merged_threshold(keys[send])
        ):
            return self._replay_pack(site_id, pack)
        if not self._announced_any:
            # Same left-fold float order as per-message accumulation.
            for w in pack.regular_weights.tolist():
                self._exact_duplicated_weight += w
        if accepted:
            self.sample_set.merge_columns(
                pack.regular_idents[send],
                pack.regular_weights[send],
                keys[send],
            )
            announce = self.epochs.observe_threshold(self.sample_set.threshold)
            if announce is not None:  # pragma: no cover - precluded above
                self._announced_any = True
                return [(BROADCAST, Message(EPOCH_UPDATE, (announce,)))]
        return []

    def _replay_pack(
        self, site_id: int, pack
    ) -> List[Tuple[int, Message]]:
        """Exact sequential semantics for packs the fast path declines
        — the interface default's expand-and-replay loop."""
        return CoordinatorAlgorithm.on_message_pack(self, site_id, pack)

    def estimate(self) -> float:
        """``W~``: the Theorem 6 estimator ``s·u/l``.

        Before the first epoch broadcast every duplicate reached the
        coordinator, so the exact (duplicated) weight is known and
        returned instead — the estimator needs a full sample set and a
        positive threshold to concentrate.
        """
        if not self._announced_any or not self.sample_set.full:
            return self._exact_duplicated_weight / self.duplication
        u = self.sample_set.threshold
        return self.sample_size * u / self.duplication

    def state_words(self) -> int:
        return 3 * len(self.sample_set) + 3


class L1Tracker:
    """Distributed L1 (count) tracker with ``(1±eps)`` guarantees.

    Parameters
    ----------
    num_sites:
        ``k``.
    eps:
        Relative error.
    delta:
        Failure probability at any fixed query time.
    seed:
        Root seed.
    sample_size_override / duplication_override:
        Replace the Theorem 6 settings (used by scaled-down tests).
    engine / batch_size:
        Execution engine selection (name or instance; see
        :func:`repro.runtime.get_engine`).  Under the batched engine
        the site's duplicate generator materializes per batch against a
        batch-stale threshold, so early batches may forward more copies
        than the synchronous round model; the coordinator's top-``s``
        filter discards them without biasing the estimator.
    """

    def __init__(
        self,
        num_sites: int,
        eps: float,
        delta: float = 0.1,
        seed: Optional[int] = None,
        sample_size_override: Optional[int] = None,
        duplication_override: Optional[int] = None,
        engine: Union[str, Engine, None] = None,
        batch_size: Optional[int] = None,
    ) -> None:
        if num_sites <= 0:
            raise ConfigurationError(f"num_sites must be positive, got {num_sites}")
        if not 0 < eps < 1:
            raise ConfigurationError(f"eps must be in (0,1), got {eps}")
        self.num_sites = num_sites
        self.eps = eps
        self.delta = delta
        self.sample_size = (
            sample_size_override
            if sample_size_override is not None
            else theorem6_sample_size(eps, delta)
        )
        self.duplication = (
            duplication_override
            if duplication_override is not None
            else theorem6_duplication(self.sample_size, eps)
        )
        self.r = max(2.0, num_sites / self.sample_size)
        self.engine = get_engine(engine, batch_size=batch_size)
        source = RandomSource(seed)
        self.sites = [
            _L1Site(self.duplication, source.substream(f"l1-site-{i}"))
            for i in range(num_sites)
        ]
        self.coordinator = _L1Coordinator(self.sample_size, self.duplication, self.r)
        self.network = Network(self.sites, self.coordinator)

    def process(self, site_id: int, item: Item) -> None:
        """Feed one arrival at one site."""
        self.network.step(site_id, item)

    def run(self, stream: DistributedStream, **kwargs) -> MessageCounters:
        """Replay a whole distributed stream."""
        kwargs.setdefault("engine", self.engine)
        return self.network.run(stream, **kwargs)

    def estimate(self) -> float:
        """Current ``W~ = (1±eps)·W_t`` (w.p. ``1-delta`` at a fixed t)."""
        return self.coordinator.estimate()

    @property
    def counters(self) -> MessageCounters:
        return self.network.counters

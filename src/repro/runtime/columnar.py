"""The columnar engine: a zero-object site -> coordinator fast path.

:class:`~repro.runtime.batched.BatchedEngine` vectorized site-side *key
generation* but kept the object model at the message boundary: every
arrival is still gathered through an ``Item``-backed view, every
upstream candidate is its own :class:`~repro.net.messages.Message`, and
the coordinator folds candidates one ``heapreplace`` at a time.
:class:`ColumnarEngine` removes the remaining per-item Python objects
end to end:

* the stream is consumed as columns (``assignment`` / ``weights`` /
  ``idents`` int64/float64 arrays) — a
  :class:`~repro.stream.columns.ColumnarStream` natively, or a
  :class:`~repro.stream.item.DistributedStream` through its cached
  ``arrays()`` view;
* per window, one stable argsort groups arrivals per site and **one
  gather** builds the site-sorted weight/ident columns; level indices
  are computed **once per window** (sites sharing a config expose
  :meth:`~repro.core.site.SworSite.window_levels`) instead of once per
  (site, window);
* each site's bulk hook
  (:meth:`~repro.runtime.interfaces.SiteAlgorithm.on_columns`) returns
  a single :class:`~repro.net.messages.MessagePack` of parallel arrays
  per (site, batch) — word-accounted exactly as the messages it stands
  for — which the coordinator's
  :meth:`~repro.runtime.interfaces.CoordinatorAlgorithm.on_message_pack`
  bulk path re-checks with a boolean mask and folds via one
  ``np.partition`` top-``s`` merge.

Why this is correct
-------------------
The window schedule, per-site grouping, and per-site RNG consumption
are *identical* to the batched engine's (same
:func:`~repro.runtime.batched.batch_windows`, same stable argsort, same
``BatchRandom`` draw counts in the same order), and the coordinator's
pack path is bit-compatible with sequential delivery (it falls back to
exact per-message replay for the rare packs that saturate a level or
cross an epoch — see ``SworCoordinator.on_message_pack``).  Samples and
message counters therefore match the batched engine **bit for bit**;
``benchmarks/bench_columnar.py`` pins this at the million-item scale.

``Item`` objects are created lazily, only for arrivals that actually
reach a level set, the sample, a trace, or a scalar fallback — a few
thousand per million-item run.

Falls back to :class:`BatchedEngine` behavior wholesale when numpy (or
an int64 ident column) is unavailable, so the scalar path stays the
single numpy-free source of truth.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Callable, Iterable, List, Optional

try:  # the fast path is numpy-only; gated, not required
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-free installs
    _np = None  # type: ignore[assignment]

from ..kernels import get_kernels, use_kernels
from ..net.messages import MessagePack
from .batched import (
    DEFAULT_BATCH_SIZE,
    DEFAULT_INITIAL_BATCH_SIZE,
    BatchedEngine,
    batch_windows,
    window_order,
)

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from ..net.counters import MessageCounters
    from .network import Network

__all__ = ["ColumnarEngine"]


class ColumnarEngine(BatchedEngine):
    """Batched schedule, columnar data plane.

    Accepts both :class:`~repro.stream.item.DistributedStream` and
    :class:`~repro.stream.columns.ColumnarStream` (anything exposing
    the ``arrays() -> (assignment, weights, idents)`` triple plus the
    ``items`` sequence for scalar fallbacks).  Construction parameters
    are the batched engine's (``batch_size`` ramping up from
    ``initial_batch_size``) — the schedules must coincide for the
    bit-parity contract to be structural.
    """

    name = "columnar"

    def __init__(
        self,
        batch_size: int = DEFAULT_BATCH_SIZE,
        initial_batch_size: int = DEFAULT_INITIAL_BATCH_SIZE,
        kernels=None,
    ) -> None:
        super().__init__(
            batch_size=batch_size, initial_batch_size=initial_batch_size
        )
        #: Kernel-backend override for this engine's runs (``None`` =
        #: the process default, i.e. ``REPRO_KERNELS`` / ``"auto"``).
        #: Resolved eagerly so a bad spec fails at construction.
        self._kernels = None if kernels is None else get_kernels(kernels)

    def run(
        self,
        network: "Network",
        stream,
        on_step: Optional[Callable[[int], None]] = None,
        checkpoints: Optional[Iterable[int]] = None,
        on_checkpoint: Optional[Callable[[int], None]] = None,
    ) -> "MessageCounters":
        with use_kernels(self._kernels) as kernels:
            counters = self._run_columnar(
                network,
                stream,
                on_step=on_step,
                checkpoints=checkpoints,
                on_checkpoint=on_checkpoint,
            )
        if self.last_run_stats:
            self.last_run_stats.setdefault("kernels", kernels.name)
        return counters

    def _run_columnar(
        self,
        network: "Network",
        stream,
        on_step: Optional[Callable[[int], None]] = None,
        checkpoints: Optional[Iterable[int]] = None,
        on_checkpoint: Optional[Callable[[int], None]] = None,
    ) -> "MessageCounters":
        arrays = stream.arrays() if hasattr(stream, "arrays") else None
        if _np is None or arrays is None or arrays[2] is None:
            # Numpy-free installs (or exotic ident types): the batched
            # engine's object path is the fallback semantics.
            return BatchedEngine.run(
                self,
                network,
                stream,
                on_step=on_step,
                checkpoints=checkpoints,
                on_checkpoint=on_checkpoint,
            )
        assignment, weights, idents = arrays
        n = len(stream)
        base = network.items_processed
        want_checkpoints = checkpoints is not None and on_checkpoint is not None
        marks: List[int] = (
            [t - base for t in sorted(set(checkpoints)) if base < t <= base + n]
            if want_checkpoints
            else []
        )
        mark_set = set(marks)
        sites = network.sites
        deliver_pack = network.deliver_pack
        deliver_upstream = network.deliver_upstream
        # Once-per-window precompute sharing: sound whenever every site
        # is the same algorithm over the same shared config object
        # (levels and the saturation lookup are pure functions of
        # weight, config, and the broadcast-synchronized mask — and
        # each site still verifies the mask; see
        # ``SworSite.prepare_window``).
        site0 = sites[0]
        cls0, cfg0 = type(site0), getattr(site0, "config", None)
        share_prep = (
            hasattr(site0, "prepare_window")
            and cfg0 is not None
            and all(
                type(s) is cls0 and getattr(s, "config", None) is cfg0
                for s in sites
            )
        )
        t0 = time.perf_counter()
        windows = 0
        for lo, hi in batch_windows(
            n, self.batch_size, self.initial_batch_size, marks
        ):
            windows += 1
            order, sites_sorted, run_starts, run_ends = window_order(
                assignment[lo:hi]
            )
            positions = order + lo
            weights_sorted = weights[positions]
            idents_sorted = idents[positions]
            window_prep = (
                site0.prepare_window(weights_sorted) if share_prep else None
            )
            site_ids = sites_sorted[run_starts].tolist()
            for site_id, start, end in zip(
                site_ids, run_starts.tolist(), run_ends.tolist()
            ):
                result = sites[site_id].on_columns(
                    idents_sorted[start:end],
                    weights_sorted[start:end],
                    prep=(
                        None if window_prep is None
                        else (window_prep, start, end)
                    ),
                )
                if isinstance(result, MessagePack):
                    deliver_pack(site_id, result)
                else:
                    for message in result:
                        deliver_upstream(site_id, message)
            network.items_processed += hi - lo
            t = network.items_processed
            if on_step is not None:
                on_step(t)
            if hi in mark_set:
                on_checkpoint(t)
        self._record_run(network, n, time.perf_counter() - t0, windows=windows)
        return network.counters

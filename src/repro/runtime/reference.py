"""The reference engine: the paper's strictly synchronous round model.

One model round per arrival (Section 2.1): a site observes an item, its
upstream messages reach the coordinator immediately, and the
coordinator's responses (possibly broadcasts) are delivered back before
the next arrival anywhere.  FIFO order, no loss, no crashes — exactly
the synchrony the paper's correctness arguments assume, and exactly the
historical behavior of ``Network.run`` before engines existed, so golden
seed fingerprints are preserved bit for bit.

This engine is the semantic baseline the batched engine is validated
against; it pays ~6 Python calls of interpreter dispatch per item, which
is what :class:`~repro.runtime.batched.BatchedEngine` removes.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Callable, Iterable, Optional

from .base import Engine

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from ..net.counters import MessageCounters
    from ..stream.item import DistributedStream
    from .network import Network

__all__ = ["ReferenceEngine"]


class ReferenceEngine(Engine):
    """Strictly synchronous per-item driver (the model of Section 2.1)."""

    name = "reference"

    def run(
        self,
        network: "Network",
        stream: "DistributedStream",
        on_step: Optional[Callable[[int], None]] = None,
        checkpoints: Optional[Iterable[int]] = None,
        on_checkpoint: Optional[Callable[[int], None]] = None,
    ) -> "MessageCounters":
        checkset = set(checkpoints) if checkpoints is not None else None
        t0 = time.perf_counter()
        processed = 0
        for site_id, item in stream:
            network.step(site_id, item)
            processed += 1
            t = network.items_processed
            if on_step is not None:
                on_step(t)
            if checkset is not None and on_checkpoint is not None and t in checkset:
                on_checkpoint(t)
        self._record_run(network, processed, time.perf_counter() - t0)
        return network.counters

"""Pluggable execution engines for the coordinator/sites model.

This package separates *what* the protocols compute (the site and
coordinator state machines of :mod:`repro.core`) from *how* a stream is
driven through them:

* :class:`ReferenceEngine` — the paper's strictly synchronous round
  model, one arrival at a time (the historical ``Network.run``);
* :class:`BatchedEngine` — processes arrivals in chunks with vectorized
  site-side key generation and batch-boundary control propagation,
  trading a bounded number of extra (coordinator-discarded) messages
  for an order-of-magnitude drop in interpreter dispatch.

Select an engine by instance or by name::

    from repro.runtime import get_engine
    engine = get_engine("batched", batch_size=4096)
    counters = protocol.run(stream, engine=engine)

``SiteAlgorithm`` / ``CoordinatorAlgorithm`` / ``Network`` /
``BROADCAST`` live here now; :mod:`repro.net.simulator` re-exports them
for backward compatibility (with a :class:`DeprecationWarning`).
"""

from __future__ import annotations

from typing import Dict, Optional, Type, Union

from ..common.errors import ConfigurationError
from ..faults import FaultPlan
from .base import Engine
from .batched import BatchedEngine, ItemBatch
from .columnar import ColumnarEngine
from .interfaces import BROADCAST, CoordinatorAlgorithm, SiteAlgorithm
from .network import Network
from .reference import ReferenceEngine
from .sharded import ShardedEngine, ShardedWorkerError

__all__ = [
    "BROADCAST",
    "SiteAlgorithm",
    "CoordinatorAlgorithm",
    "Network",
    "Engine",
    "ReferenceEngine",
    "BatchedEngine",
    "ColumnarEngine",
    "ShardedEngine",
    "ShardedWorkerError",
    "ItemBatch",
    "ENGINES",
    "get_engine",
]

#: Registry of engine names to classes (extend to plug in new engines).
ENGINES: Dict[str, Type[Engine]] = {
    ReferenceEngine.name: ReferenceEngine,
    BatchedEngine.name: BatchedEngine,
    ColumnarEngine.name: ColumnarEngine,
    ShardedEngine.name: ShardedEngine,
}


def get_engine(
    spec: Union[str, Engine, None] = None,
    batch_size: Optional[int] = None,
    workers: Optional[int] = None,
    pipeline: Optional[str] = None,
    kernels: Optional[str] = None,
    worker_timeout: Optional[float] = None,
    max_worker_restarts: Optional[int] = None,
    fault_plan: Union[str, FaultPlan, None] = None,
) -> Engine:
    """Resolve an engine from a name, an instance, or ``None``.

    Parameters
    ----------
    spec:
        ``None`` (reference), a registry name (``"reference"`` /
        ``"batched"`` / ``"columnar"`` / ``"sharded"``), or an
        already-built :class:`Engine` instance (returned as-is).
    batch_size:
        Steady-state batch size for the batching engines; rejected for
        engines that do not batch.
    workers:
        Worker process count for the sharded engine (defaults to all
        CPU cores); rejected for engines that do not shard.
    pipeline:
        ``"auto"`` / ``"on"`` / ``"off"`` — the sharded engine's
        pipelined window protocol; rejected for engines that do not
        shard.
    kernels:
        ``"auto"`` / ``"numba"`` / ``"numpy"`` — the kernel backend for
        the columnar-plane engines (see :mod:`repro.kernels`); rejected
        for engines without a columnar data plane.
    worker_timeout:
        Seconds the sharded supervisor waits for a worker message
        before classifying the worker as hung; rejected for engines
        that do not shard.
    max_worker_restarts:
        Worker respawns the sharded supervisor may perform per run
        before degrading down the engine ladder; rejected for engines
        that do not shard.
    fault_plan:
        A :class:`~repro.faults.FaultPlan` (or its ``kind:worker:window``
        string form) injected through the sharded engine's chaos seams
        — test/debug only; rejected for engines that do not shard.
    """
    if isinstance(spec, Engine):
        if batch_size is not None:
            raise ConfigurationError(
                "batch_size cannot be combined with an engine instance"
            )
        if workers is not None:
            raise ConfigurationError(
                "workers cannot be combined with an engine instance"
            )
        if pipeline is not None:
            raise ConfigurationError(
                "pipeline cannot be combined with an engine instance"
            )
        if kernels is not None:
            raise ConfigurationError(
                "kernels cannot be combined with an engine instance"
            )
        if worker_timeout is not None:
            raise ConfigurationError(
                "worker_timeout cannot be combined with an engine instance"
            )
        if max_worker_restarts is not None:
            raise ConfigurationError(
                "max_worker_restarts cannot be combined with an "
                "engine instance"
            )
        if fault_plan is not None:
            raise ConfigurationError(
                "fault_plan cannot be combined with an engine instance"
            )
        return spec
    name = "reference" if spec is None else str(spec)
    cls = ENGINES.get(name)
    if cls is None:
        known = ", ".join(sorted(ENGINES))
        raise ConfigurationError(f"unknown engine {name!r} (known: {known})")
    kwargs = {}
    if batch_size is not None:
        if not issubclass(cls, BatchedEngine):
            raise ConfigurationError(
                f"engine {name!r} does not take a batch_size"
            )
        kwargs["batch_size"] = batch_size
    if workers is not None:
        if not issubclass(cls, ShardedEngine):
            raise ConfigurationError(
                f"engine {name!r} does not take workers"
            )
        kwargs["workers"] = workers
    if pipeline is not None:
        if not issubclass(cls, ShardedEngine):
            raise ConfigurationError(
                f"engine {name!r} does not take a pipeline mode"
            )
        kwargs["pipeline"] = pipeline
    if kernels is not None:
        if not issubclass(cls, ColumnarEngine):
            raise ConfigurationError(
                f"engine {name!r} does not take a kernel backend"
            )
        kwargs["kernels"] = kernels
    if worker_timeout is not None:
        if not issubclass(cls, ShardedEngine):
            raise ConfigurationError(
                f"engine {name!r} does not take a worker_timeout"
            )
        kwargs["worker_timeout"] = worker_timeout
    if max_worker_restarts is not None:
        if not issubclass(cls, ShardedEngine):
            raise ConfigurationError(
                f"engine {name!r} does not take max_worker_restarts"
            )
        kwargs["max_worker_restarts"] = max_worker_restarts
    if fault_plan is not None:
        if not issubclass(cls, ShardedEngine):
            raise ConfigurationError(
                f"engine {name!r} does not take a fault_plan"
            )
        kwargs["fault_plan"] = fault_plan
    return cls(**kwargs)

"""Protocol interfaces shared by every runtime engine.

A distributed protocol is a pair of small state machines: one
:class:`SiteAlgorithm` per site and one :class:`CoordinatorAlgorithm`.
Engines (see :mod:`repro.runtime.base`) decide *when* each half runs and
*when* messages move; the interfaces themselves are engine-agnostic.

Sites expose two granularities:

* :meth:`SiteAlgorithm.on_item` — one arrival, the paper's round model;
* :meth:`SiteAlgorithm.on_items` — a *batch* of arrivals, used by the
  batched engine.  The default implementation just loops ``on_item``;
  protocol sites may override it with a vectorized bulk path (e.g.
  :meth:`repro.core.site.SworSite.on_items` draws all of a batch's
  exponentials in one numpy call).

This module deliberately imports nothing from :mod:`repro.net` so that
``repro.runtime`` and ``repro.net`` can re-export each other's names
without an import cycle (messages/counters only appear in annotations).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, List, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from ..net.messages import Message, MessagePack
    from ..stream.item import Item

__all__ = ["BROADCAST", "SiteAlgorithm", "CoordinatorAlgorithm"]

#: Destination constant: deliver to every site (costs ``k`` messages).
BROADCAST = -1


class SiteAlgorithm(ABC):
    """Per-site half of a distributed protocol."""

    #: Whether this site may be shipped to (and snapshotted inside) a
    #: worker process by the multiprocess sharded engine.  Requires the
    #: instance to survive a ``pickle`` round trip with full state
    #: fidelity — including its RNG streams, so a restored copy draws
    #: the same variates (``random.Random``, ``BatchRandom``, and numpy
    #: ``Generator`` all qualify).  Sites holding unpicklable state
    #: (open files, sockets, lambdas) or state whose pickled copy would
    #: diverge should set this ``False``; the sharded engine then falls
    #: back to its in-process columnar path instead of guessing.
    shardable: bool = True

    @abstractmethod
    def on_item(self, item: "Item") -> List["Message"]:
        """Observe one local arrival; return upstream messages (maybe [])."""

    def on_items(self, items: Sequence["Item"]) -> List["Message"]:
        """Observe a batch of local arrivals; return upstream messages.

        Bulk hook used by the batched engine.  The default delegates to
        :meth:`on_item` per item, preserving each item's message order.
        A single-item batch returns ``on_item``'s result *unmaterialized*
        (it may be a lazy iterator, as for the L1 site), so a batch size
        of one reproduces the reference engine exactly.
        """
        if len(items) == 1:
            return self.on_item(items[0])
        out: List["Message"] = []
        for item in items:
            out.extend(self.on_item(item))
        return out

    def on_columns(self, idents, weights, prep=None):
        """Observe a batch of local arrivals given as parallel columns.

        Fully columnar hook used by the columnar engine: ``idents`` and
        ``weights`` are aligned numpy arrays for this site's share of a
        batch window, and ``prep`` optionally carries the engine's
        once-per-window precomputation as a ``(context, start, end)``
        triple (built by the optional site hook ``prepare_window``;
        sites that don't share window state ignore it).  Returns either a
        :class:`~repro.net.messages.MessagePack` (columnar sites) or a
        plain list of :class:`~repro.net.messages.Message` (this
        default, which materializes the Items and delegates to
        :meth:`on_items` — RNG-identical to the batched engine, since
        the wrapped batch carries the same ``weights`` array an
        :class:`~repro.runtime.batched.ItemBatch` would).
        """
        from ..runtime.batched import ItemBatch
        from ..stream.item import Item

        source = [
            Item(int(e), float(w)) for e, w in zip(idents.tolist(), weights.tolist())
        ]
        return self.on_items(ItemBatch(source, range(len(source)), weights))

    @abstractmethod
    def on_control(self, message: "Message") -> None:
        """Receive a downstream control message from the coordinator."""

    def snapshot_state(self):
        """Return a cheap opaque snapshot of ALL mutable site state.

        The sharded engine snapshots every site at each window boundary
        so a mid-window coordinator broadcast can roll the suffix of
        the window back and replay it deterministically.  The snapshot
        must capture *everything* ``on_items`` / ``on_columns`` can
        mutate — RNG positions included — such that
        :meth:`restore_state` followed by the same inputs reproduces
        the same outputs bit for bit.  Returning ``None`` (the default)
        means "unsupported": engines then snapshot by pickling the
        whole site, which is always correct, just slower.
        """
        return None

    def restore_state(self, state) -> None:
        """Rewind to a :meth:`snapshot_state` taken on this instance."""
        raise NotImplementedError(
            f"{type(self).__name__} does not implement fast state snapshots"
        )

    def state_words(self) -> int:
        """Approximate persistent state size in machine words.

        Default implementation counts nothing; protocol sites override
        so experiment E12 can check the O(1)-words claim.
        """
        return 0


class CoordinatorAlgorithm(ABC):
    """Coordinator half of a distributed protocol."""

    @abstractmethod
    def on_message(
        self, site_id: int, message: "Message"
    ) -> List[Tuple[int, "Message"]]:
        """Handle one upstream message.

        Returns a list of ``(destination, message)`` responses, where
        destination is a site index or :data:`BROADCAST`.
        """

    def on_message_pack(
        self, site_id: int, pack: "MessagePack"
    ) -> List[Tuple[int, "Message"]]:
        """Handle one upstream message pack (a whole site batch).

        The default expands the pack and feeds :meth:`on_message` one
        message at a time — exact sequential semantics for protocols
        without a bulk path.  Responses are concatenated in order; the
        network delivers them after the pack, which is observationally
        equivalent because the sending site's decisions for this batch
        were already made.  Columnar coordinators override this with a
        vectorized path (e.g.
        :meth:`repro.core.coordinator.SworCoordinator.on_message_pack`).
        """
        responses: List[Tuple[int, "Message"]] = []
        for message in pack.messages():
            responses.extend(self.on_message(site_id, message))
        return responses

    def on_message_pack_unordered(self, site_id: int, pack: "MessagePack") -> bool:
        """Try to fold a pack *out of (batch, site) order*; return
        whether it was committed.

        The pipelined sharded engine folds each window's packs in
        arrival order when that is provably equivalent to the fixed
        ascending-site order every other engine uses.  A coordinator
        may commit a pack here only when the commit is (a) free of
        responses and (b) invariant to its position within the current
        fold window — for the SWOR coordinator that means regular-only
        packs whose merge neither crosses an epoch bracket nor lands on
        an ambiguous selection tie (see
        :meth:`repro.core.coordinator.SworCoordinator.on_message_pack_unordered`).
        Returning ``False`` (this default) declines: the engine keeps
        the pack for the exact ordered fold.

        Callers must account the pack (``record_upstream_pack``) iff
        this returns ``True``, and must be prepared to rewind via
        :meth:`snapshot_state`/:meth:`restore_state` if a later ordered
        fold of the same window emits responses.
        """
        return False

    def snapshot_state(self):
        """Return a cheap opaque snapshot of ALL mutable coordinator
        state, or ``None`` (the default) for "unsupported".

        The pipelined sharded engine snapshots the coordinator at each
        window boundary so out-of-order pack folds
        (:meth:`on_message_pack_unordered`) can be rolled back and
        replayed in exact order when a response fires mid-window.
        Coordinators that return ``None`` simply run with ordered folds
        only — still correct, just without the overlap.
        """
        return None

    def restore_state(self, state) -> None:
        """Rewind to a :meth:`snapshot_state` taken on this instance."""
        raise NotImplementedError(
            f"{type(self).__name__} does not implement fast state snapshots"
        )

    def state_words(self) -> int:
        """Approximate persistent state size in machine words."""
        return 0

"""The batched engine: a vectorized fast path with bounded staleness.

Why this is correct
-------------------
The paper's site-side filters are *conservative gates in one direction*:
a site that filters on a stale — hence **smaller** — epoch threshold
``u_i`` only sends *extra* regular messages, and every regular message
is re-checked against the live threshold at the coordinator (Algorithm 2
line 19) before it can enter the sample.  Likewise a site with a stale
saturated-level view only sends *extra* early messages, which the
coordinator folds into the sample itself (generating the key on arrival,
exactly as it would have for a parked item).  Deferring control
propagation (``EPOCH_UPDATE`` / ``LEVEL_SATURATED``) to batch boundaries
therefore inflates the message count by a bounded amount but never
biases the sample distribution: each item's key is still an independent
``w/Exp(1)`` draw, and the coordinator still keeps exactly the top-``s``
keys over released items.

What the engine does per batch
------------------------------
1. slice the stream's (site, weight) arrays for the batch window;
2. group the window's items per site (one stable argsort — C speed);
3. hand each site its sub-batch through the bulk hook
   :meth:`~repro.runtime.interfaces.SiteAlgorithm.on_items` (protocol
   sites vectorize key generation; the default loops ``on_item``);
4. flush each site's upstream messages to the coordinator through
   :meth:`~repro.runtime.network.Network.deliver_upstream`; coordinator
   responses (broadcasts) are delivered immediately, which from the
   sites' perspective *is* batch-boundary application — their batch was
   already processed, so new control state takes effect next batch.

Batch sizes ramp up (doubling from ``initial_batch_size`` to
``batch_size``, 16384 by default), which bounds the warm-up staleness: at stream start the
threshold is 0 and no level is saturated, so a huge first batch would
send every item upstream.  Batches additionally split at requested
checkpoints so ``on_checkpoint(t)`` fires at exactly ``t``, with the
coordinator state observationally equivalent to a synchronous run whose
sites lag by at most one batch.

A batch size of 1 reproduces the reference engine bit for bit (same RNG
consumption, same delivery interleaving).
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Callable, Iterable, List, Optional, Sequence

try:  # numpy accelerates grouping and key generation; gated, not required
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-free installs
    _np = None  # type: ignore[assignment]

from ..common.errors import ConfigurationError
from .base import Engine

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from ..net.counters import MessageCounters
    from ..stream.item import DistributedStream, Item
    from .network import Network

__all__ = [
    "DEFAULT_BATCH_SIZE",
    "DEFAULT_INITIAL_BATCH_SIZE",
    "ItemBatch",
    "BatchedEngine",
    "batch_windows",
    "window_order",
    "site_runs",
    "site_buckets",
]

#: Steady-state and warm-up batch sizes.  Defined once here; the
#: multi-query driver and the CLI help text reference these so the
#: documented defaults can never desync from the engine's.
DEFAULT_BATCH_SIZE = 16384
DEFAULT_INITIAL_BATCH_SIZE = 64


def batch_windows(n, batch_size, initial_batch_size, marks=()):
    """Yield ``(lo, hi)`` stream windows under the doubling ramp.

    The single source of truth for the batched schedule: sizes ramp
    from ``initial_batch_size`` doubling up to ``batch_size``, and
    windows split so each mark in ``marks`` (stream offsets, exclusive
    upper bounds) lands exactly on a window boundary.  Both
    :class:`BatchedEngine` and the multi-query driver
    (:class:`repro.query.driver.MultiQueryDriver`) iterate this, which
    is what makes their checkpoint-exactness and run-for-run parity
    structural rather than coincidental.
    """
    marks = sorted(marks)
    mark_index = 0
    lo = 0
    size = min(initial_batch_size, batch_size)
    while lo < n:
        hi = min(lo + size, n)
        while mark_index < len(marks) and marks[mark_index] <= lo:
            mark_index += 1
        if mark_index < len(marks) and marks[mark_index] < hi:
            hi = marks[mark_index]  # split so the mark is exact
        yield lo, hi
        lo = hi
        size = min(size * 2, batch_size)


def window_order(window):
    """Stable per-site grouping of one window's site assignments.

    The single source of truth for how every batching engine groups a
    window: returns ``(order, sites_sorted, run_starts, run_ends)``
    where ``order`` is the stable argsort of ``window`` (each site's
    arrivals kept in global order), ``sites_sorted = window[order]``,
    and ``[run_starts[i], run_ends[i])`` brackets site
    ``sites_sorted[run_starts[i]]``'s run.  Both :func:`site_runs`
    (batched engine, multi-query driver) and the columnar engine build
    on this, which is what keeps their grouping — and hence their
    run-for-run RNG parity — structural.  Requires numpy.
    """
    order = _np.argsort(window, kind="stable")
    sites_sorted = window[order]
    run_starts = _np.flatnonzero(
        _np.r_[True, sites_sorted[1:] != sites_sorted[:-1]]
    )
    run_ends = _np.r_[run_starts[1:], len(sites_sorted)]
    return order, sites_sorted, run_starts, run_ends


def site_runs(window):
    """Yield ``(site_id, order_positions)`` runs for one window.

    One stable argsort groups the window's arrivals per site;
    ``order_positions`` indexes *into the window* (add the window's
    ``lo`` for stream positions), with each site's arrivals kept in
    global order.  Requires numpy.
    """
    order, sites_sorted, run_starts, run_ends = window_order(window)
    for start, end in zip(run_starts, run_ends):
        yield int(sites_sorted[start]), order[start:end]


def site_buckets(assignment, items, lo, hi):
    """Numpy-free counterpart of :func:`site_runs`: yield ascending
    ``(site_id, window_items)`` buckets for one window, each site's
    arrivals in global order.  Shared by the batched engine's and the
    multi-query driver's fallback paths so their per-protocol replay
    order can never drift apart."""
    buckets = {}
    for i in range(lo, hi):
        buckets.setdefault(assignment[i], []).append(items[i])
    for site_id in sorted(buckets):
        yield site_id, buckets[site_id]


class ItemBatch(Sequence):
    """A zero-copy view of one site's share of a batch window.

    Behaves as a ``Sequence[Item]`` (so generic ``on_items``
    implementations can iterate it) while carrying the pre-gathered
    ``weights`` array that vectorized site hooks consume directly —
    sites only touch :class:`~repro.stream.item.Item` objects for the
    (few) items that actually generate messages.  ``idents`` optionally
    carries the aligned identifier column (attached by columnar-mode
    drivers so fused site passes can build
    :class:`~repro.net.messages.MessagePack` columns without touching
    Items).

    Supports the full ``Sequence`` indexing protocol: negative indices
    and slices both work; a slice returns another ``ItemBatch`` view
    with its ``weights`` (and ``idents``) kept aligned.
    """

    __slots__ = ("_source", "_positions", "weights", "idents")

    def __init__(
        self, source: List["Item"], positions, weights, idents=None
    ) -> None:
        self._source = source
        self._positions = positions
        #: Per-item weights aligned with this batch (numpy array).
        self.weights = weights
        #: Optional per-item identifiers aligned with this batch.
        self.idents = idents

    def __len__(self) -> int:
        return len(self._positions)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return ItemBatch(
                self._source,
                self._positions[index],
                None if self.weights is None else self.weights[index],
                None if self.idents is None else self.idents[index],
            )
        # Integer indexing (negative included) delegates to the
        # positions sequence, which raises IndexError out of range.
        return self._source[self._positions[index]]

    def __iter__(self):
        source = self._source
        return (source[p] for p in self._positions)


class BatchedEngine(Engine):
    """Chunked driver: vectorized sites, per-batch flush, deferred control.

    Parameters
    ----------
    batch_size:
        Steady-state number of global arrivals per batch.  Larger
        batches amortize more interpreter dispatch but let site views go
        staler within a batch (more coordinator-discarded messages).
    initial_batch_size:
        First batch's size; batches double until reaching
        ``batch_size``.  The ramp bounds warm-up staleness while the
        coordinator's threshold is still near zero.
    """

    name = "batched"

    def __init__(
        self,
        batch_size: int = DEFAULT_BATCH_SIZE,
        initial_batch_size: int = DEFAULT_INITIAL_BATCH_SIZE,
    ) -> None:
        if batch_size <= 0:
            raise ConfigurationError(
                f"batch_size must be positive, got {batch_size}"
            )
        if initial_batch_size <= 0:
            raise ConfigurationError(
                f"initial_batch_size must be positive, got {initial_batch_size}"
            )
        self.batch_size = batch_size
        self.initial_batch_size = min(initial_batch_size, batch_size)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BatchedEngine(batch_size={self.batch_size})"

    def run(
        self,
        network: "Network",
        stream: "DistributedStream",
        on_step: Optional[Callable[[int], None]] = None,
        checkpoints: Optional[Iterable[int]] = None,
        on_checkpoint: Optional[Callable[[int], None]] = None,
    ) -> "MessageCounters":
        n = len(stream)
        items = stream.items
        # Checkpoints count cumulative items_processed (matching the
        # reference engine), so a network reused across run() calls
        # keeps one consistent clock; convert to stream offsets here.
        base = network.items_processed
        want_checkpoints = checkpoints is not None and on_checkpoint is not None
        marks: List[int] = (
            [t - base for t in sorted(set(checkpoints)) if base < t <= base + n]
            if want_checkpoints
            else []
        )
        mark_set = set(marks)
        arrays = stream.arrays()
        t0 = time.perf_counter()
        windows = 0
        for lo, hi in batch_windows(
            n, self.batch_size, self.initial_batch_size, marks
        ):
            if arrays is not None:
                self._run_window_numpy(network, items, arrays, lo, hi)
            else:
                self._run_window_python(network, stream, lo, hi)
            windows += 1
            network.items_processed += hi - lo
            t = network.items_processed
            if on_step is not None:
                on_step(t)
            if hi in mark_set:
                on_checkpoint(t)
        self._record_run(network, n, time.perf_counter() - t0, windows=windows)
        return network.counters

    # -- one batch window ----------------------------------------------

    @staticmethod
    def _run_window_numpy(
        network: "Network", items: List["Item"], arrays, lo: int, hi: int
    ) -> None:
        """Group the window per site with one stable argsort, then run
        each site's bulk hook on a zero-copy :class:`ItemBatch` view."""
        assignment, weights = arrays[0], arrays[1]
        deliver = network.deliver_upstream
        sites = network.sites
        for site_id, order_positions in site_runs(assignment[lo:hi]):
            positions = order_positions + lo
            batch = ItemBatch(items, positions, weights[positions])
            for message in sites[site_id].on_items(batch):
                deliver(site_id, message)

    @staticmethod
    def _run_window_python(
        network: "Network", stream: "DistributedStream", lo: int, hi: int
    ) -> None:
        """Numpy-free fallback: bucket the window per site in plain
        Python; bulk hooks then fall back to their scalar paths."""
        deliver = network.deliver_upstream
        sites = network.sites
        for site_id, batch in site_buckets(
            stream.assignment, stream.items, lo, hi
        ):
            for message in sites[site_id].on_items(batch):
                deliver(site_id, message)

"""The execution-engine abstraction.

An :class:`Engine` decides *how* a :class:`~repro.runtime.network.Network`
replays a :class:`~repro.stream.item.DistributedStream`: per-item or in
batches, with synchronous or boundary-deferred control propagation.  The
protocol state machines never see the engine — they only see their
``on_item`` / ``on_items`` / ``on_control`` / ``on_message`` hooks fire
in some order, and every engine routes messages through the network's
delivery primitives so counters and traces stay comparable across
engines.

Two engines ship with the package:

* :class:`~repro.runtime.reference.ReferenceEngine` — the paper's
  strictly synchronous round model (Section 2.1);
* :class:`~repro.runtime.batched.BatchedEngine` — a vectorized fast
  path with bounded-staleness control propagation.

Every engine carries a metrics registry (:mod:`repro.obs`) — the
disabled :data:`~repro.obs.NULL_REGISTRY` by default, a live
:class:`~repro.obs.MetricsRegistry` after
:meth:`Engine.instrument` — plus a ``last_run_stats`` dict and a
:meth:`Engine.format_stats` rendering of it.  Instrumentation is
observational only: samples and message counters are bit-identical
with a live registry and without one.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Callable, Dict, Iterable, Optional

from ..kernels import set_kernel_registry
from ..obs import NULL_REGISTRY, observe_message_counters

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from ..net.counters import MessageCounters
    from ..stream.item import DistributedStream
    from .network import Network

__all__ = ["Engine"]


class Engine(ABC):
    """An execution strategy for replaying a stream through a network."""

    #: Registry name (``"reference"``, ``"batched"``, ...).
    name: str = "abstract"

    #: The telemetry sink (class default: the shared no-op registry, so
    #: un-instrumented engines pay nothing and need no None checks).
    registry = NULL_REGISTRY

    #: How the last ``run()`` executed — engine name, item count, wall
    #: seconds; the sharded engine adds its window/rollback/speculation
    #: breakdown.  Empty until the first run.
    last_run_stats: Dict[str, object] = {}

    @abstractmethod
    def run(
        self,
        network: "Network",
        stream: "DistributedStream",
        on_step: Optional[Callable[[int], None]] = None,
        checkpoints: Optional[Iterable[int]] = None,
        on_checkpoint: Optional[Callable[[int], None]] = None,
    ) -> "MessageCounters":
        """Replay ``stream`` through ``network``; return its counters.

        Implementations must process items in global arrival order (or a
        batching thereof), keep ``network.items_processed`` current, and
        fire ``on_checkpoint(t)`` exactly at each requested ``t``.
        """

    def instrument(self, registry) -> "Engine":
        """Attach a metrics registry (``None`` detaches); returns
        ``self`` so construction chains::

            engine = get_engine("columnar").instrument(registry)
        """
        self.registry = NULL_REGISTRY if registry is None else registry
        # Kernel-tier telemetry follows the engine's registry (process
        # global — kernel selection is too; last attach wins).
        set_kernel_registry(registry)
        return self

    def _record_run(
        self,
        network: "Network",
        items: int,
        seconds: float,
        windows: Optional[int] = None,
    ) -> None:
        """Book one completed ``run()``: refresh ``last_run_stats`` and
        export the run onto the registry (engine-labeled run/item
        counters, a run-duration histogram, and the network's message
        accounting).  A sharded fallback's ``{"mode": "fallback",
        "reason": ...}`` marker — or the supervisor's ``"degraded"``
        marker — survives the refresh so diagnostics keep explaining
        *why* the in-process path ran.
        """
        stats: Dict[str, object] = {
            "engine": self.name,
            "items": items,
            "seconds": seconds,
        }
        if windows is not None:
            stats["windows"] = windows
        prior = self.last_run_stats
        if prior.get("mode") in ("fallback", "degraded") and "engine" not in prior:
            stats = {**prior, **stats}
        self.last_run_stats = stats
        self._export_run(network, items, seconds, windows)

    def _export_run(
        self,
        network: "Network",
        items: int,
        seconds: float,
        windows: Optional[int] = None,
    ) -> None:
        """The registry half of :meth:`_record_run` (engines that build
        their own ``last_run_stats``, like the sharded one, call this
        directly)."""
        registry = self.registry
        if not registry.enabled:
            return
        registry.counter(
            "repro_engine_runs_total",
            "completed engine run() calls",
            labels=("engine",),
        ).labels(engine=self.name).inc()
        registry.counter(
            "repro_engine_items_total",
            "stream arrivals replayed",
            labels=("engine",),
        ).labels(engine=self.name).inc(items)
        if windows is not None:
            registry.counter(
                "repro_engine_windows_total",
                "batch windows driven through the sites",
                labels=("engine",),
            ).labels(engine=self.name).inc(windows)
        registry.histogram(
            "repro_engine_run_seconds",
            "wall-clock duration of engine run() calls",
            labels=("engine",),
        ).labels(engine=self.name).observe(seconds)
        observe_message_counters(registry, network.counters, self.name)

    def format_stats(self) -> str:
        """A human-readable rendering of :attr:`last_run_stats` —
        printed by ``repro ... --profile``.  Safe on an engine that has
        been constructed but never run."""
        stats = self.last_run_stats
        if not stats:
            return f"{self.name} engine: no run recorded yet"
        parts = [f"items {stats['items']}"]
        if "windows" in stats:
            parts.append(f"windows {stats['windows']}")
        parts.append(f"wall {stats['seconds']:.3f}s")
        if "kernels" in stats:
            parts.append(f"kernels {stats['kernels']}")
        line = f"{self.name} engine: " + ", ".join(parts)
        if stats.get("mode") == "fallback":
            line += f"\n  (fallback: {stats.get('reason', 'unknown reason')})"
        return line

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"

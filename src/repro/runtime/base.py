"""The execution-engine abstraction.

An :class:`Engine` decides *how* a :class:`~repro.runtime.network.Network`
replays a :class:`~repro.stream.item.DistributedStream`: per-item or in
batches, with synchronous or boundary-deferred control propagation.  The
protocol state machines never see the engine — they only see their
``on_item`` / ``on_items`` / ``on_control`` / ``on_message`` hooks fire
in some order, and every engine routes messages through the network's
delivery primitives so counters and traces stay comparable across
engines.

Two engines ship with the package:

* :class:`~repro.runtime.reference.ReferenceEngine` — the paper's
  strictly synchronous round model (Section 2.1);
* :class:`~repro.runtime.batched.BatchedEngine` — a vectorized fast
  path with bounded-staleness control propagation.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Callable, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from ..net.counters import MessageCounters
    from ..stream.item import DistributedStream
    from .network import Network

__all__ = ["Engine"]


class Engine(ABC):
    """An execution strategy for replaying a stream through a network."""

    #: Registry name (``"reference"``, ``"batched"``, ...).
    name: str = "abstract"

    @abstractmethod
    def run(
        self,
        network: "Network",
        stream: "DistributedStream",
        on_step: Optional[Callable[[int], None]] = None,
        checkpoints: Optional[Iterable[int]] = None,
        on_checkpoint: Optional[Callable[[int], None]] = None,
    ) -> "MessageCounters":
        """Replay ``stream`` through ``network``; return its counters.

        Implementations must process items in global arrival order (or a
        batching thereof), keep ``network.items_processed`` current, and
        fire ``on_checkpoint(t)`` exactly at each requested ``t``.
        """

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"

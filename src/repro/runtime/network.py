"""The wiring layer: ``k`` sites + a coordinator + message accounting.

:class:`Network` owns the topology and the counters but **not** the
execution strategy — replaying a stream is delegated to a pluggable
:class:`~repro.runtime.base.Engine` (reference by default).  The
delivery primitives (:meth:`Network.deliver_upstream`,
:meth:`Network.deliver_downstream`) are the single choke point every
engine routes messages through, which keeps counting honest and lets
:class:`~repro.net.tracing.MessageTrace` instrument any engine by
wrapping the instance methods.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable, List, Optional, Sequence

from ..common.errors import ConfigurationError
from .interfaces import BROADCAST, CoordinatorAlgorithm, SiteAlgorithm

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from ..net.counters import MessageCounters
    from ..net.messages import Message, MessagePack
    from ..stream.item import DistributedStream, Item
    from .base import Engine

__all__ = ["Network"]


class Network:
    """Wires ``k`` site instances and a coordinator, counting messages.

    Parameters
    ----------
    sites:
        One :class:`~repro.runtime.interfaces.SiteAlgorithm` per site.
    coordinator:
        The :class:`~repro.runtime.interfaces.CoordinatorAlgorithm`.
    counters:
        Optional externally-owned counters (a fresh one is created
        otherwise).
    """

    def __init__(
        self,
        sites: Sequence[SiteAlgorithm],
        coordinator: CoordinatorAlgorithm,
        counters: Optional["MessageCounters"] = None,
    ) -> None:
        if not sites:
            raise ConfigurationError("need at least one site")
        if counters is None:
            # Imported here, not at module scope: repro.net re-exports
            # this class, so a module-level import would be circular.
            from ..net.counters import MessageCounters

            counters = MessageCounters()
        self.sites: List[SiteAlgorithm] = list(sites)
        self.coordinator = coordinator
        self.counters = counters
        self.items_processed = 0

    @property
    def num_sites(self) -> int:
        return len(self.sites)

    def deliver_upstream(self, site_id: int, message: "Message") -> None:
        """Deliver one site message to the coordinator, then fan out the
        coordinator's responses synchronously."""
        self.counters.record_upstream(message)
        responses = self.coordinator.on_message(site_id, message)
        for dest, response in responses:
            self.deliver_downstream(dest, response)

    def deliver_pack(self, site_id: int, pack: "MessagePack") -> None:
        """Deliver a whole site batch to the coordinator as one pack.

        Counted as the messages the pack stands for (see
        :meth:`~repro.net.counters.MessageCounters.record_upstream_pack`),
        then handled through the coordinator's bulk hook; responses fan
        out as usual.  When the delivery methods have been instrumented
        — rebound on the instance (:class:`~repro.net.tracing.MessageTrace`),
        overridden in a subclass, or patched on the class — the pack is
        expanded and routed message by message instead, so wrappers see
        every upstream message with its exact causal order under any
        engine.
        """
        if len(pack) == 0:
            return
        cls = type(self)
        if (
            "deliver_upstream" in self.__dict__
            or "deliver_downstream" in self.__dict__
            or cls.deliver_upstream is not _BASE_DELIVER_UPSTREAM
            or cls.deliver_downstream is not _BASE_DELIVER_DOWNSTREAM
        ):
            for message in pack.messages():
                self.deliver_upstream(site_id, message)
            return
        self.counters.record_upstream_pack(pack)
        responses = self.coordinator.on_message_pack(site_id, pack)
        for dest, response in responses:
            self.deliver_downstream(dest, response)

    def deliver_downstream(self, dest: int, message: "Message") -> None:
        """Deliver a coordinator response to one site or to all sites."""
        if dest == BROADCAST:
            self.counters.record_downstream(message, copies=self.num_sites)
            for site in self.sites:
                site.on_control(message)
            return
        if not 0 <= dest < self.num_sites:
            raise ConfigurationError(f"destination site {dest} out of range")
        self.counters.record_downstream(message, copies=1)
        self.sites[dest].on_control(message)

    def step(self, site_id: int, item: "Item") -> None:
        """Process one arrival at one site (one model round)."""
        messages = self.sites[site_id].on_item(item)
        for message in messages:
            self.deliver_upstream(site_id, message)
        self.items_processed += 1

    def run(
        self,
        stream: "DistributedStream",
        on_step: Optional[Callable[[int], None]] = None,
        checkpoints: Optional[Iterable[int]] = None,
        on_checkpoint: Optional[Callable[[int], None]] = None,
        engine: Optional["Engine"] = None,
    ) -> "MessageCounters":
        """Replay a full distributed stream under an execution engine.

        Parameters
        ----------
        stream:
            The distributed stream to replay.
        on_step:
            Optional progress callback invoked with the number of items
            processed so far — after every item under the reference
            engine, after every batch under the batched engine.
        checkpoints / on_checkpoint:
            When both given, ``on_checkpoint(t)`` fires after processing
            item ``t`` (1-indexed) for each ``t`` in ``checkpoints`` —
            used by the accuracy experiments to query the coordinator at
            fixed times.  Every engine honors checkpoints exactly (the
            batched engine splits batches at checkpoint boundaries).
        engine:
            The :class:`~repro.runtime.base.Engine` to drive execution;
            ``None`` selects the strictly synchronous reference engine,
            which preserves the historical ``Network.run`` semantics
            bit for bit.
        """
        if stream.num_sites != self.num_sites:
            raise ConfigurationError(
                f"stream has {stream.num_sites} sites, network has {self.num_sites}"
            )
        if engine is None:
            from .reference import ReferenceEngine

            engine = ReferenceEngine()
        return engine.run(
            self,
            stream,
            on_step=on_step,
            checkpoints=checkpoints,
            on_checkpoint=on_checkpoint,
        )

    def site_state_words(self) -> List[int]:
        """Per-site persistent state, in words (experiment E12)."""
        return [site.state_words() for site in self.sites]


#: Pristine delivery methods, captured at class-definition time —
#: ``deliver_pack`` compares against these so *any* instrumentation
#: (instance rebinding, subclass override, or a patch on the class
#: itself) routes packs message by message through the wrappers.
_BASE_DELIVER_UPSTREAM = Network.deliver_upstream
_BASE_DELIVER_DOWNSTREAM = Network.deliver_downstream

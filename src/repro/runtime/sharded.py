"""The sharded engine: shard-parallel site passes in worker processes.

The paper's protocols are distributed by construction — sites compute
independently and only exchange O(1)-word messages with the coordinator
— yet every other engine runs all ``k`` sites in one interpreter.
:class:`ShardedEngine` partitions the sites into contiguous shards, one
worker *process* per shard, and keeps only the coordinator (plus the
message accounting) in the parent:

* each worker owns its shard's protocol sites and a compacted
  :class:`~repro.stream.columns.ShardSliceView` of the stream columns
  (shipped once per run, over :mod:`multiprocessing.shared_memory` when
  available, pickled over the pipe otherwise);
* per batch window the worker runs the same per-site grouping and
  ``on_columns`` site pass the columnar engine would, and ships each
  (site, batch) :class:`~repro.net.messages.MessagePack` back as flat
  columns (:meth:`~repro.net.messages.MessagePack.to_arrays`) through a
  per-worker shared-memory ring the parent reads zero-copy — falling
  back to inline pickling for oversized windows or pipe transport;
* the parent folds the packs through the **same** coordinator bulk path
  (:meth:`~repro.runtime.interfaces.CoordinatorAlgorithm.on_message_pack`)
  in the **same** deterministic ascending-(batch, site) order the
  columnar engine uses, with identical counter accounting.

Workers are spawned once per engine instance and *reused* across
``run()`` calls (each run re-ships the site states and stream shard),
so a long-lived engine amortizes process start-up away — the regime the
"saturate all cores at 100M+ items" target actually cares about.  Call
:meth:`ShardedEngine.close` to tear the pool down eagerly; a dropped
engine cleans up via ``weakref.finalize``.

Why this is bit-identical to the columnar engine
------------------------------------------------
Per-site RNG streams are derived independently
(:class:`~repro.common.rng.RandomSource` substreams plus per-site
``BatchRandom``), each site's per-window ident/weight slices are
bitwise equal to the columnar engine's (stable argsort over a
position-compacted shard — see ``ShardSliceView``), and the
coordinator runs *in the parent*, consuming its own RNG in fold order.
The one genuinely new piece is control flow: the columnar engine
delivers a mid-window broadcast to the *later* sites of the same
window before they compute, while shard workers compute a whole window
speculatively against the control state of the previous window.  The
engine therefore runs a **lockstep window protocol** with rollback:

1. workers compute window ``t``'s packs against the control state as of
   window ``t - 1`` and send them;
2. the parent folds them site-ascending; when a fold emits control
   traffic that could affect a *later* site of the same window (a
   threshold/epoch broadcast, a saturated level), it tells the affected
   workers to **roll back**: restore the pre-window site snapshot,
   re-apply the window's control messages to exactly the sites that
   come after each message's trigger site, recompute, and resend;
3. once the window folds clean, the parent **commits**: workers apply
   whatever control messages their sites have not seen yet and proceed
   to window ``t + 1``.

Re-computation is deterministic (same restored RNG state, same input
slices, same control prefix), so replayed sites reproduce their packs
bit for bit and the divergent suffix is recomputed exactly as the
columnar engine would have computed it after the broadcast.  Broadcasts
are logarithmically rare, so rollbacks cost a bounded number of extra
window computations per run.  Samples **and**
:class:`~repro.net.counters.MessageCounters` match the columnar engine
bit for bit at every batch size and worker count —
``benchmarks/bench_sharded.py`` pins this at the multi-million-item
scale.

Fallbacks: numpy-free installs, non-int64 ident streams, ``workers=1``
(or one site), instrumented networks (a
:class:`~repro.net.tracing.MessageTrace` wrapping the delivery
methods), sites that declare themselves non-shardable
(:attr:`~repro.runtime.interfaces.SiteAlgorithm.shardable`), and any
worker-setup failure (spawn unavailable, unpicklable sites, no shared
memory) all run the in-process :class:`ColumnarEngine` path instead, so
the engine is always safe to select; ``last_run_stats`` records which
mode ran.  Sites whose bulk hooks return *lazy* message iterators are
materialized at the worker before shipping (the batched engine streams
them instead); all shipped protocols return materialized lists.
"""

from __future__ import annotations

import os
import pickle
import traceback
import weakref
from typing import TYPE_CHECKING, Callable, Iterable, List, Optional, Tuple

try:  # the shard-parallel path is numpy-only; gated, not required
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-free installs
    _np = None  # type: ignore[assignment]

try:  # shared memory may be missing on exotic builds; pipes then carry all
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - platform-dependent
    _shared_memory = None  # type: ignore[assignment]

from ..common.errors import ConfigurationError, ProtocolViolationError
from ..net.messages import MessagePack
from .batched import (
    DEFAULT_BATCH_SIZE,
    DEFAULT_INITIAL_BATCH_SIZE,
    batch_windows,
)
from .columnar import ColumnarEngine
from .interfaces import BROADCAST

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from ..net.counters import MessageCounters
    from .network import Network

__all__ = ["ShardedEngine", "ShardedWorkerError"]

#: Floor for the per-worker result ring (one window's packs always fit
#: unless the batch is enormous; oversized windows fall back to inline
#: pickling per pack, never to failure).
_MIN_RING_BYTES = 1 << 20

#: Seconds to wait for a spawned worker's ready message before treating
#: setup as failed (and falling back in-process).
_READY_TIMEOUT = 120.0


class ShardedWorkerError(RuntimeError):
    """A shard worker died or raised; carries the original traceback.

    The parent re-raises this after tearing the worker pool down
    (processes joined or killed, shared-memory segments unlinked), so a
    failing site never leaks orphans.
    """

    def __init__(self, message: str, worker_traceback: Optional[str] = None):
        super().__init__(message)
        self.worker_traceback = worker_traceback


def _attach_shm(name: str):
    """Attach an existing shared-memory segment.

    Ownership stays with the parent (which unlinks at shutdown); the
    resource tracker is shared across the spawn tree and de-duplicates
    the attach-side registration, so no unregister gymnastics are
    needed here.
    """
    return _shared_memory.SharedMemory(name=name)


def _prefix_len(controls, site_id: int) -> int:
    """Number of window controls a site must see *before* computing:
    exactly those triggered by an earlier site's fold.  Triggers are
    non-decreasing in fold order, so this is a prefix."""
    n = 0
    for trigger, _, _ in controls:
        if trigger >= site_id:
            break
        n += 1
    return n


def _adopt_site_state(dst, src) -> None:
    """Transplant a worker site's final state onto the parent's mirror.

    After a sharded run the parent's site objects have only mirrored
    control traffic; the workers hold the real per-site state (RNG
    positions, ``items_seen``, resource counters).  Copying the worker
    state back keeps facade-level introspection (``resource_report``)
    and *subsequent* ``run()`` calls on the same network bit-compatible
    with a columnar run.  The mirror's original shared ``config``
    object is kept so identity relationships survive.
    """
    if not hasattr(dst, "__dict__") or not hasattr(src, "__dict__"):
        return  # slots-only sites keep their (control-mirrored) state
    config = dst.__dict__.get("config")
    dst.__dict__.clear()
    dst.__dict__.update(src.__dict__)
    if config is not None and "config" in dst.__dict__:
        dst.__dict__["config"] = config


# ---------------------------------------------------------------------------
# Worker process
# ---------------------------------------------------------------------------


def _view_from_full_shm(name, spec, site_lo, site_hi):
    """Attach the parent's full-column segment and compact this shard's
    rows out of it.  The compaction copies (fancy indexing), so the
    attachment is released immediately and the worker's footprint stays
    proportional to its shard."""
    from ..stream.columns import ShardSliceView

    shm = _attach_shm(name)
    try:
        cols = {
            column: _np.frombuffer(
                shm.buf, dtype=_np.dtype(dtype), count=count, offset=offset
            )
            for column, (offset, dtype, count) in spec.items()
        }
        view = ShardSliceView.from_columns(
            cols["assignment"],
            cols["weights"],
            cols["idents"],
            site_lo,
            site_hi,
        )
    finally:
        del cols  # drop the buffer exports before closing the mapping
        try:
            shm.close()
        except BufferError:  # pragma: no cover - export still alive
            pass
    return view


class _WorkerShard:
    """Worker-side state for one run: sites, stream view, ring cursor."""

    def __init__(self, payload, ring, ring_bytes, stream_cache) -> None:
        self.site_lo: int = payload["site_lo"]
        self.site_hi: int = payload["site_hi"]
        self.sites: List = payload["sites"]
        stream = payload["stream"]
        if stream[0] == "cached":
            if stream_cache.get("token") != stream[1]:
                raise ProtocolViolationError(
                    "parent referenced a stream this worker has not cached"
                )
            self.view = stream_cache["view"]
        else:
            if stream[0] == "full":
                view = _view_from_full_shm(
                    stream[1], stream[2], self.site_lo, self.site_hi
                )
                token = stream[3]
            else:  # "view": pre-compacted, pipe transport
                view = stream[1]
                token = stream[2]
            stream_cache.clear()
            stream_cache["token"] = token
            stream_cache["view"] = view
            self.view = view
        self.ring = ring
        self.ring_bytes = ring_bytes
        self.ring_view = memoryview(ring.buf) if ring is not None else None
        self.ring_off = 0
        self.windows = list(
            batch_windows(
                payload["n"],
                payload["batch_size"],
                payload["initial_batch_size"],
                payload["marks"],
            )
        )

    def compute_window(self, lo: int, hi: int, min_site: Optional[int] = None):
        """Run the shard's site passes for global window ``[lo, hi)``.

        Mirrors the columnar engine's inner loop exactly: ascending
        site ids, per-site slices in global arrival order, shared
        once-per-window ``prepare_window`` context when every shard
        site shares class and config (pack contents are invariant to
        the sharing — sites verify the context's mask — so shard-local
        sharing is parity-safe).

        ``min_site`` restricts the pass to sites with a *larger* id —
        the rollback suffix.  Pack contents are also invariant to the
        shared-prep shortcut, so the suffix pass simply skips it.
        """
        i0, i1 = self.view.window_bounds(lo, hi)
        if i0 == i1:
            return []
        site_ids, starts, ends, idents_sorted, weights_sorted = (
            self.view.window_order(i0, i1)
        )
        window_prep = None
        if min_site is None:
            site0 = self.sites[0]
            cls0, cfg0 = type(site0), getattr(site0, "config", None)
            share_prep = (
                hasattr(site0, "prepare_window")
                and cfg0 is not None
                and all(
                    type(s) is cls0 and getattr(s, "config", None) is cfg0
                    for s in self.sites
                )
            )
            if share_prep:
                window_prep = site0.prepare_window(weights_sorted)
        self.ring_off = 0
        out = []
        for site_id, start, end in zip(site_ids, starts, ends):
            if min_site is not None and site_id <= min_site:
                continue
            result = self.sites[site_id - self.site_lo].on_columns(
                idents_sorted[start:end],
                weights_sorted[start:end],
                prep=(
                    None if window_prep is None else (window_prep, start, end)
                ),
            )
            descriptor = self._encode(site_id, result)
            if descriptor is not None:
                out.append(descriptor)
        return out

    def _encode(self, site_id: int, result):
        """Serialize one site's window result for the pipe/ring.

        Packs go as flat columns — into the shared-memory ring when
        they fit (the parent rebuilds zero-copy views), inline
        otherwise; scalar fallbacks (single-item site batches) go as
        pickled message lists, materialized here because a lazy
        iterator cannot cross the process boundary.
        """
        if isinstance(result, MessagePack):
            if len(result) == 0:
                return None
            kind, columns = result.to_arrays()
            if self.ring is not None:
                total = sum(array.nbytes for array in columns.values())
                if self.ring_off + total <= self.ring_bytes:
                    spec = {}
                    for name, array in columns.items():
                        array = _np.ascontiguousarray(array)
                        nbytes = array.nbytes
                        offset = self.ring_off
                        self.ring_view[offset : offset + nbytes] = memoryview(
                            array
                        ).cast("B")
                        spec[name] = (offset, array.dtype.str, len(array))
                        self.ring_off = offset + nbytes
                    return (site_id, "p", kind, spec)
            return (site_id, "q", kind, columns)
        messages = list(result)
        if not messages:
            return None
        return (site_id, "m", messages)

    def close(self) -> None:
        """Release this run's ring cursor (the cached view persists so
        the next run over the same stream skips the compaction)."""
        self.ring_view = None
        self.view = None


def _snapshot_sites(sites):
    """Window-boundary snapshot of a shard's sites.

    Prefers the sites' cheap :meth:`snapshot_state` hooks (a few
    microseconds per site); any site without one degrades the whole
    shard to pickling, which is always correct.
    """
    states = []
    for site in sites:
        state = site.snapshot_state()
        if state is None:
            return (
                "pickle",
                pickle.dumps(sites, protocol=pickle.HIGHEST_PROTOCOL),
            )
        states.append(state)
    return ("fast", states)


def _restore_sites(shard: "_WorkerShard", snapshot) -> None:
    kind, data = snapshot
    if kind == "pickle":
        shard.sites = pickle.loads(data)
    else:
        for site, state in zip(shard.sites, data):
            site.restore_state(state)


def _worker_run(shard: _WorkerShard, conn) -> None:
    """The lockstep window protocol, worker side, for one run.

    Per window: compute speculatively against last-committed control
    state, send, then serve ``roll`` (restore the pre-window snapshot,
    re-apply each control message to exactly the sites after its
    trigger, recompute, resend the suffix) until the parent ``com``mits
    — at which point every site applies the control messages it has not
    seen yet and the next window starts.
    """
    for lo, hi in shard.windows:
        i0, i1 = shard.view.window_bounds(lo, hi)
        # Pre-window state, captured BEFORE the compute so rollback
        # replays from exactly this point (same RNG positions).
        # Skipped when the shard has no arrivals (nothing mutates);
        # controls are then applied incrementally instead.
        snapshot = _snapshot_sites(shard.sites) if i0 != i1 else None
        results = shard.compute_window(lo, hi)
        applied = [0] * len(shard.sites)
        conn.send(("res", results))
        while True:
            message = conn.recv()
            tag = message[0]
            if tag == "com":
                controls = message[1]
                for idx, site in enumerate(shard.sites):
                    for _, dest, ctrl in controls[applied[idx] :]:
                        if dest == BROADCAST or dest == shard.site_lo + idx:
                            site.on_control(ctrl)
                break
            if tag == "roll":
                from_site, controls = message[1], message[2]
                if snapshot is None:
                    # No arrivals this window: nothing to replay, just
                    # advance each site's control prefix incrementally.
                    for idx, site in enumerate(shard.sites):
                        site_id = shard.site_lo + idx
                        n_pre = _prefix_len(controls, site_id)
                        for _, dest, ctrl in controls[applied[idx] : n_pre]:
                            if dest == BROADCAST or dest == site_id:
                                site.on_control(ctrl)
                        applied[idx] = n_pre
                    conn.send(("res", []))
                    continue
                if snapshot[0] == "fast":
                    # Per-site snapshots are independent: rewind and
                    # replay ONLY the invalidated suffix (sites after
                    # the trigger); prefix sites keep their state and
                    # their already-folded packs.  Every control's
                    # trigger is <= from_site, so the whole list
                    # applies to every suffix site.
                    states = snapshot[1]
                    for idx, site in enumerate(shard.sites):
                        site_id = shard.site_lo + idx
                        if site_id <= from_site:
                            continue
                        site.restore_state(states[idx])
                        for _, dest, ctrl in controls:
                            if dest == BROADCAST or dest == site_id:
                                site.on_control(ctrl)
                        applied[idx] = len(controls)
                    replacements = shard.compute_window(
                        lo, hi, min_site=from_site
                    )
                else:
                    # Pickled snapshot: the site list is restored
                    # wholesale, so the prefix must be replayed too
                    # (deterministically identical) and its packs
                    # dropped from the resend.
                    _restore_sites(shard, snapshot)
                    for idx, site in enumerate(shard.sites):
                        site_id = shard.site_lo + idx
                        n_pre = _prefix_len(controls, site_id)
                        for _, dest, ctrl in controls[:n_pre]:
                            if dest == BROADCAST or dest == site_id:
                                site.on_control(ctrl)
                        applied[idx] = n_pre
                    results = shard.compute_window(lo, hi)
                    replacements = [d for d in results if d[0] > from_site]
                conn.send(("res", replacements))
                continue
            raise ProtocolViolationError(
                f"shard worker got unexpected command {tag!r}"
            )
    message = conn.recv()
    if message[0] != "fin":
        raise ProtocolViolationError(
            f"shard worker got unexpected command {message[0]!r} at run end"
        )
    conn.send(
        (
            "sta",
            shard.site_lo,
            pickle.dumps(shard.sites, protocol=pickle.HIGHEST_PROTOCOL),
        )
    )


def _worker_main(boot, conn) -> None:
    """Process entry point: serve runs until told to go (or cut off).

    The process persists across ``run()`` calls — per-run state arrives
    with each ``run`` command — so a long-lived engine pays the spawn
    cost once.  Failures ship the original traceback to the parent.
    """
    ring = None
    try:
        ring_spec = boot["ring"]
        ring_bytes = 0
        if ring_spec is not None:
            ring = _attach_shm(ring_spec[0])
            ring_bytes = ring_spec[1]
        stream_cache: dict = {}
        conn.send(("rdy",))
        while True:
            command = conn.recv()
            if command[0] == "bye":
                break
            if command[0] != "run":
                raise ProtocolViolationError(
                    f"shard worker got unexpected command {command[0]!r}"
                )
            shard = _WorkerShard(command[1], ring, ring_bytes, stream_cache)
            try:
                _worker_run(shard, conn)
            finally:
                shard.close()
    except (EOFError, OSError, KeyboardInterrupt):
        pass  # parent went away (shutdown or its own failure): just exit
    except BaseException:
        try:
            conn.send(("err", traceback.format_exc()))
        except Exception:  # pragma: no cover - pipe already closed
            pass
    finally:
        if ring is not None:
            try:
                ring.close()
            except BufferError:  # pragma: no cover - views die with us
                pass
        try:
            conn.close()
        except Exception:  # pragma: no cover - already closed
            pass


# ---------------------------------------------------------------------------
# Parent engine
# ---------------------------------------------------------------------------


class _WorkerHandle:
    """Parent-side record of one spawned shard worker."""

    __slots__ = ("index", "process", "conn", "site_lo", "site_hi", "ring")

    def __init__(self, index, process, conn, ring) -> None:
        self.index = index
        self.process = process
        self.conn = conn
        self.site_lo = 0  # set per run
        self.site_hi = 0
        self.ring = ring


def _unlink_segments(shms) -> None:
    """Close and unlink owned shared-memory segments, best effort."""
    for shm in shms:
        try:
            shm.close()
        except BufferError:  # pragma: no cover - live views remain
            pass
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


def _shutdown_pool(pool) -> None:
    """Tear a worker pool down: polite bye, then force, then unlink.

    Module-level (not a method) so ``weakref.finalize`` can run it
    after the engine is gone; idempotence comes from the finalize
    wrapper calling it at most once per pool.
    """
    for handle in pool["handles"]:
        try:
            handle.conn.send(("bye",))
        except Exception:
            pass
    for handle in pool["handles"]:
        try:
            handle.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
    for handle in pool["handles"]:
        process = handle.process
        process.join(timeout=10)
        if process.is_alive():  # pragma: no cover - stuck worker
            process.terminate()
            process.join(timeout=10)
        if process.is_alive():  # pragma: no cover - unkillable
            process.kill()
            process.join(timeout=10)
    stream = pool.get("stream")
    _unlink_segments(pool["rings"] + (stream["shms"] if stream else []))


class ShardedEngine(ColumnarEngine):
    """Columnar data plane, shard-parallel site passes.

    Parameters
    ----------
    batch_size / initial_batch_size:
        The batched schedule, exactly as in
        :class:`~repro.runtime.batched.BatchedEngine` (the schedules
        must coincide for the bit-parity contract to be structural).
        Larger batches amortize the per-window worker round trip.
    workers:
        Worker process count; defaults to ``os.cpu_count()``.  Clamped
        to the site count; ``1`` runs the in-process columnar path.
    transport:
        ``"auto"`` (shared memory when available, else pipes),
        ``"shm"``, or ``"pipe"`` — how stream shards and result columns
        move between processes.  Pipes are the portable fallback;
        shared memory gives the parent zero-copy column views.
    """

    name = "sharded"

    def __init__(
        self,
        batch_size: int = DEFAULT_BATCH_SIZE,
        initial_batch_size: int = DEFAULT_INITIAL_BATCH_SIZE,
        workers: Optional[int] = None,
        transport: str = "auto",
    ) -> None:
        super().__init__(
            batch_size=batch_size, initial_batch_size=initial_batch_size
        )
        if workers is None:
            workers = os.cpu_count() or 1
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        if transport not in ("auto", "shm", "pipe"):
            raise ConfigurationError(
                f"transport must be 'auto', 'shm', or 'pipe', got {transport!r}"
            )
        self.workers = int(workers)
        self.transport = transport
        #: Observability: how the last ``run`` executed (mode, effective
        #: transport, window/rollback counts, warm-pool reuse).
        self.last_run_stats: dict = {}
        self._pool = None
        self._finalizer = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardedEngine(batch_size={self.batch_size}, "
            f"workers={self.workers}, transport={self.transport!r})"
        )

    def close(self) -> None:
        """Shut the persistent worker pool down (idempotent).

        Runs automatically when the engine is garbage-collected or the
        interpreter exits; call it eagerly to release the worker
        processes and their shared-memory rings sooner.
        """
        if self._finalizer is not None:
            self._finalizer()  # invokes _shutdown_pool at most once
            self._finalizer = None
        self._pool = None

    # -- top level ------------------------------------------------------

    def run(
        self,
        network: "Network",
        stream,
        on_step: Optional[Callable[[int], None]] = None,
        checkpoints: Optional[Iterable[int]] = None,
        on_checkpoint: Optional[Callable[[int], None]] = None,
    ) -> "MessageCounters":
        if checkpoints is not None:
            # Materialize once: marks are computed here AND the
            # fallback engine iterates again — a one-shot iterator must
            # survive both.
            checkpoints = list(checkpoints)
        arrays = stream.arrays() if hasattr(stream, "arrays") else None
        n = len(stream)
        workers = max(1, min(self.workers, network.num_sites))
        reason = None
        if _np is None:
            reason = "numpy unavailable"
        elif arrays is None or arrays[2] is None:
            reason = "stream has no int64 column view"
        elif n == 0:
            reason = "empty stream"
        elif workers < 2:
            reason = "single worker"
        elif _network_instrumented(network):
            reason = "network delivery is instrumented"
        elif not all(
            getattr(site, "shardable", True) for site in network.sites
        ):
            reason = "non-shardable site"
        marks: List[int] = []
        pool = None
        if reason is None:
            base = network.items_processed
            if checkpoints is not None and on_checkpoint is not None:
                marks = sorted(
                    t - base for t in set(checkpoints) if base < t <= base + n
                )
            try:
                pool, warm = self._get_pool(workers)
                self._dispatch_run(pool, network, arrays, n, marks)
            except Exception as exc:
                self.close()
                pool = None
                reason = f"worker setup failed: {exc!r}"
        if reason is not None:
            self.last_run_stats = {"mode": "fallback", "reason": reason}
            return ColumnarEngine.run(
                self,
                network,
                stream,
                on_step=on_step,
                checkpoints=checkpoints,
                on_checkpoint=on_checkpoint,
            )
        try:
            counters = self._run_windows(
                network, pool, n, marks, set(marks), on_step, on_checkpoint
            )
            self.last_run_stats["warm_pool"] = warm
            return counters
        except BaseException:
            # The pool's protocol state is unknown after a failure —
            # never reuse it.  Teardown also reaps any orphans.
            self.close()
            raise

    # -- pool lifecycle -------------------------------------------------

    def _get_pool(self, workers: int):
        """Return (pool, was_warm): reuse the live pool when its shape
        matches, else replace it."""
        pool = self._pool
        if (
            pool is not None
            and pool["workers"] == workers
            and all(h.process.is_alive() for h in pool["handles"])
        ):
            return pool, True
        self.close()
        pool = self._spawn_pool(workers)
        self._pool = pool
        self._finalizer = weakref.finalize(self, _shutdown_pool, pool)
        return pool, False

    def _spawn_pool(self, workers: int):
        from multiprocessing import get_context

        use_shm = (
            self.transport in ("auto", "shm") and _shared_memory is not None
        )
        if self.transport == "shm" and _shared_memory is None:
            raise ConfigurationError("shared memory is unavailable")
        ctx = get_context("spawn")
        ring_bytes = max(_MIN_RING_BYTES, 48 * self.batch_size + 4096)
        pool = {
            "workers": workers,
            "handles": [],
            "rings": [],
            "transport": "shm" if use_shm else "pipe",
            "use_shm": use_shm,
        }
        try:
            for index in range(workers):
                ring = None
                ring_spec = None
                if use_shm:
                    ring = _shared_memory.SharedMemory(
                        create=True, size=ring_bytes
                    )
                    pool["rings"].append(ring)
                    ring_spec = (ring.name, ring_bytes)
                parent_conn, child_conn = ctx.Pipe()
                process = ctx.Process(
                    target=_worker_main,
                    args=({"ring": ring_spec}, child_conn),
                    daemon=True,
                    name=f"repro-shard-{index}",
                )
                process.start()
                child_conn.close()
                pool["handles"].append(
                    _WorkerHandle(index, process, parent_conn, ring)
                )
            for handle in pool["handles"]:
                if not handle.conn.poll(_READY_TIMEOUT):
                    raise ShardedWorkerError(
                        f"shard worker {handle.index} not ready within "
                        f"{_READY_TIMEOUT:.0f}s"
                    )
                message = self._recv(handle)
                if message[0] != "rdy":
                    raise ShardedWorkerError(
                        f"shard worker {handle.index} sent {message[0]!r} "
                        "instead of ready"
                    )
        except BaseException:
            _shutdown_pool(pool)
            raise
        return pool

    def _dispatch_run(self, pool, network, arrays, n, marks) -> None:
        """Ship each worker its shard for this run: site states, the
        stream columns, and the window schedule.

        The stream shipment is cached on the pool: a repeat run over
        the SAME column arrays (identity-checked via weakrefs; the
        engine assumes stream columns are immutable, which every stream
        in this package honors) just references the workers' cached
        shard views — the steady state for repeated analyses over one
        dataset.  Cold shipments move the full columns through one
        shared segment (a single memcpy in the parent) and each worker
        compacts its own shard out of it, in parallel.
        """
        from ..stream.columns import ShardSliceView

        assignment, weights, idents = arrays
        num_sites = network.num_sites
        workers = pool["workers"]
        cache = pool.get("stream")
        cached = (
            cache is not None
            and cache["num_sites"] == num_sites
            and all(
                ref() is array
                for ref, array in zip(cache["refs"], arrays)
            )
        )
        if not cached:
            token = 1 if cache is None else cache["token"] + 1
            shms = []
            specs = None
            if pool["use_shm"]:
                spec, shm = _columns_to_shm(assignment, weights, idents)
                shms.append(shm)
                specs = [("full",) + spec + (token,)] * workers
            pool["stream"] = {
                "refs": [weakref.ref(array) for array in arrays],
                "num_sites": num_sites,
                "token": token,
                "shms": shms,
            }
            if cache is not None:
                _unlink_segments(cache["shms"])
        else:
            token = cache["token"]
            specs = [("cached", token)] * workers
        for handle in pool["handles"]:
            handle.site_lo, handle.site_hi = ShardSliceView.shard_range(
                num_sites, workers, handle.index
            )
            if specs is not None:
                stream_spec = specs[handle.index]
            else:
                # Pipe transport, cold shipment: compact in the parent.
                stream_spec = (
                    "view",
                    ShardSliceView.from_columns(
                        assignment,
                        weights,
                        idents,
                        handle.site_lo,
                        handle.site_hi,
                    ),
                    token,
                )
            payload = {
                "site_lo": handle.site_lo,
                "site_hi": handle.site_hi,
                "sites": network.sites[handle.site_lo : handle.site_hi],
                "n": n,
                "batch_size": self.batch_size,
                "initial_batch_size": self.initial_batch_size,
                "marks": marks,
                "stream": stream_spec,
            }
            self._send(handle, ("run", payload))


    # -- the lockstep fold ---------------------------------------------

    def _run_windows(
        self, network, pool, n, marks, mark_set, on_step, on_checkpoint
    ) -> "MessageCounters":
        handles = pool["handles"]
        windows = list(
            batch_windows(n, self.batch_size, self.initial_batch_size, marks)
        )
        rollbacks = 0
        controls_total = 0
        for lo, hi in windows:
            pending = {}
            for handle in handles:
                message = self._recv(handle)
                for descriptor in message[1]:
                    pending[descriptor[0]] = (handle, descriptor)
            controls: List[Tuple[int, int, object]] = []
            order = sorted(pending)
            i = 0
            while i < len(order):
                site_id = order[i]
                handle, descriptor = pending.pop(site_id)
                responses = self._fold(
                    network, site_id, self._decode(handle, descriptor)
                )
                if responses:
                    controls.extend(
                        (site_id, dest, message) for dest, message in responses
                    )
                    needs_roll = any(
                        dest == BROADCAST or dest > site_id
                        for dest, _ in responses
                    )
                    affected = [h for h in handles if h.site_hi - 1 > site_id]
                    if needs_roll and affected:
                        rollbacks += 1
                        for h in affected:
                            self._send(h, ("roll", site_id, controls))
                        for stale in [s for s in pending if s > site_id]:
                            del pending[stale]
                        for h in affected:
                            message = self._recv(h)
                            for descriptor in message[1]:
                                pending[descriptor[0]] = (h, descriptor)
                        order = order[: i + 1] + sorted(
                            s for s in pending if s > site_id
                        )
                i += 1
            controls_total += len(controls)
            for handle in handles:
                self._send(handle, ("com", controls))
            network.items_processed += hi - lo
            t = network.items_processed
            if on_step is not None:
                on_step(t)
            if hi in mark_set:
                on_checkpoint(t)
        for handle in handles:
            self._send(handle, ("fin",))
        for handle in handles:
            message = self._recv(handle)
            if message[0] != "sta":  # pragma: no cover - protocol bug guard
                raise ShardedWorkerError(
                    f"shard worker {handle.index} sent {message[0]!r} "
                    "instead of final state"
                )
            for offset, final in enumerate(pickle.loads(message[2])):
                _adopt_site_state(network.sites[message[1] + offset], final)
        self.last_run_stats = {
            "mode": "sharded",
            "workers": pool["workers"],
            "transport": pool["transport"],
            "windows": len(windows),
            "rollbacks": rollbacks,
            "controls": controls_total,
            "shm_segments": [
                shm.name
                for shm in pool["rings"] + pool["stream"]["shms"]
            ],
        }
        return network.counters

    @staticmethod
    def _send(handle, message) -> None:
        """Send a command to a worker, translating a dead pipe into the
        same :class:`ShardedWorkerError` diagnostics ``_recv`` gives."""
        try:
            handle.conn.send(message)
        except (BrokenPipeError, OSError) as exc:
            raise ShardedWorkerError(
                f"shard worker {handle.index} (sites [{handle.site_lo}, "
                f"{handle.site_hi})) is gone "
                f"(exitcode {handle.process.exitcode}): {exc!r}"
            ) from None

    def _recv(self, handle):
        try:
            message = handle.conn.recv()
        except (EOFError, OSError) as exc:
            raise ShardedWorkerError(
                f"shard worker {handle.index} (sites [{handle.site_lo}, "
                f"{handle.site_hi})) exited unexpectedly "
                f"(exitcode {handle.process.exitcode}): {exc!r}"
            ) from None
        if message[0] == "err":
            raise ShardedWorkerError(
                f"shard worker {handle.index} (sites [{handle.site_lo}, "
                f"{handle.site_hi})) failed; original traceback:\n"
                f"{message[1]}",
                worker_traceback=message[1],
            )
        return message

    def _decode(self, handle, descriptor):
        tag = descriptor[1]
        if tag == "m":
            return descriptor[2]
        if tag == "q":
            return MessagePack.from_arrays(descriptor[2], descriptor[3])
        columns = {
            name: _np.frombuffer(
                handle.ring.buf,
                dtype=_np.dtype(dtype),
                count=count,
                offset=offset,
            )
            for name, (offset, dtype, count) in descriptor[3].items()
        }
        return MessagePack.from_arrays(descriptor[2], columns)

    @staticmethod
    def _fold(network, site_id: int, payload):
        """Deliver one site's window output to the coordinator, exactly
        as :meth:`Network.deliver_pack` / ``deliver_upstream`` would
        (same counter calls, same response fan-out), but returning the
        coordinator's responses so the window loop can see broadcasts.
        Only called on uninstrumented networks (checked at ``run``
        start), where this *is* the delivery path, verbatim.
        """
        counters = network.counters
        coordinator = network.coordinator
        if isinstance(payload, MessagePack):
            if len(payload) == 0:  # pragma: no cover - filtered at encode
                return []
            counters.record_upstream_pack(payload)
            responses = coordinator.on_message_pack(site_id, payload)
            for dest, response in responses:
                network.deliver_downstream(dest, response)
            return responses
        out = []
        for message in payload:
            counters.record_upstream(message)
            responses = coordinator.on_message(site_id, message)
            for dest, response in responses:
                network.deliver_downstream(dest, response)
            out.extend(responses)
        return out


def _columns_to_shm(assignment, weights, idents):
    """Copy the full stream columns into one shared-memory segment
    (a single parent-side memcpy, attached by every worker); returns
    ``((name, column_spec), segment)``."""
    columns = {
        "assignment": assignment,
        "weights": weights,
        "idents": idents,
    }
    total = sum(array.nbytes for array in columns.values())
    shm = _shared_memory.SharedMemory(create=True, size=max(1, total))
    target = memoryview(shm.buf)
    spec = {}
    offset = 0
    for name, array in columns.items():
        array = _np.ascontiguousarray(array)
        nbytes = array.nbytes
        target[offset : offset + nbytes] = memoryview(array).cast("B")
        spec[name] = (offset, array.dtype.str, len(array))
        offset += nbytes
    return (shm.name, spec), shm


def _network_instrumented(network) -> bool:
    """Mirror :meth:`Network.deliver_pack`'s tracing check: wrapped or
    overridden delivery methods mean an observer wants to see every
    message in causal order — the sharded fold would bypass it, so the
    engine falls back to the in-process columnar path instead."""
    from .network import (
        _BASE_DELIVER_DOWNSTREAM,
        _BASE_DELIVER_UPSTREAM,
        Network,
    )

    cls = type(network)
    return (
        "deliver_upstream" in network.__dict__
        or "deliver_downstream" in network.__dict__
        or "deliver_pack" in network.__dict__
        or cls.deliver_upstream is not _BASE_DELIVER_UPSTREAM
        or cls.deliver_downstream is not _BASE_DELIVER_DOWNSTREAM
        or cls.deliver_pack is not Network.deliver_pack
    )

"""The sharded engine: shard-parallel site passes in worker processes.

The paper's protocols are distributed by construction — sites compute
independently and only exchange O(1)-word messages with the coordinator
— yet every other engine runs all ``k`` sites in one interpreter.
:class:`ShardedEngine` partitions the sites into contiguous shards, one
worker *process* per shard, and keeps only the coordinator (plus the
message accounting) in the parent:

* each worker owns its shard's protocol sites and a compacted
  :class:`~repro.stream.columns.ShardSliceView` of the stream columns
  (shipped once per run, over :mod:`multiprocessing.shared_memory` when
  available, pickled over the pipe otherwise);
* per batch window the worker runs the same per-site grouping and
  ``on_columns`` site pass the columnar engine would, and ships each
  (site, batch) :class:`~repro.net.messages.MessagePack` back as flat
  columns (:meth:`~repro.net.messages.MessagePack.to_arrays`) through a
  per-worker shared-memory ring the parent reads zero-copy — falling
  back to inline pickling for oversized windows or pipe transport;
* the parent folds the packs through the **same** coordinator bulk path
  (:meth:`~repro.runtime.interfaces.CoordinatorAlgorithm.on_message_pack`)
  in the **same** deterministic ascending-(batch, site) order the
  columnar engine uses, with identical counter accounting.

Workers are spawned once per engine instance and *reused* across
``run()`` calls (each run re-ships the site states and stream shard),
so a long-lived engine amortizes process start-up away — the regime the
"saturate all cores at 100M+ items" target actually cares about.  Call
:meth:`ShardedEngine.close` to tear the pool down eagerly; a dropped
engine cleans up via ``weakref.finalize``.

Why this is bit-identical to the columnar engine
------------------------------------------------
Per-site RNG streams are derived independently
(:class:`~repro.common.rng.RandomSource` substreams plus per-site
``BatchRandom``), each site's per-window ident/weight slices are
bitwise equal to the columnar engine's (stable argsort over a
position-compacted shard — see ``ShardSliceView``), and the
coordinator runs *in the parent*, consuming its own RNG in fold order.
The one genuinely new piece is control flow: the columnar engine
delivers a mid-window broadcast to the *later* sites of the same
window before they compute, while shard workers compute a whole window
speculatively against the control state of the previous window.  The
engine therefore runs a **lockstep window protocol** with rollback:

1. workers compute window ``t``'s packs against the control state as of
   window ``t - 1`` and send them;
2. the parent folds them site-ascending; when a fold emits control
   traffic that could affect a *later* site of the same window (a
   threshold/epoch broadcast, a saturated level), it tells the affected
   workers to **roll back**: restore the pre-window site snapshot,
   re-apply the window's control messages to exactly the sites that
   come after each message's trigger site, recompute, and resend;
3. once the window folds clean, the parent **commits**: workers apply
   whatever control messages their sites have not seen yet and proceed
   to window ``t + 1``.

Re-computation is deterministic (same restored RNG state, same input
slices, same control prefix), so replayed sites reproduce their packs
bit for bit and the divergent suffix is recomputed exactly as the
columnar engine would have computed it after the broadcast.  Broadcasts
are logarithmically rare, so rollbacks cost a bounded number of extra
window computations per run.  Samples **and**
:class:`~repro.net.counters.MessageCounters` match the columnar engine
bit for bit at every batch size and worker count —
``benchmarks/bench_sharded.py`` pins this at the multi-million-item
scale.

Beyond lockstep: the pipelined mode
-----------------------------------
Strict lockstep leaves every worker idle while the parent folds and
the parent idle while workers compute.  With ``pipeline="on"`` (the
``"auto"`` default) the same window protocol runs *pipelined*, three
mechanisms deep, all bit-parity-preserving:

1. **Speculative windows** — after shipping window ``t``'s packs a
   worker immediately snapshots and computes window ``t + 1`` under the
   assumption that window ``t`` folds without a broadcast.  The commit
   message carries the window's control list; the worker answers with
   an explicit ``ack`` verdict: *hit* (no control touched this shard —
   the speculative packs already sitting in the parent's inbox are
   final) or *miss* (the speculation is discarded by restoring its
   pre-window snapshot, controls are applied, and ``t + 1`` is
   recomputed).  Rolls discard the speculation the same way and block
   re-speculation until commit, preserving the fast-roll invariant
   that prefix sites keep their state.  Pipe FIFO ordering makes the
   verdict unambiguous: on a hit the final ``res(t+1)`` preceded the
   ack; on a miss it follows it.
2. **Double-buffered rings** — each per-worker shared-memory ring is
   split into two slots; window ``t`` encodes into slot ``t % 2``
   (:meth:`~repro.net.messages.MessagePack.write_into`), so a worker
   writes ``t + 1`` (and, after commit of ``t``, ``t + 2``) while the
   parent still holds zero-copy views into ``t``'s slot.  A slot is
   rewritten only for data the parent has already consumed (folded
   prefixes) or discarded (rolled/missed speculation).
3. **Async coordinator folds** — within a window the parent folds
   packs in *arrival* order when the coordinator proves the fold
   order-invariant
   (:meth:`~repro.runtime.interfaces.CoordinatorAlgorithm.on_message_pack_unordered`:
   regular-only packs, no epoch crossing, no selection tie), so fold
   work overlaps the still-computing workers.  The coordinator and
   counters are snapshotted at the window start; if an ordered fold of
   the window's remainder then emits a response (whose broadcast point
   depends on fold order), the parent rewinds and refolds the whole
   window in exact ascending-site order — nothing was delivered
   downstream before the rewind, so the replay is exact.  The
   threshold ``u`` is monotone along every fold order, hence an epoch
   crossing can never be silently skipped: the fold that would cross
   either declines the unordered path or triggers the rewind.

``last_run_stats`` records speculation hits/misses, rollback and
refold counts, and a per-window timing breakdown (worker compute,
transport wait, parent fold); ``repro ... --profile --engine sharded``
prints it.

Fault tolerance: supervision, recovery, and the degradation ladder
------------------------------------------------------------------
Every worker receive is supervised (``supervision="on"``, the
default): deadline-bounded waits classify silence as a **hang**, a
dead pipe or process exit as a **crash**, and a descriptor rejected by
the wire validation in :mod:`repro.net.messages` as **poison** — while
a worker that ships its own traceback stays fail-stop
(:class:`ShardedWorkerError`, ``fault_class="error"``), since replaying
a deterministic user-code exception would just raise it again.  In
lockstep mode a classified fault triggers **deterministic
window-boundary recovery**: the dead shard's worker is reaped and
respawned on the same pool slot (bounded retries, capped backoff), its
run-start site states are re-shipped and fast-forwarded through the
committed control history (bit-identical replay — same RNG positions),
survivors rewind the in-flight window to their pre-window snapshots,
the parent's coordinator/counters rewind to the window-start snapshot,
and the window retries.  A recovered run's samples **and** message
counters are bit-identical to a fault-free one.  When recovery is
exhausted (``max_worker_restarts``) or structurally unavailable
(pipelined speculation in flight, a mid-commit fault, a coordinator
that cannot rewind), the run takes the **degradation ladder** —
pipelined -> lockstep -> in-process columnar — restoring the run-start
network checkpoint between rungs; ``last_run_stats`` records the
fault log, restart count, recovery seconds, and the rung taken
(``mode="degraded"`` at the bottom).  The chaos seams threaded through
the worker loops (:mod:`repro.faults`) inject crashes, hangs, drops,
corrupt/truncated packs, stalled acks, and respawn failures
deterministically; ``tests/test_chaos.py`` drives them across the
whole grid and asserts bit-identity or explicit degradation — never a
hang, leaked process, or leaked shared-memory segment.

Fallbacks: numpy-free installs, non-int64 ident streams, ``workers=1``
(or one site), instrumented networks (a
:class:`~repro.net.tracing.MessageTrace` wrapping the delivery
methods), sites that declare themselves non-shardable
(:attr:`~repro.runtime.interfaces.SiteAlgorithm.shardable`), and any
worker-setup failure (spawn unavailable, unpicklable sites, no shared
memory) all run the in-process :class:`ColumnarEngine` path instead, so
the engine is always safe to select; ``last_run_stats`` records which
mode ran.  Sites whose bulk hooks return *lazy* message iterators are
materialized at the worker before shipping (the batched engine streams
them instead); all shipped protocols return materialized lists.
"""

from __future__ import annotations

import os
import pickle
import time
import traceback
import weakref
from typing import TYPE_CHECKING, Callable, Iterable, List, Optional, Tuple

try:  # the shard-parallel path is numpy-only; gated, not required
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-free installs
    _np = None  # type: ignore[assignment]

try:  # shared memory may be missing on exotic builds; pipes then carry all
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - platform-dependent
    _shared_memory = None  # type: ignore[assignment]

from ..common.errors import ConfigurationError, ProtocolViolationError
from ..faults import (
    FaultPlan,
    block_forever,
    chaos_exit,
    corrupt_descriptors,
    fault_action,
    parse_fault_plan,
)
from ..kernels import active as _active_kernels
from ..kernels import set_default_kernels, use_kernels
from ..net.messages import MessagePack, PackWireError
from ..obs import (
    WORKER_METRIC_NAMES,
    merge_worker_deltas,
    observe_degradation,
    observe_fault,
    observe_heartbeat_age,
    observe_recovery,
    observe_sharded_stats,
)
from .batched import (
    DEFAULT_BATCH_SIZE,
    DEFAULT_INITIAL_BATCH_SIZE,
    batch_windows,
)
from .columnar import ColumnarEngine
from .interfaces import BROADCAST

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from ..net.counters import MessageCounters
    from .network import Network

__all__ = ["ShardedEngine", "ShardedWorkerError", "WorkerSupervisor"]

#: Floor for the per-worker result ring (one window's packs always fit
#: unless the batch is enormous; oversized windows fall back to inline
#: pickling per pack, never to failure).
_MIN_RING_BYTES = 1 << 20

#: Seconds to wait for a spawned worker's ready message before treating
#: setup as failed (and falling back in-process).
_READY_TIMEOUT = 120.0

#: Default per-message supervision deadline (seconds of worker silence
#: before the supervisor classifies a hang).  Generous: a deadline only
#: has to beat "forever", not a window compute.
_DEFAULT_WORKER_TIMEOUT = 60.0

#: Respawn attempts per recovery, with capped exponential backoff.
_RESPAWN_RETRIES = 3
_RESPAWN_BACKOFF = 0.05
_RESPAWN_BACKOFF_CAP = 1.0

#: Seconds to wait for a politely-asked worker to exit before force.
_JOIN_TIMEOUT = 5.0


class ShardedWorkerError(RuntimeError):
    """A shard worker died, hung, raised, or sent a malformed pack.

    The parent raises this only after recovery is exhausted or disabled
    and the worker pool is torn down (processes joined or killed,
    shared-memory segments unlinked), so a failing site never leaks
    orphans.  Structured context rides along for programmatic handling:

    ``worker``
        The worker's pool index, or None when no single worker is at
        fault (setup failures).
    ``shard``
        The worker's ``(site_lo, site_hi)`` site range.
    ``window``
        The batch-window index being folded when the fault surfaced
        (None outside the window loop).
    ``fault_class``
        The supervisor's classification: ``"crash"`` (process exit /
        dead pipe), ``"hang"`` (deadline missed), ``"poison"``
        (malformed pack rejected by wire validation), or ``"error"``
        (the worker shipped its own traceback).
    """

    def __init__(
        self,
        message: str,
        worker_traceback: Optional[str] = None,
        *,
        worker: Optional[int] = None,
        shard: Optional[Tuple[int, int]] = None,
        window: Optional[int] = None,
        fault_class: Optional[str] = None,
    ):
        super().__init__(message)
        self.worker_traceback = worker_traceback
        self.worker = worker
        self.shard = shard
        self.window = window
        self.fault_class = fault_class

    @classmethod
    def from_fault(
        cls,
        handle,
        fault_class: str,
        detail: str,
        window: Optional[int] = None,
        worker_traceback: Optional[str] = None,
    ) -> "ShardedWorkerError":
        at = "" if window is None else f" at window {window}"
        return cls(
            f"shard worker {handle.index} (sites [{handle.site_lo}, "
            f"{handle.site_hi})){at} [{fault_class}]: {detail}",
            worker_traceback,
            worker=handle.index,
            shard=(handle.site_lo, handle.site_hi),
            window=window,
            fault_class=fault_class,
        )


class _WorkerFault(Exception):
    """Internal: one classified worker fault (crash/hang/poison) with
    enough context to recover in place or degrade.  Converted to
    :class:`ShardedWorkerError` via :meth:`to_error` when it must
    surface to the caller."""

    def __init__(self, handle, fault_class, detail, window=None) -> None:
        super().__init__(detail)
        self.handle = handle
        self.fault_class = fault_class
        self.detail = detail
        self.window = window

    def to_error(self) -> ShardedWorkerError:
        return ShardedWorkerError.from_fault(
            self.handle, self.fault_class, self.detail, self.window
        )


class _LadderFault(Exception):
    """Internal: a fault that window-boundary recovery cannot (or may
    no longer) handle — the run must take the degradation ladder."""

    def __init__(self, fault: _WorkerFault) -> None:
        super().__init__(fault.detail)
        self.fault = fault


def _attach_shm(name: str):
    """Attach an existing shared-memory segment.

    Ownership stays with the parent (which unlinks at shutdown); the
    resource tracker is shared across the spawn tree and de-duplicates
    the attach-side registration, so no unregister gymnastics are
    needed here.
    """
    return _shared_memory.SharedMemory(name=name)


def _prefix_len(controls, site_id: int) -> int:
    """Number of window controls a site must see *before* computing:
    exactly those triggered by an earlier site's fold.  Triggers are
    non-decreasing in fold order, so this is a prefix."""
    n = 0
    for trigger, _, _ in controls:
        if trigger >= site_id:
            break
        n += 1
    return n


def _adopt_site_state(dst, src) -> None:
    """Transplant a worker site's final state onto the parent's mirror.

    After a sharded run the parent's site objects have only mirrored
    control traffic; the workers hold the real per-site state (RNG
    positions, ``items_seen``, resource counters).  Copying the worker
    state back keeps facade-level introspection (``resource_report``)
    and *subsequent* ``run()`` calls on the same network bit-compatible
    with a columnar run.  The mirror's original shared ``config``
    object is kept so identity relationships survive.
    """
    if not hasattr(dst, "__dict__") or not hasattr(src, "__dict__"):
        return  # slots-only sites keep their (control-mirrored) state
    config = dst.__dict__.get("config")
    dst.__dict__.clear()
    dst.__dict__.update(src.__dict__)
    if config is not None and "config" in dst.__dict__:
        dst.__dict__["config"] = config


# ---------------------------------------------------------------------------
# Worker process
# ---------------------------------------------------------------------------


def _view_from_full_shm(name, spec, site_lo, site_hi):
    """Attach the parent's full-column segment and compact this shard's
    rows out of it.  The compaction copies (fancy indexing), so the
    attachment is released immediately and the worker's footprint stays
    proportional to its shard."""
    from ..stream.columns import ShardSliceView

    shm = _attach_shm(name)
    try:
        cols = {
            column: _np.frombuffer(
                shm.buf, dtype=_np.dtype(dtype), count=count, offset=offset
            )
            for column, (offset, dtype, count) in spec.items()
        }
        view = ShardSliceView.from_columns(
            cols["assignment"],
            cols["weights"],
            cols["idents"],
            site_lo,
            site_hi,
        )
    finally:
        del cols  # drop the buffer exports before closing the mapping
        try:
            shm.close()
        except BufferError:  # pragma: no cover - export still alive
            pass
    return view


class _WorkerShard:
    """Worker-side state for one run: sites, stream view, ring cursor.

    The ring is divided into equal slots (two in pipelined mode, one
    in lockstep); each window encodes into slot ``t % 2`` so writes
    for a speculative window never touch the slot the parent is still
    reading.
    """

    def __init__(self, payload, ring, slot_bytes, stream_cache) -> None:
        set_default_kernels(payload.get("kernels", "auto"), strict=False)
        self.site_lo: int = payload["site_lo"]
        self.site_hi: int = payload["site_hi"]
        self.sites: List = payload["sites"]
        stream = payload["stream"]
        if stream[0] == "cached":
            if stream_cache.get("token") != stream[1]:
                raise ProtocolViolationError(
                    "parent referenced a stream this worker has not cached"
                )
            self.view = stream_cache["view"]
        else:
            if stream[0] == "full":
                view = _view_from_full_shm(
                    stream[1], stream[2], self.site_lo, self.site_hi
                )
                token = stream[3]
            else:  # "view": pre-compacted, pipe transport
                view = stream[1]
                token = stream[2]
            stream_cache.clear()
            stream_cache["token"] = token
            stream_cache["view"] = view
            self.view = view
        self.ring = ring
        self.slot_bytes = slot_bytes
        self.ring_view = memoryview(ring.buf) if ring is not None else None
        self.ring_off = 0
        self.ring_limit = slot_bytes
        self.windows = list(
            batch_windows(
                payload["n"],
                payload["batch_size"],
                payload["initial_batch_size"],
                payload["marks"],
            )
        )
        #: Telemetry deltas accumulated between sends (``None`` when the
        #: parent's registry is disabled — every message then keeps the
        #: exact wire shape of an uninstrumented build).
        self.metrics = (
            dict.fromkeys(WORKER_METRIC_NAMES, 0.0)
            if payload.get("metrics")
            else None
        )
        #: Supervision / recovery fields (absent pre-supervisor payloads
        #: keep working: every key defaults to the unsupervised shape).
        self.worker: int = payload.get("worker", 0)
        self.supervised: bool = bool(payload.get("supervised"))
        #: Chaos seams: planned ``(kind, window)`` faults for this
        #: worker (test-only; empty/None in production).
        self.faults = payload.get("faults") or ()
        #: Deterministic recovery: fast-forward the first ``resume``
        #: windows from ``history`` (their committed control lists)
        #: without shipping anything, then rejoin the live protocol.
        self.resume: int = payload.get("resume", 0)
        self.history: List[list] = payload.get("history") or []

    def drain_metrics(self):
        """Return-and-reset the accumulated telemetry as the flat
        :data:`~repro.obs.WORKER_METRIC_NAMES`-ordered value vector
        (``None`` when metrics are disabled) — the column the worker
        appends to its result messages."""
        metrics = self.metrics
        if metrics is None:
            return None
        values = tuple(metrics.values())
        for key in metrics:
            metrics[key] = 0.0
        return values

    def compute_window(
        self,
        lo: int,
        hi: int,
        min_site: Optional[int] = None,
        slot: int = 0,
        encode: bool = True,
    ):
        """Run the shard's site passes for global window ``[lo, hi)``.

        Mirrors the columnar engine's inner loop exactly: ascending
        site ids, per-site slices in global arrival order, shared
        once-per-window ``prepare_window`` context when every shard
        site shares class and config (pack contents are invariant to
        the sharing — sites verify the context's mask — so shard-local
        sharing is parity-safe).

        ``min_site`` restricts the pass to sites with a *larger* id —
        the rollback suffix.  Pack contents are also invariant to the
        shared-prep shortcut, so the suffix pass simply skips it.
        ``slot`` selects which ring slot the window's packs encode
        into (always 0 in lockstep mode).  ``encode=False`` runs the
        pass purely for its state effects (RNG advances, per-site
        accounting) without serializing anything — the recovery replay
        of already-committed windows.
        """
        i0, i1 = self.view.window_bounds(lo, hi)
        if i0 == i1:
            return []
        metrics = self.metrics
        if metrics is not None:
            t_start = time.perf_counter()
            if min_site is None:
                metrics["windows" if encode else "replay_windows"] += 1
        site_ids, starts, ends, idents_sorted, weights_sorted = (
            self.view.window_order(i0, i1)
        )
        window_prep = None
        if min_site is None:
            site0 = self.sites[0]
            cls0, cfg0 = type(site0), getattr(site0, "config", None)
            share_prep = (
                hasattr(site0, "prepare_window")
                and cfg0 is not None
                and all(
                    type(s) is cls0 and getattr(s, "config", None) is cfg0
                    for s in self.sites
                )
            )
            if share_prep:
                window_prep = site0.prepare_window(weights_sorted)
        self.ring_off = slot * self.slot_bytes
        self.ring_limit = self.ring_off + self.slot_bytes
        out = []
        for site_id, start, end in zip(site_ids, starts, ends):
            if min_site is not None and site_id <= min_site:
                continue
            result = self.sites[site_id - self.site_lo].on_columns(
                idents_sorted[start:end],
                weights_sorted[start:end],
                prep=(
                    None if window_prep is None else (window_prep, start, end)
                ),
            )
            if not encode:
                if not isinstance(result, MessagePack):
                    list(result)  # drive lazy hooks for their state effects
                continue
            descriptor = self._encode(site_id, result)
            if descriptor is not None:
                out.append(descriptor)
        if metrics is not None:
            metrics["compute_seconds"] += time.perf_counter() - t_start
        return out

    def _encode(self, site_id: int, result):
        """Serialize one site's window result for the pipe/ring.

        Packs go as flat columns — into the shared-memory ring when
        they fit (the parent rebuilds zero-copy views), inline
        otherwise; scalar fallbacks (single-item site batches) go as
        pickled message lists, materialized here because a lazy
        iterator cannot cross the process boundary.
        """
        metrics = self.metrics
        if isinstance(result, MessagePack):
            if len(result) == 0:
                return None
            if metrics is not None:
                metrics["packs"] += 1
                metrics["pack_entries"] += len(result)
            if self.ring is not None:
                encoded = result.write_into(
                    self.ring_view, self.ring_off, self.ring_limit
                )
                if encoded is not None:
                    kind, spec, end = encoded
                    if metrics is not None:
                        metrics["ring_bytes"] += end - self.ring_off
                    self.ring_off = end
                    return (site_id, "p", kind, spec)
            kind, columns = result.to_arrays()
            return (site_id, "q", kind, columns)
        messages = list(result)
        if not messages:
            return None
        if metrics is not None:
            metrics["packs"] += 1
            metrics["pack_entries"] += len(messages)
        return (site_id, "m", messages)

    def close(self) -> None:
        """Release this run's ring cursor (the cached view persists so
        the next run over the same stream skips the compaction)."""
        self.ring_view = None
        self.view = None


def _snapshot_sites(sites):
    """Window-boundary snapshot of a shard's sites.

    Prefers the sites' cheap :meth:`snapshot_state` hooks (a few
    microseconds per site); any site without one degrades the whole
    shard to pickling, which is always correct.
    """
    states = []
    for site in sites:
        state = site.snapshot_state()
        if state is None:
            return (
                "pickle",
                pickle.dumps(sites, protocol=pickle.HIGHEST_PROTOCOL),
            )
        states.append(state)
    return ("fast", states)


def _restore_sites(shard: "_WorkerShard", snapshot) -> None:
    kind, data = snapshot
    if kind == "pickle":
        shard.sites = pickle.loads(data)
    else:
        for site, state in zip(shard.sites, data):
            site.restore_state(state)


def _apply_commit(shard: _WorkerShard, applied, controls) -> None:
    """Commit a window: apply the controls each site has not seen yet."""
    for idx, site in enumerate(shard.sites):
        for _, dest, ctrl in controls[applied[idx] :]:
            if dest == BROADCAST or dest == shard.site_lo + idx:
                site.on_control(ctrl)


def _apply_roll(
    shard: _WorkerShard, lo, hi, snapshot, applied, from_site, controls, slot=0
):
    """Serve one rollback for window ``[lo, hi)``; return replacement
    descriptors for the invalidated suffix (sites after ``from_site``).

    Shared by the lockstep and pipelined worker loops; ``snapshot`` and
    ``applied`` are the window's pre-compute state and per-site control
    cursor, mutated in place across repeated rolls of the same window.
    """
    if shard.metrics is not None:
        shard.metrics["rolls_served"] += 1
    if snapshot is None:
        # No arrivals this window: nothing to replay, just advance
        # each site's control prefix incrementally.
        for idx, site in enumerate(shard.sites):
            site_id = shard.site_lo + idx
            n_pre = _prefix_len(controls, site_id)
            for _, dest, ctrl in controls[applied[idx] : n_pre]:
                if dest == BROADCAST or dest == site_id:
                    site.on_control(ctrl)
            applied[idx] = n_pre
        return []
    if snapshot[0] == "fast":
        # Per-site snapshots are independent: rewind and replay ONLY
        # the invalidated suffix (sites after the trigger); prefix
        # sites keep their state and their already-folded packs.
        # Every control's trigger is <= from_site, so the whole list
        # applies to every suffix site.
        states = snapshot[1]
        for idx, site in enumerate(shard.sites):
            site_id = shard.site_lo + idx
            if site_id <= from_site:
                continue
            site.restore_state(states[idx])
            for _, dest, ctrl in controls:
                if dest == BROADCAST or dest == site_id:
                    site.on_control(ctrl)
            applied[idx] = len(controls)
        return shard.compute_window(lo, hi, min_site=from_site, slot=slot)
    # Pickled snapshot: the site list is restored wholesale, so the
    # prefix must be replayed too (deterministically identical) and
    # its packs dropped from the resend.
    _restore_sites(shard, snapshot)
    for idx, site in enumerate(shard.sites):
        site_id = shard.site_lo + idx
        n_pre = _prefix_len(controls, site_id)
        for _, dest, ctrl in controls[:n_pre]:
            if dest == BROADCAST or dest == site_id:
                site.on_control(ctrl)
        applied[idx] = n_pre
    results = shard.compute_window(lo, hi, slot=slot)
    return [d for d in results if d[0] > from_site]


def _send_state(shard: _WorkerShard, conn) -> None:
    pickled = pickle.dumps(shard.sites, protocol=pickle.HIGHEST_PROTOCOL)
    if shard.metrics is None:
        conn.send(("sta", shard.site_lo, pickled))
    else:
        # Leftover telemetry (post-commit work since the last result
        # send) rides with the final state message.
        conn.send(("sta", shard.site_lo, pickled, shard.drain_metrics()))


def _replay_history(shard: _WorkerShard) -> None:
    """Fast-forward a respawned worker through its shard's already
    committed windows, without shipping anything.

    Per window the live protocol leaves each site in the state
    "pre-window state, then the controls triggered by *earlier* sites
    (rolls pre-apply them before the site's final compute), then the
    compute, then the remaining controls (applied at commit)".  The
    replay reproduces exactly that placement from the committed control
    lists, so end-of-window site states — including RNG positions —
    are bit-identical to the run that faulted.
    """
    for t in range(shard.resume):
        lo, hi = shard.windows[t]
        controls = shard.history[t] if t < len(shard.history) else []
        if controls:
            for idx, site in enumerate(shard.sites):
                site_id = shard.site_lo + idx
                for _, dest, ctrl in controls[: _prefix_len(controls, site_id)]:
                    if dest == BROADCAST or dest == site_id:
                        site.on_control(ctrl)
        shard.compute_window(lo, hi, encode=False)
        if controls:
            for idx, site in enumerate(shard.sites):
                site_id = shard.site_lo + idx
                for _, dest, ctrl in controls[_prefix_len(controls, site_id):]:
                    if dest == BROADCAST or dest == site_id:
                        site.on_control(ctrl)


def _send_results(shard: _WorkerShard, conn, t: int, results) -> None:
    """Ship one lockstep window's descriptors, through the chaos seams:
    a planned wire fault mangles the descriptors; a planned process
    fault kills/hangs/drops instead of sending.  With no plan (every
    production run) this is exactly the plain send."""
    if shard.faults:
        wire = fault_action(shard.faults, t, ("corrupt", "truncate"))
        if wire is not None:
            results = corrupt_descriptors(list(results), wire)
        action = fault_action(shard.faults, t, ("kill", "hang", "drop"))
        if action == "kill":
            chaos_exit()
        elif action == "hang":
            block_forever()
        elif action == "drop":
            return
    if shard.metrics is None:
        conn.send(("res", results))
    else:
        conn.send(("res", results, shard.drain_metrics()))


def _worker_run(shard: _WorkerShard, conn) -> None:
    """The lockstep window protocol, worker side, for one run.

    Per window: compute speculatively against last-committed control
    state, send, then serve ``roll`` (restore the pre-window snapshot,
    re-apply each control message to exactly the sites after its
    trigger, recompute, resend the suffix) until the parent ``com``mits
    — at which point every site applies the control messages it has not
    seen yet and the next window starts.  Under supervision two more
    commands exist: a respawned worker starts with a
    :func:`_replay_history` fast-forward, and ``rwd`` rewinds the
    current (uncommitted) window to its pre-window snapshot so the
    parent can retry it after another worker's fault.
    """
    if shard.resume:
        _replay_history(shard)
    for t in range(shard.resume, len(shard.windows)):
        lo, hi = shard.windows[t]
        i0, i1 = shard.view.window_bounds(lo, hi)
        # Pre-window state, captured BEFORE the compute so rollback
        # replays from exactly this point (same RNG positions).
        # Skipped when the shard has no arrivals (nothing mutates) —
        # except under supervision, where a post-fault ``rwd`` must be
        # able to undo controls a roll applied mid-window.
        snapshot = (
            _snapshot_sites(shard.sites)
            if i0 != i1 or shard.supervised
            else None
        )
        if snapshot is not None and shard.metrics is not None:
            shard.metrics["snapshots"] += 1
        results = shard.compute_window(lo, hi)
        applied = [0] * len(shard.sites)
        _send_results(shard, conn, t, results)
        while True:
            message = conn.recv()
            tag = message[0]
            if tag == "com":
                _apply_commit(shard, applied, message[1])
                break
            if tag == "roll":
                from_site, controls = message[1], message[2]
                replacements = _apply_roll(
                    shard, lo, hi, snapshot, applied, from_site, controls
                )
                _send_results(shard, conn, t, replacements)
                continue
            if tag == "rwd":
                if message[1] != t:
                    raise ProtocolViolationError(
                        f"rwd for window {message[1]} but worker is at {t}"
                    )
                if snapshot is not None:
                    _restore_sites(shard, snapshot)
                applied = [0] * len(shard.sites)
                results = shard.compute_window(lo, hi)
                conn.send(("rwdok",))
                _send_results(shard, conn, t, results)
                continue
            raise ProtocolViolationError(
                f"shard worker got unexpected command {tag!r}"
            )
    message = conn.recv()
    if message[0] != "fin":
        raise ProtocolViolationError(
            f"shard worker got unexpected command {message[0]!r} at run end"
        )
    _send_state(shard, conn)


class _SpecWindow:
    """Worker-side record of one in-flight (sent, uncommitted) window."""

    __slots__ = ("t", "lo", "hi", "snapshot", "applied", "rolled")

    def __init__(self, t, lo, hi, snapshot, num_sites) -> None:
        self.t = t
        self.lo = lo
        self.hi = hi
        self.snapshot = snapshot
        self.applied = [0] * num_sites
        self.rolled = False


def _worker_run_pipelined(shard: _WorkerShard, conn) -> None:
    """The pipelined window protocol, worker side, for one run.

    Up to two windows are in flight: the *head* (oldest, awaiting the
    parent's verdict) and one *speculative* window computed under the
    assumption that the head commits without controls touching this
    shard.  Message grammar (worker side):

    * send ``("res", t, descriptors, compute_seconds)`` after each
      window compute (first sends and speculative recomputes alike);
    * on ``("roll", t, from_site, controls)``: discard the speculation
      (restore its pre-window snapshot — it was computed from a now
      invalid state), mark the head rolled (re-speculation would break
      the fast roll's prefix-keeps-state invariant), replay/recompute
      via :func:`_apply_roll`, send ``("rep", t, replacements)``;
    * on ``("com", t, controls)``: pop the head and answer
      ``("ack", t, hit)`` — *hit* iff the head was never rolled and no
      unseen control targets this shard, i.e. the speculation is
      valid.  On a miss the speculation is discarded, the controls are
      applied, and the fill loop recomputes the next window fresh.

    The pipe is FIFO both ways, so the parent can order the ack
    against the speculative ``res``: on a hit the buffered ``res`` is
    final; on a miss the fresh one follows the ack.
    """
    windows = shard.windows
    total = len(windows)
    num_sites = len(shard.sites)
    entries: List[_SpecWindow] = []
    nxt = 0
    while entries or nxt < total:
        while (
            nxt < total
            and len(entries) < 2
            and not (entries and entries[0].rolled)
        ):
            lo, hi = windows[nxt]
            i0, i1 = shard.view.window_bounds(lo, hi)
            snapshot = _snapshot_sites(shard.sites) if i0 != i1 else None
            if snapshot is not None and shard.metrics is not None:
                shard.metrics["snapshots"] += 1
            t0 = time.perf_counter()
            results = shard.compute_window(lo, hi, slot=nxt % 2)
            elapsed = time.perf_counter() - t0
            dropped = False
            if shard.faults:
                wire = fault_action(shard.faults, nxt, ("corrupt", "truncate"))
                if wire is not None:
                    results = corrupt_descriptors(list(results), wire)
                action = fault_action(
                    shard.faults, nxt, ("kill", "hang", "drop")
                )
                if action == "kill":
                    chaos_exit()
                elif action == "hang":
                    block_forever()
                elif action == "drop":
                    dropped = True
            if not dropped:
                if shard.metrics is None:
                    conn.send(("res", nxt, results, elapsed))
                else:
                    conn.send(
                        ("res", nxt, results, elapsed, shard.drain_metrics())
                    )
            entries.append(_SpecWindow(nxt, lo, hi, snapshot, num_sites))
            nxt += 1
        message = conn.recv()
        tag = message[0]
        if tag == "com":
            controls = message[2]
            head = entries.pop(0)
            miss = head.rolled
            if not miss and controls:
                for idx in range(num_sites):
                    site_id = shard.site_lo + idx
                    for _, dest, _ctrl in controls[head.applied[idx] :]:
                        if dest == BROADCAST or dest == site_id:
                            miss = True
                            break
                    if miss:
                        break
            if shard.faults and fault_action(
                shard.faults, head.t, ("stall_ack",)
            ):
                block_forever()
            conn.send(("ack", head.t, not miss))
            if miss:
                if entries:
                    # The speculation ran from pre-control state:
                    # rewind to its own pre-window snapshot (= the
                    # committed window's end state) and recompute.
                    spec = entries.pop(0)
                    if spec.snapshot is not None:
                        _restore_sites(shard, spec.snapshot)
                    nxt = spec.t
                    if shard.metrics is not None:
                        shard.metrics["spec_recomputes"] += 1
                _apply_commit(shard, head.applied, controls)
        elif tag == "roll":
            from_site, controls = message[2], message[3]
            head = entries[0]
            if len(entries) > 1:
                spec = entries.pop()
                if spec.snapshot is not None:
                    _restore_sites(shard, spec.snapshot)
                nxt = spec.t
                if shard.metrics is not None:
                    shard.metrics["spec_recomputes"] += 1
            head.rolled = True
            replacements = _apply_roll(
                shard,
                head.lo,
                head.hi,
                head.snapshot,
                head.applied,
                from_site,
                controls,
                slot=head.t % 2,
            )
            if shard.faults:
                wire = fault_action(
                    shard.faults, head.t, ("corrupt", "truncate")
                )
                if wire is not None:
                    replacements = corrupt_descriptors(
                        list(replacements), wire
                    )
            if shard.metrics is None:
                conn.send(("rep", head.t, replacements))
            else:
                conn.send(
                    ("rep", head.t, replacements, shard.drain_metrics())
                )
        else:
            raise ProtocolViolationError(
                f"shard worker got unexpected command {tag!r}"
            )
    message = conn.recv()
    if message[0] != "fin":
        raise ProtocolViolationError(
            f"shard worker got unexpected command {message[0]!r} at run end"
        )
    _send_state(shard, conn)


def _worker_main(boot, conn) -> None:
    """Process entry point: serve runs until told to go (or cut off).

    The process persists across ``run()`` calls — per-run state arrives
    with each ``run`` command — so a long-lived engine pays the spawn
    cost once.  Failures ship the original traceback to the parent.
    """
    ring = None
    try:
        ring_spec = boot["ring"]
        slot_bytes = 0
        if ring_spec is not None:
            ring = _attach_shm(ring_spec[0])
            slot_bytes = ring_spec[1]
        stream_cache: dict = {}
        conn.send(("rdy",))
        while True:
            command = conn.recv()
            if command[0] == "bye":
                break
            if command[0] != "run":
                raise ProtocolViolationError(
                    f"shard worker got unexpected command {command[0]!r}"
                )
            shard = _WorkerShard(command[1], ring, slot_bytes, stream_cache)
            try:
                if command[1].get("pipeline"):
                    _worker_run_pipelined(shard, conn)
                else:
                    _worker_run(shard, conn)
            finally:
                shard.close()
    except (EOFError, OSError, KeyboardInterrupt):
        pass  # parent went away (shutdown or its own failure): just exit
    except BaseException:
        try:
            conn.send(("err", traceback.format_exc()))
        except Exception:  # pragma: no cover - pipe already closed
            pass
    finally:
        if ring is not None:
            try:
                ring.close()
            except BufferError:  # pragma: no cover - views die with us
                pass
        try:
            conn.close()
        except Exception:  # pragma: no cover - already closed
            pass


# ---------------------------------------------------------------------------
# Parent engine
# ---------------------------------------------------------------------------


class _WorkerHandle:
    """Parent-side record of one spawned shard worker."""

    __slots__ = ("index", "process", "conn", "site_lo", "site_hi", "ring")

    def __init__(self, index, process, conn, ring) -> None:
        self.index = index
        self.process = process
        self.conn = conn
        self.site_lo = 0  # set per run
        self.site_hi = 0
        self.ring = ring


class _Inbox:
    """Parent-side message cursor for one worker in pipelined mode.

    The pipe is FIFO, so filing each message by tag is enough to
    resolve speculation: window ``u``'s descriptors are *final* once
    ``res[u]`` is present AND the previous window's ack verdict has
    been seen — an ack miss discards the stale speculative ``res``
    (the worker's recompute follows the ack in the pipe).
    """

    __slots__ = ("handle", "res", "secs", "acks", "reps", "deltas")

    def __init__(self, handle: _WorkerHandle) -> None:
        self.handle = handle
        self.res: dict = {}  # window -> descriptors (latest send)
        self.secs: dict = {}  # window -> worker compute seconds
        self.acks: dict = {}  # window -> speculation hit?
        self.reps: dict = {}  # window -> rollback replacements
        self.deltas: list = []  # telemetry columns, merged at commit


def _unlink_segments(shms) -> None:
    """Close and unlink owned shared-memory segments, best effort."""
    for shm in shms:
        try:
            shm.close()
        except BufferError:
            # Live pack views still reference the mapping (a fault can
            # surface mid-fold with decoded descriptors in flight).
            # Drop our handles instead: the mmap is released when the
            # last view dies, and ``__del__`` then has nothing left to
            # close — a second ``close()`` would raise the same
            # BufferError unraisably at garbage collection.
            shm._buf = None
            shm._mmap = None
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


def _reap_handle(handle) -> None:
    """Impolite teardown of one (dead, hung, or poisoned) worker: close
    the pipe, then terminate -> kill.  Its ring segment is deliberately
    kept — a replacement worker re-attaches the same name."""
    try:
        handle.conn.close()
    except Exception:
        pass
    process = handle.process
    try:
        if process.is_alive():
            process.terminate()
        process.join(timeout=_JOIN_TIMEOUT)
        if process.is_alive():  # pragma: no cover - unkillable
            process.kill()
            process.join(timeout=_JOIN_TIMEOUT)
    except Exception:  # pragma: no cover - reap is best-effort
        pass


def _shutdown_pool(pool) -> None:
    """Tear a worker pool down: polite bye, then force, then unlink.

    Module-level (not a method) so ``weakref.finalize`` can run it
    after the engine is gone.  Idempotent on its own via the ``closed``
    flag (recovery paths call it directly, and a failed spawn may have
    called it before ``close()`` does), and the shared-memory unlink
    runs in a ``finally`` so ``/dev/shm`` segments are released even
    when a worker refuses to die within the join timeouts.
    """
    if pool.get("closed"):
        return
    pool["closed"] = True
    try:
        for handle in pool["handles"]:
            try:
                if handle.process.is_alive():
                    handle.conn.send(("bye",))
            except Exception:
                pass
        for handle in pool["handles"]:
            try:
                handle.conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
        for handle in pool["handles"]:
            process = handle.process
            try:
                process.join(timeout=_JOIN_TIMEOUT)
                if process.is_alive():  # pragma: no cover - stuck worker
                    process.terminate()
                    process.join(timeout=_JOIN_TIMEOUT)
                if process.is_alive():  # pragma: no cover - unkillable
                    process.kill()
                    process.join(timeout=_JOIN_TIMEOUT)
            except Exception:  # pragma: no cover - reap is best-effort
                pass
    finally:
        stream = pool.get("stream")
        _unlink_segments(pool["rings"] + (stream["shms"] if stream else []))


def _checkpoint_network(network):
    """Run-start checkpoint of everything the parent would need to
    restart the run from scratch on a lower ladder rung: site states
    (pickled wholesale — workers get slices of this on redispatch),
    the coordinator state, and the message counters."""
    coordinator_state = network.coordinator.snapshot_state()
    if coordinator_state is None:
        coordinator_state = (
            "pickle",
            pickle.dumps(
                network.coordinator, protocol=pickle.HIGHEST_PROTOCOL
            ),
        )
    else:
        coordinator_state = ("fast", coordinator_state)
    return {
        "sites": pickle.dumps(
            network.sites, protocol=pickle.HIGHEST_PROTOCOL
        ),
        "coordinator": coordinator_state,
        "counters": network.counters.snapshot_state(),
        "items_processed": network.items_processed,
    }


def _restore_network(network, checkpoint) -> None:
    """Rewind a network to its run-start checkpoint (degradation
    ladder: the next rung replays the whole run deterministically)."""
    for mirror, saved in zip(
        network.sites, pickle.loads(checkpoint["sites"])
    ):
        _adopt_site_state(mirror, saved)
    kind, state = checkpoint["coordinator"]
    if kind == "fast":
        network.coordinator.restore_state(state)
    else:
        network.coordinator = pickle.loads(state)
    network.counters.restore_state(checkpoint["counters"])
    network.items_processed = checkpoint["items_processed"]


class _WindowAttempt:
    """Parent-side fold progress for one supervised lockstep window.

    A post-fault retry refolds the window from its start; the refold is
    bit-identical to the faulted attempt (same restored coordinator,
    same recomputed packs, same order), so downstream delivery number
    ``i`` of the retry *is* delivery number ``i`` of the original.
    ``delivered`` counts deliveries whose site-mirror ``on_control``
    already ran (mirrors are not snapshotted — unlike the coordinator
    and counters, which rewind); the retry skips re-applying those
    while still re-recording their (rewound) counter traffic.
    """

    __slots__ = ("window", "folded", "delivered", "seen")

    def __init__(self, window: int) -> None:
        self.window = window
        self.folded = False  # any coordinator fold ran this window
        self.delivered = 0  # mirror deliveries that must not re-apply
        self.seen = 0  # deliveries seen so far in the current attempt


def _deliver_guarded(network, attempt, dest, response) -> None:
    """Deliver one coordinator response downstream, skipping the
    site-mirror re-application for deliveries a pre-fault fold of the
    same window already made (see :class:`_WindowAttempt`)."""
    if attempt is not None:
        attempt.seen += 1
        if attempt.seen <= attempt.delivered:
            counters = network.counters
            if dest == BROADCAST:
                counters.record_downstream(
                    response, copies=network.num_sites
                )
            else:
                counters.record_downstream(response, copies=1)
            return
        attempt.delivered += 1
    network.deliver_downstream(dest, response)


class WorkerSupervisor:
    """Parent-side supervision state for one sharded run.

    Owns fault classification bookkeeping (the fault log, restart
    budget, capped-backoff respawns), per-worker heartbeats, the
    run-start network checkpoint the degradation ladder restores, and
    the per-run clone of the engine's chaos :class:`FaultPlan`.
    Created per ``run()`` when ``supervision="on"`` (the default).
    """

    def __init__(self, timeout, max_restarts, plan, registry) -> None:
        self.timeout = float(timeout)
        self.max_restarts = int(max_restarts)
        self.plan: Optional[FaultPlan] = (
            plan.clone() if plan is not None else None
        )
        self.registry = registry
        self.restarts = 0
        self.fault_log: List[dict] = []
        self.recovery_seconds = 0.0
        self.checkpoint = None  # run-start network checkpoint (or None)
        self.last_seen: dict = {}  # worker index -> perf_counter stamp
        #: One-shot deadline extensions: a freshly respawned worker
        #: replays every committed window before its first result.
        self.boost: dict = {}

    def deadline(self, handle) -> float:
        return self.boost.get(handle.index, 0.0) + self.timeout

    def heartbeat(self, handle) -> None:
        self.boost.pop(handle.index, None)
        self.last_seen[handle.index] = time.perf_counter()

    def export_heartbeats(self) -> None:
        if not self.registry.enabled or not self.last_seen:
            return
        now = time.perf_counter()
        for worker in sorted(self.last_seen):
            observe_heartbeat_age(
                self.registry, worker, now - self.last_seen[worker]
            )

    def record_fault(self, fault, window, retire_all=False) -> None:
        self.fault_log.append(
            {
                "worker": fault.handle.index,
                "window": window,
                "fault_class": fault.fault_class,
                "detail": fault.detail,
            }
        )
        if self.plan is not None:
            self.plan.mark_fired(
                fault.handle.index, None if retire_all else window
            )
        observe_fault(self.registry, fault.fault_class)

    def wire_faults(self, worker: int):
        if self.plan is None:
            return None
        return self.plan.wire_for(worker) or None

    def take_respawn_failure(self, worker: int) -> bool:
        return self.plan is not None and self.plan.take_respawn_failure(
            worker
        )


class ShardedEngine(ColumnarEngine):
    """Columnar data plane, shard-parallel site passes.

    Parameters
    ----------
    batch_size / initial_batch_size:
        The batched schedule, exactly as in
        :class:`~repro.runtime.batched.BatchedEngine` (the schedules
        must coincide for the bit-parity contract to be structural).
        Larger batches amortize the per-window worker round trip.
    workers:
        Worker process count; defaults to ``os.cpu_count()``.  Clamped
        to the site count; ``1`` runs the in-process columnar path.
    transport:
        ``"auto"`` (shared memory when available, else pipes),
        ``"shm"``, or ``"pipe"`` — how stream shards and result columns
        move between processes.  Pipes are the portable fallback;
        shared memory gives the parent zero-copy column views.
    pipeline:
        ``"auto"`` (pipelined — the default), ``"on"``, or ``"off"``
        (strict lockstep).  Pipelined runs overlap worker compute with
        parent folds via speculative windows, double-buffered rings,
        and arrival-order coordinator folds (see the module docstring);
        both modes are bit-identical to the columnar engine.
    worker_timeout:
        Supervision deadline in seconds: how long a worker may stay
        silent while the parent waits on it before the supervisor
        classifies a hang.  Defaults to 60s.
    max_worker_restarts:
        In-place window-boundary recoveries allowed per run before the
        supervisor stops respawning and takes the degradation ladder
        instead (pipelined -> lockstep -> in-process columnar).
    fault_plan:
        Chaos injection (testing only): a :class:`~repro.faults.FaultPlan`
        or its ``"kind:worker:window,..."`` string form.  Cloned per
        run; ``None`` (production) leaves every seam inert.
    supervision:
        ``"on"`` (default) or ``"off"``.  Off restores the fail-stop
        behavior: any worker fault tears the pool down and raises
        :class:`ShardedWorkerError`.
    """

    name = "sharded"

    def __init__(
        self,
        batch_size: int = DEFAULT_BATCH_SIZE,
        initial_batch_size: int = DEFAULT_INITIAL_BATCH_SIZE,
        workers: Optional[int] = None,
        transport: str = "auto",
        pipeline: str = "auto",
        kernels=None,
        worker_timeout: Optional[float] = None,
        max_worker_restarts: int = 2,
        fault_plan=None,
        supervision: str = "on",
    ) -> None:
        super().__init__(
            batch_size=batch_size,
            initial_batch_size=initial_batch_size,
            kernels=kernels,
        )
        if workers is None:
            workers = os.cpu_count() or 1
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        if transport not in ("auto", "shm", "pipe"):
            raise ConfigurationError(
                f"transport must be 'auto', 'shm', or 'pipe', got {transport!r}"
            )
        if pipeline not in ("auto", "on", "off"):
            raise ConfigurationError(
                f"pipeline must be 'auto', 'on', or 'off', got {pipeline!r}"
            )
        if worker_timeout is None:
            worker_timeout = _DEFAULT_WORKER_TIMEOUT
        if worker_timeout <= 0:
            raise ConfigurationError(
                f"worker_timeout must be > 0, got {worker_timeout}"
            )
        if max_worker_restarts < 0:
            raise ConfigurationError(
                f"max_worker_restarts must be >= 0, got {max_worker_restarts}"
            )
        if supervision not in ("on", "off"):
            raise ConfigurationError(
                f"supervision must be 'on' or 'off', got {supervision!r}"
            )
        if isinstance(fault_plan, str):
            fault_plan = parse_fault_plan(fault_plan)
        if fault_plan is not None and not isinstance(fault_plan, FaultPlan):
            raise ConfigurationError(
                f"fault_plan must be a FaultPlan or its string form, "
                f"got {fault_plan!r}"
            )
        self.workers = int(workers)
        self.transport = transport
        self.pipeline = pipeline
        self.worker_timeout = float(worker_timeout)
        self.max_worker_restarts = int(max_worker_restarts)
        self.fault_plan = fault_plan
        self.supervision = supervision
        self._pipelined = pipeline != "off"
        #: Observability: how the last ``run`` executed (mode, effective
        #: transport, window/rollback/speculation counts, per-window
        #: timing, warm-pool reuse).
        self.last_run_stats: dict = {}
        self._pool = None
        self._finalizer = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardedEngine(batch_size={self.batch_size}, "
            f"workers={self.workers}, transport={self.transport!r}, "
            f"pipeline={self.pipeline!r})"
        )

    def close(self) -> None:
        """Shut the persistent worker pool down (idempotent).

        Runs automatically when the engine is garbage-collected or the
        interpreter exits; call it eagerly to release the worker
        processes and their shared-memory rings sooner.
        """
        if self._finalizer is not None:
            self._finalizer()  # invokes _shutdown_pool at most once
            self._finalizer = None
        self._pool = None

    # -- top level ------------------------------------------------------

    def run(
        self,
        network: "Network",
        stream,
        on_step: Optional[Callable[[int], None]] = None,
        checkpoints: Optional[Iterable[int]] = None,
        on_checkpoint: Optional[Callable[[int], None]] = None,
    ) -> "MessageCounters":
        with use_kernels(self._kernels) as kernels:
            counters = self._run_sharded(
                network,
                stream,
                on_step=on_step,
                checkpoints=checkpoints,
                on_checkpoint=on_checkpoint,
            )
        if self.last_run_stats:
            self.last_run_stats.setdefault("kernels", kernels.name)
        return counters

    def _run_sharded(
        self,
        network: "Network",
        stream,
        on_step: Optional[Callable[[int], None]] = None,
        checkpoints: Optional[Iterable[int]] = None,
        on_checkpoint: Optional[Callable[[int], None]] = None,
    ) -> "MessageCounters":
        t_run = time.perf_counter()
        if checkpoints is not None:
            # Materialize once: marks are computed here AND the
            # fallback engine iterates again — a one-shot iterator must
            # survive both.
            checkpoints = list(checkpoints)
        arrays = stream.arrays() if hasattr(stream, "arrays") else None
        n = len(stream)
        workers = max(1, min(self.workers, network.num_sites))
        reason = None
        if _np is None:
            reason = "numpy unavailable"
        elif arrays is None or arrays[2] is None:
            reason = "stream has no int64 column view"
        elif n == 0:
            reason = "empty stream"
        elif workers < 2:
            reason = "single worker"
        elif _network_instrumented(network):
            reason = "network delivery is instrumented"
        elif not all(
            getattr(site, "shardable", True) for site in network.sites
        ):
            reason = "non-shardable site"
        marks: List[int] = []
        pool = None
        supervisor = None
        if reason is None:
            base = network.items_processed
            if checkpoints is not None and on_checkpoint is not None:
                marks = sorted(
                    t - base for t in set(checkpoints) if base < t <= base + n
                )
            if self.supervision == "on":
                supervisor = WorkerSupervisor(
                    self.worker_timeout,
                    self.max_worker_restarts,
                    self.fault_plan,
                    self.registry,
                )
                try:
                    supervisor.checkpoint = _checkpoint_network(network)
                except Exception:
                    # Unpicklable network: supervise (classify faults,
                    # enforce deadlines) without recovery or ladder.
                    supervisor.checkpoint = None
            try:
                pool, warm = self._get_pool(workers)
                self._dispatch_run(
                    pool, network, arrays, n, marks, supervisor=supervisor
                )
            except Exception as exc:
                self.close()
                pool = None
                reason = f"worker setup failed: {exc!r}"
        if reason is not None:
            self.last_run_stats = {"mode": "fallback", "reason": reason}
            if self.registry.enabled:
                self.registry.counter(
                    "repro_shard_fallbacks_total",
                    "sharded runs served by the in-process columnar path",
                    labels=("reason",),
                ).labels(reason=reason.split(":")[0]).inc()
            return ColumnarEngine.run(
                self,
                network,
                stream,
                on_step=on_step,
                checkpoints=checkpoints,
                on_checkpoint=on_checkpoint,
            )
        pipelined = self._pipelined
        degraded: List[str] = []
        try:
            while True:
                try:
                    run_windows = (
                        self._run_windows_pipelined
                        if pipelined
                        else self._run_windows
                    )
                    counters = run_windows(
                        network,
                        pool,
                        n,
                        marks,
                        set(marks),
                        on_step,
                        on_checkpoint,
                        supervisor,
                    )
                    break
                except (_WorkerFault, _LadderFault) as exc:
                    fault = exc.fault if isinstance(exc, _LadderFault) else exc
                    if supervisor is not None and isinstance(
                        exc, _WorkerFault
                    ):
                        # Ladder faults were logged where they were
                        # classified; bare faults get logged here.  In
                        # pipelined mode the worker speculates one
                        # window ahead of the fold the fault surfaced
                        # in, so the whole plan entry set for this
                        # worker is retired, not just a window prefix.
                        supervisor.record_fault(
                            fault, fault.window, retire_all=True
                        )
                    if supervisor is None or supervisor.checkpoint is None:
                        _reap_handle(fault.handle)
                        self.close()
                        raise fault.to_error() from None
                    # Degradation ladder: reap + tear down, restore the
                    # run-start checkpoint, rerun on the next rung.
                    _reap_handle(fault.handle)
                    self.close()
                    pool = None
                    _restore_network(network, supervisor.checkpoint)
                    rung = "lockstep" if pipelined else "columnar"
                    pipelined = False
                    degraded.append(rung)
                    observe_degradation(self.registry, rung)
                    if rung == "lockstep":
                        try:
                            pool, warm = self._get_pool(workers)
                            self._dispatch_run(
                                pool,
                                network,
                                arrays,
                                n,
                                marks,
                                pipelined=False,
                                supervisor=supervisor,
                            )
                            continue
                        except Exception:
                            self.close()
                            pool = None
                            rung = "columnar"
                            degraded.append(rung)
                            observe_degradation(self.registry, rung)
                    # Bottom rung: the in-process columnar engine.
                    self.last_run_stats = {
                        "mode": "degraded",
                        "reason": (
                            f"fault recovery exhausted "
                            f"({fault.fault_class}: {fault.detail})"
                        ),
                        "rung": "columnar",
                    }
                    counters = ColumnarEngine.run(
                        self,
                        network,
                        stream,
                        on_step=on_step,
                        checkpoints=checkpoints,
                        on_checkpoint=on_checkpoint,
                    )
                    break
            stats = self.last_run_stats
            if stats.get("mode") == "sharded":
                stats["warm_pool"] = warm
                seconds = time.perf_counter() - t_run
                stats["engine"] = self.name
                stats["items"] = n
                stats["seconds"] = seconds
            if supervisor is not None:
                stats["supervision"] = {
                    "worker_timeout": supervisor.timeout,
                    "max_worker_restarts": supervisor.max_restarts,
                }
                if supervisor.fault_log:
                    stats["faults"] = supervisor.fault_log
                    stats["worker_restarts"] = supervisor.restarts
                    stats["recovery_seconds"] = supervisor.recovery_seconds
                if degraded:
                    stats["degraded_to"] = degraded[-1]
                    stats["degraded_from"] = (
                        "pipelined" if self._pipelined else "lockstep"
                    )
            if self.registry.enabled and stats.get("mode") == "sharded":
                self._export_run(
                    network, n, seconds, windows=stats.get("windows")
                )
                observe_sharded_stats(self.registry, stats)
            return counters
        except BaseException:
            # The pool's protocol state is unknown after a failure —
            # never reuse it.  Teardown also reaps any orphans.
            self.close()
            raise

    # -- pool lifecycle -------------------------------------------------

    def _get_pool(self, workers: int):
        """Return (pool, was_warm): reuse the live pool when its shape
        matches, else replace it."""
        pool = self._pool
        if (
            pool is not None
            and pool["workers"] == workers
            and all(h.process.is_alive() for h in pool["handles"])
        ):
            return pool, True
        self.close()
        pool = self._spawn_pool(workers)
        self._pool = pool
        self._finalizer = weakref.finalize(self, _shutdown_pool, pool)
        return pool, False

    def _spawn_pool(self, workers: int):
        from multiprocessing import get_context

        use_shm = (
            self.transport in ("auto", "shm") and _shared_memory is not None
        )
        if self.transport == "shm" and _shared_memory is None:
            raise ConfigurationError("shared memory is unavailable")
        ctx = get_context("spawn")
        slot_bytes = max(_MIN_RING_BYTES, 48 * self.batch_size + 4096)
        # Pipelined transport double-buffers: two slots per ring so a
        # worker writes window t+1 while the parent still reads t.
        slots = 2 if self._pipelined else 1
        pool = {
            "workers": workers,
            "handles": [],
            "rings": [],
            "transport": "shm" if use_shm else "pipe",
            "use_shm": use_shm,
            "slots": slots,
            "slot_bytes": slot_bytes,
            "closed": False,
        }
        try:
            for index in range(workers):
                ring = None
                ring_spec = None
                if use_shm:
                    ring = _shared_memory.SharedMemory(
                        create=True, size=slot_bytes * slots
                    )
                    pool["rings"].append(ring)
                    ring_spec = (ring.name, slot_bytes)
                parent_conn, child_conn = ctx.Pipe()
                process = ctx.Process(
                    target=_worker_main,
                    args=({"ring": ring_spec}, child_conn),
                    daemon=True,
                    name=f"repro-shard-{index}",
                )
                process.start()
                child_conn.close()
                pool["handles"].append(
                    _WorkerHandle(index, process, parent_conn, ring)
                )
            for handle in pool["handles"]:
                if not handle.conn.poll(_READY_TIMEOUT):
                    raise ShardedWorkerError(
                        f"shard worker {handle.index} not ready within "
                        f"{_READY_TIMEOUT:.0f}s"
                    )
                message = self._recv(handle)
                if message[0] != "rdy":
                    raise ShardedWorkerError(
                        f"shard worker {handle.index} sent {message[0]!r} "
                        "instead of ready"
                    )
        except BaseException:
            _shutdown_pool(pool)
            raise
        return pool

    def _dispatch_run(
        self, pool, network, arrays, n, marks, pipelined=None, supervisor=None
    ) -> None:
        """Ship each worker its shard for this run: site states, the
        stream columns, and the window schedule.

        The stream shipment is cached on the pool: a repeat run over
        the SAME column arrays (identity-checked via weakrefs; the
        engine assumes stream columns are immutable, which every stream
        in this package honors) just references the workers' cached
        shard views — the steady state for repeated analyses over one
        dataset.  Cold shipments move the full columns through one
        shared segment (a single memcpy in the parent) and each worker
        compacts its own shard out of it, in parallel.
        """
        from ..stream.columns import ShardSliceView

        if pipelined is None:
            pipelined = self._pipelined
        assignment, weights, idents = arrays
        num_sites = network.num_sites
        workers = pool["workers"]
        cache = pool.get("stream")
        cached = (
            cache is not None
            and cache["num_sites"] == num_sites
            and all(
                ref() is array
                for ref, array in zip(cache["refs"], arrays)
            )
        )
        if not cached:
            token = 1 if cache is None else cache["token"] + 1
            shms = []
            specs = None
            if pool["use_shm"]:
                spec, shm = _columns_to_shm(assignment, weights, idents)
                shms.append(shm)
                specs = [("full",) + spec + (token,)] * workers
            pool["stream"] = {
                "refs": [weakref.ref(array) for array in arrays],
                "num_sites": num_sites,
                "token": token,
                "shms": shms,
                # Kept for worker respawns: a fresh process has an
                # empty stream cache, so it re-attaches the full
                # segment instead of referencing ("cached", token).
                "spec_full": specs[0] if specs is not None else None,
            }
            if cache is not None:
                _unlink_segments(cache["shms"])
        else:
            token = cache["token"]
            specs = [("cached", token)] * workers
        pool["run"] = {
            "n": n,
            "marks": marks,
            "metrics": bool(self.registry.enabled),
            "pipelined": pipelined,
        }
        for handle in pool["handles"]:
            handle.site_lo, handle.site_hi = ShardSliceView.shard_range(
                num_sites, workers, handle.index
            )
            if specs is not None:
                stream_spec = specs[handle.index]
            else:
                # Pipe transport, cold shipment: compact in the parent.
                stream_spec = (
                    "view",
                    ShardSliceView.from_columns(
                        assignment,
                        weights,
                        idents,
                        handle.site_lo,
                        handle.site_hi,
                    ),
                    token,
                )
            payload = {
                "site_lo": handle.site_lo,
                "site_hi": handle.site_hi,
                "sites": network.sites[handle.site_lo : handle.site_hi],
                "n": n,
                "batch_size": self.batch_size,
                "initial_batch_size": self.initial_batch_size,
                "marks": marks,
                "stream": stream_spec,
                "pipeline": pipelined,
                # The parent's resolved kernel backend by name; workers
                # re-resolve with strict=False so a backend the worker
                # interpreter cannot import degrades to auto, not a
                # crash (the numpy tier is bit-identical anyway).
                "kernels": _active_kernels().name,
                # When truthy, workers append a flat telemetry column
                # (WORKER_METRIC_NAMES order) to result messages; when
                # falsy the wire shape is untouched.
                "metrics": bool(self.registry.enabled),
                "worker": handle.index,
                "supervised": supervisor is not None,
                "faults": (
                    supervisor.wire_faults(handle.index)
                    if supervisor is not None
                    else None
                ),
            }
            self._send(handle, ("run", payload))


    # -- the lockstep fold ---------------------------------------------

    def _run_windows(
        self,
        network,
        pool,
        n,
        marks,
        mark_set,
        on_step,
        on_checkpoint,
        supervisor=None,
    ) -> "MessageCounters":
        handles = pool["handles"]
        windows = list(
            batch_windows(n, self.batch_size, self.initial_batch_size, marks)
        )
        rollbacks = 0
        controls_total = 0
        wait_total = 0.0
        fold_total = 0.0
        per_window = []
        history: List[list] = []
        coordinator = network.coordinator
        counters = network.counters
        t_idx = 0
        attempt: Optional[_WindowAttempt] = None
        while t_idx < len(windows):
            lo, hi = windows[t_idx]
            snap = None
            if supervisor is not None:
                # Window-start snapshot of what the parent mutates
                # while folding; a mid-window fault rewinds to it.
                snap = (
                    coordinator.snapshot_state(),
                    counters.snapshot_state(),
                )
                if attempt is None or attempt.window != t_idx:
                    attempt = _WindowAttempt(t_idx)
                attempt.seen = 0
                attempt.folded = False
            guard = attempt if supervisor is not None else None
            attempt_rollbacks = 0
            try:
                t0 = time.perf_counter()
                pending = {}
                worker_deltas = []
                for handle in handles:
                    message = self._recv(handle, supervisor, t_idx)
                    for descriptor in message[1]:
                        pending[descriptor[0]] = (handle, descriptor)
                    if len(message) > 2 and message[2]:
                        worker_deltas.append((handle.index, message[2]))
                t1 = time.perf_counter()
                controls: List[Tuple[int, int, object]] = []
                order = sorted(pending)
                i = 0
                while i < len(order):
                    site_id = order[i]
                    handle, descriptor = pending.pop(site_id)
                    if guard is not None:
                        attempt.folded = True
                    responses = self._fold(
                        network,
                        site_id,
                        self._decode(handle, descriptor, t_idx),
                        guard,
                    )
                    if responses:
                        controls.extend(
                            (site_id, dest, message)
                            for dest, message in responses
                        )
                        needs_roll = any(
                            dest == BROADCAST or dest > site_id
                            for dest, _ in responses
                        )
                        affected = [
                            h for h in handles if h.site_hi - 1 > site_id
                        ]
                        if needs_roll and affected:
                            attempt_rollbacks += 1
                            for h in affected:
                                self._send(
                                    h, ("roll", site_id, controls), t_idx
                                )
                            for stale in [s for s in pending if s > site_id]:
                                del pending[stale]
                            for h in affected:
                                message = self._recv(h, supervisor, t_idx)
                                for descriptor in message[1]:
                                    pending[descriptor[0]] = (h, descriptor)
                                if len(message) > 2 and message[2]:
                                    worker_deltas.append(
                                        (h.index, message[2])
                                    )
                            order = order[: i + 1] + sorted(
                                s for s in pending if s > site_id
                            )
                    i += 1
            except _WorkerFault as fault:
                if supervisor is None:
                    raise
                self._recover_window(
                    supervisor, network, pool, t_idx, history, fault,
                    snap, attempt,
                )
                continue
            # Commit phase.  A fault here is NOT window-recoverable —
            # a worker that already received the com advances its sites
            # irreversibly — so it goes straight to the ladder.
            try:
                for handle in handles:
                    self._send(handle, ("com", controls), t_idx)
            except _WorkerFault as fault:
                if supervisor is None:
                    raise
                supervisor.record_fault(fault, t_idx)
                raise _LadderFault(fault) from None
            for worker, deltas in worker_deltas:
                merge_worker_deltas(self.registry, worker, deltas)
            t2 = time.perf_counter()
            rollbacks += attempt_rollbacks
            controls_total += len(controls)
            history.append(controls)
            wait_total += t1 - t0
            fold_total += t2 - t1
            per_window.append(
                {
                    "window": len(per_window),
                    "transport_wait_seconds": t1 - t0,
                    "parent_fold_seconds": t2 - t1,
                    "controls": len(controls),
                }
            )
            if supervisor is not None:
                supervisor.export_heartbeats()
            network.items_processed += hi - lo
            t = network.items_processed
            if on_step is not None:
                on_step(t)
            if hi in mark_set:
                on_checkpoint(t)
            t_idx += 1
        for handle in handles:
            self._send(handle, ("fin",))
        for handle in handles:
            message = self._recv(handle, supervisor)
            if message[0] != "sta":  # pragma: no cover - protocol bug guard
                raise ShardedWorkerError(
                    f"shard worker {handle.index} sent {message[0]!r} "
                    "instead of final state"
                )
            if len(message) > 3 and message[3]:
                merge_worker_deltas(self.registry, handle.index, message[3])
            for offset, final in enumerate(pickle.loads(message[2])):
                _adopt_site_state(network.sites[message[1] + offset], final)
        self.last_run_stats = {
            "mode": "sharded",
            "workers": pool["workers"],
            "transport": pool["transport"],
            "pipeline": "off",
            "windows": len(windows),
            "rollbacks": rollbacks,
            "controls": controls_total,
            "timing": {
                "transport_wait_seconds": wait_total,
                "parent_fold_seconds": fold_total,
            },
            "per_window": per_window,
            "shm_segments": [
                shm.name
                for shm in pool["rings"] + pool["stream"]["shms"]
            ],
        }
        return network.counters

    # -- window-boundary recovery (lockstep, supervised) ---------------

    def _recover_window(
        self, supervisor, network, pool, t_idx, history, fault, snap, attempt
    ) -> None:
        """Recover from one classified worker fault without losing the
        run: reap and respawn the dead shard's worker, fast-forward it
        through the committed windows, rewind the survivors (and the
        parent's coordinator/counters) to the window boundary, and let
        the window loop retry.  The retry is bit-identical to a
        fault-free run.  Raises :class:`_LadderFault` when recovery is
        out of budget or structurally impossible.
        """
        t_start = time.perf_counter()
        supervisor.record_fault(fault, t_idx)
        if supervisor.restarts >= supervisor.max_restarts:
            raise _LadderFault(fault) from None
        supervisor.restarts += 1
        if supervisor.checkpoint is None:
            # No run-start site states -> cannot rebuild the dead shard.
            raise _LadderFault(fault) from None
        if attempt.folded and snap[0] is None:
            # Partial folds reached a coordinator that cannot rewind.
            raise _LadderFault(fault) from None
        dead = fault.handle
        try:
            handle = self._respawn_worker(pool, dead, supervisor)
            self._redispatch_worker(pool, handle, t_idx, history, supervisor)
            for other in pool["handles"]:
                if other is not handle:
                    self._send(other, ("rwd", t_idx), t_idx)
            for other in pool["handles"]:
                if other is handle:
                    continue
                # Drain until the rewind confirmation; anything queued
                # before it (stale results of the faulted attempt) is
                # superseded by the resend that follows the rwdok.
                while True:
                    message = self._recv(other, supervisor, t_idx)
                    if message[0] == "rwdok":
                        break
        except _WorkerFault as exc:
            supervisor.record_fault(exc, t_idx)
            raise _LadderFault(exc) from None
        if attempt.folded:
            network.coordinator.restore_state(snap[0])
            network.counters.restore_state(snap[1])
        seconds = time.perf_counter() - t_start
        supervisor.recovery_seconds += seconds
        observe_recovery(self.registry, dead.index, seconds)
        # The respawned worker replays t_idx committed windows before
        # its first result lands: scale its first deadline with that.
        supervisor.boost[handle.index] = supervisor.timeout * (1 + t_idx)

    def _respawn_worker(self, pool, dead, supervisor):
        """Replace one reaped worker with a fresh process on the same
        pool slot (same index, same ring segment), with bounded retries
        and capped exponential backoff."""
        from multiprocessing import get_context

        _reap_handle(dead)
        ctx = get_context("spawn")
        delay = _RESPAWN_BACKOFF
        last_exc: Optional[BaseException] = None
        for _ in range(_RESPAWN_RETRIES):
            process = None
            try:
                if supervisor.take_respawn_failure(dead.index):
                    raise ShardedWorkerError(
                        f"injected respawn failure for worker {dead.index}"
                    )
                ring_spec = None
                if dead.ring is not None:
                    ring_spec = (dead.ring.name, pool["slot_bytes"])
                parent_conn, child_conn = ctx.Pipe()
                process = ctx.Process(
                    target=_worker_main,
                    args=({"ring": ring_spec}, child_conn),
                    daemon=True,
                    name=f"repro-shard-{dead.index}",
                )
                process.start()
                child_conn.close()
                if not parent_conn.poll(_READY_TIMEOUT):
                    raise ShardedWorkerError(
                        f"respawned shard worker {dead.index} not ready "
                        f"within {_READY_TIMEOUT:.0f}s"
                    )
                message = parent_conn.recv()
                if message[0] != "rdy":
                    raise ShardedWorkerError(
                        f"respawned shard worker {dead.index} sent "
                        f"{message[0]!r} instead of ready"
                    )
                handle = _WorkerHandle(
                    dead.index, process, parent_conn, dead.ring
                )
                handle.site_lo, handle.site_hi = dead.site_lo, dead.site_hi
                pool["handles"][dead.index] = handle
                return handle
            except Exception as exc:
                last_exc = exc
                if process is not None:
                    try:
                        process.terminate()
                        process.join(timeout=_JOIN_TIMEOUT)
                    except Exception:  # pragma: no cover - best effort
                        pass
                time.sleep(delay)
                delay = min(delay * 2, _RESPAWN_BACKOFF_CAP)
        raise _WorkerFault(
            dead,
            "crash",
            f"respawn failed after {_RESPAWN_RETRIES} attempts: {last_exc!r}",
        ) from last_exc

    def _redispatch_worker(
        self, pool, handle, resume, history, supervisor
    ) -> None:
        """Ship a respawned worker its shard, rebuilt for deterministic
        recovery: run-start site states (sliced from the supervisor's
        checkpoint), a fresh stream shipment (its cache died with the
        old process), and the committed control history to fast-forward
        through."""
        from ..stream.columns import ShardSliceView

        run = pool["run"]
        stream_info = pool["stream"]
        token = stream_info["token"]
        if stream_info.get("spec_full") is not None:
            stream_spec = stream_info["spec_full"]
        else:
            arrays = [ref() for ref in stream_info["refs"]]
            if any(array is None for array in arrays):
                raise _WorkerFault(
                    handle,
                    "crash",
                    "stream columns were collected; cannot re-ship the "
                    "shard to a respawned worker",
                )
            stream_spec = (
                "view",
                ShardSliceView.from_columns(
                    arrays[0],
                    arrays[1],
                    arrays[2],
                    handle.site_lo,
                    handle.site_hi,
                ),
                token,
            )
        sites = pickle.loads(supervisor.checkpoint["sites"])[
            handle.site_lo : handle.site_hi
        ]
        payload = {
            "site_lo": handle.site_lo,
            "site_hi": handle.site_hi,
            "sites": sites,
            "n": run["n"],
            "batch_size": self.batch_size,
            "initial_batch_size": self.initial_batch_size,
            "marks": run["marks"],
            "stream": stream_spec,
            "pipeline": False,
            "kernels": _active_kernels().name,
            "metrics": run["metrics"],
            "worker": handle.index,
            "supervised": True,
            "faults": supervisor.wire_faults(handle.index),
            "resume": resume,
            "history": list(history),
        }
        self._send(handle, ("run", payload))

    # -- the pipelined fold --------------------------------------------

    def _pump(self, inbox: _Inbox, supervisor=None, window=None) -> None:
        """Read and file exactly one worker message."""
        message = self._recv(inbox.handle, supervisor, window)
        tag = message[0]
        if tag == "res":
            inbox.res[message[1]] = message[2]
            inbox.secs[message[1]] = message[3]
            if len(message) > 4 and message[4]:
                # Telemetry from stale speculative sends is kept too:
                # the discarded compute was real work.
                inbox.deltas.append(message[4])
        elif tag == "ack":
            inbox.acks[message[1]] = message[2]
            if not message[2]:
                # Speculation missed: the buffered next-window result
                # is stale; the worker's recompute follows in the pipe.
                inbox.res.pop(message[1] + 1, None)
                inbox.secs.pop(message[1] + 1, None)
        elif tag == "rep":
            inbox.reps[message[1]] = message[2]
            if len(message) > 3 and message[3]:
                inbox.deltas.append(message[3])
        else:  # pragma: no cover - protocol bug guard
            raise ShardedWorkerError(
                f"shard worker {inbox.handle.index} sent unexpected {tag!r}"
            )

    def _run_windows_pipelined(
        self,
        network,
        pool,
        n,
        marks,
        mark_set,
        on_step,
        on_checkpoint,
        supervisor=None,
    ) -> "MessageCounters":
        handles = pool["handles"]
        inboxes = [_Inbox(handle) for handle in handles]
        windows = list(
            batch_windows(n, self.batch_size, self.initial_batch_size, marks)
        )
        # Arrival-order folds need a coordinator that can rewind; one
        # that cannot (snapshot_state() is None) still pipelines via
        # speculation and double buffering, with ordered folds only.
        async_folds = network.coordinator.snapshot_state() is not None
        st = {
            "rollbacks": 0,
            "controls": 0,
            "spec_hits": 0,
            "spec_misses": 0,
            "unordered_folds": 0,
            "ordered_refolds": 0,
            "worker_compute_seconds": 0.0,
            "transport_wait_seconds": 0.0,
            "parent_fold_seconds": 0.0,
            "per_window": [],
        }
        for u, (lo, hi) in enumerate(windows):
            controls = self._fold_window_pipelined(
                u, network, handles, inboxes, async_folds, st, supervisor
            )
            st["controls"] += len(controls)
            for inbox in inboxes:
                if inbox.deltas:
                    for deltas in inbox.deltas:
                        merge_worker_deltas(
                            self.registry, inbox.handle.index, deltas
                        )
                    inbox.deltas.clear()
            for handle in handles:
                self._send(handle, ("com", u, controls), u)
            if supervisor is not None:
                supervisor.export_heartbeats()
            network.items_processed += hi - lo
            t = network.items_processed
            if on_step is not None:
                on_step(t)
            if hi in mark_set:
                on_checkpoint(t)
        for handle in handles:
            self._send(handle, ("fin",))
        for inbox in inboxes:
            while True:
                message = self._recv(inbox.handle, supervisor)
                if message[0] == "ack":
                    # The final window's ack: no speculation existed
                    # behind it (there is no next window to compute).
                    continue
                if message[0] != "sta":  # pragma: no cover - bug guard
                    raise ShardedWorkerError(
                        f"shard worker {inbox.handle.index} sent "
                        f"{message[0]!r} instead of final state"
                    )
                break
            for deltas in inbox.deltas:
                merge_worker_deltas(self.registry, inbox.handle.index, deltas)
            inbox.deltas.clear()
            if len(message) > 3 and message[3]:
                merge_worker_deltas(
                    self.registry, inbox.handle.index, message[3]
                )
            for offset, final in enumerate(pickle.loads(message[2])):
                _adopt_site_state(network.sites[message[1] + offset], final)
        self.last_run_stats = {
            "mode": "sharded",
            "workers": pool["workers"],
            "transport": pool["transport"],
            "pipeline": "on",
            "async_folds": async_folds,
            "windows": len(windows),
            "rollbacks": st["rollbacks"],
            "controls": st["controls"],
            "speculation": {
                "hits": st["spec_hits"],
                "misses": st["spec_misses"],
            },
            "unordered_folds": st["unordered_folds"],
            "ordered_refolds": st["ordered_refolds"],
            "timing": {
                "worker_compute_seconds": st["worker_compute_seconds"],
                "transport_wait_seconds": st["transport_wait_seconds"],
                "parent_fold_seconds": st["parent_fold_seconds"],
            },
            "per_window": st["per_window"],
            "shm_segments": [
                shm.name
                for shm in pool["rings"] + pool["stream"]["shms"]
            ],
        }
        return network.counters

    def _fold_window_pipelined(
        self, u, network, handles, inboxes, async_folds, st, supervisor=None
    ):
        """Fold window ``u``: collect each worker's final descriptors,
        folding arrival-order-safe packs as they land, then finish the
        remainder in exact ascending-site order.  Returns the window's
        control list (what ``com`` broadcasts to the workers).

        Correctness of the overlap: unordered commits touch only
        coordinator-internal state and are order-invariant by the
        coordinator's own guards; the moment any ordered fold of the
        remainder emits a response after such a commit, the whole
        window rewinds to its start snapshot and refolds in exact
        order — nothing was delivered downstream before the rewind
        (the parent's site mirrors reject out-of-order epoch
        thresholds), so the replay is indistinguishable from lockstep.
        Rolls (clean path) and rewinds (dirty path) are mutually
        exclusive within a window.
        """
        from multiprocessing.connection import wait as _connection_wait

        coordinator = network.coordinator
        counters = network.counters
        coordinator_snapshot = counters_snapshot = None
        if async_folds:
            coordinator_snapshot = coordinator.snapshot_state()
            counters_snapshot = counters.snapshot_state()
        pending: dict = {}
        alldesc: dict = {}
        declined: set = set()
        dirty = False
        wait_seconds = 0.0
        fold_seconds = 0.0
        compute_seconds = 0.0
        unordered_before = st["unordered_folds"]
        remaining = set(range(len(handles)))
        while remaining:
            t0 = time.perf_counter()
            if supervisor is None:
                _connection_wait(
                    [inboxes[i].handle.conn for i in remaining]
                )
            else:
                deadline = max(
                    supervisor.deadline(inboxes[i].handle)
                    for i in remaining
                )
                ready = _connection_wait(
                    [inboxes[i].handle.conn for i in remaining],
                    timeout=deadline,
                )
                if not ready:
                    silent = sorted(remaining)
                    raise _WorkerFault(
                        inboxes[silent[0]].handle,
                        "hang",
                        f"no pipelined progress within {deadline:.1f}s "
                        f"(workers {silent} silent)",
                        window=u,
                    )
            wait_seconds += time.perf_counter() - t0
            for i in list(remaining):
                inbox = inboxes[i]
                while inbox.handle.conn.poll(0):
                    self._pump(inbox, supervisor, u)
                if u in inbox.res and (u == 0 or (u - 1) in inbox.acks):
                    if u > 0:
                        if inbox.acks.pop(u - 1):
                            st["spec_hits"] += 1
                        else:
                            st["spec_misses"] += 1
                    secs = inbox.secs.pop(u, 0.0)
                    if secs > compute_seconds:
                        compute_seconds = secs
                    for descriptor in inbox.res.pop(u):
                        pending[descriptor[0]] = (inbox.handle, descriptor)
                        alldesc[descriptor[0]] = (inbox.handle, descriptor)
                    remaining.discard(i)
            if async_folds and pending and remaining:
                # Overlap: fold order-invariant packs now, while the
                # remaining workers are still computing/shipping.
                t0 = time.perf_counter()
                for site_id in sorted(pending):
                    if site_id in declined:
                        continue
                    handle, descriptor = pending[site_id]
                    if descriptor[1] == "m":  # scalar lists fold ordered
                        declined.add(site_id)
                        continue
                    if self._fold_unordered(
                        network, site_id, handle, descriptor, u
                    ):
                        del pending[site_id]
                        dirty = True
                        st["unordered_folds"] += 1
                    else:
                        declined.add(site_id)
                fold_seconds += time.perf_counter() - t0
        t0 = time.perf_counter()
        if not dirty:
            controls = self._fold_ordered(
                u, network, handles, inboxes, pending, st, supervisor
            )
        else:
            # Out-of-order commits happened: finish the remainder with
            # *silent* ordered folds (count + fold, deliver nothing)
            # and rewind the whole window the moment one responds.
            controls = None
            for site_id in sorted(pending):
                handle, descriptor = pending[site_id]
                if self._fold_silent(
                    network, site_id, handle, descriptor, u
                ):
                    st["ordered_refolds"] += 1
                    coordinator.restore_state(coordinator_snapshot)
                    counters.restore_state(counters_snapshot)
                    controls = self._fold_ordered(
                        u, network, handles, inboxes, alldesc, st, supervisor
                    )
                    break
            if controls is None:
                controls = []
        fold_seconds += time.perf_counter() - t0
        st["worker_compute_seconds"] += compute_seconds
        st["transport_wait_seconds"] += wait_seconds
        st["parent_fold_seconds"] += fold_seconds
        st["per_window"].append(
            {
                "window": u,
                "worker_compute_seconds": compute_seconds,
                "transport_wait_seconds": wait_seconds,
                "parent_fold_seconds": fold_seconds,
                "unordered_folds": st["unordered_folds"] - unordered_before,
                "controls": len(controls),
            }
        )
        return controls

    def _fold_ordered(
        self, u, network, handles, inboxes, descriptors, st, supervisor=None
    ):
        """The lockstep fold body over the pipelined wire: ascending
        site order with the roll/replacement protocol (see
        :meth:`_run_windows`), reading replacements through the
        inboxes (speculative traffic may precede them in the pipe)."""
        pending = dict(descriptors)
        controls: List[Tuple[int, int, object]] = []
        order = sorted(pending)
        i = 0
        while i < len(order):
            site_id = order[i]
            handle, descriptor = pending.pop(site_id)
            responses = self._fold(
                network, site_id, self._decode(handle, descriptor, u)
            )
            if responses:
                controls.extend(
                    (site_id, dest, message) for dest, message in responses
                )
                needs_roll = any(
                    dest == BROADCAST or dest > site_id
                    for dest, _ in responses
                )
                affected = [h for h in handles if h.site_hi - 1 > site_id]
                if needs_roll and affected:
                    st["rollbacks"] += 1
                    for h in affected:
                        self._send(h, ("roll", u, site_id, controls), u)
                    for stale in [s for s in pending if s > site_id]:
                        del pending[stale]
                    for h in affected:
                        inbox = inboxes[h.index]
                        while u not in inbox.reps:
                            self._pump(inbox, supervisor, u)
                        for descriptor in inbox.reps.pop(u):
                            pending[descriptor[0]] = (h, descriptor)
                    order = order[: i + 1] + sorted(
                        s for s in pending if s > site_id
                    )
            i += 1
        return controls

    def _fold_unordered(
        self, network, site_id, handle, descriptor, window=None
    ) -> bool:
        """Attempt one arrival-order fold; True iff it committed.

        A method (not inline) so the decoded zero-copy ring view dies
        with this frame — a view bound in a frame captured by an error
        traceback would outlive the pool and block ring teardown.
        """
        payload = self._decode(handle, descriptor, window)
        if network.coordinator.on_message_pack_unordered(site_id, payload):
            network.counters.record_upstream_pack(payload)
            return True
        return False

    def _fold_silent(
        self, network, site_id, handle, descriptor, window=None
    ) -> bool:
        """Ordered fold that delivers nothing downstream; True iff the
        coordinator responded (the dirty window must then rewind).
        Frame-scoped for the same ring-view-lifetime reason as
        :meth:`_fold_unordered`.
        """
        coordinator = network.coordinator
        counters = network.counters
        payload = self._decode(handle, descriptor, window)
        if isinstance(payload, MessagePack):
            counters.record_upstream_pack(payload)
            return bool(coordinator.on_message_pack(site_id, payload))
        for message in payload:
            counters.record_upstream(message)
            if coordinator.on_message(site_id, message):
                return True
        return False

    def format_stats(self) -> str:
        """A human-readable breakdown of :attr:`last_run_stats` (used
        by ``repro ... --profile --engine sharded``)."""
        stats = self.last_run_stats
        if not stats:
            return "sharded engine: no run recorded yet"
        if stats.get("mode") == "degraded":
            return (
                f"sharded engine: degraded to the "
                f"{stats.get('rung', '?')} rung "
                f"({stats.get('reason', 'unknown reason')}); "
                f"{len(stats.get('faults', ()))} faults logged"
            )
        if stats.get("mode") != "sharded":
            return (
                f"sharded engine: ran in fallback mode "
                f"({stats.get('reason', 'unknown reason')})"
            )
        lines = [
            (
                f"sharded engine breakdown (pipeline "
                f"{stats.get('pipeline', '?')}, {stats['workers']} workers, "
                f"{stats['transport']} transport):"
            ),
            (
                f"  windows {stats['windows']}, rollbacks "
                f"{stats['rollbacks']}, controls {stats['controls']}"
            ),
        ]
        spec = stats.get("speculation")
        if spec is not None:
            lines.append(
                f"  speculation: {spec['hits']} hits, {spec['misses']} misses"
            )
        if "unordered_folds" in stats:
            lines.append(
                f"  async folds: {stats['unordered_folds']} packs out of "
                f"order, {stats['ordered_refolds']} window refolds"
            )
        timing = stats.get("timing")
        if timing is not None:
            parts = []
            for label, key in (
                ("worker compute", "worker_compute_seconds"),
                ("transport wait", "transport_wait_seconds"),
                ("parent fold", "parent_fold_seconds"),
            ):
                if key in timing:
                    parts.append(f"{label} {timing[key]:.3f}s")
            lines.append("  time: " + ", ".join(parts))
        if stats.get("faults"):
            lines.append(
                f"  faults: {len(stats['faults'])} classified, "
                f"{stats.get('worker_restarts', 0)} worker restarts, "
                f"recovery {stats.get('recovery_seconds', 0.0):.3f}s"
            )
        if "degraded_to" in stats:
            lines.append(
                f"  degraded: {stats.get('degraded_from', '?')} -> "
                f"{stats['degraded_to']}"
            )
        if "kernels" in stats:
            lines.append(f"  kernels: {stats['kernels']} backend")
        return "\n".join(lines)

    @staticmethod
    def _send(handle, message, window=None) -> None:
        """Send a command to a worker; a dead pipe raises a classified
        ``crash`` :class:`_WorkerFault` (the supervised paths recover
        or degrade; unsupervised boundaries convert it to
        :class:`ShardedWorkerError` via ``to_error``)."""
        try:
            handle.conn.send(message)
        except (BrokenPipeError, OSError) as exc:
            raise _WorkerFault(
                handle,
                "crash",
                f"pipe closed mid-send "
                f"(exitcode {handle.process.exitcode}): {exc!r}",
                window=window,
            ) from None

    def _recv(self, handle, supervisor=None, window=None):
        """Receive one worker message; classify failures.

        With a supervisor the receive is deadline-bounded (``hang``
        fault on expiry) and stamps the worker's heartbeat.  A dead
        pipe is a ``crash`` fault either way; a worker-shipped
        traceback is fail-stop (:class:`ShardedWorkerError` with
        ``fault_class="error"``) — the worker's own code raised, and
        deterministic replay would just raise it again.
        """
        if supervisor is not None:
            deadline = supervisor.deadline(handle)
            if not handle.conn.poll(deadline):
                raise _WorkerFault(
                    handle,
                    "hang",
                    f"no message within {deadline:.1f}s "
                    f"(process alive: {handle.process.is_alive()})",
                    window=window,
                )
        try:
            message = handle.conn.recv()
        except (EOFError, OSError) as exc:
            raise _WorkerFault(
                handle,
                "crash",
                f"exited unexpectedly "
                f"(exitcode {handle.process.exitcode}): {exc!r}",
                window=window,
            ) from None
        if message[0] == "err":
            raise ShardedWorkerError.from_fault(
                handle,
                "error",
                f"worker raised; original traceback:\n{message[1]}",
                window=window,
                worker_traceback=message[1],
            )
        if supervisor is not None:
            supervisor.heartbeat(handle)
        return message

    def _decode(self, handle, descriptor, window=None):
        """Rebuild one site's window payload from its wire descriptor.

        All three wire forms are validated at this boundary
        (:class:`~repro.net.messages.PackWireError` and friends); a
        malformed descriptor is classified as a ``poison``
        :class:`_WorkerFault` instead of crashing the coordinator fold.
        """
        try:
            tag = descriptor[1]
            if tag == "m":
                payload = descriptor[2]
                if not isinstance(payload, list):
                    raise PackWireError(
                        f"scalar descriptor carries "
                        f"{type(payload).__name__}, not a message list"
                    )
                return payload
            if tag == "q":
                return MessagePack.from_arrays(descriptor[2], descriptor[3])
            if tag == "p":
                return MessagePack.read_from(
                    handle.ring.buf, descriptor[2], descriptor[3]
                )
            raise PackWireError(f"unknown descriptor tag {tag!r}")
        except (
            ValueError,
            TypeError,
            KeyError,
            IndexError,
            AttributeError,
        ) as exc:
            raise _WorkerFault(
                handle,
                "poison",
                f"undecodable pack descriptor: {exc}",
                window=window,
            ) from None

    @staticmethod
    def _fold(network, site_id: int, payload, attempt=None):
        """Deliver one site's window output to the coordinator, exactly
        as :meth:`Network.deliver_pack` / ``deliver_upstream`` would
        (same counter calls, same response fan-out), but returning the
        coordinator's responses so the window loop can see broadcasts.
        Only called on uninstrumented networks (checked at ``run``
        start), where this *is* the delivery path, verbatim.
        ``attempt`` (supervised lockstep only) guards downstream
        deliveries across window-recovery refolds.
        """
        counters = network.counters
        coordinator = network.coordinator
        if isinstance(payload, MessagePack):
            if len(payload) == 0:  # pragma: no cover - filtered at encode
                return []
            counters.record_upstream_pack(payload)
            responses = coordinator.on_message_pack(site_id, payload)
            for dest, response in responses:
                _deliver_guarded(network, attempt, dest, response)
            return responses
        out = []
        for message in payload:
            counters.record_upstream(message)
            responses = coordinator.on_message(site_id, message)
            for dest, response in responses:
                _deliver_guarded(network, attempt, dest, response)
            out.extend(responses)
        return out


def _columns_to_shm(assignment, weights, idents):
    """Copy the full stream columns into one shared-memory segment
    (a single parent-side memcpy, attached by every worker); returns
    ``((name, column_spec), segment)``."""
    columns = {
        "assignment": assignment,
        "weights": weights,
        "idents": idents,
    }
    total = sum(array.nbytes for array in columns.values())
    shm = _shared_memory.SharedMemory(create=True, size=max(1, total))
    target = memoryview(shm.buf)
    spec = {}
    offset = 0
    for name, array in columns.items():
        array = _np.ascontiguousarray(array)
        nbytes = array.nbytes
        target[offset : offset + nbytes] = memoryview(array).cast("B")
        spec[name] = (offset, array.dtype.str, len(array))
        offset += nbytes
    return (shm.name, spec), shm


def _network_instrumented(network) -> bool:
    """Mirror :meth:`Network.deliver_pack`'s tracing check: wrapped or
    overridden delivery methods mean an observer wants to see every
    message in causal order — the sharded fold would bypass it, so the
    engine falls back to the in-process columnar path instead."""
    from .network import (
        _BASE_DELIVER_DOWNSTREAM,
        _BASE_DELIVER_UPSTREAM,
        Network,
    )

    cls = type(network)
    return (
        "deliver_upstream" in network.__dict__
        or "deliver_downstream" in network.__dict__
        or "deliver_pack" in network.__dict__
        or cls.deliver_upstream is not _BASE_DELIVER_UPSTREAM
        or cls.deliver_downstream is not _BASE_DELIVER_DOWNSTREAM
        or cls.deliver_pack is not Network.deliver_pack
    )

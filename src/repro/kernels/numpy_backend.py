"""The always-available numpy kernel backend.

Each function here is the vectorized hot-path logic that used to live
inline in the core structures (``TopKeySample.merge_columns``'s
partition, the SWOR coordinator's regular fold, the SWR lexsort min
fold, the sliding-window block-table dominator count, and the site-side
level computation / early-regular split), extracted behind the kernel
seam in :mod:`repro.kernels` so a compiled backend can replace it
call-for-call.

The contract shared with :mod:`repro.kernels.numba_backend` is *bit
identity*: for the same inputs every kernel returns the same floats,
the same integer counts, and the same index sets in the same order.
Kernels never draw randomness — they only transform columns whose
random keys were already drawn by the caller — which is what makes the
backend choice invisible to samples and message counters.

The purity half of that contract (no RNG, no clocks, no I/O, no
module-global mutation anywhere under ``src/repro/kernels/``) is
enforced statically by reprolint rule R002 (``python -m
tools.reprolint --list-rules``) on top of the behavioral parity suite
in ``tests/test_kernels.py``.
"""

from __future__ import annotations

import math
from typing import Tuple

try:  # the kernel tier only exists on numpy installs; callers gate
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-free installs
    _np = None  # type: ignore[assignment]

from ..common.errors import ConfigurationError

__all__ = [
    "AVAILABLE",
    "swor_fold_regulars",
    "merge_cut",
    "swr_min_fold",
    "window_dominators",
    "compute_levels",
    "window_split",
]

#: Whether this backend can run at all (numpy importable).
AVAILABLE = _np is not None

#: Block width of the chunk-internal dominator count: within a block
#: the later-larger counts come from one ``b x b`` comparison table,
#: across blocks from ranks in the running sorted suffix.
_RANK_BLOCK = 256


def merge_cut(
    old_keys: _np.ndarray, cand_keys: _np.ndarray, sample_size: int
) -> Tuple[float, int]:
    """``(cut, at_cut)`` of a top-``s`` merge over old + candidate keys.

    ``cut`` is the exact ``(total - s)``-th smallest of the merged
    multiset — the smallest surviving key — and ``at_cut`` is how many
    merged keys equal it (``!= 1`` means the selection boundary is an
    ambiguous tie).  Requires ``len(old) + len(cand) >= sample_size``;
    the order statistic is backend-independent by definition.
    """
    merged = _np.concatenate([old_keys, cand_keys])
    cut_index = len(merged) - sample_size
    cut = float(_np.partition(merged, cut_index)[cut_index])
    return cut, int((merged == cut).sum())


def swor_fold_regulars(
    keys: _np.ndarray, threshold: float, old_keys: _np.ndarray, sample_size: int
) -> Tuple[_np.ndarray, _np.ndarray, float, int]:
    """The fused SWOR coordinator fold over one pack's regular keys.

    One pass computes everything the coordinator's fast path needs:

    * ``surv_idx`` — indices (into ``keys``) of the candidates above
      the live ``threshold`` (Algorithm 2 line 19's re-check);
    * ``kept_idx`` — the subset that survives the top-``s`` merge
      against ``old_keys`` (all of ``surv_idx`` on the underfull push
      path);
    * ``cut`` — the merged threshold the fold would leave behind
      (``0.0`` while the merged set stays underfull), which drives the
      epoch-crossing check;
    * ``at_cut`` — merged keys equal to ``cut`` (``!= 1`` on the
      partition path means the order-dependent tie fallback applies).
    """
    surv_idx = _np.flatnonzero(keys > threshold)
    n = len(surv_idx)
    h = len(old_keys)
    if h + n < sample_size:
        return surv_idx, surv_idx, 0.0, 1
    cand = keys[surv_idx]
    cut, at_cut = merge_cut(old_keys, cand, sample_size)
    if n <= sample_size - h:
        kept_idx = surv_idx
    else:
        kept_idx = surv_idx[cand >= cut]
    return surv_idx, kept_idx, cut, at_cut


def swr_min_fold(
    samplers: _np.ndarray, keys: _np.ndarray, sample_size: int
) -> _np.ndarray:
    """Per-sampler minimum of one SWR pack: head indices, ascending
    sampler id, earliest arrival winning key ties.

    One stable ``np.lexsort`` groups the pack's entries by sampler and
    finds each sampler's minimum key (first arrival wins ties, as the
    scalar strict-``<`` update does).  ``sample_size`` bounds the
    sampler id space; the numpy path does not need it.
    """
    nr = len(keys)
    order = _np.lexsort((_np.arange(nr), keys, samplers))
    sorted_samplers = samplers[order]
    return order[
        _np.flatnonzero(_np.r_[True, sorted_samplers[1:] != sorted_samplers[:-1]])
    ]


def window_dominators(keys: _np.ndarray) -> _np.ndarray:
    """Chunk-internal dominator counts of the sliding-window sampler:
    ``out[i] = #{j > i : keys[j] > keys[i]}`` (strictly later, strictly
    larger), exact integers.

    Blocks are processed back to front; an arrival's count is its
    later-larger count within its block (``b x b`` comparison table)
    plus its rank deficit in the sorted suffix of all later blocks.
    """
    m = len(keys)
    dominators = _np.zeros(m, dtype=_np.int64)
    suffix_sorted = keys[:0]
    for bs in range(((m - 1) // _RANK_BLOCK) * _RANK_BLOCK, -1, -_RANK_BLOCK):
        block = keys[bs:bs + _RANK_BLOCK]
        cross = len(suffix_sorted) - _np.searchsorted(
            suffix_sorted, block, side="right"
        )
        later = block[None, :] > block[:, None]
        within = _np.triu(later, k=1).sum(axis=1)
        dominators[bs:bs + _RANK_BLOCK] = cross + within
        suffix_sorted = _np.sort(_np.concatenate([block, suffix_sorted]))
    return dominators


def compute_levels(weights: _np.ndarray, r: float) -> _np.ndarray:
    """Vectorized level computation ``w in [r^j, r^{j+1})`` (0 for
    ``w < r``), with the scalar path's float-edge corrections.

    Validates weights (positive and finite) and raises
    :class:`~repro.common.errors.ConfigurationError` on the first bad
    one; assumes ``r >= 2`` (validated by the caller).  The correction
    loops converge to the unique bracket satisfying the exact ``pow``
    comparisons, which is what makes the result independent of how the
    initial ``log`` estimate rounded.
    """
    # Float64 exponentiation throughout: an integer ``r`` would make
    # ``np.power(r, est)`` wrap in int64 for large levels (and diverge
    # from the compiled backend's ``math.pow``).
    r = float(r)
    w = _np.asarray(weights, dtype=_np.float64)
    bad = ~_np.isfinite(w) | (w <= 0.0)
    if bad.any():
        raise ConfigurationError(
            f"weight must be positive and finite: {float(w[bad][0])}"
        )
    levels = _np.zeros(len(w), dtype=_np.int64)
    big = w >= r
    if big.any():
        est = (_np.log(w[big]) / math.log(r)).astype(_np.int64)
        while True:  # correct log() rounding down across power boundaries
            low = _np.power(r, est + 1) <= w[big]
            if not low.any():
                break
            est[low] += 1
        while True:  # ...and rounding up
            high = (est > 0) & (_np.power(r, est) > w[big])
            if not high.any():
                break
            est[high] -= 1
        levels[big] = est
    return levels


def window_split(
    weights: _np.ndarray, r: float, heavy_floor: float, table: _np.ndarray
) -> Tuple[_np.ndarray, _np.ndarray, _np.ndarray]:
    """Fused site-side level computation + early/regular split.

    For every weight at or above ``heavy_floor`` the exact level is
    computed (``heavy_floor <= 0`` means *every* weight, including the
    validation that implies); weights below the floor are provably in
    saturated levels and keep a level-0 placeholder.  ``table`` is the
    saturation lookup (``table[j]`` = level ``j`` saturated); levels
    beyond the table are unsaturated by construction (the table covers
    every set bit of the mask).

    Returns ``(levels, saturated, early_positions)`` where
    ``early_positions`` is the sorted index array of unsaturated
    (early) arrivals — the site's split in one pass.
    """
    n = len(weights)
    if heavy_floor > 0.0:
        heavy_idx = _np.flatnonzero(weights >= heavy_floor)
    else:
        heavy_idx = _np.arange(n)
    levels = _np.zeros(n, dtype=_np.int64)
    saturated = _np.ones(n, dtype=_np.bool_)
    if len(heavy_idx) == 0:
        return levels, saturated, heavy_idx
    heavy_levels = compute_levels(
        weights if len(heavy_idx) == n else weights[heavy_idx], r
    )
    levels[heavy_idx] = heavy_levels
    in_table = heavy_levels < len(table)
    heavy_saturated = _np.zeros(len(heavy_idx), dtype=_np.bool_)
    heavy_saturated[in_table] = table[heavy_levels[in_table]]
    early_positions = heavy_idx[~heavy_saturated]
    saturated[early_positions] = False
    return levels, saturated, early_positions
